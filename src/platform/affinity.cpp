#include "platform/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <thread>

namespace das {

bool pin_current_thread(int os_cpu) {
#if defined(__linux__)
  if (os_cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(os_cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)os_cpu;
  return false;
#endif
}

int allowed_cpu_count() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace das
