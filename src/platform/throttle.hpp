#pragma once
// Core-speed emulation for the real-thread engine.
//
// The container this library builds in has homogeneous cores, so the TX2's
// fixed asymmetry and the paper's interference/DVFS scenarios are *emulated*:
// after a worker performs real kernel work that took `dt` at native speed, it
// busy-waits an additional dt * (1/rel_speed - 1), making the participation
// take dt / rel_speed of wall time — exactly what a core running at
// rel_speed of the fastest class would exhibit. Busy-waiting (instead of
// sleeping) is deliberate: a genuinely slow core stays occupied, and so must
// its emulation, otherwise the OS would backfill the idle time and distort
// co-scheduling behaviour.
//
// The scheduler under test observes nothing but inflated task execution
// times, which is the same signal real dynamic asymmetry produces (see
// DESIGN.md §1 for the substitution argument).

#include <cstdint>

#include "platform/speed_model.hpp"
#include "util/time.hpp"

namespace das {

class SpeedEmulator {
 public:
  /// `scenario` may outlive calls; `epoch_ns` anchors scenario time 0.
  SpeedEmulator(const SpeedScenario& scenario, std::int64_t epoch_ns)
      : scenario_(&scenario), epoch_ns_(epoch_ns) {}

  /// Scenario time (seconds) of an absolute timestamp.
  double scenario_time(std::int64_t t_ns) const {
    return ns_to_s(t_ns - epoch_ns_);
  }

  /// Relative speed of `core` at absolute time `t_ns`.
  double relative_speed(int core, std::int64_t t_ns) const {
    return scenario_->relative_speed(core, scenario_time(t_ns));
  }

  /// Extra wall-time a core at relative speed `rel` owes after `work_ns` of
  /// native-speed work.
  static std::int64_t deficit_ns(std::int64_t work_ns, double rel_speed) {
    if (rel_speed >= 1.0 || work_ns <= 0) return 0;
    return static_cast<std::int64_t>(static_cast<double>(work_ns) *
                                     (1.0 / rel_speed - 1.0));
  }

  /// Busy-waits the emulation deficit for work that started at `start_ns`
  /// and took `work_ns`. Speed is sampled at the start of the work; the
  /// scenarios of interest (DVFS period 10 s, interference windows of
  /// seconds) change slowly relative to millisecond tasks.
  void throttle(int core, std::int64_t start_ns, std::int64_t work_ns) const {
    busy_wait_ns(deficit_ns(work_ns, relative_speed(core, start_ns)));
  }

 private:
  const SpeedScenario* scenario_;
  std::int64_t epoch_ns_;
};

}  // namespace das
