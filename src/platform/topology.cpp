#include "platform/topology.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace das {

std::string to_string(const ExecutionPlace& p) {
  return "(C" + std::to_string(p.leader) + "," + std::to_string(p.width) + ")";
}

namespace {

std::vector<int> power_of_two_widths(int cores) {
  std::vector<int> w;
  for (int v = 1; v <= cores; v <<= 1) w.push_back(v);
  return w;
}

}  // namespace

Topology::Topology(std::vector<Cluster> clusters) : clusters_(std::move(clusters)) {
  DAS_CHECK(!clusters_.empty());
  int next = 0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    Cluster& c = clusters_[i];
    DAS_CHECK_MSG(c.first_core == next, "clusters must tile cores contiguously");
    DAS_CHECK(c.num_cores > 0);
    DAS_CHECK(c.base_speed > 0.0);
    DAS_CHECK(!c.widths.empty());
    DAS_CHECK_MSG(c.widths.front() == 1,
                  "every cluster must support width 1 (single-core execution)");
    DAS_CHECK(std::is_sorted(c.widths.begin(), c.widths.end()));
    for (int w : c.widths) {
      DAS_CHECK_MSG(w >= 1 && w <= c.num_cores, "width out of range for cluster");
      DAS_CHECK_MSG((w & (w - 1)) == 0, "widths must be powers of two");
    }
    next += c.num_cores;
    for (int k = 0; k < c.num_cores; ++k) cluster_of_.push_back(static_cast<int>(i));
  }
  num_cores_ = next;

  fastest_cluster_ = 0;
  for (int i = 1; i < num_clusters(); ++i)
    if (clusters_[i].base_speed > clusters_[fastest_cluster_].base_speed)
      fastest_cluster_ = i;
  max_base_speed_ = clusters_[fastest_cluster_].base_speed;

  // Enumerate valid places in (leader, width) order and build the dense map.
  place_id_.assign(num_cores_, {});
  for (int core = 0; core < num_cores_; ++core) {
    const Cluster& c = cluster_of_core(core);
    const int max_w = c.widths.back();
    place_id_[core].assign(static_cast<std::size_t>(max_w) + 1, -1);
  }
  for (int core = 0; core < num_cores_; ++core) {
    const Cluster& c = cluster_of_core(core);
    const int offset = core - c.first_core;
    for (int w : c.widths) {
      if (offset % w != 0) continue;
      if (offset + w > c.num_cores) continue;
      place_id_[core][w] = static_cast<int>(places_.size());
      places_.push_back(ExecutionPlace{core, w});
    }
  }

  local_.assign(num_cores_, {});
  for (int core = 0; core < num_cores_; ++core) {
    const Cluster& c = cluster_of_core(core);
    const int offset = core - c.first_core;
    for (int w : c.widths) {
      const int leader = c.first_core + (offset / w) * w;
      const ExecutionPlace p{leader, w};
      if (is_valid_place(p)) local_[core].push_back(p);
    }
  }

  for (const ExecutionPlace& p : places_)
    if (p.width == 1) width1_places_.push_back(p);
}

const Cluster& Topology::cluster(int idx) const {
  DAS_CHECK(idx >= 0 && idx < num_clusters());
  return clusters_[idx];
}

int Topology::cluster_index_of(int core) const {
  DAS_CHECK_MSG(core >= 0 && core < num_cores_, "core id out of range");
  return cluster_of_[core];
}

const ExecutionPlace& Topology::place_at(int place_id) const {
  DAS_CHECK(place_id >= 0 && place_id < num_places());
  return places_[place_id];
}

int Topology::leader_for(int core, int width) const {
  const Cluster& c = cluster_of_core(core);
  DAS_CHECK_MSG(std::find(c.widths.begin(), c.widths.end(), width) != c.widths.end(),
                "width not supported by cluster");
  const int offset = core - c.first_core;
  return c.first_core + (offset / width) * width;
}

const std::vector<ExecutionPlace>& Topology::local_places(int core) const {
  DAS_CHECK(core >= 0 && core < num_cores_);
  return local_[core];
}

// --- Presets ---------------------------------------------------------------

Topology Topology::tx2() {
  Cluster denver{.name = "denver",
                 .first_core = 0,
                 .num_cores = 2,
                 .base_speed = 1.0,
                 .widths = {1, 2},
                 .l1_kb = 64.0,
                 .l2_kb = 2048.0,
                 .mem_bw_gbs = 20.0};
  Cluster a57{.name = "a57",
              .first_core = 2,
              .num_cores = 4,
              .base_speed = 0.55,
              .widths = {1, 2, 4},
              .l1_kb = 32.0,
              .l2_kb = 2048.0,
              .mem_bw_gbs = 20.0,
              .stream_fit = 0.45};  // in-order-ish A57s stall on L2 misses
  return Topology({denver, a57});
}

Topology Topology::haswell16() {
  std::vector<Cluster> cs;
  for (int s = 0; s < 2; ++s) {
    cs.push_back(Cluster{.name = "socket" + std::to_string(s),
                         .first_core = s * 8,
                         .num_cores = 8,
                         .base_speed = 1.0,
                         .widths = {1, 2, 4, 8},
                         .l1_kb = 32.0,
                         .l2_kb = 20 * 1024.0,
                         .mem_bw_gbs = 50.0});
  }
  return Topology(std::move(cs));
}

Topology Topology::haswell20() {
  std::vector<Cluster> cs;
  for (int s = 0; s < 2; ++s) {
    cs.push_back(Cluster{.name = "socket" + std::to_string(s),
                         .first_core = s * 10,
                         .num_cores = 10,
                         .base_speed = 1.0,
                         .widths = {1, 2, 4, 8},
                         .l1_kb = 32.0,
                         .l2_kb = 25 * 1024.0,
                         .mem_bw_gbs = 50.0});
  }
  return Topology(std::move(cs));
}

Topology Topology::haswell_cluster(int nodes) {
  DAS_CHECK(nodes >= 1);
  std::vector<Cluster> cs;
  for (int n = 0; n < nodes; ++n) {
    for (int s = 0; s < 2; ++s) {
      std::string name = fmt_indexed("n", n);
      name += fmt_indexed(".s", s);
      cs.push_back(Cluster{.name = std::move(name),
                           .first_core = (n * 2 + s) * 10,
                           .num_cores = 10,
                           .base_speed = 1.0,
                           .widths = {1, 2, 4, 8},
                           .l1_kb = 32.0,
                           .l2_kb = 25 * 1024.0,
                           .mem_bw_gbs = 50.0});
    }
  }
  return Topology(std::move(cs));
}

Topology Topology::symmetric(int num_clusters, int cores_per_cluster, double speed) {
  DAS_CHECK(num_clusters >= 1 && cores_per_cluster >= 1);
  std::vector<Cluster> cs;
  for (int i = 0; i < num_clusters; ++i) {
    cs.push_back(Cluster{.name = "cluster" + std::to_string(i),
                         .first_core = i * cores_per_cluster,
                         .num_cores = cores_per_cluster,
                         .base_speed = speed,
                         .widths = power_of_two_widths(cores_per_cluster)});
  }
  return Topology(std::move(cs));
}

}  // namespace das
