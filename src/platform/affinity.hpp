#pragma once
// Best-effort thread pinning.
//
// On the paper's platforms worker i is pinned to physical core i. In
// containers / CI the affinity mask may be restricted, so pinning failure is
// reported rather than fatal: the runtime still emulates asymmetry through
// the throttle even when threads float.

namespace das {

/// Pins the calling thread to OS cpu `os_cpu`. Returns false if the
/// platform refuses (insufficient permissions, cpu not in the allowed set).
bool pin_current_thread(int os_cpu);

/// Number of CPUs the process is allowed to run on (>=1).
int allowed_cpu_count();

}  // namespace das
