#include "platform/throttle.hpp"

// SpeedEmulator is header-only; this translation unit exists so the platform
// object library has a home for future out-of-line throttle logic and to keep
// one .cpp per header in the build graph.

namespace das {}
