#pragma once
// Time-varying per-core performance model (the *dynamic asymmetry* the paper
// schedules around).
//
// The effective speed of a core at time t is
//     speed(core, t) = base_speed(cluster) * dvfs(cluster, t) * share(core, t)
// where
//   - dvfs(cluster, t) is a square wave emulating the power-management
//     scenario of paper §5.2 (Denver toggling 2035 <-> 345 MHz, 10 s period),
//   - share(core, t) < 1 while a co-running application time-shares the core
//     (paper §5.1: a matmul or copy chain pinned to core 0).
//
// Memory interference (the Copy co-runner) additionally shrinks the
// bandwidth available to each cluster; the DES cost model for the Copy
// kernel consumes bandwidth_share(cluster, t).
//
// The model is a pure function of t: both engines (virtual-time DES and the
// real-thread runtime, which passes seconds since its epoch) share it.

#include <limits>
#include <vector>

#include "platform/topology.hpp"

namespace das {

/// Square-wave DVFS schedule on one cluster: the first duty_hi * period
/// seconds of each period run at multiplier `hi`, the remainder at `lo`.
struct DvfsSchedule {
  int cluster = 0;
  double period_s = 10.0;
  double duty_hi = 0.5;
  double hi = 1.0;
  double lo = 345.0 / 2035.0;  ///< paper's lowest/highest TX2 frequency ratio
  double phase_s = 0.0;        ///< shifts the wave; t=phase starts a HI phase
};

/// A co-running application occupying `cores` during [t_start, t_end):
/// the victim cores retain `cpu_share` of their speed; the victim cluster
/// keeps `victim_cluster_bw` of its bandwidth and all other clusters
/// `global_bw` (DRAM is shared across clusters).
struct InterferenceEvent {
  std::vector<int> cores;
  double t_start = 0.0;
  double t_end = std::numeric_limits<double>::infinity();
  double cpu_share = 0.5;
  double victim_cluster_bw = 1.0;
  double global_bw = 1.0;
};

class SpeedScenario {
 public:
  explicit SpeedScenario(const Topology& topo) : topo_(&topo) {}

  SpeedScenario& add_dvfs(DvfsSchedule s);
  SpeedScenario& add_interference(InterferenceEvent e);

  /// Convenience: CPU-bound co-runner (paper's matmul chain) on `core` over
  /// [t0, t1): halves the victim core's effective speed.
  SpeedScenario& add_cpu_corunner(int core, double t0 = 0.0,
                                  double t1 = std::numeric_limits<double>::infinity());
  /// Convenience: memory-bound co-runner (paper's copy chain) on `core`:
  /// victim core x0.6, victim cluster bandwidth x0.7, other clusters x0.85.
  SpeedScenario& add_mem_corunner(int core, double t0 = 0.0,
                                  double t1 = std::numeric_limits<double>::infinity());
  /// Convenience: every core of `cluster` runs at `share` of its speed over
  /// [t0, t1) — the whole-cluster perturbation step the declarative scenario
  /// layer (src/scenario) composes ramps and churn from. Bandwidth untouched.
  SpeedScenario& add_cluster_slowdown(int cluster, double share, double t0,
                                      double t1);

  /// Ends every still-open interference event at time `t` (used by drivers
  /// that discover the window boundaries while running, e.g. "interference
  /// during iterations 20-70" in the paper's K-means experiment).
  SpeedScenario& close_open_interference(double t);

  const Topology& topology() const { return *topo_; }
  bool empty() const { return dvfs_.empty() && events_.empty(); }

  /// Effective speed of `core` at time `t` (absolute units: the fastest
  /// unperturbed cluster has speed max_base_speed()).
  double speed(int core, double t) const;
  /// speed() normalised to [0, 1] against the topology's max base speed;
  /// the throttle emulator (platform/throttle.hpp) consumes this.
  double relative_speed(int core, double t) const;
  /// Fraction of the cluster's memory bandwidth available at time `t`.
  double bandwidth_share(int cluster, double t) const;

  const std::vector<DvfsSchedule>& dvfs_schedules() const { return dvfs_; }
  const std::vector<InterferenceEvent>& interference_events() const { return events_; }

 private:
  const Topology* topo_;
  std::vector<DvfsSchedule> dvfs_;
  std::vector<InterferenceEvent> events_;
};

}  // namespace das
