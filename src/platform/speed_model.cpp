#include "platform/speed_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace das {

SpeedScenario& SpeedScenario::add_dvfs(DvfsSchedule s) {
  DAS_CHECK(s.cluster >= 0 && s.cluster < topo_->num_clusters());
  DAS_CHECK(s.period_s > 0.0);
  DAS_CHECK(s.duty_hi >= 0.0 && s.duty_hi <= 1.0);
  DAS_CHECK(s.hi > 0.0 && s.lo > 0.0);
  dvfs_.push_back(std::move(s));
  return *this;
}

SpeedScenario& SpeedScenario::add_interference(InterferenceEvent e) {
  DAS_CHECK(!e.cores.empty());
  for (int c : e.cores) DAS_CHECK(c >= 0 && c < topo_->num_cores());
  DAS_CHECK(e.t_start <= e.t_end);
  DAS_CHECK(e.cpu_share > 0.0 && e.cpu_share <= 1.0);
  DAS_CHECK(e.victim_cluster_bw > 0.0 && e.victim_cluster_bw <= 1.0);
  DAS_CHECK(e.global_bw > 0.0 && e.global_bw <= 1.0);
  events_.push_back(std::move(e));
  return *this;
}

SpeedScenario& SpeedScenario::add_cpu_corunner(int core, double t0, double t1) {
  return add_interference(InterferenceEvent{.cores = {core},
                                            .t_start = t0,
                                            .t_end = t1,
                                            .cpu_share = 0.5,
                                            .victim_cluster_bw = 1.0,
                                            .global_bw = 1.0});
}

SpeedScenario& SpeedScenario::add_mem_corunner(int core, double t0, double t1) {
  return add_interference(InterferenceEvent{.cores = {core},
                                            .t_start = t0,
                                            .t_end = t1,
                                            .cpu_share = 0.6,
                                            .victim_cluster_bw = 0.7,
                                            .global_bw = 0.85});
}

SpeedScenario& SpeedScenario::add_cluster_slowdown(int cluster, double share,
                                                   double t0, double t1) {
  DAS_CHECK(cluster >= 0 && cluster < topo_->num_clusters());
  const Cluster& c = topo_->cluster(cluster);
  std::vector<int> cores(static_cast<std::size_t>(c.num_cores));
  for (int i = 0; i < c.num_cores; ++i)
    cores[static_cast<std::size_t>(i)] = c.first_core + i;
  return add_interference(InterferenceEvent{.cores = std::move(cores),
                                            .t_start = t0,
                                            .t_end = t1,
                                            .cpu_share = share,
                                            .victim_cluster_bw = 1.0,
                                            .global_bw = 1.0});
}

SpeedScenario& SpeedScenario::close_open_interference(double t) {
  for (InterferenceEvent& e : events_) {
    if (t >= e.t_start && t < e.t_end) e.t_end = t;
  }
  return *this;
}

namespace {

double dvfs_multiplier(const DvfsSchedule& s, double t) {
  double pos = std::fmod(t - s.phase_s, s.period_s);
  if (pos < 0.0) pos += s.period_s;
  return pos < s.duty_hi * s.period_s ? s.hi : s.lo;
}

bool active(const InterferenceEvent& e, double t) {
  return t >= e.t_start && t < e.t_end;
}

}  // namespace

double SpeedScenario::speed(int core, double t) const {
  const int ci = topo_->cluster_index_of(core);
  double v = topo_->cluster(ci).base_speed;
  for (const DvfsSchedule& s : dvfs_)
    if (s.cluster == ci) v *= dvfs_multiplier(s, t);
  for (const InterferenceEvent& e : events_)
    if (active(e, t) &&
        std::find(e.cores.begin(), e.cores.end(), core) != e.cores.end())
      v *= e.cpu_share;
  return v;
}

double SpeedScenario::relative_speed(int core, double t) const {
  return speed(core, t) / topo_->max_base_speed();
}

double SpeedScenario::bandwidth_share(int cluster, double t) const {
  DAS_CHECK(cluster >= 0 && cluster < topo_->num_clusters());
  double share = 1.0;
  for (const InterferenceEvent& e : events_) {
    if (!active(e, t)) continue;
    if (e.victim_cluster_bw >= 1.0 && e.global_bw >= 1.0) continue;
    const int victim_cluster = topo_->cluster_index_of(e.cores.front());
    share *= (cluster == victim_cluster) ? e.victim_cluster_bw : e.global_bw;
  }
  return share;
}

}  // namespace das
