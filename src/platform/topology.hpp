#pragma once
// Platform model: clusters of same-ISA cores with (possibly) different base
// speeds, shared per-cluster L2, and a set of valid moldable resource widths
// (paper §2, Fig. 2(a)).
//
// An *execution place* is the pair (leader core, resource width): the task
// runs on cores [leader, leader + width). A place is valid iff
//   - width is one of the leader's cluster widths, and
//   - the leader is width-aligned within its cluster, and
//   - the place does not spill out of the cluster.
// The alignment rule matches the places observed in the paper's Fig. 5
// ((C2,2), (C4,2), (C2,4) appear on the 4-core A57 cluster; (C3,2) never).

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace das {

struct ExecutionPlace {
  int leader = 0;
  int width = 1;

  friend bool operator==(const ExecutionPlace&, const ExecutionPlace&) = default;
};

/// Renders "(C2,4)" like the paper's figures.
std::string to_string(const ExecutionPlace& p);

struct Cluster {
  std::string name;
  int first_core = 0;       ///< global id of the first core in the cluster
  int num_cores = 0;
  double base_speed = 1.0;  ///< static relative speed (1.0 = fastest class)
  std::vector<int> widths;  ///< valid resource widths, ascending

  // Memory-hierarchy parameters consumed by the DES cost models
  // (src/kernels/cost_models.cpp). Sizes in KiB, bandwidth in GB/s.
  double l1_kb = 32.0;      ///< per-core L1 data cache
  double l2_kb = 2048.0;    ///< shared per-cluster L2
  double mem_bw_gbs = 20.0; ///< cluster's share of memory bandwidth
  /// Latency-hiding ability on cache-spilling streaming sweeps (deep
  /// out-of-order cores sustain more outstanding misses): multiplies the
  /// stencil rate when the working set spills the L2.
  double stream_fit = 0.8;

  int end_core() const { return first_core + num_cores; }
  bool contains(int core) const { return core >= first_core && core < end_core(); }
};

class Topology {
 public:
  /// Clusters must tile the core ids contiguously starting at 0.
  explicit Topology(std::vector<Cluster> clusters);

  // --- Presets ------------------------------------------------------------

  /// NVIDIA Jetson TX2: 2x Denver (fast) + 4x A57 (slow), per-cluster L2.
  /// Used for the paper's Figures 4-8.
  static Topology tx2();
  /// 16-core Intel Haswell node modelled as 2 sockets x 8 cores (Fig. 9).
  static Topology haswell16();
  /// Dual-socket 10-core Haswell node as in the paper's cluster (Fig. 10).
  static Topology haswell20();
  /// `nodes` Haswell nodes concatenated (2 sockets x 10 cores each); used
  /// with per-node scheduling domains for the distributed Heat experiment.
  static Topology haswell_cluster(int nodes);
  /// Generic symmetric topology: `num_clusters` clusters of
  /// `cores_per_cluster` equal-speed cores, widths = powers of two.
  static Topology symmetric(int num_clusters, int cores_per_cluster,
                            double speed = 1.0);

  // --- Shape --------------------------------------------------------------

  int num_cores() const { return num_cores_; }
  int num_clusters() const { return static_cast<int>(clusters_.size()); }
  const Cluster& cluster(int idx) const;
  const std::vector<Cluster>& clusters() const { return clusters_; }
  int cluster_index_of(int core) const;
  const Cluster& cluster_of_core(int core) const { return clusters_[cluster_index_of(core)]; }

  /// Cluster index with the highest base speed (ties: lowest index). This is
  /// what the fixed-asymmetry schedulers (FA / FAM-C) treat as "the fast
  /// cores".
  int fastest_cluster() const { return fastest_cluster_; }
  double max_base_speed() const { return max_base_speed_; }

  // --- Execution places ---------------------------------------------------

  // Inline: the engines consult the place table two or three times per
  // task; the table lookup IS the validity check.
  bool is_valid_place(const ExecutionPlace& p) const {
    if (p.leader < 0 || p.leader >= num_cores_ || p.width < 1) return false;
    if (p.width >
        static_cast<int>(place_id_[static_cast<std::size_t>(p.leader)].size()) - 1)
      return false;
    return place_id_[static_cast<std::size_t>(p.leader)]
                    [static_cast<std::size_t>(p.width)] >= 0;
  }
  /// All valid places, ordered by (leader, width); the index in this vector
  /// is the dense PlaceId used by the PTT.
  const std::vector<ExecutionPlace>& places() const { return places_; }
  int num_places() const { return static_cast<int>(places_.size()); }
  const ExecutionPlace& place_at(int place_id) const;
  /// Dense id of a valid place; DAS_CHECKs validity.
  int place_id(const ExecutionPlace& p) const {
    DAS_CHECK(is_valid_place(p));
    return place_id_[static_cast<std::size_t>(p.leader)]
                    [static_cast<std::size_t>(p.width)];
  }

  /// Leader for `core` at `width`: core aligned down to the width boundary
  /// within its cluster. DAS_CHECKs that the width is valid for the cluster.
  int leader_for(int core, int width) const;
  /// The candidate places of a *local search* from `core` (paper Alg. 1
  /// line 4): one place per valid cluster width, leader = align-down(core).
  const std::vector<ExecutionPlace>& local_places(int core) const;
  /// Width-1 places of every core (used by the DA policy's global search).
  const std::vector<ExecutionPlace>& width1_places() const { return width1_places_; }

 private:
  std::vector<Cluster> clusters_;
  int num_cores_ = 0;
  int fastest_cluster_ = 0;
  double max_base_speed_ = 1.0;
  std::vector<int> cluster_of_;                      // core -> cluster index
  std::vector<ExecutionPlace> places_;               // dense PlaceId order
  std::vector<std::vector<int>> place_id_;           // [leader][width] -> id or -1
  std::vector<std::vector<ExecutionPlace>> local_;   // [core] -> local-search places
  std::vector<ExecutionPlace> width1_places_;
};

}  // namespace das
