#pragma once
// Resolved fail-stop / freeze schedules, consumed by both engines.
//
// Like SpeedScenario, this is the platform-layer *product* of the scenario
// subsystem: scenario::resolve_faults() turns a declarative FaultSpec into a
// concrete FaultPlan against one topology, and the engines replay it — the
// simulator as seeded heap events (bitwise-deterministic), the rt runtime via
// its heartbeat watchdog thread (wall-clock). Stragglers never appear here;
// they expand into SpeedScenario interference windows at build() time.

#include <cstdint>
#include <vector>

namespace das {

/// One resolved engine-side fault on one concrete core.
struct CoreFault {
  enum class Kind : std::uint8_t {
    kFail = 0,  ///< fail-stop: dead for good at t_s
    kFreeze,    ///< no progress during [t_s, until_s), resumes afterwards
  };

  Kind kind = Kind::kFail;
  int core = 0;          ///< topology core index (rank-local for the sim)
  double t_s = 0.0;      ///< onset, scenario seconds
  double until_s = 0.0;  ///< thaw time (kFreeze) or +inf (kFail)

  friend bool operator==(const CoreFault&, const CoreFault&) = default;
};

/// The engine-facing fault schedule: events sorted by (t_s, core).
struct FaultPlan {
  std::vector<CoreFault> events;

  bool empty() const { return events.empty(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace das
