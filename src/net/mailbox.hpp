#pragma once
// Per-rank mailbox for the in-process message-passing substrate.
//
// Messages are matched by (source rank, tag) with FIFO order preserved per
// (source, tag) pair — the MPI non-overtaking guarantee, which the Heat
// ghost-cell exchange relies on.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace das::net {

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  void deliver(Message msg);
  /// Blocks until a message from `src` with `tag` is available and removes
  /// the oldest such message.
  Message take(int src, int tag);
  /// Non-blocking variant; returns false if no match is queued.
  bool try_take(int src, int tag, Message& out);
  std::size_t pending() const;

 private:
  // Returns an iterator to the oldest match, or end().
  std::deque<Message>::iterator find_locked(int src, int tag);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> messages_;
};

}  // namespace das::net
