#pragma once
// Per-rank mailbox for the in-process message-passing substrate.
//
// Messages are matched by (source rank, tag) with FIFO order preserved per
// (source, tag) pair — the MPI non-overtaking guarantee, which the Heat
// ghost-cell exchange relies on.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace das::net {

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  void deliver(Message msg);
  /// Blocks until a message from `src` with `tag` is available and removes
  /// the oldest such message.
  Message take(int src, int tag);
  /// Blocks until a message with `tag` from ANY source is available and
  /// removes the oldest such message (MPI_ANY_SOURCE: the server pattern —
  /// Message::src identifies the client). FIFO per (src, tag) still holds.
  Message take_any(int tag);
  /// Non-blocking variant; returns false if no match is queued.
  bool try_take(int src, int tag, Message& out);
  /// Bounded-deadline variants of take/take_any: wait at most `timeout`,
  /// return nullopt on expiry. These are what fault-tolerant receive loops
  /// build on — a peer that died mid-protocol must not wedge its
  /// counterpart forever (the daslint `unbounded-wait` rule points here).
  std::optional<Message> take_for(int src, int tag,
                                  std::chrono::nanoseconds timeout);
  std::optional<Message> take_any_for(int tag, std::chrono::nanoseconds timeout);
  std::size_t pending() const;

 private:
  // Returns an iterator to the oldest match, or end().
  std::deque<Message>::iterator find_locked(int src, int tag)
      DAS_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Message> messages_ DAS_GUARDED_BY(mu_);
};

}  // namespace das::net
