#include "net/world.hpp"

#include <thread>

#include "util/assert.hpp"

namespace das::net {

World::World(int nranks) {
  DAS_CHECK(nranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  comms_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::unique_ptr<Comm>(new Comm(this, r)));
  }
}

World::~World() = default;

Comm& World::comm(int rank) {
  DAS_CHECK(rank >= 0 && rank < size());
  return *comms_[static_cast<std::size_t>(rank)];
}

Mailbox& World::mailbox(int rank) {
  DAS_CHECK(rank >= 0 && rank < size());
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void World::run(const std::function<void(Comm&)>& fn) {
  DAS_CHECK(fn != nullptr);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn] { fn(comm(r)); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace das::net
