#include "net/service.hpp"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace das::net {

namespace {

enum class Req : std::uint8_t {
  kOpenSession = 0,
  kSubmit,
  kWait,
  kBye,
};

WireRunResult to_wire(const RunResult& r) {
  WireRunResult w;
  w.makespan_s = r.makespan_s;
  w.tasks_per_s = r.tasks_per_s;
  w.tasks = r.tasks;
  w.job = r.job;
  w.arrival_s = r.arrival_s;
  w.queue_s = r.queue_s;
  w.tenant = r.tenant;
  w.backend = static_cast<std::uint8_t>(r.backend);
  w.policy = static_cast<std::uint8_t>(r.policy);
  w.rejected = r.rejected ? 1 : 0;
  return w;
}

void reply(Comm& comm, int dst, WireWriter w) {
  const std::vector<std::byte> bytes = w.take();
  comm.send(dst, kTagServiceReply, bytes.data(), bytes.size());
}

}  // namespace

void serve_executor(Comm& comm, Executor& exec, int num_clients) {
  if (num_clients < 0) num_clients = comm.size() - 1;
  // Decoded DAGs must outlive their jobs (Executor::submit borrows the
  // dag until the job is waited); keyed by public JobId, freed at wait.
  std::map<JobId, std::unique_ptr<Dag>> dags;
  std::vector<std::unique_ptr<Session>> sessions;
  int byes = 0;
  while (byes < num_clients) {
    const Message msg = comm.recv_any(kTagServiceRequest);
    WireReader r(msg.payload);
    switch (static_cast<Req>(r.pod<std::uint8_t>())) {
      case Req::kOpenSession: {
        sessions.push_back(exec.open_session(decode_tenant_config(r)));
        WireWriter w;
        w.pod(static_cast<std::int32_t>(sessions.size() - 1));
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kSubmit: {
        const auto session = r.pod<std::int32_t>();
        const SubmitOptions opts = decode_submit_options(r);
        auto dag = std::make_unique<Dag>(decode_dag(r));
        JobId id = kInvalidJob;
        if (session < 0) {
          id = exec.submit(*dag, opts);
        } else {
          DAS_CHECK_MSG(static_cast<std::size_t>(session) < sessions.size(),
                        "serve_executor: unknown session");
          id = sessions[static_cast<std::size_t>(session)]->submit(*dag, opts);
        }
        dags.emplace(id, std::move(dag));
        WireWriter w;
        w.pod(id);
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kWait: {
        const auto id = r.pod<JobId>();
        const RunResult result = exec.wait(id);
        dags.erase(id);
        WireWriter w;
        encode_run_result(to_wire(result), w);
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kBye:
        ++byes;
        break;
    }
  }
}

int ServiceClient::open_session(const TenantConfig& cfg) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kOpenSession));
  encode_tenant_config(cfg, w);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  return comm_.recv_value<std::int32_t>(server_, kTagServiceReply);
}

JobId ServiceClient::submit(const Dag& dag, const SubmitOptions& opts,
                            int session) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kSubmit));
  w.pod(static_cast<std::int32_t>(session));
  encode_submit_options(opts, w);
  encode_dag(dag, w);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  return comm_.recv_value<JobId>(server_, kTagServiceReply);
}

WireRunResult ServiceClient::wait(JobId id) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kWait));
  w.pod(id);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  const Message msg = comm_.recv_msg(server_, kTagServiceReply);
  WireReader r(msg.payload);
  return decode_run_result(r);
}

void ServiceClient::bye() {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kBye));
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
}

}  // namespace das::net
