#include "net/service.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace das::net {

namespace {

enum class Req : std::uint8_t {
  kOpenSession = 0,
  kSubmit,
  kWait,
  kBye,
  kPing,
  kWaitFor,
};

WireRunResult to_wire(const RunResult& r) {
  WireRunResult w;
  w.makespan_s = r.makespan_s;
  w.tasks_per_s = r.tasks_per_s;
  w.tasks = r.tasks;
  w.job = r.job;
  w.arrival_s = r.arrival_s;
  w.queue_s = r.queue_s;
  w.tenant = r.tenant;
  w.backend = static_cast<std::uint8_t>(r.backend);
  w.policy = static_cast<std::uint8_t>(r.policy);
  w.outcome = static_cast<std::uint8_t>(r.outcome);
  w.tasks_reexecuted = r.tasks_reexecuted;
  return w;
}

void reply(Comm& comm, int dst, WireWriter w) {
  const std::vector<std::byte> bytes = w.take();
  comm.send(dst, kTagServiceReply, bytes.data(), bytes.size());
}

// Per-client server-side bookkeeping: liveness, the idempotency-token map,
// and which jobs a reap must drain.
struct ClientState {
  std::chrono::steady_clock::time_point last_seen;
  std::map<std::uint64_t, JobId> submits;  // token -> original JobId
  std::set<JobId> unwaited;
  bool departed = false;  // bye'd or reaped; its seat is already freed
};

}  // namespace

void serve_executor(Comm& comm, Executor& exec, const ServeOptions& opts) {
  const int num_clients =
      opts.num_clients < 0 ? comm.size() - 1 : opts.num_clients;
  DAS_CHECK(opts.tick_s > 0.0);
  DAS_CHECK(opts.client_timeout_s >= 0.0);
  // Decoded DAGs must outlive their jobs (Executor::submit borrows the
  // dag until the job is waited); keyed by public JobId, freed at wait.
  std::map<JobId, std::unique_ptr<Dag>> dags;
  std::vector<std::unique_ptr<Session>> sessions;
  std::map<int, ClientState> clients;
  const bool reaping = opts.client_timeout_s > 0.0;
  // When the whole world is the client set, seat everyone up front so a
  // client that dies before its FIRST request is still reaped. An explicit
  // num_clients names a subset we cannot enumerate — those seats open at
  // first contact.
  if (reaping && num_clients == comm.size() - 1) {
    const auto start = std::chrono::steady_clock::now();
    for (int rnk = 0; rnk < comm.size(); ++rnk)
      if (rnk != comm.rank()) clients[rnk].last_seen = start;
  }
  int byes = 0;

  const auto handle = [&](const Message& msg, ClientState& client) {
    WireReader r(msg.payload);
    switch (static_cast<Req>(r.pod<std::uint8_t>())) {
      case Req::kOpenSession: {
        sessions.push_back(exec.open_session(decode_tenant_config(r)));
        WireWriter w;
        w.pod(static_cast<std::int32_t>(sessions.size() - 1));
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kSubmit: {
        const auto session = r.pod<std::int32_t>();
        const auto token = r.pod<std::uint64_t>();
        const SubmitOptions opts_in = decode_submit_options(r);
        JobId id = kInvalidJob;
        const auto seen = token != 0 ? client.submits.find(token)
                                     : client.submits.end();
        if (seen != client.submits.end()) {
          // Duplicate token: the job is already in — reply the original id
          // without decoding the DAG again (exactly-once submission).
          id = seen->second;
        } else {
          auto dag = std::make_unique<Dag>(decode_dag(r));
          if (session < 0) {
            id = exec.submit(*dag, opts_in);
          } else {
            DAS_CHECK_MSG(static_cast<std::size_t>(session) < sessions.size(),
                          "serve_executor: unknown session");
            id = sessions[static_cast<std::size_t>(session)]->submit(*dag,
                                                                     opts_in);
          }
          dags.emplace(id, std::move(dag));
          if (token != 0) client.submits.emplace(token, id);
          client.unwaited.insert(id);
        }
        WireWriter w;
        w.pod(id);
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kWait: {
        const auto id = r.pod<JobId>();
        const RunResult result = exec.wait(id);
        dags.erase(id);
        client.unwaited.erase(id);
        WireWriter w;
        encode_run_result(to_wire(result), w);
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kWaitFor: {
        const auto id = r.pod<JobId>();
        const auto timeout_s = r.pod<double>();
        const std::optional<RunResult> result = exec.wait_for(id, timeout_s);
        WireWriter w;
        w.pod(static_cast<std::uint8_t>(result.has_value() ? 1 : 0));
        if (result.has_value()) {
          dags.erase(id);
          client.unwaited.erase(id);
          encode_run_result(to_wire(*result), w);
        }
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kPing: {
        WireWriter w;
        w.pod(static_cast<std::uint8_t>(1));
        reply(comm, msg.src, std::move(w));
        break;
      }
      case Req::kBye:
        if (!client.departed) {
          client.departed = true;
          ++byes;
        }
        break;
    }
  };

  while (byes < num_clients) {
    // Bounded receive: a dead client cannot wedge the server between
    // requests — every tick falls through to the reaping scan below.
    std::optional<Message> msg =
        comm.recv_any_for(kTagServiceRequest, opts.tick_s);
    if (msg.has_value()) {
      ClientState& client = clients[msg->src];
      client.last_seen = std::chrono::steady_clock::now();
      handle(*msg, client);
    }
    if (!reaping) continue;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [src, client] : clients) {
      if (client.departed) continue;
      const double silent_s =
          std::chrono::duration<double>(now - client.last_seen).count();
      if (silent_s < opts.client_timeout_s) continue;
      // Heartbeat lost: drain the client's outstanding jobs so their DAG
      // buffers can be freed (released jobs run to completion; queued jobs
      // release and run, or resolve rejected/timed-out), then free the
      // seat. A late request from the client is still answered — only its
      // seat accounting is settled.
      for (const JobId id : client.unwaited) {
        exec.wait(id);
        dags.erase(id);
      }
      client.unwaited.clear();
      client.departed = true;
      ++byes;
    }
  }
}

void serve_executor(Comm& comm, Executor& exec, int num_clients) {
  ServeOptions opts;
  opts.num_clients = num_clients;
  serve_executor(comm, exec, opts);
}

int ServiceClient::open_session(const TenantConfig& cfg) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kOpenSession));
  encode_tenant_config(cfg, w);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  // Synchronous request/reply against a live server; bounded client-side
  // variants exist only where a reply can legitimately not come (wait_for).
  return comm_.recv_value<std::int32_t>(  // daslint: allow(unbounded-wait)
      server_, kTagServiceReply);
}

JobId ServiceClient::submit(const Dag& dag, const SubmitOptions& opts,
                            int session) {
  return resubmit(dag, opts, session, next_token_++);
}

JobId ServiceClient::resubmit(const Dag& dag, const SubmitOptions& opts,
                              int session, std::uint64_t token) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kSubmit));
  w.pod(static_cast<std::int32_t>(session));
  w.pod(token);
  encode_submit_options(opts, w);
  encode_dag(dag, w);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  return comm_.recv_value<JobId>(  // daslint: allow(unbounded-wait)
      server_, kTagServiceReply);
}

WireRunResult ServiceClient::wait(JobId id) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kWait));
  w.pod(id);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  const Message msg =
      comm_.recv_msg(server_, kTagServiceReply);  // daslint: allow(unbounded-wait)
  WireReader r(msg.payload);
  return decode_run_result(r);
}

std::optional<WireRunResult> ServiceClient::wait_for(JobId id,
                                                     double timeout_s) {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kWaitFor));
  w.pod(id);
  w.pod(timeout_s);
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  // The server bounds the engine wait; its reply always comes, so this
  // receive is request/reply like the others.
  const Message msg =
      comm_.recv_msg(server_, kTagServiceReply);  // daslint: allow(unbounded-wait)
  WireReader r(msg.payload);
  if (r.pod<std::uint8_t>() == 0) return std::nullopt;
  return decode_run_result(r);
}

void ServiceClient::ping() {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kPing));
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
  (void)comm_.recv_value<std::uint8_t>(  // daslint: allow(unbounded-wait)
      server_, kTagServiceReply);
}

void ServiceClient::bye() {
  WireWriter w;
  w.pod(static_cast<std::uint8_t>(Req::kBye));
  comm_.send(server_, kTagServiceRequest, w.data(), w.size());
}

}  // namespace das::net
