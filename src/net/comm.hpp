#pragma once
// Rank-local communication endpoint of the in-process message-passing world
// (the library's MPI substitute — see DESIGN.md §1).
//
// User tags must be >= 0; negative tags are reserved for the collectives.

#include <cstddef>
#include <cstring>
#include <optional>
#include <vector>

#include "net/mailbox.hpp"
#include "util/assert.hpp"

namespace das::net {

class World;

class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- Point-to-point -------------------------------------------------------

  /// Copies `bytes` of `data` into the destination mailbox and returns
  /// (buffered send: never blocks on the receiver).
  void send(int dst, int tag, const void* data, std::size_t bytes);
  /// Blocks until the matching message arrives; its payload size must be
  /// exactly `bytes`.
  void recv(int src, int tag, void* data, std::size_t bytes);
  /// Blocks until the matching message arrives and returns it whole —
  /// recv() without the posted-size contract, for variable-size payloads.
  Message recv_msg(int src, int tag);
  /// Blocks until a `tag` message from ANY rank arrives and returns it whole
  /// (variable-size payload + source rank) — the server-side accept path of
  /// net/service.hpp.
  Message recv_any(int tag);
  /// Bounded-deadline receives: nullopt after `timeout_s` seconds without a
  /// match. Fault-tolerant protocol loops (net/service.cpp's server tick)
  /// use these so a dead peer cannot wedge a live one.
  std::optional<Message> recv_msg_for(int src, int tag, double timeout_s);
  std::optional<Message> recv_any_for(int tag, double timeout_s);

  template <typename T>
  void send_span(int dst, int tag, const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag, data, n * sizeof(T));
  }
  template <typename T>
  void recv_span(int src, int tag, T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv(src, tag, data, n * sizeof(T));
  }
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send_span(dst, tag, &v, 1);
  }
  template <typename T>
  T recv_value(int src, int tag) {
    T v;
    recv_span(src, tag, &v, 1);
    return v;
  }

  // --- Collectives (all ranks must participate) -----------------------------

  /// Element-wise sum over all ranks; every rank ends with the global sums.
  void allreduce_sum(double* data, std::size_t n);
  /// Rank 0's buffer overwrites everyone's.
  void broadcast(double* data, std::size_t n, int root = 0);
  void barrier();

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace das::net
