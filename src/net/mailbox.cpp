#include "net/mailbox.hpp"

#include <algorithm>

namespace das::net {

void Mailbox::deliver(Message msg) {
  {
    MutexLock g(mu_);
    messages_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

std::deque<Message>::iterator Mailbox::find_locked(int src, int tag) {
  return std::find_if(messages_.begin(), messages_.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag;
  });
}

Message Mailbox::take(int src, int tag) {
  MutexLock g(mu_);
  for (;;) {
    auto it = find_locked(src, tag);
    if (it != messages_.end()) {
      Message m = std::move(*it);
      messages_.erase(it);
      return m;
    }
    cv_.wait(g);
  }
}

Message Mailbox::take_any(int tag) {
  MutexLock g(mu_);
  for (;;) {
    const auto it =
        std::find_if(messages_.begin(), messages_.end(),
                     [&](const Message& m) { return m.tag == tag; });
    if (it != messages_.end()) {
      Message m = std::move(*it);
      messages_.erase(it);
      return m;
    }
    cv_.wait(g);
  }
}

std::optional<Message> Mailbox::take_for(int src, int tag,
                                         std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock g(mu_);
  for (;;) {
    auto it = find_locked(src, tag);
    if (it != messages_.end()) {
      Message m = std::move(*it);
      messages_.erase(it);
      return m;
    }
    const auto remaining = deadline - std::chrono::steady_clock::now();
    if (remaining <= std::chrono::nanoseconds::zero()) return std::nullopt;
    cv_.wait_for(g, std::chrono::duration_cast<std::chrono::nanoseconds>(
                        remaining));
  }
}

std::optional<Message> Mailbox::take_any_for(int tag,
                                             std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock g(mu_);
  for (;;) {
    const auto it =
        std::find_if(messages_.begin(), messages_.end(),
                     [&](const Message& m) { return m.tag == tag; });
    if (it != messages_.end()) {
      Message m = std::move(*it);
      messages_.erase(it);
      return m;
    }
    const auto remaining = deadline - std::chrono::steady_clock::now();
    if (remaining <= std::chrono::nanoseconds::zero()) return std::nullopt;
    cv_.wait_for(g, std::chrono::duration_cast<std::chrono::nanoseconds>(
                        remaining));
  }
}

bool Mailbox::try_take(int src, int tag, Message& out) {
  MutexLock g(mu_);
  auto it = find_locked(src, tag);
  if (it == messages_.end()) return false;
  out = std::move(*it);
  messages_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  MutexLock g(mu_);
  return messages_.size();
}

}  // namespace das::net
