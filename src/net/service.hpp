#pragma once
// Scheduler-as-a-service front-end over the in-process message-passing world
// (net/world.hpp): one long-running EXECUTOR RANK serves DAG submissions
// from CLIENT RANKS and ships their RunResults back.
//
//     world.run([&](net::Comm& comm) {
//       if (comm.rank() == 0) {
//         auto exec = das::make_executor(...);
//         net::serve_executor(comm, *exec);          // until all clients bye
//       } else {
//         net::ServiceClient client(comm, /*server_rank=*/0);
//         const int session = client.open_session({.name = "bench"});
//         const JobId id = client.submit(dag, {}, session);
//         const net::WireRunResult r = client.wait(id);
//         client.bye();
//       }
//     });
//
// DAGs cross the wire via net/wire.hpp, so only cost-model-driven execution
// is remotely submittable (work closures do not serialize — the wire header
// documents the contract). A sim-backed server is deterministic: the same
// client submission sequence yields results bitwise-equal to running the
// same executor locally (tests/net_service_test.cpp).
//
// The server handles requests SEQUENTIALLY in arrival order; a wait request
// blocks the server until that job completes (or its wait_for deadline
// expires), so clients needing overlap should submit everything before the
// first wait (submissions release to the engine immediately — the engine
// runs jobs concurrently regardless). A concurrently-serving front-end
// (thread per client) is a documented follow-up.
//
// FAULT TOLERANCE. The server's receive loop is deadline-bounded
// (Comm::recv_any_for), so a half-dead client cannot wedge it:
// * ServeOptions::client_timeout_s > 0 arms SESSION REAPING — a client
//   whose last request (any request; ServiceClient::ping() is the cheapest)
//   is older than the timeout is treated as departed: its unwaited jobs are
//   drained (released jobs always run to completion), their DAG buffers
//   freed, and its seat counted as a bye, so serve_executor still returns.
//   Staleness is only measured between requests — a server blocked inside
//   an engine wait does not reap.
// * Submissions carry an IDEMPOTENCY TOKEN: resending a submit with the
//   same token (ServiceClient::resubmit, after e.g. a lost-reply timeout in
//   a real transport) returns the original JobId instead of enqueueing the
//   job twice — exactly-once submission over an at-least-once client retry.
// * ServiceClient::wait_for bounds the wait server-side
//   (Executor::wait_for): the reply says whether the job finished, and a
//   timed-out job stays waitable.

#include <cstdint>
#include <optional>

#include "exec/executor.hpp"
#include "net/comm.hpp"
#include "net/wire.hpp"

namespace das::net {

/// Reserved user tags for the service protocol. Applications sharing a
/// world with a service must pick other tags.
inline constexpr int kTagServiceRequest = 0x5351;
inline constexpr int kTagServiceReply = 0x5352;

/// serve_executor knobs.
struct ServeOptions {
  /// Clients to serve before returning (each bye or reap frees one seat);
  /// -1 = every other rank in the world.
  int num_clients = -1;
  /// > 0 arms session reaping: a client silent for this many seconds
  /// (wall clock, measured between requests at the server's receive loop)
  /// is drained and counted as departed. 0 = never reap (a vanished client
  /// then leaves the server waiting — only use with trusted clients).
  double client_timeout_s = 0.0;
  /// Receive-loop granularity: the bound on each mailbox wait, and hence
  /// the reaping latency slack. Purely an internal tick — no protocol
  /// semantics attach to it.
  double tick_s = 0.05;
};

/// Serves `exec` over `comm` until every client seat is released (bye or
/// reap). Call from the server rank's world thread; requests are handled in
/// arrival order across clients.
void serve_executor(Comm& comm, Executor& exec, const ServeOptions& opts);
/// Back-compat overload: no reaping, default tick.
void serve_executor(Comm& comm, Executor& exec, int num_clients = -1);

/// Client-side handle: serializes requests to the server rank and decodes
/// its replies. One handle per client rank; calls are synchronous
/// (request/reply) and must come from the rank's own world thread.
class ServiceClient {
 public:
  ServiceClient(Comm& comm, int server_rank)
      : comm_(comm), server_(server_rank) {}

  /// Remote Executor::open_session: returns the server-side session index
  /// to pass as submit()'s `session`.
  int open_session(const TenantConfig& cfg);

  /// Remote submit: encodes `dag` + `opts`; `session` < 0 submits bare.
  /// Returns the server-side public JobId. The dag is copied onto the wire
  /// — unlike local submit, it need not outlive the call. Each call spends
  /// a fresh idempotency token; last_submit_token() identifies it for
  /// resubmit().
  JobId submit(const Dag& dag, const SubmitOptions& opts = {},
               int session = -1);

  /// Idempotent re-send of an earlier submit: same payload, explicit
  /// `token`. If the server already accepted that token it replies with
  /// the ORIGINAL JobId and enqueues nothing — safe to fire after a
  /// suspected lost reply.
  JobId resubmit(const Dag& dag, const SubmitOptions& opts, int session,
                 std::uint64_t token);

  /// Token spent by the most recent submit(); 0 if none yet.
  std::uint64_t last_submit_token() const { return next_token_ - 1; }

  /// Remote Executor::wait: blocks until the job's result arrives.
  WireRunResult wait(JobId id);

  /// Remote Executor::wait_for: the server bounds the wait on ITS engine
  /// clock and replies either the result or "not yet" (nullopt). A
  /// timed-out job stays waitable (wait/wait_for again later).
  std::optional<WireRunResult> wait_for(JobId id, double timeout_s);

  /// Heartbeat: refreshes this client's liveness on a reaping server
  /// (ServeOptions::client_timeout_s) without submitting work.
  void ping();

  /// Releases this client's seat; the server returns once every client
  /// said bye. No requests may follow.
  void bye();

 private:
  Comm& comm_;
  int server_;
  std::uint64_t next_token_ = 1;  // 0 is "no token spent yet"
};

}  // namespace das::net
