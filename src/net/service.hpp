#pragma once
// Scheduler-as-a-service front-end over the in-process message-passing world
// (net/world.hpp): one long-running EXECUTOR RANK serves DAG submissions
// from CLIENT RANKS and ships their RunResults back.
//
//     world.run([&](net::Comm& comm) {
//       if (comm.rank() == 0) {
//         auto exec = das::make_executor(...);
//         net::serve_executor(comm, *exec);          // until all clients bye
//       } else {
//         net::ServiceClient client(comm, /*server_rank=*/0);
//         const int session = client.open_session({.name = "bench"});
//         const JobId id = client.submit(dag, {}, session);
//         const net::WireRunResult r = client.wait(id);
//         client.bye();
//       }
//     });
//
// DAGs cross the wire via net/wire.hpp, so only cost-model-driven execution
// is remotely submittable (work closures do not serialize — the wire header
// documents the contract). A sim-backed server is deterministic: the same
// client submission sequence yields results bitwise-equal to running the
// same executor locally (tests/net_service_test.cpp).
//
// The server handles requests SEQUENTIALLY in arrival order; a wait request
// blocks the server until that job completes, so clients needing overlap
// should submit everything before the first wait (submissions release to
// the engine immediately — the engine runs jobs concurrently regardless).
// A concurrently-serving front-end (thread per client) is a documented
// follow-up.

#include <cstdint>

#include "exec/executor.hpp"
#include "net/comm.hpp"
#include "net/wire.hpp"

namespace das::net {

/// Reserved user tags for the service protocol. Applications sharing a
/// world with a service must pick other tags.
inline constexpr int kTagServiceRequest = 0x5351;
inline constexpr int kTagServiceReply = 0x5352;

/// Serves `exec` over `comm` until `num_clients` clients (default: every
/// other rank in the world) have sent a bye. Call from the server rank's
/// world thread; requests are handled in arrival order across clients.
void serve_executor(Comm& comm, Executor& exec, int num_clients = -1);

/// Client-side handle: serializes requests to the server rank and decodes
/// its replies. One handle per client rank; calls are synchronous
/// (request/reply) and must come from the rank's own world thread.
class ServiceClient {
 public:
  ServiceClient(Comm& comm, int server_rank)
      : comm_(comm), server_(server_rank) {}

  /// Remote Executor::open_session: returns the server-side session index
  /// to pass as submit()'s `session`.
  int open_session(const TenantConfig& cfg);

  /// Remote submit: encodes `dag` + `opts`; `session` < 0 submits bare.
  /// Returns the server-side public JobId. The dag is copied onto the wire
  /// — unlike local submit, it need not outlive the call.
  JobId submit(const Dag& dag, const SubmitOptions& opts = {},
               int session = -1);

  /// Remote Executor::wait: blocks until the job's result arrives.
  WireRunResult wait(JobId id);

  /// Releases this client's seat; the server returns once every client
  /// said bye. No requests may follow.
  void bye();

 private:
  Comm& comm_;
  int server_;
};

}  // namespace das::net
