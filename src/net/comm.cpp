#include "net/comm.hpp"

#include "net/world.hpp"

namespace das::net {

namespace {
// Reserved tag space for the collectives (user tags must be >= 0).
constexpr int kTagReduce = -1;
constexpr int kTagBcast = -2;
}  // namespace

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  DAS_CHECK(dst >= 0 && dst < size());
  DAS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  DAS_CHECK(bytes == 0 || data != nullptr);
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload.resize(bytes);
  if (bytes > 0) std::memcpy(m.payload.data(), data, bytes);
  world_->mailbox(dst).deliver(std::move(m));
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  DAS_CHECK(src >= 0 && src < size());
  DAS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  // The deadline-less point-to-point primitive itself (MPI recv semantics);
  // fault-tolerant loops layer recv_msg_for/recv_any_for on top.
  const Message m =
      world_->mailbox(rank_).take(src, tag);  // daslint: allow(unbounded-wait)
  DAS_CHECK_MSG(m.payload.size() == bytes,
                "recv size mismatch: posted " + std::to_string(bytes) +
                    " bytes, message has " + std::to_string(m.payload.size()));
  if (bytes > 0) std::memcpy(data, m.payload.data(), bytes);
}

Message Comm::recv_msg(int src, int tag) {
  DAS_CHECK(src >= 0 && src < size());
  DAS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  // Primitive, see recv().
  return world_->mailbox(rank_).take(src, tag);  // daslint: allow(unbounded-wait)
}

Message Comm::recv_any(int tag) {
  DAS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  // Primitive, see recv().
  return world_->mailbox(rank_).take_any(tag);  // daslint: allow(unbounded-wait)
}

namespace {
std::chrono::nanoseconds to_timeout(double timeout_s) {
  DAS_CHECK(timeout_s >= 0.0);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(timeout_s));
}
}  // namespace

std::optional<Message> Comm::recv_msg_for(int src, int tag, double timeout_s) {
  DAS_CHECK(src >= 0 && src < size());
  DAS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  return world_->mailbox(rank_).take_for(src, tag, to_timeout(timeout_s));
}

std::optional<Message> Comm::recv_any_for(int tag, double timeout_s) {
  DAS_CHECK_MSG(tag >= 0, "negative tags are reserved for collectives");
  return world_->mailbox(rank_).take_any_for(tag, to_timeout(timeout_s));
}

void Comm::allreduce_sum(double* data, std::size_t n) {
  DAS_CHECK(n == 0 || data != nullptr);
  // Gather-to-root, reduce, broadcast. O(P) rounds — fine for the handful of
  // ranks the experiments use; the tree version is a documented extension.
  if (rank_ == 0) {
    std::vector<double> incoming(n);
    for (int src = 1; src < size(); ++src) {
      const Message m = world_->mailbox(0).take(  // daslint: allow(unbounded-wait)
          src, kTagReduce);  // collective: all ranks must participate anyway
      DAS_CHECK(m.payload.size() == n * sizeof(double));
      std::memcpy(incoming.data(), m.payload.data(), n * sizeof(double));
      for (std::size_t i = 0; i < n; ++i) data[i] += incoming[i];
    }
  } else {
    Message m;
    m.src = rank_;
    m.tag = kTagReduce;
    m.payload.resize(n * sizeof(double));
    std::memcpy(m.payload.data(), data, n * sizeof(double));
    world_->mailbox(0).deliver(std::move(m));
  }
  broadcast(data, n, 0);
}

void Comm::broadcast(double* data, std::size_t n, int root) {
  DAS_CHECK(root >= 0 && root < size());
  if (rank_ == root) {
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      Message m;
      m.src = root;
      m.tag = kTagBcast;
      m.payload.resize(n * sizeof(double));
      std::memcpy(m.payload.data(), data, n * sizeof(double));
      world_->mailbox(dst).deliver(std::move(m));
    }
  } else {
    const Message m = world_->mailbox(rank_).take(  // daslint: allow(unbounded-wait)
        root, kTagBcast);  // collective: all ranks must participate anyway
    DAS_CHECK(m.payload.size() == n * sizeof(double));
    std::memcpy(data, m.payload.data(), n * sizeof(double));
  }
}

void Comm::barrier() {
  MutexLock g(world_->barrier_mu_);
  const std::uint64_t gen = world_->barrier_generation_;
  if (++world_->barrier_waiting_ == size()) {
    world_->barrier_waiting_ = 0;
    ++world_->barrier_generation_;
    world_->barrier_cv_.notify_all();
  } else {
    while (world_->barrier_generation_ == gen) world_->barrier_cv_.wait(g);
  }
}

}  // namespace das::net
