#pragma once
// Wire format for the scheduler-as-a-service front-end (net/service.hpp).
//
// A tiny append-only binary codec: little-endian PODs (the in-process world
// never crosses an endianness boundary; a real transport would add
// byte-swapping here) and u32-length-prefixed strings, wrapped by typed
// encode_*/decode_* entry points for the service's payloads — DAGs, tenant
// configs, submit options and run results.
//
// WHAT A SERIALIZED DAG CARRIES. Per node: task type, priority, cost-model
// params (p0..p2), rank, affinity hint and stats phase; then the node's
// out-edges (consumer id + release delay). The WORK CLOSURE IS NOT
// SERIALIZED — a WorkFn is host code. Remote submission therefore targets
// executors whose engines never call it: the DES charges registered cost
// models only, which is exactly what makes "run it over there" reproduce
// "run it here" bit-for-bit (tests/net_service_test.cpp). Submitting a
// decoded DAG to a real-thread executor requires work closures to be
// re-attached by the server from a registry of named kernels — a documented
// follow-up, not this layer's job.
//
// Decode validates structure (magic, version, bounds) via DAS_CHECK and is
// tolerant of trailing bytes — payloads may be framed inside larger
// messages.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "exec/session.hpp"
#include "util/assert.hpp"

namespace das::net {

/// Append-only encode buffer.
class WireWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &v, sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint32_t>(s.size()));
    const std::size_t at = bytes_.size();
    bytes_.resize(at + s.size());
    if (!s.empty()) std::memcpy(bytes_.data() + at, s.data(), s.size());
  }

  const std::byte* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Cursor over an encoded buffer; DAS_CHECKs against overruns.
class WireReader {
 public:
  WireReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::byte>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    DAS_CHECK_MSG(at_ + sizeof(T) <= size_, "wire: truncated payload");
    T v;
    std::memcpy(&v, data_ + at_, sizeof(T));
    at_ += sizeof(T);
    return v;
  }
  std::string str() {
    const auto n = pod<std::uint32_t>();
    DAS_CHECK_MSG(at_ + n <= size_, "wire: truncated string");
    std::string s(reinterpret_cast<const char*>(data_ + at_), n);
    at_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - at_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t at_ = 0;
};

// --- DAG ------------------------------------------------------------------

/// Appends `dag` (sealed or not; encode seals it) to `w`.
void encode_dag(const Dag& dag, WireWriter& w);
/// Decodes one DAG; throws PreconditionError on a malformed payload.
Dag decode_dag(WireReader& r);

// --- service payloads -----------------------------------------------------

void encode_tenant_config(const TenantConfig& cfg, WireWriter& w);
TenantConfig decode_tenant_config(WireReader& r);

void encode_submit_options(const SubmitOptions& opts, WireWriter& w);
SubmitOptions decode_submit_options(WireReader& r);

/// The RunResult subset that crosses the wire: scalars + names. Per-rank
/// stats snapshots and the timeline stay server-side (they describe the
/// server's engine, and a client wanting them should ask the server, which
/// owns the accumulation contract).
struct WireRunResult {
  double makespan_s = 0.0;
  double tasks_per_s = 0.0;
  std::int64_t tasks = 0;
  std::int64_t job = -1;
  double arrival_s = 0.0;
  double queue_s = 0.0;
  std::string tenant;
  std::uint8_t backend = 0;
  std::uint8_t policy = 0;
  /// RunResult::Outcome as a byte (0 = kOk .. 3 = kRetriesExhausted).
  std::uint8_t outcome = 0;
  /// Tasks the server's engine re-executed after fail-stops (fault layer).
  std::int64_t tasks_reexecuted = 0;

  bool ok() const { return outcome == 0; }
};

void encode_run_result(const WireRunResult& r, WireWriter& w);
WireRunResult decode_run_result(WireReader& r);

}  // namespace das::net
