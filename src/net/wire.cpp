#include "net/wire.hpp"

namespace das::net {

namespace {

constexpr std::uint32_t kDagMagic = 0x44414731;  // "DAG1"
constexpr std::uint16_t kDagVersion = 1;

}  // namespace

void encode_dag(const Dag& dag, WireWriter& w) {
  dag.seal();  // folds staged edges so successors() walks are contiguous
  w.pod(kDagMagic);
  w.pod(kDagVersion);
  const int n = dag.num_nodes();
  w.pod(static_cast<std::int32_t>(n));
  w.pod(static_cast<std::uint64_t>(dag.num_edges()));
  for (NodeId id = 0; id < n; ++id) {
    const DagNode& node = dag.node(id);
    w.pod(node.type);
    w.pod(static_cast<std::uint8_t>(node.priority));
    w.pod(node.params.p0);
    w.pod(node.params.p1);
    w.pod(node.params.p2);
    w.pod(static_cast<std::int32_t>(node.rank));
    w.pod(static_cast<std::int32_t>(node.affinity_core));
    w.pod(static_cast<std::int32_t>(node.phase));
    w.pod(static_cast<std::uint32_t>(dag.num_successors(id)));
    for (const DagEdge& e : dag.successors(id)) {
      w.pod(e.to);
      w.pod(e.delay_s);
    }
  }
}

Dag decode_dag(WireReader& r) {
  DAS_CHECK_MSG(r.pod<std::uint32_t>() == kDagMagic,
                "decode_dag: bad magic (not a serialized DAG)");
  DAS_CHECK_MSG(r.pod<std::uint16_t>() == kDagVersion,
                "decode_dag: unsupported wire version");
  const auto n = r.pod<std::int32_t>();
  DAS_CHECK_MSG(n >= 0, "decode_dag: negative node count");
  const auto declared_edges = r.pod<std::uint64_t>();
  Dag dag;
  // Two passes are unnecessary: node ids are dense [0, n) by construction,
  // so edges can reference forward nodes only after every node exists.
  // Stage the edge lists, add all nodes, then add edges.
  struct PendingEdge {
    NodeId from, to;
    double delay_s;
  };
  std::vector<PendingEdge> edges;
  edges.reserve(static_cast<std::size_t>(declared_edges));
  for (NodeId id = 0; id < n; ++id) {
    const auto type = r.pod<TaskTypeId>();
    const auto priority = r.pod<std::uint8_t>();
    DAS_CHECK_MSG(priority <= 1, "decode_dag: bad priority");
    TaskParams params;
    params.p0 = r.pod<double>();
    params.p1 = r.pod<double>();
    params.p2 = r.pod<double>();
    const NodeId added =
        dag.add_node(type, static_cast<Priority>(priority), params);
    DAS_CHECK(added == id);
    DagNode& node = dag.node(added);
    node.rank = r.pod<std::int32_t>();
    node.affinity_core = r.pod<std::int32_t>();
    node.phase = r.pod<std::int32_t>();
    const auto degree = r.pod<std::uint32_t>();
    for (std::uint32_t j = 0; j < degree; ++j) {
      const auto to = r.pod<NodeId>();
      const auto delay_s = r.pod<double>();
      DAS_CHECK_MSG(to >= 0 && to < n, "decode_dag: edge target out of range");
      edges.push_back(PendingEdge{id, to, delay_s});
    }
  }
  DAS_CHECK_MSG(edges.size() == declared_edges,
                "decode_dag: edge count mismatch");
  for (const PendingEdge& e : edges) dag.add_edge(e.from, e.to, e.delay_s);
  dag.seal();
  return dag;
}

void encode_tenant_config(const TenantConfig& cfg, WireWriter& w) {
  w.str(cfg.name);
  w.pod(cfg.weight);
  w.pod(static_cast<std::int32_t>(cfg.max_in_flight));
  w.pod(cfg.max_queued_tasks);
  w.pod(static_cast<std::uint8_t>(cfg.overload));
  w.pod(static_cast<std::int32_t>(cfg.max_retries));
  w.pod(cfg.retry_backoff_s);
  w.pod(cfg.retry_backoff_cap_s);
}

TenantConfig decode_tenant_config(WireReader& r) {
  TenantConfig cfg;
  cfg.name = r.str();
  cfg.weight = r.pod<double>();
  cfg.max_in_flight = r.pod<std::int32_t>();
  cfg.max_queued_tasks = r.pod<std::int64_t>();
  const auto overload = r.pod<std::uint8_t>();
  DAS_CHECK_MSG(overload <= 1, "decode_tenant_config: bad overload policy");
  cfg.overload = static_cast<Overload>(overload);
  cfg.max_retries = r.pod<std::int32_t>();
  cfg.retry_backoff_s = r.pod<double>();
  cfg.retry_backoff_cap_s = r.pod<double>();
  return cfg;
}

void encode_submit_options(const SubmitOptions& opts, WireWriter& w) {
  w.pod(opts.arrival_offset_s);
  w.pod(static_cast<std::int32_t>(opts.priority));
  w.pod(opts.deadline_s);
}

SubmitOptions decode_submit_options(WireReader& r) {
  SubmitOptions opts;
  opts.arrival_offset_s = r.pod<double>();
  opts.priority = r.pod<std::int32_t>();
  opts.deadline_s = r.pod<double>();
  return opts;
}

void encode_run_result(const WireRunResult& res, WireWriter& w) {
  w.pod(res.makespan_s);
  w.pod(res.tasks_per_s);
  w.pod(res.tasks);
  w.pod(res.job);
  w.pod(res.arrival_s);
  w.pod(res.queue_s);
  w.str(res.tenant);
  w.pod(res.backend);
  w.pod(res.policy);
  w.pod(res.outcome);
  w.pod(res.tasks_reexecuted);
}

WireRunResult decode_run_result(WireReader& r) {
  WireRunResult res;
  res.makespan_s = r.pod<double>();
  res.tasks_per_s = r.pod<double>();
  res.tasks = r.pod<std::int64_t>();
  res.job = r.pod<std::int64_t>();
  res.arrival_s = r.pod<double>();
  res.queue_s = r.pod<double>();
  res.tenant = r.str();
  res.backend = r.pod<std::uint8_t>();
  res.policy = r.pod<std::uint8_t>();
  res.outcome = r.pod<std::uint8_t>();
  DAS_CHECK_MSG(res.outcome <= 3, "decode_run_result: bad outcome byte");
  res.tasks_reexecuted = r.pod<std::int64_t>();
  return res;
}

}  // namespace das::net
