#pragma once
// In-process rank world: owns the mailboxes, the collective state, and the
// rank threads.

#include <functional>
#include <memory>
#include <vector>

#include "net/comm.hpp"
#include "net/mailbox.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace das::net {

class World {
 public:
  explicit World(int nranks);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(mailboxes_.size()); }
  /// Endpoint of `rank` (valid for the World's lifetime). A Comm may only be
  /// used by one thread at a time.
  Comm& comm(int rank);
  Mailbox& mailbox(int rank);

  /// Runs `fn(comm)` once per rank, each on its own thread, and joins.
  void run(const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Comm>> comms_;

  // Sense-reversing central barrier.
  Mutex barrier_mu_;
  CondVar barrier_cv_;
  int barrier_waiting_ DAS_GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_generation_ DAS_GUARDED_BY(barrier_mu_) = 0;
};

}  // namespace das::net
