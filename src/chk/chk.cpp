// Engine behind chk.hpp: cooperative token-passing scheduler over a small
// pool of real threads, plus the weak-memory simulator (store histories,
// vector clocks, fence/SC modeling, race and deadlock detection). See the
// header comment for the model's semantics and documented simplifications.
//
// Serialization invariant: exactly one virtual thread holds the token at a
// time, and the main thread only runs between schedules (make/check), so
// ALL model state (store histories, clocks, g_sc) is mutated single-
// threadedly and needs no lock. The engine's real mutex guards only the
// cross-thread scheduler plumbing: token handoff, statuses, generation,
// abort and the finished count.

#include "chk/chk.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <sstream>
#include <thread>
#include <unordered_set>

namespace das::chk {
namespace detail {

namespace {

constexpr int kMainTid = kMaxThreads;
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct AbortSchedule {};

bool has_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}
bool has_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

Mutant g_mutant = Mutant::kNone;
bool mut_store_release() { return g_mutant == Mutant::kStoreReleaseToRelaxed; }
bool mut_load_acquire() { return g_mutant == Mutant::kLoadAcquireToRelaxed; }
bool mut_fence_seqcst() {
  return g_mutant == Mutant::kFenceSeqCstToRelaxed ||
         g_mutant == Mutant::kWsqFenceSeqCstToRelaxed;
}

}  // namespace

// ---------------------------------------------------------------------------
// Vector clocks

struct VC {
  std::array<std::uint32_t, kMaxThreads + 1> v{};
  void join(const VC& o) {
    for (int i = 0; i <= kMaxThreads; ++i) v[i] = std::max(v[i], o.v[i]);
  }
  bool leq(const VC& o) const {
    for (int i = 0; i <= kMaxThreads; ++i)
      if (v[i] > o.v[i]) return false;
    return true;
  }
};

enum class TStatus { kReady, kBlockedMutex, kBlockedCv, kFinished };

struct ThreadCtx {
  VC clock;
  VC fence_rel;     // clock at the last release fence (relaxed-store stamp)
  VC acq_pending;   // banked msg clocks of relaxed loads (acquire fence joins)
  TStatus status = TStatus::kReady;
  bool low_prio = false;
  MutexState* waiting_mutex = nullptr;
};

struct Store {
  std::uint64_t val;
  VC msg;    // what an acquire reader joins (release message)
  VC event;  // writer's full clock at the store (visibility floor)
};

struct LocState {
  std::vector<Store> stores;
  std::array<int, kMaxThreads + 1> last_seen{};  // per-thread coherence floor
};

struct VarState {
  std::uint64_t val = 0;
  int last_writer = -1;
  std::uint32_t write_stamp = 0;
  std::array<std::uint32_t, kMaxThreads + 1> read_stamp{};
};

struct MutexState {
  bool locked = false;
  int owner = -1;
  VC clock;  // release clock of the last unlock
};

struct CondVarState {
  std::vector<int> waiters;
};

// ---------------------------------------------------------------------------
// Engine

class Engine {
 public:
  explicit Engine(const Options& opts)
      : opts_(opts), rng_(opts.seed),
        random_(opts.mode == Options::Mode::kRandom) {}

  ~Engine() {
    {
      std::unique_lock<std::mutex> l(m_);
      shutdown_ = true;
      cv_.notify_all();
    }
    for (auto& w : workers_) w.join();
  }

  Options opts_;

  // Scheduler plumbing (guarded by m_).
  std::mutex m_;
  std::condition_variable cv_;
  int running_ = kMainTid;
  bool abort_ = false;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  int n_threads_ = 0;
  int finished_ = 0;
  std::vector<std::function<void()>>* bodies_ = nullptr;
  std::vector<std::thread> workers_;

  // Model state (token-serialized, lock-free).
  std::array<ThreadCtx, kMaxThreads + 1> th_;
  VC g_sc_;
  /// Join of every atomic store's event clock. spin_yield() joins it into
  /// the spinner's clock: a thread that yields after observing no progress
  /// reads fresh values on retry (the eventual-visibility fairness real
  /// hardware provides). Without this, exhaustive DFS has infinite
  /// schedules where a retry loop re-reads the same stale store forever.
  VC g_progress_;
  std::uint64_t steps_ = 0;

  // Exploration state.
  struct Choice {
    int n;
    int taken;
  };
  std::vector<Choice> stack_;
  std::size_t pos_ = 0;
  std::mt19937_64 rng_;
  bool random_;
  std::uint64_t hash_ = kFnvOffset;
  std::string violation_;

  void begin_schedule() {
    std::unique_lock<std::mutex> l(m_);
    steps_ = 0;
    g_sc_ = VC{};
    g_progress_ = VC{};
    for (auto& t : th_) t = ThreadCtx{};
    pos_ = 0;
    hash_ = kFnvOffset;
    violation_.clear();
    abort_ = false;
  }

  [[noreturn]] void fail_locked(const std::string& msg) {
    if (violation_.empty()) violation_ = msg;
    abort_ = true;
    cv_.notify_all();
    throw AbortSchedule{};
  }

  [[noreturn]] void fail(const std::string& msg) {
    std::unique_lock<std::mutex> l(m_);
    fail_locked(msg);
  }

  int choose_locked(int n) {
    if (n <= 1) return 0;
    int taken;
    if (random_) {
      taken = static_cast<int>(rng_() % static_cast<std::uint64_t>(n));
    } else if (pos_ < stack_.size()) {
      if (stack_[pos_].n != n)
        fail_locked("internal: nondeterministic replay (choice arity changed)");
      taken = stack_[pos_].taken;
      ++pos_;
    } else {
      stack_.push_back({n, 0});
      ++pos_;
      taken = 0;
    }
    hash_ = (hash_ ^ (static_cast<std::uint64_t>(n) * 131u +
                      static_cast<std::uint64_t>(taken) + 1u)) *
            kFnvPrime;
    return taken;
  }

  /// Pops exhausted suffix, bumps the deepest unexhausted choice. False when
  /// the DFS is complete.
  bool advance_dfs() {
    while (!stack_.empty() && stack_.back().taken + 1 >= stack_.back().n)
      stack_.pop_back();
    if (stack_.empty()) return false;
    ++stack_.back().taken;
    return true;
  }

  std::vector<int> candidates_locked() const {
    std::vector<int> c;
    for (int i = 0; i < n_threads_; ++i)
      if (th_[i].status == TStatus::kReady && !th_[i].low_prio) c.push_back(i);
    if (c.empty())
      for (int i = 0; i < n_threads_; ++i)
        if (th_[i].status == TStatus::kReady) c.push_back(i);
    return c;
  }

  std::string blocked_summary_locked() const {
    std::ostringstream os;
    os << "deadlock:";
    for (int i = 0; i < n_threads_; ++i) {
      os << " t" << i << "=";
      switch (th_[i].status) {
        case TStatus::kReady: os << "ready"; break;
        case TStatus::kBlockedMutex: os << "blocked-on-mutex"; break;
        case TStatus::kBlockedCv: os << "blocked-on-condvar"; break;
        case TStatus::kFinished: os << "finished"; break;
      }
    }
    return os.str();
  }

  /// Preemption point: every model operation calls this first. Charges the
  /// step budget and lets the scheduler switch to any other ready thread.
  /// Returns false when the schedule is aborting while the caller is
  /// unwinding an AbortSchedule already (a unique_lock destructor calling
  /// Mutex::unlock mid-abort must not throw a second exception); the
  /// caller bails out, side effects are fine - the schedule is discarded.
  bool op_point(int self) {
    std::unique_lock<std::mutex> l(m_);
    if (abort_) {
      if (std::uncaught_exceptions() > 0) return false;
      throw AbortSchedule{};
    }
    if (++steps_ > opts_.max_steps)
      fail_locked(
          "step budget exceeded - livelock (retry loop without "
          "chk::spin_yield?)");
    auto cands = candidates_locked();
    const int next =
        cands[static_cast<std::size_t>(choose_locked(static_cast<int>(cands.size())))];
    th_[next].low_prio = false;
    if (next != self) {
      running_ = next;
      cv_.notify_all();
      cv_.wait(l, [&] { return abort_ || running_ == self; });
      if (abort_) {
        if (std::uncaught_exceptions() > 0) return false;
        throw AbortSchedule{};
      }
    }
    return true;
  }

  /// Caller has marked itself blocked (not kReady): hand the token to some
  /// ready thread and sleep until rescheduled. Detects deadlock.
  void deschedule_locked(std::unique_lock<std::mutex>& l, int self) {
    auto cands = candidates_locked();
    if (cands.empty()) fail_locked(blocked_summary_locked());
    const int next =
        cands[static_cast<std::size_t>(choose_locked(static_cast<int>(cands.size())))];
    th_[next].low_prio = false;
    running_ = next;
    cv_.notify_all();
    cv_.wait(l, [&] { return abort_ || running_ == self; });
    if (abort_) throw AbortSchedule{};
  }

  void finish_handoff_locked() {
    if (abort_ || finished_ == n_threads_) {
      cv_.notify_all();
      return;
    }
    auto cands = candidates_locked();
    if (cands.empty()) {
      try {
        fail_locked(blocked_summary_locked());
      } catch (AbortSchedule&) {
      }
      return;
    }
    const int next =
        cands[static_cast<std::size_t>(choose_locked(static_cast<int>(cands.size())))];
    th_[next].low_prio = false;
    running_ = next;
    cv_.notify_all();
  }

  void worker_main(int i);

  void run_schedule(std::vector<std::function<void()>>& bodies) {
    std::unique_lock<std::mutex> l(m_);
    for (int i = static_cast<int>(workers_.size());
         i < static_cast<int>(bodies.size()); ++i)
      workers_.emplace_back([this, i] { worker_main(i); });
    bodies_ = &bodies;
    n_threads_ = static_cast<int>(bodies.size());
    finished_ = 0;
    for (int i = 0; i < n_threads_; ++i) {
      th_[i] = ThreadCtx{};
      th_[i].clock = th_[kMainTid].clock;  // spawn edge
    }
    ++generation_;
    auto cands = candidates_locked();
    const int first =
        cands[static_cast<std::size_t>(choose_locked(static_cast<int>(cands.size())))];
    th_[first].low_prio = false;
    running_ = first;
    cv_.notify_all();
    cv_.wait(l, [&] { return finished_ == n_threads_; });
    running_ = kMainTid;
  }

  void sc_join(ThreadCtx& t) {
    t.clock.join(g_sc_);
    g_sc_.join(t.clock);
  }
};

namespace {

Engine* g_engine = nullptr;
thread_local int g_tid = -1;

void bump(Engine* e, int tid) { ++e->th_[tid].clock.v[tid]; }

/// True when the caller is a scheduled virtual thread of a live engine (the
/// only context where the full model applies; make()/check() on the main
/// thread and accidental outside-explore use take the plain path).
bool vthread(Engine** e_out) {
  *e_out = g_engine;
  return g_engine != nullptr && g_tid >= 0 && g_tid != kMainTid;
}

}  // namespace

void Engine::worker_main(int i) {
  g_tid = i;
  std::unique_lock<std::mutex> l(m_);
  std::uint64_t last_gen = 0;
  for (;;) {
    cv_.wait(l, [&] { return shutdown_ || generation_ != last_gen; });
    if (shutdown_) return;
    last_gen = generation_;
    if (i >= n_threads_) continue;
    cv_.wait(l, [&] { return abort_ || running_ == i; });
    if (!abort_) {
      l.unlock();
      try {
        (*bodies_)[static_cast<std::size_t>(i)]();
      } catch (AbortSchedule&) {
      }
      l.lock();
    }
    th_[i].status = TStatus::kFinished;
    ++finished_;
    finish_handoff_locked();
  }
}

// ---------------------------------------------------------------------------
// Atomic locations

AtomicBase::AtomicBase(std::uint64_t init) : s_(new LocState) {
  Store st{init, VC{}, VC{}};
  Engine* e = g_engine;
  if (e != nullptr && g_tid >= 0) {
    // Stamp the init store with the constructing thread: it is visible to
    // exactly the threads that happen-after construction (spawn edge for
    // make()-time objects, the publishing edge for mid-run ones, e.g. a
    // grown WsDeque array reached via the release store of array_).
    bump(e, g_tid);
    st.msg = e->th_[g_tid].clock;
    st.event = e->th_[g_tid].clock;
    s_->last_seen[g_tid] = 0;
  }
  s_->stores.push_back(st);
}

AtomicBase::~AtomicBase() = default;

std::uint64_t AtomicBase::load_(std::memory_order o) const {
  LocState* s = s_.get();
  Engine* e;
  if (mut_load_acquire() && o == std::memory_order_acquire)
    o = std::memory_order_relaxed;
  if (!vthread(&e)) return s->stores.back().val;  // make/check/plain
  e->op_point(g_tid);
  ThreadCtx& t = e->th_[g_tid];
  bump(e, g_tid);
  if (o == std::memory_order_seq_cst) e->sc_join(t);
  // Visibility floor: may not read older than anything already seen, nor
  // older than the latest store whose EVENT happens-before this load.
  int lo = s->last_seen[g_tid];
  const int size = static_cast<int>(s->stores.size());
  for (int j = size - 1; j > lo; --j) {
    if (s->stores[static_cast<std::size_t>(j)].event.leq(t.clock)) {
      lo = j;
      break;
    }
  }
  int pick = lo;
  if (size - lo > 1) {
    std::unique_lock<std::mutex> l(e->m_);
    pick = lo + e->choose_locked(size - lo);
  }
  s->last_seen[g_tid] = pick;
  const Store& st = s->stores[static_cast<std::size_t>(pick)];
  if (has_acquire(o))
    t.clock.join(st.msg);
  else
    t.acq_pending.join(st.msg);
  return st.val;
}

void AtomicBase::store_(std::uint64_t v, std::memory_order o) {
  LocState* s = s_.get();
  Engine* e;
  if (mut_store_release() && o == std::memory_order_release)
    o = std::memory_order_relaxed;
  if (!vthread(&e)) {
    Store st{v, VC{}, VC{}};
    if (g_engine != nullptr && g_tid == kMainTid) {
      bump(g_engine, g_tid);
      st.msg = g_engine->th_[g_tid].clock;
      st.event = st.msg;
    }
    s->stores.push_back(st);
    if (g_tid >= 0) s->last_seen[g_tid] = static_cast<int>(s->stores.size()) - 1;
    return;
  }
  e->op_point(g_tid);
  ThreadCtx& t = e->th_[g_tid];
  bump(e, g_tid);
  if (o == std::memory_order_seq_cst) e->sc_join(t);
  Store st{v, has_release(o) ? t.clock : t.fence_rel, t.clock};
  s->stores.push_back(st);
  s->last_seen[g_tid] = static_cast<int>(s->stores.size()) - 1;
  e->g_progress_.join(t.clock);
}

std::uint64_t AtomicBase::rmw_(
    const std::function<std::uint64_t(std::uint64_t)>& f, std::memory_order o) {
  LocState* s = s_.get();
  Engine* e;
  if (!vthread(&e)) {
    const std::uint64_t old = s->stores.back().val;
    s->stores.push_back({f(old), VC{}, VC{}});
    return old;
  }
  e->op_point(g_tid);
  ThreadCtx& t = e->th_[g_tid];
  bump(e, g_tid);
  if (o == std::memory_order_seq_cst) e->sc_join(t);
  // An RMW reads the latest store in modification order and its own write
  // continues that store's release sequence.
  const Store prev = s->stores.back();
  if (has_acquire(o))
    t.clock.join(prev.msg);
  else
    t.acq_pending.join(prev.msg);
  Store st{f(prev.val), has_release(o) ? t.clock : t.fence_rel, t.clock};
  st.msg.join(prev.msg);
  s->stores.push_back(st);
  s->last_seen[g_tid] = static_cast<int>(s->stores.size()) - 1;
  e->g_progress_.join(t.clock);
  return prev.val;
}

bool AtomicBase::cas_(std::uint64_t& expected, std::uint64_t desired,
                      std::memory_order success, std::memory_order failure) {
  LocState* s = s_.get();
  Engine* e;
  if (!vthread(&e)) {
    const std::uint64_t cur = s->stores.back().val;
    if (cur != expected) {
      expected = cur;
      return false;
    }
    s->stores.push_back({desired, VC{}, VC{}});
    return true;
  }
  e->op_point(g_tid);
  ThreadCtx& t = e->th_[g_tid];
  bump(e, g_tid);
  // A failed CAS is a load with the failure order; a successful one is an
  // RMW with the success order. Both read the newest store (conservative-
  // strong for the failure case: a real failed CAS may read stale).
  const Store prev = s->stores.back();
  const bool won = prev.val == expected;
  const std::memory_order o = won ? success : failure;
  if (o == std::memory_order_seq_cst) e->sc_join(t);
  if (has_acquire(o))
    t.clock.join(prev.msg);
  else
    t.acq_pending.join(prev.msg);
  if (!won) {
    expected = prev.val;
    s->last_seen[g_tid] = static_cast<int>(s->stores.size()) - 1;
    return false;
  }
  Store st{desired, has_release(o) ? t.clock : t.fence_rel, t.clock};
  st.msg.join(prev.msg);
  s->stores.push_back(st);
  s->last_seen[g_tid] = static_cast<int>(s->stores.size()) - 1;
  e->g_progress_.join(t.clock);
  return true;
}

// ---------------------------------------------------------------------------
// Non-atomic cells (race detection)

VarBase::VarBase(std::uint64_t init) : s_(new VarState) {
  s_->val = init;
  Engine* e = g_engine;
  if (e != nullptr && g_tid >= 0) {
    bump(e, g_tid);
    s_->last_writer = g_tid;
    s_->write_stamp = e->th_[g_tid].clock.v[g_tid];
  }
}

VarBase::~VarBase() = default;

std::uint64_t VarBase::read_() const {
  VarState* s = s_.get();
  Engine* e;
  if (!vthread(&e)) return s->val;
  ThreadCtx& t = e->th_[g_tid];
  bump(e, g_tid);
  if (s->last_writer >= 0 && s->write_stamp > t.clock.v[s->last_writer])
    e->fail("data race on non-atomic var: read unordered with last write");
  s->read_stamp[g_tid] = t.clock.v[g_tid];
  return s->val;
}

void VarBase::write_(std::uint64_t v) {
  VarState* s = s_.get();
  Engine* e;
  if (!vthread(&e)) {
    s->val = v;
    if (g_engine != nullptr && g_tid == kMainTid) {
      bump(g_engine, g_tid);
      s->last_writer = g_tid;
      s->write_stamp = g_engine->th_[g_tid].clock.v[g_tid];
      s->read_stamp.fill(0);
    }
    return;
  }
  ThreadCtx& t = e->th_[g_tid];
  bump(e, g_tid);
  if (s->last_writer >= 0 && s->write_stamp > t.clock.v[s->last_writer])
    e->fail("data race on non-atomic var: write unordered with last write");
  for (int u = 0; u <= kMaxThreads; ++u)
    if (s->read_stamp[static_cast<std::size_t>(u)] > t.clock.v[u])
      e->fail("data race on non-atomic var: write unordered with a read");
  s->last_writer = g_tid;
  s->write_stamp = t.clock.v[g_tid];
  s->read_stamp.fill(0);
  s->val = v;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Fences, mutex, condvar (outside detail, per the header)

using detail::Engine;
using detail::g_engine;  // NOLINT(build/namespaces) - internal linkage pair
using detail::g_tid;

void thread_fence(std::memory_order o) {
  if (detail::mut_fence_seqcst() && o == std::memory_order_seq_cst)
    o = std::memory_order_relaxed;
  Engine* e;
  if (!detail::vthread(&e)) return;
  e->op_point(g_tid);
  detail::ThreadCtx& t = e->th_[g_tid];
  detail::bump(e, g_tid);
  if (detail::has_acquire(o)) t.clock.join(t.acq_pending);
  if (o == std::memory_order_seq_cst) e->sc_join(t);
  if (detail::has_release(o)) t.fence_rel = t.clock;
}

Mutex::Mutex() : s_(new detail::MutexState) {}
Mutex::~Mutex() = default;

void Mutex::lock() {
  Engine* e;
  detail::MutexState* ms = s_.get();
  if (!detail::vthread(&e)) {
    ms->locked = true;
    ms->owner = g_tid;
    return;
  }
  for (;;) {
    e->op_point(g_tid);
    if (!ms->locked) {
      ms->locked = true;
      ms->owner = g_tid;
      detail::bump(e, g_tid);
      e->th_[g_tid].clock.join(ms->clock);
      return;
    }
    std::unique_lock<std::mutex> l(e->m_);
    if (e->abort_) throw detail::AbortSchedule{};
    e->th_[g_tid].status = detail::TStatus::kBlockedMutex;
    e->th_[g_tid].waiting_mutex = ms;
    e->deschedule_locked(l, g_tid);
  }
}

void Mutex::unlock() {
  Engine* e;
  detail::MutexState* ms = s_.get();
  if (!detail::vthread(&e)) {
    ms->locked = false;
    ms->owner = -1;
    return;
  }
  e->op_point(g_tid);
  detail::bump(e, g_tid);
  ms->clock.join(e->th_[g_tid].clock);
  ms->locked = false;
  ms->owner = -1;
  std::unique_lock<std::mutex> l(e->m_);
  for (int u = 0; u < e->n_threads_; ++u) {
    if (e->th_[u].status == detail::TStatus::kBlockedMutex &&
        e->th_[u].waiting_mutex == ms) {
      e->th_[u].status = detail::TStatus::kReady;
      e->th_[u].waiting_mutex = nullptr;
    }
  }
}

CondVar::CondVar() : s_(new detail::CondVarState) {}
CondVar::~CondVar() = default;

void CondVar::wait(std::unique_lock<Mutex>& g) {
  Engine* e;
  if (!detail::vthread(&e)) return;  // meaningless outside exploration
  Mutex* mu = g.mutex();
  detail::MutexState* ms = mu->s_.get();
  e->op_point(g_tid);
  if (ms->owner != g_tid) e->fail("condvar wait without holding the mutex");
  // Atomically (under the token): release the mutex and park on the cv.
  detail::bump(e, g_tid);
  ms->clock.join(e->th_[g_tid].clock);
  ms->locked = false;
  ms->owner = -1;
  {
    std::unique_lock<std::mutex> l(e->m_);
    for (int u = 0; u < e->n_threads_; ++u) {
      if (e->th_[u].status == detail::TStatus::kBlockedMutex &&
          e->th_[u].waiting_mutex == ms) {
        e->th_[u].status = detail::TStatus::kReady;
        e->th_[u].waiting_mutex = nullptr;
      }
    }
    s_->waiters.push_back(g_tid);
    e->th_[g_tid].status = detail::TStatus::kBlockedCv;
    e->deschedule_locked(l, g_tid);
  }
  // Woken: re-acquire the mutex (may block again; we hold the token).
  for (;;) {
    if (!ms->locked) {
      ms->locked = true;
      ms->owner = g_tid;
      detail::bump(e, g_tid);
      e->th_[g_tid].clock.join(ms->clock);
      return;
    }
    std::unique_lock<std::mutex> l(e->m_);
    if (e->abort_) throw detail::AbortSchedule{};
    e->th_[g_tid].status = detail::TStatus::kBlockedMutex;
    e->th_[g_tid].waiting_mutex = ms;
    e->deschedule_locked(l, g_tid);
  }
}

void CondVar::notify_all() {
  Engine* e;
  if (!detail::vthread(&e)) return;
  e->op_point(g_tid);
  std::unique_lock<std::mutex> l(e->m_);
  for (int u : s_->waiters)
    if (e->th_[u].status == detail::TStatus::kBlockedCv)
      e->th_[u].status = detail::TStatus::kReady;
  s_->waiters.clear();
}

void CondVar::notify_one() {
  Engine* e;
  if (!detail::vthread(&e)) return;
  e->op_point(g_tid);
  std::unique_lock<std::mutex> l(e->m_);
  while (!s_->waiters.empty()) {
    const int u = s_->waiters.front();
    s_->waiters.erase(s_->waiters.begin());
    if (e->th_[u].status == detail::TStatus::kBlockedCv) {
      e->th_[u].status = detail::TStatus::kReady;
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Public API

void set_mutant(Mutant m) { detail::g_mutant = m; }
Mutant mutant() { return detail::g_mutant; }

Mutant mutant_from_env() {
  const char* v = std::getenv("DAS_CHK_MUTANT");
  if (v == nullptr || *v == '\0') return Mutant::kNone;
  return static_cast<Mutant>(std::atoi(v));
}

void expect(bool cond, const char* msg) {
  if (cond) return;
  if (g_engine != nullptr) g_engine->fail(msg);
  std::fprintf(stderr, "chk::expect failed outside exploration: %s\n", msg);
  std::abort();
}

void spin_yield() {
  Engine* e;
  if (!detail::vthread(&e)) return;
  e->th_[g_tid].low_prio = true;
  e->op_point(g_tid);
  // Eventual visibility: a spinner that observed no progress reads fresh
  // state on its next attempt (see g_progress_). This is what bounds the
  // DFS: without it, "retry forever on the same stale store" is a valid
  // infinite schedule.
  e->th_[g_tid].clock.join(e->g_progress_);
}

int choice(int n) {
  Engine* e;
  if (!detail::vthread(&e) || n <= 1) return 0;
  e->op_point(g_tid);
  std::unique_lock<std::mutex> l(e->m_);
  return e->choose_locked(n);
}

Result explore(const Options& opts, const std::function<Scenario()>& make) {
  Engine e(opts);
  g_engine = &e;
  g_tid = detail::kMainTid;
  Result r;
  std::unordered_set<std::uint64_t> hashes;
  bool stop = false;
  while (!stop && r.schedules < opts.max_schedules) {
    e.begin_schedule();
    {
      Scenario s = make();
      if (static_cast<int>(s.threads.size()) > kMaxThreads) {
        r.ok = false;
        r.violation = "scenario exceeds chk::kMaxThreads";
        break;
      }
      if (!s.threads.empty()) e.run_schedule(s.threads);
      if (e.violation_.empty() && s.check) {
        try {
          s.check();
        } catch (detail::AbortSchedule&) {
        }
      }
    }  // scenario state (and every model object in it) dies here
    ++r.schedules;
    if (e.random_) hashes.insert(e.hash_);
    if (!e.violation_.empty()) {
      r.ok = false;
      std::ostringstream os;
      os << e.violation_ << " [schedule " << r.schedules
         << (e.random_ ? ", random seed " + std::to_string(opts.seed)
                       : std::string(", exhaustive dfs"))
         << "]";
      r.violation = os.str();
      stop = true;
    } else if (!e.random_ && !e.advance_dfs()) {
      r.exhausted = true;
      stop = true;
    }
  }
  r.distinct_interleavings = e.random_ ? hashes.size() : r.schedules;
  g_engine = nullptr;
  g_tid = -1;
  return r;
}

}  // namespace das::chk
