#pragma once
// Deterministic interleaving model checker for the lock-free core.
//
// A "Relacy-lite" stateless model checker: test scenarios instantiate the
// REAL primitive templates (util/mpsc_queue.hpp, util/eventcount.hpp,
// rt/wsq.hpp) with chk::Model, whose atomics/mutex/condvar route every
// operation through a cooperative scheduler and a weak-memory simulator.
// The explorer then either
//
//   - exhaustively enumerates every schedule of a small scenario via DFS
//     with prefix replay (Mode::kExhaustive), or
//   - samples seeded random schedules of a larger scenario, counting
//     distinct ones by hashing the choice sequence (Mode::kRandom).
//
// Choice points are (a) which thread runs each step and (b) WHICH STORE a
// load observes. (b) is what makes this a weak-memory checker rather than
// a sequential-consistency interleaver: every atomic location keeps its
// full modification order plus vector clocks, and a load may return any
// store that per-thread coherence and happens-before visibility allow —
// including stale values that a relaxed load is permitted to see. The
// model implements:
//
//   - release/acquire synchronization via per-store message clocks;
//   - release/acquire FENCES ([atomics.fences]): a release fence stamps
//     subsequent relaxed stores with the fence-time clock; relaxed loads
//     bank their store's clock into a pending set that an acquire fence
//     joins in;
//   - RMWs read the latest store in modification order and continue its
//     release sequence (their message clock joins the predecessor's);
//   - seq_cst via a global SC clock joined both ways by every seq_cst
//     operation and fence. This is deliberately CONSERVATIVE-STRONG
//     (seq_cst ops behave like full fences, as on mainstream ISAs), which
//     can mask bugs that only exist under the weakest reading of the
//     standard, but faithfully models the store/load duels (EventCount,
//     WSQ pop-vs-steal) this repo relies on — downgrade either side's
//     seq_cst and the checker produces the losing interleaving;
//   - data-race detection on non-atomic Model::var cells via vector
//     clocks (both mpsc mutants are caught this way: the consumer reaches
//     the payload without the release/acquire edge the contract promises);
//   - deadlock detection (every live thread blocked) and a per-schedule
//     step budget that flags livelocks.
//
// Mutant mode (set_mutant / DAS_CHK_MUTANT) weakens ONE memory order
// family at runtime; tests/model_check_test.cpp asserts each seeded
// mutant is caught while the unmutated algorithms pass. Because each
// scenario exercises a single primitive, a global downgrade is exactly a
// one-primitive mutation.
//
// Limits (documented, not accidental): at most kMaxThreads virtual
// threads; values up to 8 bytes, trivially copyable; modification order
// equals execution order (stores append); no spurious condvar wakeups.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace das::chk {

inline constexpr int kMaxThreads = 6;

// ---------------------------------------------------------------------------
// Mutants

enum class Mutant : int {
  kNone = 0,
  /// Plain release stores execute as relaxed (kills the mpsc publish edge).
  kStoreReleaseToRelaxed = 1,
  /// seq_cst thread fences execute as relaxed (kills the EventCount duel).
  kFenceSeqCstToRelaxed = 2,
  /// Same downgrade, exercised against the WSQ pop/steal duel.
  kWsqFenceSeqCstToRelaxed = 3,
  /// Compile-time RingBuffer<T, /*kMutantWrap=*/true> grow bug (no memory
  /// order involved; listed here so DAS_CHK_MUTANT covers every primitive).
  kRingBufferWrapCopy = 4,
  /// Acquire loads execute as relaxed (kills the mpsc consume edge).
  kLoadAcquireToRelaxed = 5,
};

/// Applies to every subsequent explore() in this process. Not thread-safe;
/// call from the test body before exploring.
void set_mutant(Mutant m);
Mutant mutant();

/// DAS_CHK_MUTANT env var (unset/empty -> kNone). For manual runs:
///   DAS_CHK_MUTANT=2 ./model_check_test
Mutant mutant_from_env();

// ---------------------------------------------------------------------------
// Exploration API

struct Options {
  enum class Mode { kExhaustive, kRandom };
  Mode mode = Mode::kExhaustive;
  /// Upper bound on schedules for BOTH modes. Exhaustive runs report
  /// exhausted=false when the DFS is cut off here.
  std::uint64_t max_schedules = 200000;
  /// Per-schedule step budget; exceeding it is reported as a livelock.
  std::uint64_t max_steps = 100000;
  /// Random-mode PRNG seed (schedules are reproducible given the seed).
  std::uint64_t seed = 1;
};

struct Result {
  bool ok = true;
  std::string violation;        ///< first failure, empty when ok
  std::uint64_t schedules = 0;  ///< schedules executed
  /// Distinct choice sequences seen. Equals `schedules` in exhaustive mode
  /// (DFS never repeats); random mode dedups by hashing the sequence.
  std::uint64_t distinct_interleavings = 0;
  bool exhausted = false;  ///< exhaustive mode: DFS completed within budget
};

/// One schedule's worth of work: `make` is called once per schedule and
/// returns fresh thread bodies (capture shared state in shared_ptrs); the
/// optional `check` runs single-threaded after all threads finished.
struct Scenario {
  std::vector<std::function<void()>> threads;
  std::function<void()> check;  // may be null
};

/// Runs `make()` under every (bounded) schedule. Stops at the first
/// violation. Reentrant per process, not thread-safe.
Result explore(const Options& opts, const std::function<Scenario()>& make);

/// Asserts from inside a scenario thread or check(): records the first
/// failure and aborts the current schedule.
void expect(bool cond, const char* msg);

/// Fairness hint for retry loops ("pop returned empty, try again"): marks
/// the caller low-priority so the scheduler prefers other runnable threads
/// next step, keeping bounded exploration out of spin-livelocks.
void spin_yield();

/// Explicit nondeterministic choice (0..n-1) from inside a scenario thread:
/// explored exhaustively like any scheduler/value choice point. Used to
/// enumerate operation sequences (e.g. the RingBuffer scenarios).
int choice(int n);

// ---------------------------------------------------------------------------
// Model internals (pimpl'd into chk.cpp)

namespace detail {

struct LocState;
struct VarState;
struct MutexState;
struct CondVarState;

class AtomicBase {
 public:
  explicit AtomicBase(std::uint64_t init);
  ~AtomicBase();
  AtomicBase(const AtomicBase&) = delete;
  AtomicBase& operator=(const AtomicBase&) = delete;

 protected:
  std::uint64_t load_(std::memory_order o) const;
  void store_(std::uint64_t v, std::memory_order o);
  /// Atomic read-modify-write: f maps old raw value to new raw value.
  std::uint64_t rmw_(const std::function<std::uint64_t(std::uint64_t)>& f,
                     std::memory_order o);
  bool cas_(std::uint64_t& expected, std::uint64_t desired,
            std::memory_order success, std::memory_order failure);

 private:
  std::unique_ptr<LocState> s_;
};

class VarBase {
 public:
  explicit VarBase(std::uint64_t init);
  ~VarBase();
  VarBase(const VarBase&) = delete;
  VarBase& operator=(const VarBase&) = delete;

 protected:
  std::uint64_t read_() const;
  void write_(std::uint64_t v);

 private:
  std::unique_ptr<VarState> s_;
};

template <class T>
std::uint64_t to_u64(T v) {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
  std::uint64_t r = 0;
  std::memcpy(&r, &v, sizeof(T));
  return r;
}

template <class T>
T from_u64(std::uint64_t r) {
  T v;
  std::memcpy(&v, &r, sizeof(T));
  return v;
}

}  // namespace detail

void thread_fence(std::memory_order o);

// ---------------------------------------------------------------------------
// The Model (see util/sync_model.hpp for the concept)

template <class T>
class Atomic : detail::AtomicBase {
 public:
  Atomic() : AtomicBase(detail::to_u64(T{})) {}
  Atomic(T init) : AtomicBase(detail::to_u64(init)) {}  // NOLINT(runtime/explicit)

  T load(std::memory_order o) const { return detail::from_u64<T>(load_(o)); }
  void store(T v, std::memory_order o) { store_(detail::to_u64(v), o); }

  T exchange(T v, std::memory_order o) {
    const std::uint64_t raw = detail::to_u64(v);
    return detail::from_u64<T>(rmw_([raw](std::uint64_t) { return raw; }, o));
  }

  T fetch_add(T delta, std::memory_order o) {
    return detail::from_u64<T>(rmw_(
        [delta](std::uint64_t old) {
          return detail::to_u64(
              static_cast<T>(detail::from_u64<T>(old) + delta));
        },
        o));
  }

  T fetch_sub(T delta, std::memory_order o) {
    return detail::from_u64<T>(rmw_(
        [delta](std::uint64_t old) {
          return detail::to_u64(
              static_cast<T>(detail::from_u64<T>(old) - delta));
        },
        o));
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    std::uint64_t e = detail::to_u64(expected);
    const bool won = cas_(e, detail::to_u64(desired), success, failure);
    expected = detail::from_u64<T>(e);
    return won;
  }
};

/// Non-atomic cell with vector-clock race detection: any pair of accesses
/// (one a write) not ordered by happens-before fails the schedule.
template <class T>
class Var : detail::VarBase {
 public:
  Var() : VarBase(detail::to_u64(T{})) {}
  Var(T init) : VarBase(detail::to_u64(init)) {}  // NOLINT(runtime/explicit)
  Var& operator=(T v) {
    write_(detail::to_u64(v));
    return *this;
  }
  operator T() const { return detail::from_u64<T>(read_()); }  // NOLINT
};

class Mutex {
 public:
  Mutex();
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  void lock();
  void unlock();

 private:
  friend class CondVar;
  std::unique_ptr<detail::MutexState> s_;
};

class CondVar {
 public:
  CondVar();
  ~CondVar();
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;
  void wait(std::unique_lock<Mutex>& g);
  void notify_one();
  void notify_all();

 private:
  std::unique_ptr<detail::CondVarState> s_;
};

struct Model {
  template <class T>
  using atomic = Atomic<T>;
  template <class T>
  using var = Var<T>;
  using mutex = Mutex;
  using cond_var = CondVar;
  static void thread_fence(std::memory_order o) { chk::thread_fence(o); }
};

}  // namespace das::chk
