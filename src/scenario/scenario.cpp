#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"

namespace das::scenario {

namespace {

// --- topology-independent validation ----------------------------------------
// Shared by the parser (so a bad file is diagnosed at load time) and by
// build() (so a hand-constructed spec can never trip a DAS_CHECK abort
// inside SpeedScenario — it gets a catchable ScenarioError instead).

[[noreturn]] void fail(const std::string& ctx, const std::string& msg) {
  throw ScenarioError(ctx + ": " + msg);
}

void validate_share(const std::string& ctx, const char* key, double v) {
  if (!(v > 0.0 && v <= 1.0))
    fail(ctx, std::string(key) + " must be in (0, 1], got " + std::to_string(v));
}

void validate(const DvfsSpec& d, const std::string& ctx) {
  if (d.cluster < 0 && d.cluster != kFastestCluster)
    fail(ctx, "cluster must be >= 0 or \"fastest\"");
  if (!(d.period_s > 0.0)) fail(ctx, "period_s must be > 0");
  if (!(d.duty_hi >= 0.0 && d.duty_hi <= 1.0))
    fail(ctx, "duty_hi must be in [0, 1]");
  if (!(d.hi > 0.0) || !(d.lo > 0.0)) fail(ctx, "hi and lo must be > 0");
}

void validate(const InterferenceSpec& e, const std::string& ctx) {
  if (e.cluster == InterferenceSpec::kNoCluster && e.cores.empty())
    fail(ctx, "needs victim cores (a core list or \"cluster:<idx|fastest>\")");
  if (e.cluster != InterferenceSpec::kNoCluster && !e.cores.empty())
    fail(ctx, "give either a core list or a cluster reference, not both");
  if (e.cluster < 0 && e.cluster != InterferenceSpec::kNoCluster &&
      e.cluster != kFastestCluster)
    fail(ctx, "cluster must be >= 0 or \"fastest\"");
  for (int c : e.cores)
    if (c < 0) fail(ctx, "core ids must be >= 0");
  if (!(e.t_start <= e.t_end)) fail(ctx, "t_start must be <= t_end");
  validate_share(ctx, "cpu_share", e.cpu_share);
  validate_share(ctx, "victim_cluster_bw", e.victim_cluster_bw);
  validate_share(ctx, "global_bw", e.global_bw);
}

void validate(const RampSpec& r, const std::string& ctx) {
  if (r.cluster < 0 && r.cluster != kFastestCluster)
    fail(ctx, "cluster must be >= 0 or \"fastest\"");
  if (!(r.t_start < r.t_end)) fail(ctx, "t_start must be < t_end");
  if (!std::isfinite(r.t_end)) fail(ctx, "t_end must be finite");
  if (r.steps < 1) fail(ctx, "steps must be >= 1");
  validate_share(ctx, "from", r.from);
  validate_share(ctx, "to", r.to);
}

void validate(const ChurnSpec& c, const std::string& ctx) {
  if (c.events < 0) fail(ctx, "events must be >= 0");
  if (!(c.horizon_s > 0.0) || !std::isfinite(c.horizon_s))
    fail(ctx, "horizon_s must be positive and finite");
  validate_share(ctx, "min_share", c.min_share);
  validate_share(ctx, "max_share", c.max_share);
  if (c.min_share > c.max_share) fail(ctx, "min_share must be <= max_share");
  if (!(c.min_len_s > 0.0)) fail(ctx, "min_len_s must be > 0");
  if (c.min_len_s > c.max_len_s) fail(ctx, "min_len_s must be <= max_len_s");
}

void validate(const FaultSpec& f, const std::string& ctx) {
  const int ways = (f.cluster != FaultSpec::kNoCluster ? 1 : 0) +
                   (f.fraction != 0.0 ? 1 : 0) + (f.cores.empty() ? 0 : 1);
  if (ways == 0)
    fail(ctx, "needs victim cores (a core list, \"cluster:<idx|fastest>\" or "
              "\"fraction:<f>\")");
  if (ways > 1)
    fail(ctx, "give exactly one of a core list, a cluster reference or a "
              "fraction");
  if (f.cluster < 0 && f.cluster != FaultSpec::kNoCluster &&
      f.cluster != kFastestCluster)
    fail(ctx, "cluster must be >= 0 or \"fastest\"");
  for (int c : f.cores)
    if (c < 0) fail(ctx, "core ids must be >= 0");
  if (f.fraction != 0.0 && !(f.fraction > 0.0 && f.fraction < 1.0))
    fail(ctx, "fraction must be in (0, 1), got " + std::to_string(f.fraction));
  if (!(f.t_s >= 0.0) || !std::isfinite(f.t_s))
    fail(ctx, "t must be >= 0 and finite");
  if (f.kind == FaultSpec::Kind::kFreeze &&
      (!(f.duration_s > 0.0) || !std::isfinite(f.duration_s)))
    fail(ctx, "duration_s must be > 0 and finite");
  if (f.kind == FaultSpec::Kind::kStraggler)
    validate_share(ctx, "slowdown", f.slowdown);
}

void validate(const ScenarioSpec& spec, const std::string& origin) {
  auto ctx = [&](const char* section, std::size_t i) {
    return origin + ": " + section + "[" + std::to_string(i) + "]";
  };
  for (std::size_t i = 0; i < spec.dvfs.size(); ++i)
    validate(spec.dvfs[i], ctx("dvfs", i));
  for (std::size_t i = 0; i < spec.interference.size(); ++i)
    validate(spec.interference[i], ctx("interference", i));
  for (std::size_t i = 0; i < spec.ramps.size(); ++i)
    validate(spec.ramps[i], ctx("ramps", i));
  for (std::size_t i = 0; i < spec.churn.size(); ++i)
    validate(spec.churn[i], ctx("churn", i));
  for (std::size_t i = 0; i < spec.faults.size(); ++i)
    validate(spec.faults[i], ctx("faults", i));
}

}  // namespace

// --- catalog -----------------------------------------------------------------

namespace {

ScenarioSpec make_clean() {
  ScenarioSpec s;
  s.name = "clean";
  return s;
}

// The paper's §5.2 power-management condition: the fastest cluster toggles
// between its highest and lowest frequency on a square wave (Fig. 7 uses a
// 5 s period on the TX2's Denver cluster).
ScenarioSpec make_dvfs_wave() {
  ScenarioSpec s;
  s.name = "dvfs-wave";
  s.dvfs.push_back(DvfsSpec{.cluster = kFastestCluster,
                            .period_s = 5.0,
                            .duty_hi = 0.5,
                            .hi = 1.0,
                            .lo = 345.0 / 2035.0,
                            .phase_s = 0.0});
  return s;
}

// The paper's §5.1 co-runner condition, made intermittent: a CPU-bound
// application lands on core 0 for 2 s bursts with 2 s gaps (5 bursts).
ScenarioSpec make_interference_burst() {
  ScenarioSpec s;
  s.name = "interference-burst";
  for (int k = 0; k < 5; ++k) {
    s.interference.push_back(InterferenceSpec{.cores = {0},
                                              .cluster = InterferenceSpec::kNoCluster,
                                              .t_start = 1.0 + 4.0 * k,
                                              .t_end = 3.0 + 4.0 * k,
                                              .cpu_share = 0.5,
                                              .victim_cluster_bw = 1.0,
                                              .global_bw = 1.0});
  }
  return s;
}

// Thermal-throttling-style decay: the fastest cluster staircases from full
// speed down to a quarter over 30 s.
ScenarioSpec make_ramp_down() {
  ScenarioSpec s;
  s.name = "ramp-down";
  s.ramps.push_back(RampSpec{});  // the defaults are exactly this condition
  return s;
}

// Unpredictable multi-tenant machine: 12 seeded random single-core slowdown
// windows over 30 s.
ScenarioSpec make_random_churn() {
  ScenarioSpec s;
  s.name = "random-churn";
  s.churn.push_back(ChurnSpec{});  // the defaults are exactly this condition
  return s;
}

// Anti-phase DVFS on the first two clusters: whichever cluster is fast
// flips every half period, so "the fast cores" is never a static set —
// the condition that separates dynamic from fixed-asymmetry schedulers.
ScenarioSpec make_phase_flip() {
  ScenarioSpec s;
  s.name = "phase-flip";
  s.dvfs.push_back(DvfsSpec{.cluster = 0,
                            .period_s = 10.0,
                            .duty_hi = 0.5,
                            .hi = 1.0,
                            .lo = 1.0 / 3.0,
                            .phase_s = 0.0});
  s.dvfs.push_back(DvfsSpec{.cluster = 1,
                            .period_s = 10.0,
                            .duty_hi = 0.5,
                            .hi = 1.0,
                            .lo = 1.0 / 3.0,
                            .phase_s = 5.0});
  return s;
}

// Fail-stop limit case of the dynamic-asymmetry story: a quarter of the
// cores (the highest-numbered ones; core 0 always survives) die for good
// one second in. Exercises the engines' reclaim/re-release recovery path.
ScenarioSpec make_fail_stop() {
  ScenarioSpec s;
  s.name = "fail-stop";
  s.faults.push_back(FaultSpec{.kind = FaultSpec::Kind::kFail,
                               .cores = {},
                               .cluster = FaultSpec::kNoCluster,
                               .fraction = 0.25,
                               .t_s = 1.0,
                               .duration_s = 1.0,
                               .slowdown = 0.2});
  return s;
}

// Permanent stragglers: a quarter of the cores drop to 20% speed half a
// second in and never recover — the tail-latency condition. Expands into
// forever interference windows, so it runs unchanged on both engines.
ScenarioSpec make_straggler_tail() {
  ScenarioSpec s;
  s.name = "straggler-tail";
  s.faults.push_back(FaultSpec{.kind = FaultSpec::Kind::kStraggler,
                               .cores = {},
                               .cluster = FaultSpec::kNoCluster,
                               .fraction = 0.25,
                               .t_s = 0.5,
                               .duration_s = 1.0,
                               .slowdown = 0.2});
  return s;
}

const std::vector<ScenarioSpec>& catalog() {
  static const std::vector<ScenarioSpec> kCatalog = {
      make_clean(),          make_dvfs_wave(),    make_interference_burst(),
      make_ramp_down(),      make_random_churn(), make_phase_flip(),
      make_fail_stop(),      make_straggler_tail(),
  };
  return kCatalog;
}

}  // namespace

const std::vector<std::string>& catalog_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const ScenarioSpec& s : catalog()) names.push_back(s.name);
    return names;
  }();
  return kNames;
}

std::optional<ScenarioSpec> find_catalog(const std::string& name) {
  for (const ScenarioSpec& s : catalog())
    if (s.name == name) return s;
  return std::nullopt;
}

std::string catalog_summary() {
  std::string out;
  for (const std::string& n : catalog_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// --- serialisation -----------------------------------------------------------

namespace {

json::Value cluster_to_json(int cluster) {
  if (cluster == kFastestCluster) return json::Value("fastest");
  return json::Value(cluster);
}

const char* fault_kind_name(FaultSpec::Kind k) {
  switch (k) {
    case FaultSpec::Kind::kFail: return "fail";
    case FaultSpec::Kind::kFreeze: return "freeze";
    case FaultSpec::Kind::kStraggler: return "straggler";
  }
  return "fail";
}

}  // namespace

json::Value to_json(const ScenarioSpec& spec) {
  json::Value doc = json::Value::object();
  if (!spec.name.empty()) doc.set("name", spec.name);
  if (!spec.dvfs.empty()) {
    json::Value arr = json::Value::array();
    for (const DvfsSpec& d : spec.dvfs) {
      json::Value o = json::Value::object();
      o.set("cluster", cluster_to_json(d.cluster));
      o.set("period_s", d.period_s);
      o.set("duty_hi", d.duty_hi);
      o.set("hi", d.hi);
      o.set("lo", d.lo);
      o.set("phase_s", d.phase_s);
      arr.push_back(std::move(o));
    }
    doc.set("dvfs", std::move(arr));
  }
  if (!spec.interference.empty()) {
    json::Value arr = json::Value::array();
    for (const InterferenceSpec& e : spec.interference) {
      json::Value o = json::Value::object();
      if (e.cluster != InterferenceSpec::kNoCluster) {
        o.set("cores", e.cluster == kFastestCluster
                           ? "cluster:fastest"
                           : "cluster:" + std::to_string(e.cluster));
      } else {
        json::Value cores = json::Value::array();
        for (int c : e.cores) cores.push_back(c);
        o.set("cores", std::move(cores));
      }
      o.set("t_start", e.t_start);
      // Infinity has no JSON literal: an absent t_end means "forever".
      if (std::isfinite(e.t_end)) o.set("t_end", e.t_end);
      o.set("cpu_share", e.cpu_share);
      o.set("victim_cluster_bw", e.victim_cluster_bw);
      o.set("global_bw", e.global_bw);
      arr.push_back(std::move(o));
    }
    doc.set("interference", std::move(arr));
  }
  if (!spec.ramps.empty()) {
    json::Value arr = json::Value::array();
    for (const RampSpec& r : spec.ramps) {
      json::Value o = json::Value::object();
      o.set("cluster", cluster_to_json(r.cluster));
      o.set("t_start", r.t_start);
      o.set("t_end", r.t_end);
      o.set("steps", r.steps);
      o.set("from", r.from);
      o.set("to", r.to);
      arr.push_back(std::move(o));
    }
    doc.set("ramps", std::move(arr));
  }
  if (!spec.churn.empty()) {
    json::Value arr = json::Value::array();
    for (const ChurnSpec& c : spec.churn) {
      json::Value o = json::Value::object();
      o.set("seed", static_cast<double>(c.seed));
      o.set("events", c.events);
      o.set("horizon_s", c.horizon_s);
      o.set("min_share", c.min_share);
      o.set("max_share", c.max_share);
      o.set("min_len_s", c.min_len_s);
      o.set("max_len_s", c.max_len_s);
      arr.push_back(std::move(o));
    }
    doc.set("churn", std::move(arr));
  }
  if (!spec.faults.empty()) {
    json::Value arr = json::Value::array();
    for (const FaultSpec& f : spec.faults) {
      json::Value o = json::Value::object();
      o.set("kind", fault_kind_name(f.kind));
      if (f.cluster != FaultSpec::kNoCluster) {
        o.set("cores", f.cluster == kFastestCluster
                           ? "cluster:fastest"
                           : "cluster:" + std::to_string(f.cluster));
      } else if (f.fraction != 0.0) {
        o.set("fraction", f.fraction);
      } else {
        json::Value cores = json::Value::array();
        for (int c : f.cores) cores.push_back(c);
        o.set("cores", std::move(cores));
      }
      o.set("t", f.t_s);
      if (f.kind == FaultSpec::Kind::kFreeze) o.set("duration_s", f.duration_s);
      if (f.kind == FaultSpec::Kind::kStraggler) o.set("slowdown", f.slowdown);
      arr.push_back(std::move(o));
    }
    doc.set("faults", std::move(arr));
  }
  return doc;
}

namespace {

// Strict field reader over one JSON object: typed getters with defaults,
// then finish() rejects any key that was never consumed (a typo'd field
// would otherwise silently keep its default — the bug class require_known
// guards against on the command line).
class ObjReader {
 public:
  ObjReader(const json::Value& obj, std::string ctx)
      : obj_(obj), ctx_(std::move(ctx)) {
    if (!obj.is_object()) fail(ctx_, "expected a JSON object");
  }

  const json::Value* take(const std::string& key) {
    consumed_.push_back(key);
    return obj_.find(key);
  }

  double num(const std::string& key, double def) {
    const json::Value* v = take(key);
    if (!v || v->is_null()) return def;
    if (!v->is_number()) fail(ctx_, "\"" + key + "\" must be a number");
    return v->as_number();
  }

  int integer(const std::string& key, int def) {
    const double v = num(key, def);
    if (v != std::floor(v) || std::fabs(v) > 1e9)
      fail(ctx_, "\"" + key + "\" must be an integer");
    return static_cast<int>(v);
  }

  std::uint64_t u64(const std::string& key, std::uint64_t def) {
    const double v = num(key, static_cast<double>(def));
    if (v != std::floor(v) || v < 0.0 || v > 9.007199254740992e15)
      fail(ctx_, "\"" + key + "\" must be a non-negative integer");
    return static_cast<std::uint64_t>(v);
  }

  /// Cluster reference: a non-negative integer or the string "fastest".
  int cluster(const std::string& key, int def) {
    const json::Value* v = take(key);
    if (!v) return def;
    if (v->is_string() && v->as_string() == "fastest") return kFastestCluster;
    if (v->is_number() && v->as_number() == std::floor(v->as_number()) &&
        v->as_number() >= 0.0)
      return static_cast<int>(v->as_number());
    fail(ctx_, "\"" + key + "\" must be a cluster index or \"fastest\"");
  }

  const std::string& context() const { return ctx_; }

  void finish() const {
    for (const auto& [key, value] : obj_.members()) {
      bool known = false;
      for (const std::string& k : consumed_) known = known || k == key;
      if (!known) fail(ctx_, "unknown key \"" + key + "\"");
    }
  }

 private:
  const json::Value& obj_;
  std::string ctx_;
  std::vector<std::string> consumed_;
};

DvfsSpec dvfs_from_json(const json::Value& v, const std::string& ctx) {
  ObjReader r(v, ctx);
  DvfsSpec d;
  d.cluster = r.cluster("cluster", d.cluster);
  d.period_s = r.num("period_s", d.period_s);
  d.duty_hi = r.num("duty_hi", d.duty_hi);
  d.hi = r.num("hi", d.hi);
  d.lo = r.num("lo", d.lo);
  d.phase_s = r.num("phase_s", d.phase_s);
  r.finish();
  validate(d, ctx);
  return d;
}

InterferenceSpec interference_from_json(const json::Value& v,
                                        const std::string& ctx) {
  ObjReader r(v, ctx);
  InterferenceSpec e;
  if (const json::Value* cores = r.take("cores")) {
    if (cores->is_array()) {
      for (const json::Value& c : cores->as_array()) {
        if (!c.is_number() || c.as_number() != std::floor(c.as_number()))
          fail(ctx, "\"cores\" must hold integer core ids");
        e.cores.push_back(static_cast<int>(c.as_number()));
      }
    } else if (cores->is_string()) {
      const std::string& s = cores->as_string();
      if (s == "cluster:fastest") {
        e.cluster = kFastestCluster;
      } else if (s.rfind("cluster:", 0) == 0) {
        try {
          std::size_t used = 0;
          e.cluster = std::stoi(s.substr(8), &used);
          if (used != s.size() - 8 || e.cluster < 0)
            throw std::invalid_argument(s);
        } catch (const std::exception&) {
          fail(ctx, "bad cluster reference \"" + s + "\"");
        }
      } else {
        fail(ctx, "\"cores\" string must be \"cluster:<idx|fastest>\"");
      }
    } else {
      fail(ctx, "\"cores\" must be an array or a cluster reference string");
    }
  }
  e.t_start = r.num("t_start", e.t_start);
  e.t_end = r.num("t_end", e.t_end);  // absent or null = forever
  e.cpu_share = r.num("cpu_share", e.cpu_share);
  e.victim_cluster_bw = r.num("victim_cluster_bw", e.victim_cluster_bw);
  e.global_bw = r.num("global_bw", e.global_bw);
  r.finish();
  validate(e, ctx);
  return e;
}

RampSpec ramp_from_json(const json::Value& v, const std::string& ctx) {
  ObjReader r(v, ctx);
  RampSpec ramp;
  ramp.cluster = r.cluster("cluster", ramp.cluster);
  ramp.t_start = r.num("t_start", ramp.t_start);
  ramp.t_end = r.num("t_end", ramp.t_end);
  ramp.steps = r.integer("steps", ramp.steps);
  ramp.from = r.num("from", ramp.from);
  ramp.to = r.num("to", ramp.to);
  r.finish();
  validate(ramp, ctx);
  return ramp;
}

FaultSpec fault_from_json(const json::Value& v, const std::string& ctx) {
  ObjReader r(v, ctx);
  FaultSpec f;
  if (const json::Value* kind = r.take("kind")) {
    if (!kind->is_string())
      fail(ctx, "\"kind\" must be \"fail\", \"freeze\" or \"straggler\"");
    const std::string& s = kind->as_string();
    if (s == "fail") {
      f.kind = FaultSpec::Kind::kFail;
    } else if (s == "freeze") {
      f.kind = FaultSpec::Kind::kFreeze;
    } else if (s == "straggler") {
      f.kind = FaultSpec::Kind::kStraggler;
    } else {
      fail(ctx, "unknown fault kind \"" + s +
                    "\" (expected \"fail\", \"freeze\" or \"straggler\")");
    }
  }
  if (const json::Value* cores = r.take("cores")) {
    if (cores->is_array()) {
      for (const json::Value& c : cores->as_array()) {
        if (!c.is_number() || c.as_number() != std::floor(c.as_number()))
          fail(ctx, "\"cores\" must hold integer core ids");
        f.cores.push_back(static_cast<int>(c.as_number()));
      }
      if (f.cores.empty()) fail(ctx, "\"cores\" must not be an empty list");
    } else if (cores->is_string()) {
      const std::string& s = cores->as_string();
      if (s == "cluster:fastest") {
        f.cluster = kFastestCluster;
      } else if (s.rfind("cluster:", 0) == 0) {
        try {
          std::size_t used = 0;
          f.cluster = std::stoi(s.substr(8), &used);
          if (used != s.size() - 8 || f.cluster < 0)
            throw std::invalid_argument(s);
        } catch (const std::exception&) {
          fail(ctx, "bad cluster reference \"" + s + "\"");
        }
      } else {
        fail(ctx, "\"cores\" string must be \"cluster:<idx|fastest>\"");
      }
    } else {
      fail(ctx, "\"cores\" must be an array or a cluster reference string");
    }
  }
  f.fraction = r.num("fraction", f.fraction);
  f.t_s = r.num("t", f.t_s);
  f.duration_s = r.num("duration_s", f.duration_s);
  f.slowdown = r.num("slowdown", f.slowdown);
  r.finish();
  validate(f, ctx);
  return f;
}

ChurnSpec churn_from_json(const json::Value& v, const std::string& ctx) {
  ObjReader r(v, ctx);
  ChurnSpec c;
  c.seed = r.u64("seed", c.seed);
  c.events = r.integer("events", c.events);
  c.horizon_s = r.num("horizon_s", c.horizon_s);
  c.min_share = r.num("min_share", c.min_share);
  c.max_share = r.num("max_share", c.max_share);
  c.min_len_s = r.num("min_len_s", c.min_len_s);
  c.max_len_s = r.num("max_len_s", c.max_len_s);
  r.finish();
  validate(c, ctx);
  return c;
}

}  // namespace

ScenarioSpec from_json(const json::Value& doc, const std::string& origin) {
  ObjReader r(doc, origin);
  ScenarioSpec spec;
  if (const json::Value* name = r.take("name")) {
    if (!name->is_string()) fail(origin, "\"name\" must be a string");
    spec.name = name->as_string();
  }
  auto section = [&](const char* key, auto parse_entry, auto& out) {
    const json::Value* arr = r.take(key);
    if (!arr) return;
    if (!arr->is_array())
      fail(origin, std::string("\"") + key + "\" must be an array");
    for (std::size_t i = 0; i < arr->as_array().size(); ++i) {
      out.push_back(parse_entry(arr->as_array()[i],
                                origin + ": " + key + "[" + std::to_string(i) + "]"));
    }
  };
  section("dvfs", dvfs_from_json, spec.dvfs);
  section("interference", interference_from_json, spec.interference);
  section("ramps", ramp_from_json, spec.ramps);
  section("churn", churn_from_json, spec.churn);
  section("faults", fault_from_json, spec.faults);
  r.finish();
  return spec;
}

ScenarioSpec parse(const std::string& text, const std::string& origin) {
  json::Value doc;
  try {
    doc = json::parse(text, origin);
  } catch (const json::Error& e) {
    throw ScenarioError(e.what());
  }
  return from_json(doc, origin);
}

ScenarioSpec load(const std::string& name_or_path) {
  if (auto spec = find_catalog(name_or_path)) return *spec;
  std::ifstream in(name_or_path, std::ios::binary);
  if (!in) {
    throw ScenarioError("'" + name_or_path +
                        "' is neither a catalog scenario (" + catalog_summary() +
                        ") nor a readable spec file");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ScenarioSpec spec = parse(buf.str(), name_or_path);
  if (spec.name.empty()) spec.name = name_or_path;
  return spec;
}

// --- building ----------------------------------------------------------------

namespace {

/// The concrete victim cores of one fault entry. Shared by build() (which
/// expands stragglers into interference windows) and resolve_faults() (which
/// schedules the engine-side fail/freeze events), so the two views of one
/// spec always agree on who the victims are.
std::vector<int> resolve_fault_cores(const FaultSpec& f, const Topology& topo,
                                     const std::string& ctx) {
  std::vector<int> cores;
  if (f.cluster != FaultSpec::kNoCluster) {
    const int cl = f.cluster == kFastestCluster ? topo.fastest_cluster() : f.cluster;
    if (cl >= topo.num_clusters()) {
      fail(ctx, "references cluster " + std::to_string(f.cluster) +
                    " but the topology has " +
                    std::to_string(topo.num_clusters()) + " clusters");
    }
    const Cluster& c = topo.cluster(cl);
    for (int k = 0; k < c.num_cores; ++k) cores.push_back(c.first_core + k);
    return cores;
  }
  if (f.fraction != 0.0) {
    // Topology-agnostic share: the highest-numbered ceil(fraction * N)
    // cores, capped at N-1 so core 0 — the engines' submission/root core —
    // always survives.
    const int n = topo.num_cores();
    const int victims = std::min(
        n - 1, static_cast<int>(std::ceil(f.fraction * static_cast<double>(n))));
    for (int c = n - victims; c < n; ++c) cores.push_back(c);
    return cores;
  }
  for (int c : f.cores) {
    if (c >= topo.num_cores()) {
      fail(ctx, "references core " + std::to_string(c) +
                    " but the topology has " + std::to_string(topo.num_cores()) +
                    " cores");
    }
  }
  return f.cores;
}

}  // namespace

FaultPlan resolve_faults(const ScenarioSpec& spec, const Topology& topo) {
  const std::string origin = spec.name.empty() ? "<scenario>" : spec.name;
  validate(spec, origin);
  auto ctx = [&](std::size_t i) {
    return origin + ": faults[" + std::to_string(i) + "]";
  };

  FaultPlan plan;
  std::vector<char> dead(static_cast<std::size_t>(topo.num_cores()), 0);
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& f = spec.faults[i];
    if (f.kind == FaultSpec::Kind::kStraggler) continue;  // build()'s job
    for (int core : resolve_fault_cores(f, topo, ctx(i))) {
      plan.events.push_back(CoreFault{
          .kind = f.kind == FaultSpec::Kind::kFail ? CoreFault::Kind::kFail
                                                   : CoreFault::Kind::kFreeze,
          .core = core,
          .t_s = f.t_s,
          .until_s = f.kind == FaultSpec::Kind::kFail
                         ? std::numeric_limits<double>::infinity()
                         : f.t_s + f.duration_s});
      if (f.kind == FaultSpec::Kind::kFail)
        dead[static_cast<std::size_t>(core)] = 1;
    }
  }
  if (!plan.events.empty()) {
    bool survivor = false;
    for (char d : dead) survivor = survivor || d == 0;
    if (!survivor) {
      fail(origin, "fail-stop faults kill every core of the topology; at "
                   "least one core must survive to run the reclaimed work");
    }
  }
  // Deterministic schedule: onset order, ties by core index.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const CoreFault& a, const CoreFault& b) {
                     return a.t_s != b.t_s ? a.t_s < b.t_s : a.core < b.core;
                   });
  return plan;
}

SpeedScenario build(const ScenarioSpec& spec, const Topology& topo) {
  const std::string origin = spec.name.empty() ? "<scenario>" : spec.name;
  validate(spec, origin);

  auto resolve_cluster = [&](int cluster, const std::string& ctx) {
    if (cluster == kFastestCluster) return topo.fastest_cluster();
    if (cluster >= topo.num_clusters()) {
      fail(ctx, "references cluster " + std::to_string(cluster) +
                    " but the topology has " +
                    std::to_string(topo.num_clusters()) + " clusters");
    }
    return cluster;
  };
  auto ctx = [&](const char* section, std::size_t i) {
    return origin + ": " + section + "[" + std::to_string(i) + "]";
  };

  SpeedScenario sc(topo);
  for (std::size_t i = 0; i < spec.dvfs.size(); ++i) {
    const DvfsSpec& d = spec.dvfs[i];
    sc.add_dvfs(DvfsSchedule{.cluster = resolve_cluster(d.cluster, ctx("dvfs", i)),
                             .period_s = d.period_s,
                             .duty_hi = d.duty_hi,
                             .hi = d.hi,
                             .lo = d.lo,
                             .phase_s = d.phase_s});
  }
  for (std::size_t i = 0; i < spec.interference.size(); ++i) {
    const InterferenceSpec& e = spec.interference[i];
    std::vector<int> cores = e.cores;
    if (e.cluster != InterferenceSpec::kNoCluster) {
      const Cluster& c =
          topo.cluster(resolve_cluster(e.cluster, ctx("interference", i)));
      for (int k = 0; k < c.num_cores; ++k) cores.push_back(c.first_core + k);
    }
    for (int c : cores) {
      if (c >= topo.num_cores()) {
        fail(ctx("interference", i),
             "references core " + std::to_string(c) + " but the topology has " +
                 std::to_string(topo.num_cores()) + " cores");
      }
    }
    sc.add_interference(InterferenceEvent{.cores = std::move(cores),
                                          .t_start = e.t_start,
                                          .t_end = e.t_end,
                                          .cpu_share = e.cpu_share,
                                          .victim_cluster_bw = e.victim_cluster_bw,
                                          .global_bw = e.global_bw});
  }
  for (std::size_t i = 0; i < spec.ramps.size(); ++i) {
    const RampSpec& r = spec.ramps[i];
    const int cluster = resolve_cluster(r.cluster, ctx("ramps", i));
    const double window = (r.t_end - r.t_start) / r.steps;
    for (int s = 0; s < r.steps; ++s) {
      const double frac = r.steps == 1 ? 1.0 : static_cast<double>(s) / (r.steps - 1);
      const double share = r.from + (r.to - r.from) * frac;
      if (share >= 1.0) continue;  // full-speed window: nothing to emulate
      sc.add_cluster_slowdown(cluster, share, r.t_start + s * window,
                              s == r.steps - 1 ? r.t_end : r.t_start + (s + 1) * window);
    }
  }
  for (const ChurnSpec& c : spec.churn) {
    Xoshiro256 rng(c.seed);
    for (int e = 0; e < c.events; ++e) {
      const int core = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(topo.num_cores())));
      const double t0 = rng.uniform(0.0, c.horizon_s);
      const double len = rng.uniform(c.min_len_s, c.max_len_s);
      const double share = rng.uniform(c.min_share, c.max_share);
      sc.add_interference(InterferenceEvent{.cores = {core},
                                            .t_start = t0,
                                            .t_end = t0 + len,
                                            .cpu_share = share,
                                            .victim_cluster_bw = 1.0,
                                            .global_bw = 1.0});
    }
  }
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSpec& f = spec.faults[i];
    if (f.kind != FaultSpec::Kind::kStraggler) continue;  // engine-side
    // A permanent straggler is pure speed-model sugar: a forever
    // interference window at the residual share, identical on both engines.
    std::vector<int> cores = resolve_fault_cores(f, topo, ctx("faults", i));
    sc.add_interference(InterferenceEvent{.cores = std::move(cores),
                                          .t_start = f.t_s,
                                          .t_end = InterferenceSpec::kForever,
                                          .cpu_share = f.slowdown,
                                          .victim_cluster_bw = 1.0,
                                          .global_bw = 1.0});
  }
  return sc;
}

}  // namespace das::scenario
