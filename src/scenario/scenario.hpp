#pragma once
// Declarative scenario specs: platform conditions as data, not code.
//
// Every dynamic-asymmetry condition in the repo used to be hard-coded C++
// inside individual benches (a DVFS square wave here, a co-runner there), so
// the set of reproducible conditions was frozen at the paper's figures. This
// subsystem turns a condition into a small JSON document (or a built-in
// catalog name) that parses into a ScenarioSpec and *builds* into the
// SpeedScenario both engines consume:
//
//     auto spec = scenario::load("dvfs-wave");          // catalog name
//     auto spec = scenario::load("conditions.json");    //   ... or a file
//     SpeedScenario sc = scenario::build(spec, topo);
//
// Drivers normally don't call these directly: ExecutorConfig::scenario_spec
// carries the spec into make_executor (which builds and owns the scenario),
// and the shared --scenario=<name|file> flag (exec/executor.hpp,
// bench/support.hpp) resolves user input. A spec is topology-agnostic:
// cluster references may say "fastest" and are resolved against the concrete
// Topology at build time, so the same file runs on the TX2 model, a Haswell
// node, or a custom machine.
//
// Spec format (JSON object; every key optional, unknown keys diagnosed):
//   {
//     "name": "my-conditions",
//     "dvfs": [{"cluster": 0|"fastest", "period_s": 5.0, "duty_hi": 0.5,
//               "hi": 1.0, "lo": 0.17, "phase_s": 0.0}],
//     "interference": [{"cores": [0,1]|"cluster:0"|"cluster:fastest",
//                       "t_start": 0.0, "t_end": 10.0, "cpu_share": 0.5,
//                       "victim_cluster_bw": 1.0, "global_bw": 1.0}],
//     "ramps": [{"cluster": "fastest", "t_start": 0.0, "t_end": 30.0,
//                "steps": 6, "from": 1.0, "to": 0.25}],
//     "churn": [{"seed": 2020, "events": 12, "horizon_s": 30.0,
//                "min_share": 0.3, "max_share": 0.9,
//                "min_len_s": 1.0, "max_len_s": 5.0}],
//     "faults": [{"kind": "fail"|"freeze"|"straggler",
//                 "cores": [3,5]|"cluster:0"|"cluster:fastest",
//                 "fraction": 0.25, "t": 1.0, "duration_s": 2.0,
//                 "slowdown": 0.2}]
//   }
// "// ..." line comments are allowed. Malformed specs throw ScenarioError
// with a file:line:col diagnostic; the CLI layer turns that into exit 2.

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/fault_plan.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "util/json.hpp"

namespace das::scenario {

/// Parse- or build-time diagnostic (malformed document, out-of-range core,
/// cluster reference the topology cannot satisfy, ...).
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Cluster reference resolved against the topology at build time.
inline constexpr int kFastestCluster = -1;

/// DVFS square wave on one cluster (mirrors DvfsSchedule, plus the symbolic
/// fastest-cluster reference).
struct DvfsSpec {
  int cluster = kFastestCluster;
  double period_s = 10.0;
  double duty_hi = 0.5;
  double hi = 1.0;
  double lo = 345.0 / 2035.0;  ///< paper's lowest/highest TX2 frequency ratio
  double phase_s = 0.0;

  friend bool operator==(const DvfsSpec&, const DvfsSpec&) = default;
};

/// Co-runner window (mirrors InterferenceEvent); victims are either an
/// explicit core list or every core of a (possibly symbolic) cluster.
struct InterferenceSpec {
  std::vector<int> cores;        ///< used when `cluster` is kNoCluster
  int cluster = kNoCluster;      ///< kFastestCluster or a concrete index
  double t_start = 0.0;
  double t_end = kForever;
  double cpu_share = 0.5;
  double victim_cluster_bw = 1.0;
  double global_bw = 1.0;

  static constexpr int kNoCluster = -2;
  static constexpr double kForever = std::numeric_limits<double>::infinity();

  friend bool operator==(const InterferenceSpec&, const InterferenceSpec&) = default;
};

/// Staircase slowdown of a whole cluster: [t_start, t_end) divided into
/// `steps` equal windows, speed share interpolated from `from` (first
/// window) to `to` (last window).
struct RampSpec {
  int cluster = kFastestCluster;
  double t_start = 0.0;
  double t_end = 30.0;
  int steps = 6;
  double from = 1.0;
  double to = 0.25;

  friend bool operator==(const RampSpec&, const RampSpec&) = default;
};

/// Seeded random interference churn: `events` single-core slowdown windows
/// drawn uniformly over [0, horizon_s), deterministic in (seed, topology).
struct ChurnSpec {
  std::uint64_t seed = 2020;
  int events = 12;
  double horizon_s = 30.0;
  double min_share = 0.3;
  double max_share = 0.9;
  double min_len_s = 1.0;
  double max_len_s = 5.0;

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Declarative failure-domain event: a set of victim cores that fail-stop
/// (`kFail`: dead for good at `t_s`), freeze (`kFreeze`: make no progress
/// during [t_s, t_s + duration_s) and resume afterwards), or become
/// permanent stragglers (`kStraggler`: run at `slowdown` x their base speed
/// from t_s on — pure SpeedScenario sugar, so it works on both engines).
/// Victims are an explicit core list, every core of a (possibly symbolic)
/// cluster, or a topology-agnostic `fraction` in (0, 1): the highest-
/// numbered ceil(fraction * num_cores) cores, capped so core 0 always
/// survives (the engines require at least one live core).
struct FaultSpec {
  enum class Kind : std::uint8_t { kFail = 0, kFreeze, kStraggler };

  Kind kind = Kind::kFail;
  std::vector<int> cores;    ///< used when `cluster` == kNoCluster, fraction == 0
  int cluster = kNoCluster;  ///< kFastestCluster or a concrete index
  double fraction = 0.0;     ///< victim share of the topology; 0 = unused
  double t_s = 1.0;          ///< fault onset (virtual/scenario seconds)
  double duration_s = 1.0;   ///< freeze length (kFreeze only)
  double slowdown = 0.2;     ///< residual speed share (kStraggler only)

  static constexpr int kNoCluster = -2;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

struct ScenarioSpec {
  std::string name;  ///< catalog name, file-given name, or "" (anonymous)
  std::vector<DvfsSpec> dvfs;
  std::vector<InterferenceSpec> interference;
  std::vector<RampSpec> ramps;
  std::vector<ChurnSpec> churn;
  std::vector<FaultSpec> faults;

  bool empty() const {
    return dvfs.empty() && interference.empty() && ramps.empty() &&
           churn.empty() && faults.empty();
  }

  /// True when any fault entry needs engine-side handling (fail/freeze).
  /// Stragglers expand into SpeedScenario windows at build() time and never
  /// reach the engines' fault machinery.
  bool has_engine_faults() const {
    for (const FaultSpec& f : faults)
      if (f.kind != FaultSpec::Kind::kStraggler) return true;
    return false;
  }

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

// --- catalog -----------------------------------------------------------------

/// Built-in named conditions, in catalog order: "clean", "dvfs-wave",
/// "interference-burst", "ramp-down", "random-churn", "phase-flip",
/// "fail-stop", "straggler-tail".
const std::vector<std::string>& catalog_names();
/// Catalog lookup (exact, case-sensitive); nullopt for unknown names.
std::optional<ScenarioSpec> find_catalog(const std::string& name);
/// catalog_names() joined with ", " — for diagnostics and --help text.
std::string catalog_summary();

// --- (de)serialisation ---------------------------------------------------------

/// Spec -> JSON document (parses back to an equal spec; the round-trip is
/// tested over the whole catalog).
json::Value to_json(const ScenarioSpec& spec);
/// Strict JSON -> spec: unknown keys, wrong types and out-of-range constants
/// all throw ScenarioError (`origin` names the source in diagnostics).
ScenarioSpec from_json(const json::Value& doc, const std::string& origin);
/// Parses a JSON scenario document from text.
ScenarioSpec parse(const std::string& text, const std::string& origin = "<scenario>");
/// Resolves a --scenario= value: catalog name first, then a path to a JSON
/// spec file; ScenarioError when it is neither.
ScenarioSpec load(const std::string& name_or_path);

// --- building ------------------------------------------------------------------

/// Expands the spec against a concrete topology (resolves "fastest",
/// staircases ramps, draws churn events, turns stragglers into forever
/// interference windows) into the SpeedScenario both engines consume.
/// Throws ScenarioError on references the topology cannot satisfy.
SpeedScenario build(const ScenarioSpec& spec, const Topology& topo);

/// Resolves the spec's fail/freeze faults against a concrete topology into
/// the platform-layer plan both engines replay (kFail events carry
/// until_s == +inf; kFreeze events thaw at until_s; stragglers expand into
/// SpeedScenario windows instead, see build()). Throws ScenarioError on
/// out-of-range cores, unsatisfiable cluster references, or a plan that
/// fail-stops EVERY core (the engines need at least one survivor to run the
/// reclaimed work).
FaultPlan resolve_faults(const ScenarioSpec& spec, const Topology& topo);

}  // namespace das::scenario
