#pragma once
// Inline evaluation of the tagged CostExpr forms (core/task_type.hpp).
//
// This is the single implementation of the kernel catalog's cost
// arithmetic: the factories in src/kernels/cost_models.cpp wrap these same
// evaluations in a CostExprFn and hand THAT to the type-erased CostFn, so
// the generic std::function path and a fused engine loop calling
// cost_expr_eval directly execute the identical operation sequence —
// bit-for-bit equal doubles, which is what lets the sim-determinism goldens
// pin both dispatch paths with one table. (No re-association happens at the
// default build flags; the expressions below must stay textually in the
// documented evaluation order.)
//
// The engines consult CostExpr::Kind at dispatch-selection time: a registry
// whose task types all carry a closed form gets the fused loop; a single
// kCallable type (user-supplied lambda) falls back to generic dispatch.

#include <algorithm>
#include <cmath>

#include "core/task_type.hpp"
#include "util/assert.hpp"

namespace das {

enum class Policy : std::uint8_t;  // core/policy.hpp

namespace detail {

/// Cache-fit factor for a working set of `bytes` against the participant's
/// cluster caches. Strict comparison: a working set exactly the size of the
/// cache does not fit (conflict misses / other residents). This makes the
/// 64x64 tile (8*64^2 = 32 KB) miss the A57's 32 KB L1 while fitting the
/// Denver's 64 KB one — the paper's §5.3 residency narrative.
inline double cost_expr_cache_fit(double bytes, const Cluster& cl,
                                  const CostExpr::MatMul& m) {
  if (bytes < cl.l1_kb * 1024.0) return m.l1_fit;
  if (bytes < cl.l2_kb * 1024.0) return m.l2_fit;
  return m.mem_fit;
}

}  // namespace detail

/// Evaluates a closed-form cost expression. Precondition: e.kind is not
/// kCallable (callers route kCallable through TaskTypeInfo::cost).
inline double cost_expr_eval(const CostExpr& e, const TaskParams& p,
                             const CostQuery& q) {
  switch (e.kind) {
    case CostExpr::Kind::kMatMul: {
      const CostExpr::MatMul& m = e.u.matmul;
      const double n = p.p0;
      DAS_CHECK_MSG(n >= 1.0, "matmul cost model requires p0 = tile >= 1");
      DAS_CHECK(q.cluster != nullptr);
      const double flops_total = 2.0 * n * n * n;
      const double flops_rank = flops_total / q.place.width;
      // One tile matrix (the paper's per-matrix footprint notion, §5.3).
      const double fit = detail::cost_expr_cache_fit(8.0 * n * n, *q.cluster, m);
      const double eff = 1.0 / (1.0 + m.alpha * (q.place.width - 1));
      const double rate = m.gflops * 1e9 * q.speed * fit * eff;
      return flops_rank / rate + m.sync_s * (q.place.width - 1);
    }
    case CostExpr::Kind::kCopy: {
      const CostExpr::Copy& m = e.u.copy;
      const double elems = p.p0;
      DAS_CHECK_MSG(elems >= 1.0, "copy cost model requires p0 = element count");
      DAS_CHECK(q.cluster != nullptr);
      const double bytes_rank = 16.0 * elems / q.place.width;  // read + write
      const double avail = q.cluster->mem_bw_gbs * 1e9 * q.bw_share;
      const double single = m.single_core_bw_frac * q.cluster->mem_bw_gbs * 1e9;
      const double bw_bound = std::min(single, avail / q.place.width);
      // Issue-rate bound: at deep DVFS throttle the core cannot generate
      // enough outstanding requests to saturate its bandwidth share.
      const double cpu_bound = m.cpu_gbs_per_speed * 1e9 * q.speed;
      return bytes_rank / std::min(bw_bound, cpu_bound);
    }
    case CostExpr::Kind::kStencil: {
      const CostExpr::Stencil& m = e.u.stencil;
      const double n = p.p0;
      DAS_CHECK_MSG(n >= 3.0, "stencil cost model requires p0 = grid >= 3");
      DAS_CHECK(q.cluster != nullptr);
      const double points_rank = n * n / q.place.width;
      // Two grids resident (in + out); spilling the shared L2 hurts, by an
      // amount that depends on the core class's latency hiding (Cluster::
      // stream_fit) — big out-of-order cores keep streaming, little ones
      // stall.
      const double ws_bytes = 2.0 * 8.0 * n * n;
      const double fit =
          ws_bytes <= q.cluster->l2_kb * 1024.0 ? 1.0 : q.cluster->stream_fit;
      const double eff = 1.0 / (1.0 + m.alpha * (q.place.width - 1));
      const double rate =
          (m.gflops / m.flops_per_point) * 1e9 * q.speed * fit * eff;
      return points_rank / rate + m.sync_s * (q.place.width - 1);
    }
    case CostExpr::Kind::kHeatBand: {
      const CostExpr::HeatBand& m = e.u.heat;
      const double n = p.p0;
      DAS_CHECK_MSG(n >= 3.0, "heat cost model requires p0 = grid >= 3");
      DAS_CHECK(q.cluster != nullptr);
      const int w = q.place.width;
      const double points_rank = n * n / w;
      // Cache-aggregation bonus: each participant's sub-band working set is
      // 1/w of the task's, so it fits closer to the private caches. Capped —
      // the bonus saturates once everything is L1-resident.
      const double aggr = std::min(1.0 + 0.04 * (w - 1), 1.25);
      const double rate =
          (m.gflops / m.flops_per_point) * 1e9 * q.speed * aggr;
      // Lighter sync than the tile kernels: band sweeps have no tile
      // handoff, only the assembly barrier.
      return points_rank / rate + 3e-6 * (w - 1);
    }
    case CostExpr::Kind::kFixed:
      return e.u.fixed.seconds;
    case CostExpr::Kind::kComm: {
      const CostExpr::Comm& m = e.u.comm;
      const double bytes = std::max(p.p0, 0.0);
      const double wire = m.latency_s + bytes / (m.bw_gbs * 1e9);
      // Local packing/unpacking of ghost cells: benefits mildly from cache
      // sharing when molded (paper §5.4 attributes the DAM-C/DAM-P edge on
      // Heat to exactly this effect).
      const double pack = 0.3 * wire / (1.0 + 0.5 * (q.place.width - 1));
      return wire / q.speed + pack;
    }
    case CostExpr::Kind::kKmeansMap: {
      const CostExpr::Kmeans& m = e.u.kmeans;
      const double points = p.p0, dims = p.p1, k = p.p2;
      DAS_CHECK(points >= 1.0 && dims >= 1.0 && k >= 1.0);
      const int w = q.place.width;
      const double flops = 3.0 * points * dims * k / w;
      // The paper's K-means nests the assignment loop inside a graph node,
      // so a molded task streams disjoint point ranges against shared
      // read-only centroids: per-participant working sets shrink with width
      // (mild cache aggregation), against a small assembly-sync overhead.
      // Net effect: molding is slightly cost-positive — the paper's
      // Fig. 9(c) shows the wide places dominating under DAM-P.
      const double aggr = std::min(1.0 + 0.03 * (w - 1), 1.2);
      return flops / (m.rate_g * 1e9 * q.speed * aggr) + 3e-6 * (w - 1);
    }
    case CostExpr::Kind::kKmeansReduce: {
      const CostExpr::Kmeans& m = e.u.kmeans;
      const double vals = std::max(p.p0, 1.0);
      const double flops = 8.0 * vals;  // accumulate + divide per value
      return flops / (m.rate_g * 1e9 * q.speed) / q.place.width +
             1e-6;  // fixed task-dispatch floor
    }
    case CostExpr::Kind::kCallable:
      break;
  }
  DAS_ASSERT(!"cost_expr_eval on a kCallable expression");
  return 0.0;
}

/// Evaluates through the expression when one exists, the callable otherwise
/// — the engines' generic (non-fused) cost path still skips the
/// std::function indirection for catalog-built types.
inline double cost_eval(const TaskTypeInfo& info, const TaskParams& p,
                        const CostQuery& q) {
  return info.expr.kind == CostExpr::Kind::kCallable ? info.cost(p, q)
                                                     : cost_expr_eval(info.expr, p, q);
}

/// The functor the kernel factories wrap into CostFn. register_type
/// recognises it via std::function::target<CostExprFn>() and copies the
/// expression into TaskTypeInfo::expr — registration sites need no change
/// to opt into fused dispatch.
struct CostExprFn {
  CostExpr expr;
  double operator()(const TaskParams& p, const CostQuery& q) const {
    return cost_expr_eval(expr, p, q);
  }
};

/// Registry-wide cost-model classification, consulted at dispatch-selection
/// time (sim::SimEngine::refresh_dispatch, exec::plan_dispatch): the fused
/// loops are instantiated per (policy, CostClass), with kFixed getting its
/// own instantiation because the constant-cost form reduces the whole cost
/// evaluation to one load — the regime the scheduler-overhead benches run in.
enum class CostClass : std::uint8_t {
  kFixed,       ///< every executable type is a kFixed constant
  kClosedForm,  ///< every executable type carries a closed form
  kCallable,    ///< some type needs the std::function escape hatch
};

/// Classifies every EXECUTABLE type of the registry (a type with neither a
/// callable nor a closed form cannot run on the DES at all — submit rejects
/// DAGs naming it — so it does not demote dispatch).
inline CostClass classify_cost_models(const TaskTypeRegistry& reg) {
  CostClass cls = CostClass::kFixed;
  for (TaskTypeId id = 0; id < reg.size(); ++id) {
    const TaskTypeInfo& t = reg.info(id);
    if (t.expr.kind == CostExpr::Kind::kCallable) {
      if (!t.cost) continue;
      return CostClass::kCallable;
    }
    if (t.expr.kind != CostExpr::Kind::kFixed) cls = CostClass::kClosedForm;
  }
  return cls;
}

/// Canonical label of a fused (policy x cost-class) engine instantiation —
/// what SimEngine::dispatch_variant() reports and the determinism test
/// asserts engaged. Precondition: cls is not kCallable (that is "generic").
const char* fused_variant_name(Policy policy, CostClass cls);

/// Human-readable tag, for dispatch introspection and bench labels.
inline const char* cost_expr_kind_name(CostExpr::Kind k) {
  switch (k) {
    case CostExpr::Kind::kCallable: return "callable";
    case CostExpr::Kind::kMatMul: return "matmul";
    case CostExpr::Kind::kCopy: return "copy";
    case CostExpr::Kind::kStencil: return "stencil";
    case CostExpr::Kind::kHeatBand: return "heat-band";
    case CostExpr::Kind::kFixed: return "fixed";
    case CostExpr::Kind::kComm: return "comm";
    case CostExpr::Kind::kKmeansMap: return "kmeans-map";
    case CostExpr::Kind::kKmeansReduce: return "kmeans-reduce";
  }
  return "?";
}

}  // namespace das
