#include "core/policy.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace das {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kRws: return "RWS";
    case Policy::kRwsmC: return "RWSM-C";
    case Policy::kFa: return "FA";
    case Policy::kFamC: return "FAM-C";
    case Policy::kDa: return "DA";
    case Policy::kDamC: return "DAM-C";
    case Policy::kDamP: return "DAM-P";
    case Policy::kDheft: return "dHEFT";
  }
  return "?";
}

const std::vector<Policy>& all_policies() {
  static const std::vector<Policy> kAll = {
      Policy::kRws, Policy::kRwsmC, Policy::kFa,  Policy::kFamC,
      Policy::kDa,  Policy::kDamC,  Policy::kDamP};
  return kAll;
}

const std::vector<Policy>& all_known_policies() {
  static const std::vector<Policy> kAll = [] {
    std::vector<Policy> v = all_policies();
    v.push_back(Policy::kDheft);
    return v;
  }();
  return kAll;
}

std::optional<Policy> policy_from_name(const std::string& name) {
  for (Policy p : all_known_policies())
    if (name == policy_name(p)) return p;
  return std::nullopt;
}

PolicyEngine::PolicyEngine(Policy policy, const Topology& topo, PttStore* ptt,
                           std::uint64_t seed, PolicyOptions options)
    : policy_(policy),
      traits_(policy_traits(policy)),
      topo_(&topo),
      ptt_(ptt),
      options_(options),
      rng_state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {
  DAS_CHECK_MSG(!traits_.uses_ptt || ptt_ != nullptr,
                std::string(policy_name(policy)) + " requires a PttStore");
  const Cluster& fast = topo.cluster(topo.fastest_cluster());
  for (int c = fast.first_core; c < fast.end_core(); ++c) fast_cores_.push_back(c);
  for (const ExecutionPlace& p : topo.places())
    if (fast.contains(p.leader)) fast_cluster_places_.push_back(p);
  if (policy_ == Policy::kDheft) {
    reserved_ = std::make_unique<std::atomic<double>[]>(
        static_cast<std::size_t>(topo.num_cores()));
    for (int c = 0; c < topo.num_cores(); ++c)
      reserved_[static_cast<std::size_t>(c)].store(0.0, std::memory_order_relaxed);
  }
}

ExecutionPlace PolicyEngine::dheft_place(TaskTypeId type) {
  // HEFT's earliest-finish rule with runtime-discovered execution times
  // (dHEFT): finish(core) = reserved work on the core + the PTT's width-1
  // estimate. Unexplored cores borrow the mean of the explored entries so
  // the very first placements still spread by reserved work.
  const Ptt& table = ptt_->table(type);
  double explored_sum = 0.0;
  int explored = 0;
  for (const ExecutionPlace& p : topo_->width1_places()) {
    if (table.samples(topo_->place_id(p)) > 0) {
      explored_sum += table.value(topo_->place_id(p));
      ++explored;
    }
  }
  const double fallback = explored > 0 ? explored_sum / explored : 1e-4;

  double best_finish = std::numeric_limits<double>::infinity();
  ExecutionPlace best{0, 1};
  double best_est = fallback;
  for (const ExecutionPlace& p : topo_->width1_places()) {
    const int pid = topo_->place_id(p);
    const double est = table.samples(pid) > 0 ? table.value(pid) : fallback;
    const double finish =
        reserved_[static_cast<std::size_t>(p.leader)].load(std::memory_order_relaxed) +
        est;
    if (finish < best_finish) {
      best_finish = finish;
      best = p;
      best_est = est;
    }
  }
  reserved_[static_cast<std::size_t>(best.leader)].fetch_add(
      best_est, std::memory_order_relaxed);
  return best;
}

int PolicyEngine::round_robin_fast_core() {
  const std::uint32_t n = rr_counter_.fetch_add(1, std::memory_order_relaxed);
  return fast_cores_[n % fast_cores_.size()];
}

// The dynamic hooks are ONE switch over the static instantiations
// (policy.hpp): any behaviour change lands in both dispatch paths at once,
// which is what lets the determinism goldens pin fused == generic.

WakeDecision PolicyEngine::on_ready(TaskTypeId type, Priority priority,
                                    int waking_core) {
  switch (policy_) {
    case Policy::kRws:
      return on_ready_static<Policy::kRws>(type, priority, waking_core);
    case Policy::kRwsmC:
      return on_ready_static<Policy::kRwsmC>(type, priority, waking_core);
    case Policy::kFa:
      return on_ready_static<Policy::kFa>(type, priority, waking_core);
    case Policy::kFamC:
      return on_ready_static<Policy::kFamC>(type, priority, waking_core);
    case Policy::kDa:
      return on_ready_static<Policy::kDa>(type, priority, waking_core);
    case Policy::kDamC:
      return on_ready_static<Policy::kDamC>(type, priority, waking_core);
    case Policy::kDamP:
      return on_ready_static<Policy::kDamP>(type, priority, waking_core);
    case Policy::kDheft:
      return on_ready_static<Policy::kDheft>(type, priority, waking_core);
  }
  return on_ready_static<Policy::kRws>(type, priority, waking_core);
}

ExecutionPlace PolicyEngine::on_execute(TaskTypeId type, Priority priority,
                                        int core) {
  // Only the moldability trait matters here; two instantiations cover all
  // eight policies.
  if (policy_moldable(policy_))
    return on_execute_static<Policy::kDamC>(type, priority, core);
  return on_execute_static<Policy::kRws>(type, priority, core);
}

ExecutionPlace PolicyEngine::local_search(TaskTypeId type, int core) {
  // Algorithm 1, line 4: keep the resource partition and core fixed, mold
  // only the width; minimise predicted time x width (parallel cost).
  return search(type, topo_->local_places(core), Objective::kCost);
}

ExecutionPlace PolicyEngine::search(TaskTypeId type,
                                    const std::vector<ExecutionPlace>& candidates,
                                    Objective objective) {
  DAS_CHECK(!candidates.empty());
  DAS_CHECK(ptt_ != nullptr);
  const Ptt& table = ptt_->table(type);

  // Minimise the objective key. Zero-valued (unexplored) entries produce a
  // zero key and therefore win, yielding the paper's explore-everything
  // start-up behaviour. Exact key ties are broken by fewest samples, then
  // round-robin (or randomly under options_.random_tie_break) so the initial
  // exploration fans out instead of hammering candidate #0.
  double best_key = std::numeric_limits<double>::infinity();
  std::uint64_t best_samples = 0;
  std::vector<const ExecutionPlace*> ties;
  for (const ExecutionPlace& p : candidates) {
    const int pid = topo_->place_id(p);
    const double v = table.value(pid);
    const double key =
        objective == Objective::kCost ? v * static_cast<double>(p.width) : v;
    const std::uint64_t s = table.samples(pid);
    if (key < best_key || (key == best_key && s < best_samples)) {
      best_key = key;
      best_samples = s;
      ties.clear();
      ties.push_back(&p);
    } else if (key == best_key && s == best_samples) {
      ties.push_back(&p);
    }
  }
  DAS_ASSERT(!ties.empty());
  if (ties.size() == 1) return *ties.front();

  std::size_t idx;
  if (options_.random_tie_break) {
    // splitmix64 step on the shared state; contention is irrelevant here
    // because ties only persist during the brief exploration phase.
    std::uint64_t s = rng_state_.fetch_add(0x9e3779b97f4a7c15ULL,
                                           std::memory_order_relaxed);
    SplitMix64 sm(s);
    idx = static_cast<std::size_t>(sm.next() % ties.size());
  } else {
    idx = tie_counter_.fetch_add(1, std::memory_order_relaxed) % ties.size();
  }
  return *ties[idx];
}

void PolicyEngine::dheft_drain(const ExecutionPlace& place, double seconds) {
  // Drain the reservation by the observed time; clamp drift at zero.
  auto& r = reserved_[static_cast<std::size_t>(place.leader)];
  double cur = r.load(std::memory_order_relaxed);
  double next;
  do {
    next = std::max(cur - seconds, 0.0);
  } while (!r.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

void PolicyEngine::record_sample(TaskTypeId type, const ExecutionPlace& place,
                                 double seconds) {
  // Only the uses_ptt trait and the dHEFT drain matter; three
  // instantiations cover all eight policies.
  if (policy_ == Policy::kDheft)
    return record_sample_static<Policy::kDheft>(type, place, seconds);
  if (traits_.uses_ptt)
    return record_sample_static<Policy::kDamC>(type, place, seconds);
  return record_sample_static<Policy::kRws>(type, place, seconds);
}

}  // namespace das
