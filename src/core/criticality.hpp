#pragma once
// Automatic task-criticality inference.
//
// The paper relies on user-specified priorities ("Unlike CATS, our work does
// not address the problem of determining task criticality dynamically",
// §4.2.3) and describes high-priority tasks as those that "release a large
// amount of dependent tasks, or tasks that lie on the DAG's critical path"
// (§2). This module implements both notions as a DAG pass, in the spirit of
// CATS' bottom-level criticality (Chronaki et al., ICS'15), so workloads
// without hand-marked priorities can still benefit from the criticality-
// aware schedulers. The ablation bench compares inferred marks against the
// generator's ground truth.

#include <vector>

#include "core/dag.hpp"
#include "core/task_type.hpp"

namespace das {

struct CriticalityOptions {
  /// Mark every node on a longest path (bottom+top level spanning the DAG's
  /// longest path). When false, only fanout marking applies.
  bool mark_critical_path = true;
  /// Additionally mark nodes releasing at least `fanout_threshold`
  /// dependents (the paper's "release a large amount of dependent tasks");
  /// 0 disables fanout marking.
  int fanout_threshold = 0;
  /// Weight nodes by their type's cost model evaluated at width 1 on the
  /// given core class instead of counting nodes. Null = unit weights.
  const TaskTypeRegistry* registry = nullptr;
  const Cluster* reference_cluster = nullptr;  ///< required iff registry set
};

/// Longest (weighted) path from each node to any sink, including the node
/// itself. Unit weights unless options carry a registry.
std::vector<double> bottom_levels(const Dag& dag, const CriticalityOptions& opts = {});
/// Longest (weighted) path from any source to each node, including itself.
std::vector<double> top_levels(const Dag& dag, const CriticalityOptions& opts = {});

/// Overwrites every node's priority: kHigh for nodes selected by `opts`,
/// kLow otherwise. Returns the number of nodes marked high.
int infer_criticality(Dag& dag, const CriticalityOptions& opts = {});

}  // namespace das
