#include "core/cost_expr.hpp"

#include "core/policy.hpp"
#include "util/assert.hpp"

namespace das {

const char* fused_variant_name(Policy policy, CostClass cls) {
  DAS_ASSERT(cls != CostClass::kCallable);
  const bool fixed = cls == CostClass::kFixed;
  // Static strings: the engines hand the label out as a bare const char*
  // with no lifetime obligations (bench labels, test assertions).
  switch (policy) {
    case Policy::kRws: return fixed ? "fused:RWS/fixed" : "fused:RWS/expr";
    case Policy::kRwsmC:
      return fixed ? "fused:RWSM-C/fixed" : "fused:RWSM-C/expr";
    case Policy::kFa: return fixed ? "fused:FA/fixed" : "fused:FA/expr";
    case Policy::kFamC:
      return fixed ? "fused:FAM-C/fixed" : "fused:FAM-C/expr";
    case Policy::kDa: return fixed ? "fused:DA/fixed" : "fused:DA/expr";
    case Policy::kDamC:
      return fixed ? "fused:DAM-C/fixed" : "fused:DAM-C/expr";
    case Policy::kDamP:
      return fixed ? "fused:DAM-P/fixed" : "fused:DAM-P/expr";
    case Policy::kDheft:
      return fixed ? "fused:dHEFT/fixed" : "fused:dHEFT/expr";
  }
  return "generic";
}

}  // namespace das
