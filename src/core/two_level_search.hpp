#pragma once
// Two-level (cluster-cached) PTT search — a prototype of the "scalable
// performance prediction models" the paper defers to future work (§4.1.1:
// the flat global search "may result in non negligible overheads when
// scaling to platforms with large amount of execution places and cores").
//
// Idea: the arg-min over all places decomposes over clusters. Each cluster
// caches its own best place per objective and is only rescanned after one of
// its entries changed (record_sample invalidates the owning cluster). A
// global search then costs O(#clusters + #places in dirty clusters) instead
// of O(#places): on the 4-node / 144-place cluster topology this cuts the
// decision cost roughly by the cluster fan-out when updates are localised —
// bench/micro_components quantifies it.
//
// Thread-safety: invalidate() may be called concurrently with find_min();
// a concurrent invalidation is picked up by the NEXT search (momentarily
// stale decisions are acceptable for scheduling, like the PTT itself).
// Concurrent find_min() calls must be externally serialised per instance.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "platform/topology.hpp"

namespace das {

class TwoLevelSearch {
 public:
  explicit TwoLevelSearch(const Topology& topo);

  /// Marks the cluster owning `place` stale (cheap; call on PTT update).
  void invalidate(const ExecutionPlace& place);
  void invalidate_all();

  /// Arg-min of PTT value (kTime) or value x width (kCost) over all places,
  /// rescanning only stale clusters. Matches the flat search's result for
  /// every state reachable through invalidate() notifications. Exploration
  /// note: zero (unexplored) entries win their cluster scan exactly as in
  /// the flat search.
  ExecutionPlace find_min(const Ptt& ptt, PolicyEngine::Objective objective);

  /// Cluster rescans performed so far (tests/benchmarks).
  std::uint64_t rescans() const { return rescans_; }

 private:
  struct ClusterCache {
    std::atomic<bool> dirty{true};
    ExecutionPlace best_cost{};
    double cost_key = 0.0;
    ExecutionPlace best_time{};
    double time_key = 0.0;
  };

  const Topology* topo_;
  std::vector<std::vector<int>> cluster_place_ids_;  // per cluster
  std::unique_ptr<ClusterCache[]> caches_;
  std::uint64_t rescans_ = 0;
};

}  // namespace das
