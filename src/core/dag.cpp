#include "core/dag.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace das {

std::size_t Dag::SuccessorRange::size() const {
  std::size_t n = static_cast<std::size_t>(seg_end_ - seg_);
  for (std::int32_t c = chain_; c >= 0;
       c = (*pool_)[static_cast<std::size_t>(c)].next)
    ++n;
  return n;
}

const DagEdge& Dag::SuccessorRange::operator[](std::size_t i) const {
  const std::size_t seg_len = static_cast<std::size_t>(seg_end_ - seg_);
  if (i < seg_len) return seg_[i];
  i -= seg_len;
  std::int32_t c = chain_;
  while (i > 0 && c >= 0) {
    c = (*pool_)[static_cast<std::size_t>(c)].next;
    --i;
  }
  DAS_CHECK_MSG(c >= 0, "successor index out of range");
  return (*pool_)[static_cast<std::size_t>(c)].edge;
}

NodeId Dag::add_node(TaskTypeId type, Priority priority, TaskParams params,
                     WorkFn work) {
  DAS_CHECK(type != kInvalidTaskType);
  DagNode n;
  n.type = type;
  n.priority = priority;
  n.params = params;
  n.work = std::move(work);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void Dag::add_edge(NodeId from, NodeId to, double delay_s) {
  DAS_CHECK(from >= 0 && from < num_nodes());
  DAS_CHECK(to >= 0 && to < num_nodes());
  DAS_CHECK_MSG(from != to, "self-edges are not allowed");
  DAS_CHECK(delay_s >= 0.0);
  if (chain_head_.size() < nodes_.size()) {
    chain_head_.resize(nodes_.size(), -1);
    chain_tail_.resize(nodes_.size(), -1);
  }
  const std::int32_t cell = static_cast<std::int32_t>(pool_.size());
  pool_.push_back(EdgeCell{DagEdge{to, delay_s}, -1});
  const auto f = static_cast<std::size_t>(from);
  if (chain_tail_[f] < 0) {
    chain_head_[f] = cell;
  } else {
    pool_[static_cast<std::size_t>(chain_tail_[f])].next = cell;
  }
  chain_tail_[f] = cell;
  nodes_[static_cast<std::size_t>(to)].num_predecessors++;
  if (preds_counts_.size() < nodes_.size()) preds_counts_.resize(nodes_.size(), 0);
  preds_counts_[static_cast<std::size_t>(to)]++;
  num_edges_++;
}

Dag::SuccessorRange Dag::successors(NodeId id) const {
  DAS_ASSERT(id >= 0 && id < num_nodes());
  const auto i = static_cast<std::size_t>(id);
  const DagEdge* seg = nullptr;
  const DagEdge* seg_end = nullptr;
  if (i + 1 < csr_off_.size()) {
    seg = csr_edges_.data() + csr_off_[i];
    seg_end = csr_edges_.data() + csr_off_[i + 1];
  }
  const std::int32_t chain = i < chain_head_.size() ? chain_head_[i] : -1;
  return SuccessorRange(seg, seg_end, &pool_, chain);
}

void Dag::seal() const {
  const std::size_t n = nodes_.size();
  if (pool_.empty() && csr_off_.size() == n + 1) return;

  std::vector<DagEdge> edges;
  edges.reserve(num_edges_);
  std::vector<std::int32_t> off(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    off[i] = static_cast<std::int32_t>(edges.size());
    if (i + 1 < csr_off_.size()) {
      for (std::int32_t k = csr_off_[i]; k < csr_off_[i + 1]; ++k)
        edges.push_back(csr_edges_[static_cast<std::size_t>(k)]);
    }
    if (i < chain_head_.size()) {
      for (std::int32_t c = chain_head_[i]; c >= 0;
           c = pool_[static_cast<std::size_t>(c)].next)
        edges.push_back(pool_[static_cast<std::size_t>(c)].edge);
    }
  }
  off[n] = static_cast<std::int32_t>(edges.size());
  DAS_ASSERT(edges.size() == num_edges_);

  csr_edges_ = std::move(edges);
  csr_off_ = std::move(off);
  // Release the staging pool outright (swap, not clear): after a seal the
  // arena owns every edge, and steady-state DAG reuse should not pin a
  // second copy's worth of memory.
  std::vector<EdgeCell>().swap(pool_);
  std::vector<std::int32_t>().swap(chain_head_);
  std::vector<std::int32_t>().swap(chain_tail_);

  // Snapshot the submit metadata in one pass, so engines neither revalidate
  // nor rescan the node array per submit (K-means resubmits the same sealed
  // DAG every iteration and pays this once).
  preds_counts_.resize(n, 0);
  roots_cache_.clear();
  distinct_types_.clear();
  min_rank_ = n > 0 ? nodes_[0].rank : 0;
  max_rank_ = min_rank_;
  min_cross_rank_delay_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const DagNode& node = nodes_[i];
    if (node.num_predecessors == 0)
      roots_cache_.push_back(static_cast<NodeId>(i));
    if (node.rank < min_rank_) min_rank_ = node.rank;
    if (node.rank > max_rank_) max_rank_ = node.rank;
    // Conservative DES lookahead (min_cross_rank_delay()): one pass over the
    // freshly compacted CSR spans, amortized into the metadata sweep.
    for (std::int32_t k = csr_off_[i]; k < csr_off_[i + 1]; ++k) {
      const DagEdge& e = csr_edges_[static_cast<std::size_t>(k)];
      if (nodes_[static_cast<std::size_t>(e.to)].rank != node.rank &&
          e.delay_s < min_cross_rank_delay_)
        min_cross_rank_delay_ = e.delay_s;
    }
    bool seen = false;
    for (const TaskTypeId t : distinct_types_)
      if (t == node.type) {
        seen = true;
        break;
      }
    if (!seen) distinct_types_.push_back(node.type);
  }
}

std::vector<NodeId> Dag::roots() const {
  std::vector<NodeId> r;
  for (NodeId i = 0; i < num_nodes(); ++i)
    if (nodes_[static_cast<std::size_t>(i)].num_predecessors == 0) r.push_back(i);
  return r;
}

bool Dag::is_acyclic() const {
  seal();
  std::vector<int> indeg(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) indeg[i] = nodes_[i].num_predecessors;
  std::vector<NodeId> stack = roots();
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    for (const DagEdge& e : successors(n))
      if (--indeg[static_cast<std::size_t>(e.to)] == 0) stack.push_back(e.to);
  }
  return visited == nodes_.size();
}

std::vector<NodeId> Dag::topological_order() const {
  seal();
  std::vector<int> indeg(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) indeg[i] = nodes_[i].num_predecessors;
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack = roots();
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const DagEdge& e : successors(n))
      if (--indeg[static_cast<std::size_t>(e.to)] == 0) stack.push_back(e.to);
  }
  DAS_CHECK_MSG(order.size() == nodes_.size(), "DAG contains a cycle");
  return order;
}

int Dag::longest_path_nodes() const {
  if (nodes_.empty()) return 0;
  const std::vector<NodeId> order = topological_order();
  std::vector<int> depth(nodes_.size(), 1);
  int best = 1;
  for (NodeId n : order) {
    for (const DagEdge& e : successors(n)) {
      auto& d = depth[static_cast<std::size_t>(e.to)];
      d = std::max(d, depth[static_cast<std::size_t>(n)] + 1);
      best = std::max(best, d);
    }
  }
  return best;
}

double Dag::dag_parallelism() const {
  const int lp = longest_path_nodes();
  if (lp == 0) return 0.0;
  return static_cast<double>(num_nodes()) / static_cast<double>(lp);
}

}  // namespace das
