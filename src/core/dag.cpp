#include "core/dag.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace das {

NodeId Dag::add_node(TaskTypeId type, Priority priority, TaskParams params,
                     WorkFn work) {
  DAS_CHECK(type != kInvalidTaskType);
  DagNode n;
  n.type = type;
  n.priority = priority;
  n.params = params;
  n.work = std::move(work);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void Dag::add_edge(NodeId from, NodeId to, double delay_s) {
  DAS_CHECK(from >= 0 && from < num_nodes());
  DAS_CHECK(to >= 0 && to < num_nodes());
  DAS_CHECK_MSG(from != to, "self-edges are not allowed");
  DAS_CHECK(delay_s >= 0.0);
  nodes_[static_cast<std::size_t>(from)].successors.push_back(DagEdge{to, delay_s});
  nodes_[static_cast<std::size_t>(to)].num_predecessors++;
  num_edges_++;
}

DagNode& Dag::node(NodeId id) {
  DAS_CHECK(id >= 0 && id < num_nodes());
  return nodes_[static_cast<std::size_t>(id)];
}

const DagNode& Dag::node(NodeId id) const {
  DAS_CHECK(id >= 0 && id < num_nodes());
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Dag::roots() const {
  std::vector<NodeId> r;
  for (NodeId i = 0; i < num_nodes(); ++i)
    if (nodes_[static_cast<std::size_t>(i)].num_predecessors == 0) r.push_back(i);
  return r;
}

bool Dag::is_acyclic() const {
  std::vector<int> indeg(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) indeg[i] = nodes_[i].num_predecessors;
  std::vector<NodeId> stack = roots();
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    for (const DagEdge& e : nodes_[static_cast<std::size_t>(n)].successors)
      if (--indeg[static_cast<std::size_t>(e.to)] == 0) stack.push_back(e.to);
  }
  return visited == nodes_.size();
}

std::vector<NodeId> Dag::topological_order() const {
  std::vector<int> indeg(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) indeg[i] = nodes_[i].num_predecessors;
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack = roots();
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const DagEdge& e : nodes_[static_cast<std::size_t>(n)].successors)
      if (--indeg[static_cast<std::size_t>(e.to)] == 0) stack.push_back(e.to);
  }
  DAS_CHECK_MSG(order.size() == nodes_.size(), "DAG contains a cycle");
  return order;
}

int Dag::longest_path_nodes() const {
  if (nodes_.empty()) return 0;
  const std::vector<NodeId> order = topological_order();
  std::vector<int> depth(nodes_.size(), 1);
  int best = 1;
  for (NodeId n : order) {
    const auto& node = nodes_[static_cast<std::size_t>(n)];
    for (const DagEdge& e : node.successors) {
      auto& d = depth[static_cast<std::size_t>(e.to)];
      d = std::max(d, depth[static_cast<std::size_t>(n)] + 1);
      best = std::max(best, d);
    }
  }
  return best;
}

double Dag::dag_parallelism() const {
  const int lp = longest_path_nodes();
  if (lp == 0) return 0.0;
  return static_cast<double>(num_nodes()) / static_cast<double>(lp);
}

}  // namespace das
