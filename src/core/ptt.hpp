#pragma once
// Performance Trace Table (paper §4.1.1, Fig. 2(b)).
//
// One table per task type. Each entry tracks the observed execution time of
// that task type at one execution place (leader core, width), smoothed with
// a weighted average (default new:old = 1:4) so short isolated events do not
// flip scheduling decisions, yet a few consecutive measurements are enough
// to track genuine asymmetry changes.
//
// Entries are initialised to ZERO. Because every scheduler search *minimises*
// over entries, a zero entry always wins, which guarantees each place is
// explored at least once before the model starts discriminating — this is
// the paper's exploration mechanism and we reproduce it literally (an
// optimistic-initialisation alternative is evaluated in the ablation bench).
//
// Layout: entries are grouped by leader core and each leader's group starts
// on a fresh cache line, so a worker updating its own places does not
// false-share with its neighbours (paper: "individual rows fit into cache
// lines ... each core mainly accesses a single cache line indexed with its
// own core id").

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/task_type.hpp"
#include "platform/topology.hpp"

namespace das {

/// Weight of the NEW sample is num/den; the old value keeps (den-num)/den.
/// The paper's recommended ratio is 1:4, i.e. {1, 5}; Fig. 8 sweeps num=1..5.
struct UpdateRatio {
  int num = 1;
  int den = 5;
};

class Ptt {
 public:
  Ptt(const Topology& topo, UpdateRatio ratio = {});

  /// Smoothed execution-time estimate (seconds) for a place; 0.0 while the
  /// place is unexplored.
  double value(int place_id) const;
  double value(const ExecutionPlace& p) const { return value(topo_->place_id(p)); }

  /// Number of samples folded into the entry.
  std::uint64_t samples(int place_id) const;
  std::uint64_t samples(const ExecutionPlace& p) const { return samples(topo_->place_id(p)); }

  /// Folds a measurement (seconds) into the entry. The first sample is
  /// stored verbatim; later samples use the weighted average. Lock-free
  /// (CAS loop) so concurrent finishers cannot lose updates.
  void update(int place_id, double sample_s);
  void update(const ExecutionPlace& p, double s) { update(topo_->place_id(p), s); }

  /// Overwrites every entry (used by tests and the optimistic-init ablation).
  void fill(double value_s);

  const Topology& topology() const { return *topo_; }
  UpdateRatio ratio() const { return ratio_; }

 private:
  struct Entry {
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> samples{0};
  };

  const Topology* topo_;
  UpdateRatio ratio_;
  std::vector<int> slot_of_place_;            // place_id -> slot in entries_
  std::unique_ptr<Entry[]> entries_;
  std::size_t num_slots_ = 0;
};

/// One PTT per task type, all sharing a topology and update ratio. Tables
/// are created eagerly (the registry is small), so lookup is lock-free.
class PttStore {
 public:
  PttStore(const Topology& topo, int num_types, UpdateRatio ratio = {});

  Ptt& table(TaskTypeId id);
  const Ptt& table(TaskTypeId id) const;
  int num_types() const { return static_cast<int>(tables_.size()); }
  UpdateRatio ratio() const { return ratio_; }

 private:
  UpdateRatio ratio_;
  std::vector<std::unique_ptr<Ptt>> tables_;
};

}  // namespace das
