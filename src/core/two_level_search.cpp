#include "core/two_level_search.hpp"

#include <limits>

#include "util/assert.hpp"

namespace das {

TwoLevelSearch::TwoLevelSearch(const Topology& topo) : topo_(&topo) {
  cluster_place_ids_.resize(static_cast<std::size_t>(topo.num_clusters()));
  for (int pid = 0; pid < topo.num_places(); ++pid) {
    const int ci = topo.cluster_index_of(topo.place_at(pid).leader);
    cluster_place_ids_[static_cast<std::size_t>(ci)].push_back(pid);
  }
  caches_ = std::make_unique<ClusterCache[]>(
      static_cast<std::size_t>(topo.num_clusters()));
}

void TwoLevelSearch::invalidate(const ExecutionPlace& place) {
  DAS_CHECK(topo_->is_valid_place(place));
  const int ci = topo_->cluster_index_of(place.leader);
  caches_[static_cast<std::size_t>(ci)].dirty.store(true,
                                                    std::memory_order_release);
}

void TwoLevelSearch::invalidate_all() {
  for (int ci = 0; ci < topo_->num_clusters(); ++ci)
    caches_[static_cast<std::size_t>(ci)].dirty.store(true,
                                                      std::memory_order_release);
}

ExecutionPlace TwoLevelSearch::find_min(const Ptt& ptt,
                                        PolicyEngine::Objective objective) {
  double best_key = std::numeric_limits<double>::infinity();
  ExecutionPlace best{0, 1};
  for (int ci = 0; ci < topo_->num_clusters(); ++ci) {
    ClusterCache& cache = caches_[static_cast<std::size_t>(ci)];
    if (cache.dirty.exchange(false, std::memory_order_acq_rel)) {
      // Rescan this cluster's places; refresh both objectives in one pass.
      ++rescans_;
      double cost_key = std::numeric_limits<double>::infinity();
      double time_key = std::numeric_limits<double>::infinity();
      for (int pid : cluster_place_ids_[static_cast<std::size_t>(ci)]) {
        const ExecutionPlace& p = topo_->place_at(pid);
        const double v = ptt.value(pid);
        const double ck = v * p.width;
        if (ck < cost_key) {
          cost_key = ck;
          cache.best_cost = p;
        }
        if (v < time_key) {
          time_key = v;
          cache.best_time = p;
        }
      }
      cache.cost_key = cost_key;
      cache.time_key = time_key;
    }
    const bool cost = objective == PolicyEngine::Objective::kCost;
    const double key = cost ? cache.cost_key : cache.time_key;
    if (key < best_key) {
      best_key = key;
      best = cost ? cache.best_cost : cache.best_time;
    }
  }
  return best;
}

}  // namespace das
