#include "core/criticality.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace das {

namespace {

/// Node weight: 1.0 or the cost model's width-1 estimate on the reference
/// cluster at its base speed.
double node_weight(const DagNode& n, const CriticalityOptions& opts) {
  if (opts.registry == nullptr) return 1.0;
  DAS_CHECK_MSG(opts.reference_cluster != nullptr,
                "reference_cluster required for cost-weighted criticality");
  const TaskTypeInfo& info = opts.registry->info(n.type);
  if (!info.cost) return 1.0;
  CostQuery q;
  q.place = ExecutionPlace{opts.reference_cluster->first_core, 1};
  q.core = opts.reference_cluster->first_core;
  q.speed = opts.reference_cluster->base_speed;
  q.bw_share = 1.0;
  q.cluster = opts.reference_cluster;
  return std::max(info.cost(n.params, q), 1e-12);
}

}  // namespace

std::vector<double> bottom_levels(const Dag& dag, const CriticalityOptions& opts) {
  const std::vector<NodeId> order = dag.topological_order();
  std::vector<double> level(static_cast<std::size_t>(dag.num_nodes()), 0.0);
  // Process in reverse topological order: successors are final.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    const DagNode& node = dag.node(n);
    double best_succ = 0.0;
    for (const DagEdge& e : dag.successors(n))
      best_succ = std::max(best_succ, level[static_cast<std::size_t>(e.to)]);
    level[static_cast<std::size_t>(n)] = node_weight(node, opts) + best_succ;
  }
  return level;
}

std::vector<double> top_levels(const Dag& dag, const CriticalityOptions& opts) {
  const std::vector<NodeId> order = dag.topological_order();
  std::vector<double> level(static_cast<std::size_t>(dag.num_nodes()), 0.0);
  for (NodeId n : order) {
    const DagNode& node = dag.node(n);
    const double here = level[static_cast<std::size_t>(n)] + node_weight(node, opts);
    for (const DagEdge& e : dag.successors(n)) {
      auto& succ = level[static_cast<std::size_t>(e.to)];
      succ = std::max(succ, here);
    }
  }
  // Include the node itself, like bottom_levels.
  for (NodeId n : order)
    level[static_cast<std::size_t>(n)] += node_weight(dag.node(n), opts);
  return level;
}

int infer_criticality(Dag& dag, const CriticalityOptions& opts) {
  DAS_CHECK(dag.num_nodes() > 0);
  const std::vector<double> bottom = bottom_levels(dag, opts);
  const std::vector<double> top = top_levels(dag, opts);
  const double longest = *std::max_element(bottom.begin(), bottom.end());
  // Tolerance for float accumulation along long weighted paths.
  const double eps = 1e-9 * std::max(longest, 1.0);

  int marked = 0;
  for (NodeId n = 0; n < dag.num_nodes(); ++n) {
    DagNode& node = dag.node(n);
    bool high = false;
    if (opts.mark_critical_path) {
      // top + bottom double-counts the node's own weight.
      const double through = top[static_cast<std::size_t>(n)] +
                             bottom[static_cast<std::size_t>(n)] -
                             node_weight(node, opts);
      high = through >= longest - eps;
    }
    if (!high && opts.fanout_threshold > 0 &&
        static_cast<int>(dag.num_successors(n)) >= opts.fanout_threshold) {
      high = true;
    }
    node.priority = high ? Priority::kHigh : Priority::kLow;
    if (high) ++marked;
  }
  return marked;
}

}  // namespace das
