#include "core/task_type.hpp"

#include <cmath>

#include "core/cost_expr.hpp"
#include "util/assert.hpp"

namespace das {

TaskTypeId TaskTypeRegistry::register_type(TaskTypeInfo info) {
  DAS_CHECK(!info.name.empty());
  DAS_CHECK_MSG(find(info.name) == kInvalidTaskType,
                "duplicate task type name: " + info.name);
  // Recover the closed form from factory-built models: the kernel factories
  // wrap a CostExprFn, which the type-erased CostFn can surface again. A
  // hand-written lambda has no CostExprFn target and stays kCallable — the
  // engines then keep generic dispatch for any DAG using this type.
  if (info.expr.kind == CostExpr::Kind::kCallable && info.cost) {
    if (const CostExprFn* f = info.cost.target<CostExprFn>()) info.expr = f->expr;
  }
  types_.push_back(std::move(info));
  return static_cast<TaskTypeId>(types_.size()) - 1;
}

const TaskTypeInfo& TaskTypeRegistry::info(TaskTypeId id) const {
  DAS_CHECK(id >= 0 && id < size());
  return types_[static_cast<std::size_t>(id)];
}

TaskTypeId TaskTypeRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name) return static_cast<TaskTypeId>(i);
  return kInvalidTaskType;
}

double TaskTypeRegistry::noise_sigma(TaskTypeId id, double cost_s) const {
  return noise_sigma_of(info(id), cost_s);
}

}  // namespace das
