#include "core/task_type.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace das {

TaskTypeId TaskTypeRegistry::register_type(TaskTypeInfo info) {
  DAS_CHECK(!info.name.empty());
  DAS_CHECK_MSG(find(info.name) == kInvalidTaskType,
                "duplicate task type name: " + info.name);
  types_.push_back(std::move(info));
  return static_cast<TaskTypeId>(types_.size()) - 1;
}

const TaskTypeInfo& TaskTypeRegistry::info(TaskTypeId id) const {
  DAS_CHECK(id >= 0 && id < size());
  return types_[static_cast<std::size_t>(id)];
}

TaskTypeId TaskTypeRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name) return static_cast<TaskTypeId>(i);
  return kInvalidTaskType;
}

double TaskTypeRegistry::noise_sigma(TaskTypeId id, double cost_s) const {
  const TaskTypeInfo& t = info(id);
  if (t.noise0 <= 0.0 && t.noise1 <= 0.0) return 0.0;
  const double ms = std::max(cost_s * 1e3, 1e-3);
  // Cap the relative dispersion: even a microsecond task's measurement is
  // bounded by scheduler quanta, not unbounded lognormal tails (an uncapped
  // 1/T blows up for the sub-10us bookkeeping tasks).
  return std::min(t.noise0 + t.noise1 / ms, 0.75);
}

}  // namespace das
