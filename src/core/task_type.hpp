#pragma once
// Task types and metadata.
//
// A *task type* corresponds to "each function implemented as a task" (paper
// §4.1.1): the unit of performance-model granularity — one PTT is maintained
// per type. A type carries
//   - a name,
//   - an analytic cost model used by the discrete-event engine
//     (src/kernels/cost_models.cpp defines the paper kernels' models),
//   - noise coefficients describing measurement dispersion (short tasks are
//     noisier; drives the paper's Fig. 8 sensitivity study).
// The *real* implementation of a task is per-DAG-node (a callable capturing
// its buffers), so the registry stays engine-agnostic.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "platform/topology.hpp"

namespace das {

using TaskTypeId = std::int32_t;
inline constexpr TaskTypeId kInvalidTaskType = -1;

enum class Priority : std::uint8_t { kLow = 0, kHigh = 1 };

/// Small POD of kernel-interpreted parameters consumed by cost models
/// (e.g. tile size for MatMul, bytes for Copy). The real-engine payload
/// lives in the node's work closure instead.
struct TaskParams {
  double p0 = 0.0;
  double p1 = 0.0;
  double p2 = 0.0;
};

/// Everything a cost model may depend on for ONE participant of a moldable
/// task: its place, its rank's core, the core's effective speed and the
/// cluster's bandwidth share at the participant's start time.
struct CostQuery {
  ExecutionPlace place;
  int rank = 0;
  int core = 0;
  double speed = 1.0;     ///< absolute effective speed (SpeedScenario::speed)
  double bw_share = 1.0;  ///< cluster bandwidth fraction available
  const Cluster* cluster = nullptr;
};

/// Seconds of busy time for the queried participant.
using CostFn = std::function<double(const TaskParams&, const CostQuery&)>;

/// Tagged, inlinable cost-model expression — the static-dispatch fast path
/// past the type-erased CostFn. Every analytic model the kernel catalog
/// registers (src/kernels/cost_models.cpp) is one of these closed forms;
/// the payload holds the factory's calibration constants and
/// core/cost_expr.hpp evaluates the form with arithmetic identical to the
/// original lambda, so a fused engine loop computes bit-for-bit the same
/// doubles as the generic std::function path. kCallable marks a
/// user-supplied model with no expression — the escape hatch the engines
/// fall back to generic dispatch for.
struct CostExpr {
  enum class Kind : std::uint8_t {
    kCallable = 0,  ///< no closed form: evaluate TaskTypeInfo::cost
    kMatMul,        ///< compute-bound tile kernel with cache-fit factor
    kCopy,          ///< bandwidth-bound, min(share, issue-rate) limited
    kStencil,       ///< cache-bound tile sweep with L2 stream-fit
    kHeatBand,      ///< streaming row band with cache-aggregation bonus
    kFixed,         ///< constant seconds
    kComm,          ///< latency + bytes/bandwidth wire model
    kKmeansMap,     ///< flops-rate assignment chunk
    kKmeansReduce,  ///< flops-rate reduction with dispatch floor
  };
  struct MatMul {
    double gflops, l1_fit, l2_fit, mem_fit, alpha, sync_s;
  };
  struct Copy {
    double single_core_bw_frac, cpu_gbs_per_speed;
  };
  struct Stencil {
    double gflops, flops_per_point, alpha, sync_s;
  };
  struct HeatBand {
    double gflops, flops_per_point;
  };
  struct Fixed {
    double seconds;
  };
  struct Comm {
    double latency_s, bw_gbs;
  };
  struct Kmeans {
    double rate_g;
  };
  union Payload {
    MatMul matmul;
    Copy copy;
    Stencil stencil;
    HeatBand heat;
    Fixed fixed;
    Comm comm;
    Kmeans kmeans;
    constexpr Payload() : fixed{0.0} {}
  };
  Kind kind = Kind::kCallable;
  Payload u{};
};

struct TaskTypeInfo {
  std::string name;
  CostFn cost;          ///< empty => DES refuses to run this type
  double noise0 = 0.0;  ///< lognormal sigma floor (relative dispersion)
  /// Absolute measurement error in "sigma x ms" units: a timestamp /
  /// preemption error of ~noise1 milliseconds per measurement, so the
  /// RELATIVE sigma of a task of duration T is noise1 / T. Sub-100 us tasks
  /// become very noisy (the paper's Fig. 8 tile-32 regime) while
  /// millisecond tasks measure cleanly.
  double noise1 = 0.0;
  /// Closed-form twin of `cost`, when one exists. register_type recovers it
  /// automatically from factory-built models (the CostFn holds a CostExprFn
  /// target); hand-written lambdas stay kCallable and keep the generic
  /// dispatch path.
  CostExpr expr{};
};

/// Registry of task types. Registration happens during setup (single
/// threaded); lookups afterwards are read-only and thread-safe.
class TaskTypeRegistry {
 public:
  TaskTypeId register_type(TaskTypeInfo info);
  TaskTypeId register_type(std::string name, CostFn cost = {}) {
    return register_type(TaskTypeInfo{std::move(name), std::move(cost), 0.0, 0.0});
  }

  const TaskTypeInfo& info(TaskTypeId id) const;
  /// kInvalidTaskType if no type has this name.
  TaskTypeId find(const std::string& name) const;
  int size() const { return static_cast<int>(types_.size()); }

  /// Lognormal sigma for a measurement of a task of this type whose
  /// noise-free duration is `cost_s` seconds.
  double noise_sigma(TaskTypeId id, double cost_s) const;
  /// Same, from an already-resolved info — the per-participant hot path
  /// caches the TaskTypeInfo once per task and skips the id lookup.
  static double noise_sigma_of(const TaskTypeInfo& t, double cost_s);

 private:
  std::vector<TaskTypeInfo> types_;
};

inline double TaskTypeRegistry::noise_sigma_of(const TaskTypeInfo& t,
                                               double cost_s) {
  if (t.noise0 <= 0.0 && t.noise1 <= 0.0) return 0.0;
  const double ms = std::max(cost_s * 1e3, 1e-3);
  // Cap the relative dispersion: even a microsecond task's measurement is
  // bounded by scheduler quanta, not unbounded lognormal tails (an uncapped
  // 1/T blows up for the sub-10us bookkeeping tasks).
  return std::min(t.noise0 + t.noise1 / ms, 0.75);
}

}  // namespace das
