#pragma once
// The seven scheduler configurations of the paper's Table 1, implemented as
// one engine-agnostic decision object (Algorithm 1 + §4.1.2 / §4.2.3).
//
// | Name   | Asymmetry awareness | Moldability | Priority placement       |
// | RWS    | N/A                 | N/A         | N/A                      |
// | RWSM-C | N/A                 | Yes         | Resource Cost            |
// | FA     | Fixed               | No          | N/A (fast cores, RR)     |
// | FAM-C  | Fixed               | Yes         | Resource Cost            |
// | DA     | Dynamic             | No          | N/A (fastest core)       |
// | DAM-C  | Dynamic             | Yes         | Resource Cost            |
// | DAM-P  | Dynamic             | Yes         | Performance              |
//
// Both execution engines (src/rt real threads, src/sim discrete events) call
// the same three hooks:
//   on_ready    — wake-up time: which worker queue receives the task, is it
//                 steal-exempt, and (for high-priority tasks under the
//                 criticality-aware policies) the fixed execution place.
//   on_execute  — dequeue time: the final width molding for tasks without a
//                 fixed place (paper Fig. 3 steps 4-5: thieves re-run the
//                 local search).
//   record_sample — task completion: folds the observed span into the PTT.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/topology.hpp"
#include "util/assert.hpp"

namespace das {

enum class Policy : std::uint8_t {
  kRws = 0,
  kRwsmC,
  kFa,
  kFamC,
  kDa,
  kDamC,
  kDamP,
  // Baseline beyond the paper's Table 1: dHEFT (Chronaki et al.) — every
  // ready task, regardless of priority, is centrally placed on the single
  // core with the earliest predicted FINISH time (reserved work + predicted
  // execution time), discovered at runtime like the PTT. Not moldable, not
  // work-stealing. Used by bench/baseline_dheft for the related-work
  // comparison the paper cites.
  kDheft,
};

const char* policy_name(Policy p);
/// The paper's seven schedulers, in Table 1 order (excludes baselines).
const std::vector<Policy>& all_policies();
/// Every policy with a parseable name: Table 1 plus the baselines. The
/// single source the name-lookup functions (and the facade's case-
/// insensitive parse_policy) iterate.
const std::vector<Policy>& all_known_policies();
/// Parses "DAM-C" etc. (exact spelling); returns nullopt for unknown names.
std::optional<Policy> policy_from_name(const std::string& name);

/// Introspection used to print the paper's Table 1.
struct PolicyTraits {
  const char* asymmetry;           // "N/A" | "Fixed" | "Dynamic"
  const char* moldability;         // "N/A" | "No" | "Yes"
  const char* priority_placement;  // "N/A" | "Resource Cost" | "Performance"
  bool uses_ptt;                   // needs the performance model
  bool priority_aware;             // treats high-priority tasks specially
};
/// constexpr so the static-dispatch hooks below can branch on traits at
/// compile time (if constexpr (policy_traits(P).uses_ptt) ...).
constexpr PolicyTraits policy_traits(Policy p) {
  switch (p) {
    case Policy::kRws:
      return {"N/A", "N/A", "N/A", /*uses_ptt=*/false, /*priority_aware=*/false};
    case Policy::kRwsmC:
      return {"N/A", "Yes", "Resource Cost", true, false};
    case Policy::kFa:
      return {"Fixed", "No", "N/A", false, true};
    case Policy::kFamC:
      return {"Fixed", "Yes", "Resource Cost", true, true};
    case Policy::kDa:
      return {"Dynamic", "No", "N/A", true, true};
    case Policy::kDamC:
      return {"Dynamic", "Yes", "Resource Cost", true, true};
    case Policy::kDamP:
      return {"Dynamic", "Yes", "Performance", true, true};
    case Policy::kDheft:
      return {"Dynamic", "No", "Earliest Finish", true, false};
  }
  return {"?", "?", "?", false, false};
}

/// Whether the policy molds widths at dequeue time (the on_execute local
/// search); derived, but named — both static and dynamic dispatch key on it.
constexpr bool policy_moldable(Policy p) {
  return p == Policy::kRwsmC || p == Policy::kFamC || p == Policy::kDamC ||
         p == Policy::kDamP;
}

/// Compile-time policy tags: one empty type per Table-1 row (plus the dHEFT
/// baseline). The engines instantiate their hot loops over these tags so
/// the three scheduling hooks inline and the per-event policy switch
/// disappears; the untagged PolicyEngine methods remain the type-erased
/// generic fallback and dispatch to the SAME static implementations, so the
/// two paths cannot diverge.
template <Policy P>
struct PolicyTag {
  static constexpr Policy kPolicy = P;
};
using RwsTag = PolicyTag<Policy::kRws>;
using RwsmCTag = PolicyTag<Policy::kRwsmC>;
using FaTag = PolicyTag<Policy::kFa>;
using FamCTag = PolicyTag<Policy::kFamC>;
using DaTag = PolicyTag<Policy::kDa>;
using DamCTag = PolicyTag<Policy::kDamC>;
using DamPTag = PolicyTag<Policy::kDamP>;
using DheftTag = PolicyTag<Policy::kDheft>;

struct WakeDecision {
  int queue_core = 0;       ///< worker whose queue receives the task
  bool stealable = true;    ///< false => steal-exempt inbox (paper §4.1.2)
  bool has_fixed_place = false;
  ExecutionPlace fixed_place{};
};

/// Tunables mostly exercised by the ablation bench; the defaults reproduce
/// the paper's scheduler.
struct PolicyOptions {
  bool steal_exempt_high_priority = true;  ///< paper disables stealing of
                                           ///< high-priority tasks
  bool remold_on_dequeue = true;           ///< re-run the local search when a
                                           ///< (stolen) task is dequeued
  bool random_tie_break = false;           ///< default: round-robin
};

class PolicyEngine {
 public:
  /// `ptt` may be null only for policies with traits().uses_ptt == false.
  PolicyEngine(Policy policy, const Topology& topo, PttStore* ptt,
               std::uint64_t seed = 1, PolicyOptions options = {});

  Policy policy() const { return policy_; }
  const PolicyTraits& traits() const { return traits_; }
  const Topology& topology() const { return *topo_; }
  const PolicyOptions& options() const { return options_; }

  /// Wake-up decision for a task released by (or spawned from) `waking_core`.
  WakeDecision on_ready(TaskTypeId type, Priority priority, int waking_core);

  /// Final place for a task WITHOUT a fixed place, dequeued by `core`.
  /// Low-priority molding: local search minimising PTT(c,w) * w.
  ExecutionPlace on_execute(TaskTypeId type, Priority priority, int core);

  /// Folds an observed task span into the model (no-op for RWS / FA).
  void record_sample(TaskTypeId type, const ExecutionPlace& place, double seconds);

  // --- static-dispatch twins -------------------------------------------------
  // Same three hooks with the policy resolved at compile time: the per-call
  // policy switch folds away and the trivial bodies (RWS/FA wake-up, the
  // non-moldable width-1 on_execute, the PTT-less record_sample) inline
  // into the fused engine loops. All shared state (tie/RR counters, RNG
  // stream, PTT, dHEFT reservations) is the same object the dynamic hooks
  // use, and the dynamic hooks are one switch over these instantiations —
  // a single implementation, so static and dynamic dispatch are equal by
  // construction (the sim goldens pin it bitwise).

  template <Policy P>
  WakeDecision on_ready_static(TaskTypeId type, Priority priority,
                               int waking_core);
  template <Policy P>
  ExecutionPlace on_execute_static(TaskTypeId type, Priority priority, int core);
  template <Policy P>
  void record_sample_static(TaskTypeId type, const ExecutionPlace& place,
                            double seconds);

  // Exposed for tests and analysis ------------------------------------------
  enum class Objective { kCost, kTime };
  /// The min-search of Algorithm 1 over an explicit candidate set, with the
  /// zero-entry exploration semantics and fewest-samples tie-breaking.
  ExecutionPlace search(TaskTypeId type,
                        const std::vector<ExecutionPlace>& candidates,
                        Objective objective);

 private:
  ExecutionPlace local_search(TaskTypeId type, int core);
  int round_robin_fast_core();
  ExecutionPlace dheft_place(TaskTypeId type);
  /// dHEFT completion: drain the leader's reservation by the observed time
  /// (out-of-line: the CAS loop's ordering argument lives in policy.cpp).
  void dheft_drain(const ExecutionPlace& place, double seconds);

  Policy policy_;
  PolicyTraits traits_;
  const Topology* topo_;
  PttStore* ptt_;
  PolicyOptions options_;
  std::vector<ExecutionPlace> fast_cluster_places_;  // FAM-C candidate set
  std::vector<int> fast_cores_;                      // FA round-robin targets
  std::atomic<std::uint32_t> rr_counter_{0};
  std::atomic<std::uint32_t> tie_counter_{0};
  std::atomic<std::uint64_t> rng_state_;             // splitmix for random ties

  // dHEFT: per-core reserved work (seconds of placed-but-unfinished tasks).
  // Incremented by the estimate at placement, drained by the observed time
  // at completion; the small drift between the two is self-correcting.
  std::unique_ptr<std::atomic<double>[]> reserved_;
};

// --- static-hook definitions -------------------------------------------------
// Kept in the header so the fused engine instantiations inline them. The
// searches / round-robin / dHEFT helpers stay out-of-line in policy.cpp:
// they are the genuinely expensive branches, and keeping them there keeps
// the relaxed-atomic counters inside the lint whitelist.

template <Policy P>
inline WakeDecision PolicyEngine::on_ready_static(TaskTypeId type,
                                                  Priority priority,
                                                  int waking_core) {
  DAS_CHECK(waking_core >= 0 && waking_core < topo_->num_cores());

  if constexpr (P == Policy::kDheft) {
    // dHEFT centrally places EVERY task (priority plays no role) and does
    // not allow stealing to second-guess the placement.
    const ExecutionPlace p = dheft_place(type);
    return WakeDecision{p.leader, /*stealable=*/false, true, p};
  } else if constexpr (!policy_traits(P).priority_aware) {
    // ALL tasks under the priority-oblivious schedulers stay on the waking
    // core's queue to preserve data reuse across dependent tasks (paper
    // §3.2); idle workers may steal them.
    (void)type;
    (void)priority;
    return WakeDecision{waking_core, /*stealable=*/true, false, {}};
  } else {
    // Low-priority tasks stay local under every scheduler (see above).
    if (priority == Priority::kLow)
      return WakeDecision{waking_core, /*stealable=*/true, false, {}};
    const bool exempt = options_.steal_exempt_high_priority;
    if constexpr (P == Policy::kFa) {
      // Statically-fast cores, round-robin, width 1 (CATS-style).
      const int core = round_robin_fast_core();
      return WakeDecision{core, !exempt, true, ExecutionPlace{core, 1}};
    } else if constexpr (P == Policy::kFamC) {
      // FA's strict mapping to the statically-fast cores (round-robin),
      // plus moldability: the width is chosen by the local cost search at
      // the assigned core. Note the core choice itself stays PTT-blind —
      // that is what keeps half the criticals on a perturbed fast core in
      // the paper's Fig. 5(d) (35% (C0,1) / 48% (C1,1) / 17% (C0,2)).
      const int core = round_robin_fast_core();
      const ExecutionPlace p =
          search(type, topo_->local_places(core), Objective::kCost);
      return WakeDecision{p.leader, !exempt, true, p};
    } else if constexpr (P == Policy::kDa) {
      // Global search over single cores for the best predicted time.
      const ExecutionPlace p =
          search(type, topo_->width1_places(), Objective::kTime);
      return WakeDecision{p.leader, !exempt, true, p};
    } else if constexpr (P == Policy::kDamC) {
      // Global search minimising PTT(c,w) * w (Algorithm 1, line 8).
      const ExecutionPlace p = search(type, topo_->places(), Objective::kCost);
      return WakeDecision{p.leader, !exempt, true, p};
    } else {
      static_assert(P == Policy::kDamP, "unhandled priority-aware policy");
      // Global search minimising PTT(c,w) (Algorithm 1, line 11).
      const ExecutionPlace p = search(type, topo_->places(), Objective::kTime);
      return WakeDecision{p.leader, !exempt, true, p};
    }
  }
}

template <Policy P>
inline ExecutionPlace PolicyEngine::on_execute_static(TaskTypeId type,
                                                      Priority priority,
                                                      int core) {
  DAS_CHECK(core >= 0 && core < topo_->num_cores());
  (void)priority;  // high-priority tasks with fixed places never reach here
  if constexpr (policy_moldable(P)) {
    return local_search(type, core);
  } else {
    // Non-moldable schedulers always run where they dequeue, width 1.
    (void)type;
    return ExecutionPlace{core, 1};
  }
}

template <Policy P>
inline void PolicyEngine::record_sample_static(TaskTypeId type,
                                               const ExecutionPlace& place,
                                               double seconds) {
  if constexpr (!policy_traits(P).uses_ptt) {
    (void)type;
    (void)place;
    (void)seconds;
  } else {
    ptt_->table(type).update(place, seconds);
    if constexpr (P == Policy::kDheft) dheft_drain(place, seconds);
  }
}

// --- engine-facing hook adapters ---------------------------------------------
// The execution engines template their hot loops over one of these: the
// static adapter binds a PolicyTag so the hooks above inline; the dynamic
// adapter calls the runtime-dispatched methods and serves as the generic
// fallback (unknown future policies, forced-generic runs, A/B checks).

struct DynamicPolicyHooks {
  static constexpr bool kStatic = false;
  static WakeDecision on_ready(PolicyEngine& pe, TaskTypeId type,
                               Priority priority, int waking_core) {
    return pe.on_ready(type, priority, waking_core);
  }
  static ExecutionPlace on_execute(PolicyEngine& pe, TaskTypeId type,
                                   Priority priority, int core) {
    return pe.on_execute(type, priority, core);
  }
  static void record_sample(PolicyEngine& pe, TaskTypeId type,
                            const ExecutionPlace& place, double seconds) {
    pe.record_sample(type, place, seconds);
  }
};

template <class Tag>
struct StaticPolicyHooks {
  static constexpr bool kStatic = true;
  static constexpr Policy kPolicy = Tag::kPolicy;
  static WakeDecision on_ready(PolicyEngine& pe, TaskTypeId type,
                               Priority priority, int waking_core) {
    return pe.on_ready_static<kPolicy>(type, priority, waking_core);
  }
  static ExecutionPlace on_execute(PolicyEngine& pe, TaskTypeId type,
                                   Priority priority, int core) {
    return pe.on_execute_static<kPolicy>(type, priority, core);
  }
  static void record_sample(PolicyEngine& pe, TaskTypeId type,
                            const ExecutionPlace& place, double seconds) {
    pe.record_sample_static<kPolicy>(type, place, seconds);
  }
};

}  // namespace das
