#pragma once
// The seven scheduler configurations of the paper's Table 1, implemented as
// one engine-agnostic decision object (Algorithm 1 + §4.1.2 / §4.2.3).
//
// | Name   | Asymmetry awareness | Moldability | Priority placement       |
// | RWS    | N/A                 | N/A         | N/A                      |
// | RWSM-C | N/A                 | Yes         | Resource Cost            |
// | FA     | Fixed               | No          | N/A (fast cores, RR)     |
// | FAM-C  | Fixed               | Yes         | Resource Cost            |
// | DA     | Dynamic             | No          | N/A (fastest core)       |
// | DAM-C  | Dynamic             | Yes         | Resource Cost            |
// | DAM-P  | Dynamic             | Yes         | Performance              |
//
// Both execution engines (src/rt real threads, src/sim discrete events) call
// the same three hooks:
//   on_ready    — wake-up time: which worker queue receives the task, is it
//                 steal-exempt, and (for high-priority tasks under the
//                 criticality-aware policies) the fixed execution place.
//   on_execute  — dequeue time: the final width molding for tasks without a
//                 fixed place (paper Fig. 3 steps 4-5: thieves re-run the
//                 local search).
//   record_sample — task completion: folds the observed span into the PTT.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/topology.hpp"

namespace das {

enum class Policy : std::uint8_t {
  kRws = 0,
  kRwsmC,
  kFa,
  kFamC,
  kDa,
  kDamC,
  kDamP,
  // Baseline beyond the paper's Table 1: dHEFT (Chronaki et al.) — every
  // ready task, regardless of priority, is centrally placed on the single
  // core with the earliest predicted FINISH time (reserved work + predicted
  // execution time), discovered at runtime like the PTT. Not moldable, not
  // work-stealing. Used by bench/baseline_dheft for the related-work
  // comparison the paper cites.
  kDheft,
};

const char* policy_name(Policy p);
/// The paper's seven schedulers, in Table 1 order (excludes baselines).
const std::vector<Policy>& all_policies();
/// Every policy with a parseable name: Table 1 plus the baselines. The
/// single source the name-lookup functions (and the facade's case-
/// insensitive parse_policy) iterate.
const std::vector<Policy>& all_known_policies();
/// Parses "DAM-C" etc. (exact spelling); returns nullopt for unknown names.
std::optional<Policy> policy_from_name(const std::string& name);

/// Introspection used to print the paper's Table 1.
struct PolicyTraits {
  const char* asymmetry;           // "N/A" | "Fixed" | "Dynamic"
  const char* moldability;         // "N/A" | "No" | "Yes"
  const char* priority_placement;  // "N/A" | "Resource Cost" | "Performance"
  bool uses_ptt;                   // needs the performance model
  bool priority_aware;             // treats high-priority tasks specially
};
PolicyTraits policy_traits(Policy p);

struct WakeDecision {
  int queue_core = 0;       ///< worker whose queue receives the task
  bool stealable = true;    ///< false => steal-exempt inbox (paper §4.1.2)
  bool has_fixed_place = false;
  ExecutionPlace fixed_place{};
};

/// Tunables mostly exercised by the ablation bench; the defaults reproduce
/// the paper's scheduler.
struct PolicyOptions {
  bool steal_exempt_high_priority = true;  ///< paper disables stealing of
                                           ///< high-priority tasks
  bool remold_on_dequeue = true;           ///< re-run the local search when a
                                           ///< (stolen) task is dequeued
  bool random_tie_break = false;           ///< default: round-robin
};

class PolicyEngine {
 public:
  /// `ptt` may be null only for policies with traits().uses_ptt == false.
  PolicyEngine(Policy policy, const Topology& topo, PttStore* ptt,
               std::uint64_t seed = 1, PolicyOptions options = {});

  Policy policy() const { return policy_; }
  const PolicyTraits& traits() const { return traits_; }
  const Topology& topology() const { return *topo_; }
  const PolicyOptions& options() const { return options_; }

  /// Wake-up decision for a task released by (or spawned from) `waking_core`.
  WakeDecision on_ready(TaskTypeId type, Priority priority, int waking_core);

  /// Final place for a task WITHOUT a fixed place, dequeued by `core`.
  /// Low-priority molding: local search minimising PTT(c,w) * w.
  ExecutionPlace on_execute(TaskTypeId type, Priority priority, int core);

  /// Folds an observed task span into the model (no-op for RWS / FA).
  void record_sample(TaskTypeId type, const ExecutionPlace& place, double seconds);

  // Exposed for tests and analysis ------------------------------------------
  enum class Objective { kCost, kTime };
  /// The min-search of Algorithm 1 over an explicit candidate set, with the
  /// zero-entry exploration semantics and fewest-samples tie-breaking.
  ExecutionPlace search(TaskTypeId type,
                        const std::vector<ExecutionPlace>& candidates,
                        Objective objective);

 private:
  ExecutionPlace local_search(TaskTypeId type, int core);
  int round_robin_fast_core();
  ExecutionPlace dheft_place(TaskTypeId type);

  Policy policy_;
  PolicyTraits traits_;
  const Topology* topo_;
  PttStore* ptt_;
  PolicyOptions options_;
  std::vector<ExecutionPlace> fast_cluster_places_;  // FAM-C candidate set
  std::vector<int> fast_cores_;                      // FA round-robin targets
  std::atomic<std::uint32_t> rr_counter_{0};
  std::atomic<std::uint32_t> tie_counter_{0};
  std::atomic<std::uint64_t> rng_state_;             // splitmix for random ties

  // dHEFT: per-core reserved work (seconds of placed-but-unfinished tasks).
  // Incremented by the estimate at placement, drained by the observed time
  // at completion; the small drift between the two is self-correcting.
  std::unique_ptr<std::atomic<double>[]> reserved_;
};

}  // namespace das
