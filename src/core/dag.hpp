#pragma once
// Task DAG representation (paper §2).
//
// A Dag is built ahead of execution (static DAG); engines additionally allow
// tasks to insert successors at runtime (dynamic DAG — used by K-means).
// Each node carries a type (keys the PTT), a priority (high = critical), the
// cost-model parameters, and — for the real-thread engine — a work closure
// executed cooperatively by all participants of the chosen execution place.
//
// Edge storage is a CSR adjacency arena, not per-node vectors: add_edge
// appends to a chained staging pool, and seal() compacts every staged edge
// into (offsets, one contiguous edge array) preserving per-node insertion
// order. Engines seal at submit, so the release fan-out on the completion
// hot path walks a flat span — no pointer-chasing through a million little
// vectors, and a million-node DAG costs two allocations instead of a
// million. Edges added AFTER a seal land back in the staging pool (the
// overflow region) and are still iterated by successors(), so the dynamic
// add_edge API is unchanged; the next seal() folds them in. seal() is
// logically const (engines hold const Dag&) but not thread-safe while it
// has staged edges to compact — every workload builder returns sealed DAGs,
// which makes the engine-side seal-on-submit a read-only no-op.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/task_type.hpp"
#include "util/assert.hpp"

namespace das {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Identity of one submitted DAG (a *job*) inside an engine's job service.
/// Engines allocate ids monotonically per engine instance; task records carry
/// their job id so multiple DAGs can interleave on the same workers, queues
/// and PTT (the runtime is persistent — paper §4.1.1).
using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

/// Context a participant receives when executing (real-thread engine).
struct ExecContext {
  int rank = 0;    ///< 0..width-1; rank 0 need not be the leader core
  int width = 1;
  int leader = 0;  ///< leader core of the execution place
  int core = 0;    ///< the participant's core
};

using WorkFn = std::function<void(const ExecContext&)>;

/// Dependency edge. `delay_s` models a release latency between the
/// producer's completion and the consumer becoming ready — used for
/// cross-rank messages in the DES distributed-memory experiments. The
/// real-thread engine ignores it (real communication runs through das::net).
struct DagEdge {
  NodeId to = kInvalidNode;
  double delay_s = 0.0;
};

struct DagNode {
  TaskTypeId type = kInvalidTaskType;
  Priority priority = Priority::kLow;
  TaskParams params;
  WorkFn work;                  ///< may be empty (DES-only DAGs)
  int num_predecessors = 0;     ///< maintained by add_edge
  int rank = 0;                 ///< scheduling domain (MPI-rank analogue)
  int affinity_core = -1;       ///< waking-core hint; -1 = released-by core
  int phase = 0;                ///< stats phase tag (application iteration)
};

class Dag {
  struct EdgeCell {
    DagEdge edge;
    std::int32_t next = -1;  ///< staging-chain link within pool_
  };

 public:
  /// Forward range over one node's out-edges: the sealed CSR span first,
  /// then any edges staged after the seal (insertion order throughout).
  /// For a sealed DAG this iterates a contiguous array.
  class SuccessorRange {
   public:
    class iterator {
     public:
      const DagEdge& operator*() const { return *p_; }
      const DagEdge* operator->() const { return p_; }
      iterator& operator++() {
        ++p_;
        if (p_ == seg_end_) advance_segment();
        return *this;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.p_ == b.p_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return a.p_ != b.p_;
      }

     private:
      friend class SuccessorRange;
      iterator(const DagEdge* p, const DagEdge* seg_end,
               const std::vector<EdgeCell>* pool, std::int32_t chain)
          : p_(p), seg_end_(seg_end), pool_(pool), chain_(chain) {
        if (p_ == seg_end_) advance_segment();
      }
      void advance_segment() {
        if (chain_ < 0) {
          p_ = seg_end_ = nullptr;  // end sentinel
          return;
        }
        const EdgeCell& c = (*pool_)[static_cast<std::size_t>(chain_)];
        p_ = &c.edge;
        seg_end_ = p_ + 1;
        chain_ = c.next;
      }
      const DagEdge* p_;
      const DagEdge* seg_end_;
      const std::vector<EdgeCell>* pool_;
      std::int32_t chain_;
    };

    iterator begin() const { return iterator(seg_, seg_end_, pool_, chain_); }
    iterator end() const { return iterator(nullptr, nullptr, pool_, -1); }
    bool empty() const { return seg_ == seg_end_ && chain_ < 0; }
    std::size_t size() const;
    /// Linear in the index past the CSR span — convenience for tests, not
    /// for hot loops.
    const DagEdge& operator[](std::size_t i) const;

   private:
    friend class Dag;
    SuccessorRange(const DagEdge* seg, const DagEdge* seg_end,
                   const std::vector<EdgeCell>* pool, std::int32_t chain)
        : seg_(seg), seg_end_(seg_end), pool_(pool), chain_(chain) {}
    const DagEdge* seg_;
    const DagEdge* seg_end_;
    const std::vector<EdgeCell>* pool_;
    std::int32_t chain_;
  };

  NodeId add_node(TaskTypeId type, Priority priority = Priority::kLow,
                  TaskParams params = {}, WorkFn work = {});
  /// Adds the dependency edge from -> to. Rejects self-edges.
  void add_edge(NodeId from, NodeId to, double delay_s = 0.0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  std::size_t num_edges() const { return num_edges_; }
  // Inline: engines resolve a node once or twice per event, and an outlined
  // call costs more than the bounds check itself.
  DagNode& node(NodeId id) {
    DAS_CHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }
  const DagNode& node(NodeId id) const {
    DAS_CHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// The node's out-edges in insertion order.
  SuccessorRange successors(NodeId id) const;
  /// successors(id).size() without building the range.
  std::size_t num_successors(NodeId id) const { return successors(id).size(); }

  /// Compacts every staged edge into the CSR arena (idempotent; a no-op
  /// when nothing was staged since the last seal). Engines call this at
  /// submit; not thread-safe while staged edges exist (see header comment).
  /// Also snapshots the submit metadata below, so engines validate and
  /// release a million-node DAG without rescanning every node per submit.
  void seal() const;

  // --- sealed metadata (valid after seal(); snapshots node fields as of
  // the seal — post-seal mutations of rank/type are not re-reflected) -----

  /// Per-node predecessor counts, contiguous (engines memcpy this into a
  /// job's countdown array). Maintained incrementally by add_edge.
  const std::vector<std::int32_t>& predecessor_counts() const {
    DAS_ASSERT(csr_off_.size() == nodes_.size() + 1);
    return preds_counts_;
  }
  /// Nodes with no predecessors, ascending.
  const std::vector<NodeId>& root_ids() const {
    DAS_ASSERT(csr_off_.size() == nodes_.size() + 1);
    return roots_cache_;
  }
  /// Every distinct task type, in first-appearance order.
  const std::vector<TaskTypeId>& distinct_types() const {
    DAS_ASSERT(csr_off_.size() == nodes_.size() + 1);
    return distinct_types_;
  }
  int min_node_rank() const { return min_rank_; }
  int max_node_rank() const { return max_rank_; }
  /// Minimum delay_s over edges whose endpoints live on different ranks,
  /// +infinity when every edge is rank-local. This is the conservative
  /// parallel DES lookahead: no rank can affect another sooner than this,
  /// so all ranks may safely simulate a window of this width concurrently
  /// (sim/engine.hpp).
  double min_cross_rank_delay() const {
    DAS_ASSERT(csr_off_.size() == nodes_.size() + 1);
    return min_cross_rank_delay_;
  }

  /// Nodes with no predecessors (the initially-ready set).
  std::vector<NodeId> roots() const;
  /// True iff the edge relation is acyclic (Kahn's algorithm).
  bool is_acyclic() const;
  /// A topological order; DAS_CHECKs acyclicity.
  std::vector<NodeId> topological_order() const;
  /// Longest path length measured in nodes (the critical path of the paper's
  /// parallelism definition). DAS_CHECKs acyclicity.
  int longest_path_nodes() const;
  /// DAG parallelism = total tasks / longest path (paper §2, Fig. 1).
  double dag_parallelism() const;

 private:
  std::vector<DagNode> nodes_;
  std::size_t num_edges_ = 0;
  // Staging pool: per-node chains of edges not yet folded into the CSR
  // (freshly added, or added after the last seal — the overflow region).
  // Mutable with the CSR members so seal() can run behind const engine
  // references; see the thread-safety note in the header comment.
  mutable std::vector<EdgeCell> pool_;
  mutable std::vector<std::int32_t> chain_head_;  // per node; -1 = none
  mutable std::vector<std::int32_t> chain_tail_;
  // Sealed CSR arena: csr_off_ has num_nodes()+1 offsets into csr_edges_.
  mutable std::vector<std::int32_t> csr_off_;
  mutable std::vector<DagEdge> csr_edges_;
  // Sealed metadata (see accessors). preds_counts_ is maintained eagerly by
  // add_edge (and length-adjusted by seal); the rest are seal-time
  // snapshots.
  mutable std::vector<std::int32_t> preds_counts_;
  mutable std::vector<NodeId> roots_cache_;
  mutable std::vector<TaskTypeId> distinct_types_;
  mutable int min_rank_ = 0;
  mutable int max_rank_ = 0;
  mutable double min_cross_rank_delay_ =
      std::numeric_limits<double>::infinity();
};

}  // namespace das
