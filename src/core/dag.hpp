#pragma once
// Task DAG representation (paper §2).
//
// A Dag is built ahead of execution (static DAG); engines additionally allow
// tasks to insert successors at runtime (dynamic DAG — used by K-means).
// Each node carries a type (keys the PTT), a priority (high = critical), the
// cost-model parameters, and — for the real-thread engine — a work closure
// executed cooperatively by all participants of the chosen execution place.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/task_type.hpp"

namespace das {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Identity of one submitted DAG (a *job*) inside an engine's job service.
/// Engines allocate ids monotonically per engine instance; task records carry
/// their job id so multiple DAGs can interleave on the same workers, queues
/// and PTT (the runtime is persistent — paper §4.1.1).
using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

/// Context a participant receives when executing (real-thread engine).
struct ExecContext {
  int rank = 0;    ///< 0..width-1; rank 0 need not be the leader core
  int width = 1;
  int leader = 0;  ///< leader core of the execution place
  int core = 0;    ///< the participant's core
};

using WorkFn = std::function<void(const ExecContext&)>;

/// Dependency edge. `delay_s` models a release latency between the
/// producer's completion and the consumer becoming ready — used for
/// cross-rank messages in the DES distributed-memory experiments. The
/// real-thread engine ignores it (real communication runs through das::net).
struct DagEdge {
  NodeId to = kInvalidNode;
  double delay_s = 0.0;
};

struct DagNode {
  TaskTypeId type = kInvalidTaskType;
  Priority priority = Priority::kLow;
  TaskParams params;
  WorkFn work;                  ///< may be empty (DES-only DAGs)
  std::vector<DagEdge> successors;
  int num_predecessors = 0;     ///< maintained by add_edge
  int rank = 0;                 ///< scheduling domain (MPI-rank analogue)
  int affinity_core = -1;       ///< waking-core hint; -1 = released-by core
  int phase = 0;                ///< stats phase tag (application iteration)
};

class Dag {
 public:
  NodeId add_node(TaskTypeId type, Priority priority = Priority::kLow,
                  TaskParams params = {}, WorkFn work = {});
  /// Adds the dependency edge from -> to. Rejects self-edges.
  void add_edge(NodeId from, NodeId to, double delay_s = 0.0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  std::size_t num_edges() const { return num_edges_; }
  DagNode& node(NodeId id);
  const DagNode& node(NodeId id) const;

  /// Nodes with no predecessors (the initially-ready set).
  std::vector<NodeId> roots() const;
  /// True iff the edge relation is acyclic (Kahn's algorithm).
  bool is_acyclic() const;
  /// A topological order; DAS_CHECKs acyclicity.
  std::vector<NodeId> topological_order() const;
  /// Longest path length measured in nodes (the critical path of the paper's
  /// parallelism definition). DAS_CHECKs acyclicity.
  int longest_path_nodes() const;
  /// DAG parallelism = total tasks / longest path (paper §2, Fig. 1).
  double dag_parallelism() const;

 private:
  std::vector<DagNode> nodes_;
  std::size_t num_edges_ = 0;
};

}  // namespace das
