#include "core/ptt.hpp"

#include "util/aligned.hpp"
#include "util/assert.hpp"

namespace das {

Ptt::Ptt(const Topology& topo, UpdateRatio ratio) : topo_(&topo), ratio_(ratio) {
  DAS_CHECK_MSG(ratio_.den > 0 && ratio_.num > 0 && ratio_.num <= ratio_.den,
                "update ratio must satisfy 0 < num <= den");

  // Assign slots: group places by leader core, pad each leader's group to a
  // cache-line boundary.
  constexpr std::size_t kEntriesPerLine = kCacheLine / sizeof(Entry);
  static_assert(kCacheLine % sizeof(Entry) == 0);

  slot_of_place_.assign(static_cast<std::size_t>(topo.num_places()), -1);
  std::size_t slot = 0;
  int current_leader = -1;
  std::size_t used_in_group = 0;
  for (int pid = 0; pid < topo.num_places(); ++pid) {
    const ExecutionPlace& p = topo.place_at(pid);
    if (p.leader != current_leader) {
      // Start a new leader group on a cache-line boundary.
      slot = align_up(slot + used_in_group, kEntriesPerLine);
      current_leader = p.leader;
      used_in_group = 0;
    }
    slot_of_place_[static_cast<std::size_t>(pid)] = static_cast<int>(slot + used_in_group);
    ++used_in_group;
  }
  num_slots_ = align_up(slot + used_in_group, kEntriesPerLine);
  entries_ = std::make_unique<Entry[]>(num_slots_);
}

double Ptt::value(int place_id) const {
  DAS_CHECK(place_id >= 0 && place_id < topo_->num_places());
  return entries_[static_cast<std::size_t>(slot_of_place_[static_cast<std::size_t>(place_id)])]
      .value.load(std::memory_order_relaxed);
}

std::uint64_t Ptt::samples(int place_id) const {
  DAS_CHECK(place_id >= 0 && place_id < topo_->num_places());
  return entries_[static_cast<std::size_t>(slot_of_place_[static_cast<std::size_t>(place_id)])]
      .samples.load(std::memory_order_relaxed);
}

void Ptt::update(int place_id, double sample_s) {
  DAS_CHECK(place_id >= 0 && place_id < topo_->num_places());
  DAS_CHECK_MSG(sample_s >= 0.0, "negative execution time");
  Entry& e =
      entries_[static_cast<std::size_t>(slot_of_place_[static_cast<std::size_t>(place_id)])];

  const std::uint64_t prior = e.samples.fetch_add(1, std::memory_order_relaxed);
  const double num = static_cast<double>(ratio_.num);
  const double den = static_cast<double>(ratio_.den);

  double old_v = e.value.load(std::memory_order_relaxed);
  for (;;) {
    // The very first measurement seeds the entry verbatim: averaging a real
    // sample against the sentinel 0 would underestimate by (den-num)/den and
    // take several rounds to recover.
    const double new_v =
        prior == 0 ? sample_s : ((den - num) * old_v + num * sample_s) / den;
    if (e.value.compare_exchange_weak(old_v, new_v, std::memory_order_relaxed))
      return;
  }
}

void Ptt::fill(double value_s) {
  for (int pid = 0; pid < topo_->num_places(); ++pid) {
    Entry& e =
        entries_[static_cast<std::size_t>(slot_of_place_[static_cast<std::size_t>(pid)])];
    e.value.store(value_s, std::memory_order_relaxed);
    e.samples.store(value_s > 0.0 ? 1 : 0, std::memory_order_relaxed);
  }
}

PttStore::PttStore(const Topology& topo, int num_types, UpdateRatio ratio)
    : ratio_(ratio) {
  DAS_CHECK(num_types >= 0);
  tables_.reserve(static_cast<std::size_t>(num_types));
  for (int i = 0; i < num_types; ++i)
    tables_.push_back(std::make_unique<Ptt>(topo, ratio));
}

Ptt& PttStore::table(TaskTypeId id) {
  DAS_CHECK(id >= 0 && id < num_types());
  return *tables_[static_cast<std::size_t>(id)];
}

const Ptt& PttStore::table(TaskTypeId id) const {
  DAS_CHECK(id >= 0 && id < num_types());
  return *tables_[static_cast<std::size_t>(id)];
}

}  // namespace das
