#include "trace/stats.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace das {

ExecutionStats::ExecutionStats(const Topology& topo, int num_phases)
    : topo_(&topo), num_phases_(num_phases) {
  DAS_CHECK(num_phases >= 1);
  busy_ns_ = std::make_unique<CachePadded<std::atomic<std::int64_t>>[]>(
      static_cast<std::size_t>(topo.num_cores()));
  counts_size_ = 2ull * static_cast<std::size_t>(num_phases_) *
                 static_cast<std::size_t>(topo.num_places());
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(counts_size_);
  reset();
}

void ExecutionStats::set_phase(int phase) {
  DAS_CHECK(phase >= 0 && phase < num_phases_);
  phase_.store(phase, std::memory_order_relaxed);
}

std::size_t ExecutionStats::index(Priority p, int place_id, int phase) const {
  DAS_ASSERT(place_id >= 0 && place_id < topo_->num_places());
  DAS_ASSERT(phase >= 0 && phase < num_phases_);
  const std::size_t prio = p == Priority::kHigh ? 1 : 0;
  return (prio * static_cast<std::size_t>(num_phases_) +
          static_cast<std::size_t>(phase)) *
             static_cast<std::size_t>(topo_->num_places()) +
         static_cast<std::size_t>(place_id);
}

void ExecutionStats::record_task(Priority priority, int place_id, double span_s) {
  record_task_at(priority, place_id, span_s, phase_.load(std::memory_order_relaxed));
}

void ExecutionStats::record_task_at(Priority priority, int place_id, double span_s,
                                    int phase) {
  const int ph = std::clamp(phase, 0, num_phases_ - 1);
  counts_[index(priority, place_id, ph)].fetch_add(1, std::memory_order_relaxed);
  span_sum_ns_.fetch_add(s_to_ns(span_s), std::memory_order_relaxed);
}

void ExecutionStats::record_task_at_st(Priority priority, int place_id,
                                       double span_s, int phase) {
  const int ph = std::clamp(phase, 0, num_phases_ - 1);
  std::atomic<std::int64_t>& c = counts_[index(priority, place_id, ph)];
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  span_sum_ns_.store(
      span_sum_ns_.load(std::memory_order_relaxed) + s_to_ns(span_s),
      std::memory_order_relaxed);
}

void ExecutionStats::record_busy_st(int core, std::int64_t busy_ns) {
  DAS_ASSERT(core >= 0 && core < topo_->num_cores());
  std::atomic<std::int64_t>& b = busy_ns_[static_cast<std::size_t>(core)].value;
  b.store(b.load(std::memory_order_relaxed) + busy_ns,
          std::memory_order_relaxed);
}

void ExecutionStats::record_busy(int core, std::int64_t busy_ns) {
  DAS_ASSERT(core >= 0 && core < topo_->num_cores());
  busy_ns_[static_cast<std::size_t>(core)].value.fetch_add(busy_ns,
                                                           std::memory_order_relaxed);
}

std::int64_t ExecutionStats::tasks_total() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < counts_size_; ++i)
    total += counts_[i].load(std::memory_order_relaxed);
  return total;
}

std::int64_t ExecutionStats::tasks_with_priority(Priority p) const {
  std::int64_t total = 0;
  for (int pid = 0; pid < topo_->num_places(); ++pid) total += tasks_at(p, pid);
  return total;
}

std::int64_t ExecutionStats::tasks_at(Priority p, int place_id) const {
  std::int64_t total = 0;
  for (int ph = 0; ph < num_phases_; ++ph) total += tasks_at_phase(p, place_id, ph);
  return total;
}

std::int64_t ExecutionStats::tasks_at_phase(Priority p, int place_id, int phase) const {
  DAS_CHECK(place_id >= 0 && place_id < topo_->num_places());
  DAS_CHECK(phase >= 0 && phase < num_phases_);
  return counts_[index(p, place_id, phase)].load(std::memory_order_relaxed);
}

double ExecutionStats::busy_s(int core) const {
  DAS_CHECK(core >= 0 && core < topo_->num_cores());
  return ns_to_s(busy_ns_[static_cast<std::size_t>(core)].value.load(
      std::memory_order_relaxed));
}

double ExecutionStats::total_busy_s() const {
  double total = 0.0;
  for (int c = 0; c < topo_->num_cores(); ++c) total += busy_s(c);
  return total;
}

double ExecutionStats::throughput() const {
  const double elapsed = elapsed_s();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(tasks_total()) / elapsed;
}

std::vector<std::pair<ExecutionPlace, double>> ExecutionStats::distribution(
    Priority p) const {
  const std::int64_t total = tasks_with_priority(p);
  std::vector<std::pair<ExecutionPlace, double>> out;
  if (total == 0) return out;
  for (int pid = 0; pid < topo_->num_places(); ++pid) {
    const std::int64_t n = tasks_at(p, pid);
    if (n > 0)
      out.emplace_back(topo_->place_at(pid),
                       static_cast<double>(n) / static_cast<double>(total));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

StatsSnapshot ExecutionStats::snapshot() const {
  StatsSnapshot s;
  s.tasks_high = tasks_with_priority(Priority::kHigh);
  s.tasks_low = tasks_with_priority(Priority::kLow);
  s.tasks_total = s.tasks_high + s.tasks_low;
  s.elapsed_s = elapsed_s();
  s.busy_s.resize(static_cast<std::size_t>(topo_->num_cores()));
  for (int c = 0; c < topo_->num_cores(); ++c) {
    s.busy_s[static_cast<std::size_t>(c)] = busy_s(c);
    s.total_busy_s += s.busy_s[static_cast<std::size_t>(c)];
  }
  s.high_distribution = distribution(Priority::kHigh);
  return s;
}

void ExecutionStats::reset() {
  for (int c = 0; c < topo_->num_cores(); ++c)
    busy_ns_[static_cast<std::size_t>(c)].value.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < counts_size_; ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  span_sum_ns_.store(0, std::memory_order_relaxed);
  elapsed_s_.store(0.0, std::memory_order_relaxed);
  phase_.store(0, std::memory_order_relaxed);
}

}  // namespace das
