#pragma once
// Execution timeline export in the Chrome trace-event format
// (chrome://tracing, Perfetto, speedscope). Each task participation becomes
// a complete ("X") event on its core's row, so moldable assemblies show up
// as aligned bars across the participating cores and interference windows
// are visible as stretched bars.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/task_type.hpp"
#include "util/spinlock.hpp"

namespace das {

class Timeline {
 public:
  /// Records one participation: `core` (global id), start and duration in
  /// seconds, the task type's name, priority and assembly width.
  void record(int core, double start_s, double duration_s, std::string name,
              Priority priority, int width);

  std::size_t size() const;
  void clear();

  /// Chrome trace-event JSON: {"traceEvents": [...]}. Timestamps in
  /// microseconds; one "thread" per core; high-priority tasks carry a
  /// "critical" argument so they can be coloured/filtered.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Interval {
    int core;
    double start_s;
    double duration_s;
    std::string name;
    Priority priority;
    int width;
  };

  mutable Spinlock lock_;  // the real-thread engine records concurrently
  std::vector<Interval> intervals_ DAS_GUARDED_BY(lock_);
};

}  // namespace das
