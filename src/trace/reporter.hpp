#pragma once
// Console reporting of ExecutionStats in the layout of the paper's figures.

#include <ostream>
#include <string>

#include "trace/stats.hpp"

namespace das {

/// Fig. 5 style: "place  share" rows for high-priority tasks.
void print_priority_distribution(const ExecutionStats& stats, std::ostream& os,
                                 const std::string& title = {});

/// Fig. 6 style: per-core busy time plus the total.
void print_core_worktime(const ExecutionStats& stats, std::ostream& os,
                         const std::string& title = {});

}  // namespace das
