#include "trace/timeline.hpp"

#include "util/assert.hpp"

namespace das {

void Timeline::record(int core, double start_s, double duration_s,
                      std::string name, Priority priority, int width) {
  DAS_CHECK(core >= 0);
  DAS_CHECK(duration_s >= 0.0);
  SpinlockGuard g(lock_);
  intervals_.push_back(
      Interval{core, start_s, duration_s, std::move(name), priority, width});
}

std::size_t Timeline::size() const {
  SpinlockGuard g(lock_);
  return intervals_.size();
}

void Timeline::clear() {
  SpinlockGuard g(lock_);
  intervals_.clear();
}

void Timeline::write_chrome_json(std::ostream& os) const {
  SpinlockGuard g(lock_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Interval& iv : intervals_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << iv.name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << iv.core << ",\"ts\":" << iv.start_s * 1e6
       << ",\"dur\":" << iv.duration_s * 1e6 << ",\"args\":{\"critical\":"
       << (iv.priority == Priority::kHigh ? "true" : "false")
       << ",\"width\":" << iv.width << "}}";
  }
  os << "]}";
}

}  // namespace das
