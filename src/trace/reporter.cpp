#include "trace/reporter.hpp"

#include "util/format.hpp"

namespace das {

void print_priority_distribution(const ExecutionStats& stats, std::ostream& os,
                                 const std::string& title) {
  if (!title.empty()) os << title << '\n';
  TextTable t({"place", "share"});
  for (const auto& [place, share] : stats.distribution(Priority::kHigh))
    t.row().add(to_string(place)).add(fmt_percent(share));
  t.print(os);
}

void print_core_worktime(const ExecutionStats& stats, std::ostream& os,
                         const std::string& title) {
  if (!title.empty()) os << title << '\n';
  TextTable t({"core", "busy_s"});
  for (int c = 0; c < stats.topology().num_cores(); ++c)
    t.row().add(fmt_indexed("C", c)).add(stats.busy_s(c), 2);
  t.row().add("total").add(stats.total_busy_s(), 2);
  t.print(os);
}

}  // namespace das
