#pragma once
// Execution statistics shared by both engines.
//
// Collects exactly what the paper's evaluation plots need:
//   - task counts per (priority, execution place), optionally segmented into
//     *phases* (application iterations) — Figures 5 and 9(b,c);
//   - per-core cumulative kernel busy time, excluding runtime activity and
//     idleness — Figure 6;
//   - total tasks / elapsed time => throughput — Figures 4, 7, 10.
//
// Accumulation is thread-safe and wait-free: per-core padded atomics for
// busy time and a dense atomic counter grid for place counts.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/task_type.hpp"
#include "platform/topology.hpp"
#include "util/aligned.hpp"

namespace das {

/// Value-type copy of an ExecutionStats at one instant — what RunResult
/// carries back to drivers so results stay inspectable after the engine
/// (and its live ExecutionStats) is gone.
struct StatsSnapshot {
  std::int64_t tasks_total = 0;
  std::int64_t tasks_high = 0;   ///< high-priority (critical) tasks
  std::int64_t tasks_low = 0;
  double elapsed_s = 0.0;        ///< engine-reported elapsed seconds
  double total_busy_s = 0.0;
  std::vector<double> busy_s;    ///< per-core kernel busy time, index = core
  /// Fraction of high-priority tasks per execution place, descending share
  /// (zero-count places omitted) — the paper's Fig. 5 data.
  std::vector<std::pair<ExecutionPlace, double>> high_distribution;
};

class ExecutionStats {
 public:
  /// `num_phases` >= 1; phase 0 is used unless set_phase() is called.
  explicit ExecutionStats(const Topology& topo, int num_phases = 1);

  const Topology& topology() const { return *topo_; }
  int num_phases() const { return num_phases_; }

  /// Sets the phase tag for subsequently recorded tasks (driver calls this
  /// at iteration boundaries; engines never touch it).
  void set_phase(int phase);
  int phase() const { return phase_.load(std::memory_order_relaxed); }

  /// Records a completed task: its priority, where it ran, and its span.
  /// Tagged with the current phase (see set_phase).
  void record_task(Priority priority, int place_id, double span_s);
  /// Same, with an explicit phase tag (clamped to the phase dimension);
  /// engines use this with DagNode::phase so concurrent workers recording
  /// tasks of different iterations never race on set_phase.
  void record_task_at(Priority priority, int place_id, double span_s, int phase);
  /// Adds kernel busy time to a core (emulated time for throttled cores).
  void record_busy(int core, std::int64_t busy_ns);

  /// Single-writer variants: same counters, but plain load+store instead of
  /// an atomic RMW. Only for engines that record from ONE thread (the
  /// discrete-event simulator) — a lock-prefixed fetch_add per simulated
  /// task is pure waste there. Concurrent readers still see consistent
  /// relaxed values.
  void record_task_at_st(Priority priority, int place_id, double span_s,
                         int phase);
  void record_busy_st(int core, std::int64_t busy_ns);

  /// Engines set the experiment's elapsed (virtual or wall) seconds.
  /// Atomic: under the job service a worker closing the last job's window
  /// may publish elapsed while another thread snapshots.
  void set_elapsed(double seconds) {
    elapsed_s_.store(seconds, std::memory_order_relaxed);
  }
  double elapsed_s() const {
    return elapsed_s_.load(std::memory_order_relaxed);
  }

  // --- Queries --------------------------------------------------------------

  std::int64_t tasks_total() const;
  std::int64_t tasks_with_priority(Priority p) const;
  /// Count for one (priority, place), summed over phases.
  std::int64_t tasks_at(Priority p, int place_id) const;
  /// Count for one (priority, place, phase).
  std::int64_t tasks_at_phase(Priority p, int place_id, int phase) const;
  double busy_s(int core) const;
  double total_busy_s() const;
  /// Tasks per second over the recorded elapsed time.
  double throughput() const;

  /// Fraction of priority-`p` tasks executed at each place (places with a
  /// zero count omitted), ordered by descending share — the paper's Fig. 5
  /// pie-chart data.
  std::vector<std::pair<ExecutionPlace, double>> distribution(Priority p) const;

  /// Copies the current counters into a value-type snapshot.
  StatsSnapshot snapshot() const;

  /// Clears all counters (phases keep their dimension).
  void reset();

 private:
  std::size_t index(Priority p, int place_id, int phase) const;

  const Topology* topo_;
  int num_phases_;
  std::atomic<int> phase_{0};
  std::atomic<double> elapsed_s_{0.0};
  std::unique_ptr<CachePadded<std::atomic<std::int64_t>>[]> busy_ns_;
  // Dense grid [priority][phase][place] of counters.
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::size_t counts_size_ = 0;
  std::atomic<std::int64_t> span_sum_ns_{0};
};

}  // namespace das
