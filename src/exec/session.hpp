#pragma once
// Multi-tenant service-layer option types (paper §4.1.1's persistent-runtime
// regime, grown into a scheduler-as-a-service).
//
// The executor facade (exec/executor.hpp) is a job service; this header adds
// the vocabulary for sharing one engine between several TENANTS: a
// TenantConfig describes one client's admission budget and fair-share
// weight, SubmitOptions carries the per-job submission knobs, and
// ServiceConfig bounds the service as a whole. The types live apart from
// executor.hpp so net/wire.hpp can serialize them without pulling in the
// engine headers.
//
// Admission + fairness model (implemented in exec/service.cpp):
//
//   submit ──► per-tenant queue ──► DRR release ──► engine submit_job
//              (admission:           (weighted fair
//               queued-task budget)   release, bounded
//                                     in-flight)
//
// * Admission is checked at ARRIVAL against `max_queued_tasks`: an over-
//   budget submit is rejected (Overload::kReject — the job's RunResult
//   comes back Outcome::kRejected, after the optional retry/backoff loop)
//   or blocks the submitter until the queue drains (Overload::kBlock).
// * Release is paced by deficit round-robin: each needy tenant is credited
//   `weight * drr_quantum_tasks` per round and releases whole jobs while
//   its deficit covers their task counts, subject to `max_in_flight` (its
//   own bound) and `max_service_inflight` (the global bound). Long-run
//   released work converges to weight proportions regardless of job sizes.
// * On Backend::kSim the whole pipeline runs in virtual time and is
//   bitwise-deterministic: same seed + same submission sequence = same
//   release trace. On Backend::kRt it is thread-safe and the release hook
//   runs on whichever worker finishes a job.

#include <cstdint>
#include <string>

#include "core/dag.hpp"
#include "core/task_type.hpp"

namespace das {

/// What to do with a submit that would exceed the tenant's queued-task
/// budget (TenantConfig::max_queued_tasks).
enum class Overload : std::uint8_t {
  kReject = 0,  ///< admit nothing: wait() returns Outcome::kRejected (or
                ///< retries first, see TenantConfig::max_retries)
  kBlock,       ///< block the submitter until the backlog drains
};

/// One tenant's service contract. Passed to Executor::open_session().
struct TenantConfig {
  /// Label reported back in RunResult::tenant and bench output. Sessions
  /// may share a name; they remain distinct tenants.
  std::string name = "tenant";
  /// Fair-share weight (> 0): a weight-2 tenant is released twice the work
  /// of a weight-1 tenant while both are backlogged.
  double weight = 1.0;
  /// Max jobs this tenant may have RELEASED to the engine and not yet
  /// completed. Release throttle, never a rejection. 0 = unbounded.
  int max_in_flight = 4;
  /// Admission budget: max TASKS queued (admitted, not yet released). A
  /// submit that would exceed it hits the `overload` policy. 0 = unbounded.
  std::int64_t max_queued_tasks = 0;
  Overload overload = Overload::kReject;
  /// Retry policy for Overload::kReject bounces: instead of rejecting
  /// immediately, re-run the admission check after a capped exponential
  /// backoff (retry_backoff_s, 2x per attempt, capped at
  /// retry_backoff_cap_s) up to max_retries times; only then does the job
  /// come back Outcome::kRetriesExhausted. 0 = reject immediately (the
  /// pre-retry behavior). Backoff timers run on the engine clock — virtual
  /// time on Backend::kSim (deterministic), the wall-clock pacer on kRt.
  int max_retries = 0;
  double retry_backoff_s = 0.01;
  double retry_backoff_cap_s = 1.0;
};

/// Per-submission options (Executor::submit / Session::submit).
struct SubmitOptions {
  /// Release-no-earlier-than delay on the engine clock. The DES schedules
  /// it in virtual time; Backend::kRt paces it with a wall-clock timer
  /// thread inside the service layer (the engine itself still only takes
  /// offset-0 submissions). Overload::kBlock tenants require offset == 0 —
  /// a blocking admission decision cannot be deferred.
  double arrival_offset_s = 0.0;
  /// Release preference WITHIN the tenant's queue: higher goes first, ties
  /// in submission order. Does not affect cross-tenant fairness.
  int priority = 0;
  /// Queueing deadline, seconds from ARRIVAL on the engine clock: a session
  /// job still queued (not yet released to the engine) when it expires is
  /// cancelled and comes back Outcome::kTimedOut. Released jobs always run
  /// to completion — the deadline bounds waiting, not execution. 0 = none.
  /// Ignored for bare submits (they release immediately).
  double deadline_s = 0.0;
};

/// Service-wide options (ExecutorConfig::service).
struct ServiceConfig {
  /// Global cap on jobs released-but-not-completed across ALL tenants
  /// (bare submits bypass it). 0 = unbounded.
  int max_service_inflight = 0;
  /// DRR quantum: tasks credited per round to a weight-1.0 tenant. Larger
  /// = coarser interleaving (whole-burst alternation), smaller = finer
  /// (but a quantum far below the typical job size just adds rounds).
  std::int64_t drr_quantum_tasks = 32;
};

/// Monotonic per-tenant counters, snapshotted by Session::counters().
struct TenantCounters {
  std::int64_t submitted = 0;  ///< submit() calls accepted into the queue
  std::int64_t rejected = 0;   ///< submits bounced by Overload::kReject
  std::int64_t released = 0;   ///< jobs handed to the engine
  std::int64_t completed = 0;  ///< jobs finished by the engine
  std::int64_t released_tasks = 0;  ///< task-weighted released work
  std::int64_t timed_out = 0;  ///< jobs cancelled by SubmitOptions::deadline_s
  std::int64_t retries = 0;    ///< admission retries run (TenantConfig retry)
};

}  // namespace das
