#include "exec/executor.hpp"

#include <algorithm>
#include <cctype>

#include "rt/runtime.hpp"
#include "util/assert.hpp"

namespace das {

namespace {

std::string lower(const std::string& s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kRt: return "rt";
  }
  return "?";
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> kAll = {Backend::kSim, Backend::kRt};
  return kAll;
}

std::optional<Backend> parse_backend(const std::string& name) {
  const std::string n = lower(name);
  if (n == "sim" || n == "des") return Backend::kSim;
  if (n == "rt" || n == "real") return Backend::kRt;
  return std::nullopt;
}

std::optional<Policy> parse_policy(const std::string& name) {
  const std::string n = lower(name);
  for (Policy p : all_known_policies())
    if (n == lower(policy_name(p))) return p;
  return std::nullopt;
}

Backend backend_flag(const cli::Flags& flags, Backend def) {
  if (!flags.has("backend")) return def;
  const auto b = parse_backend(flags.get("backend"));
  if (!b) cli::die("unknown backend '" + flags.get("backend") + "' (sim|rt)");
  return *b;
}

Policy policy_flag(const cli::Flags& flags, Policy def) {
  if (!flags.has("policy")) return def;
  const auto p = parse_policy(flags.get("policy"));
  if (!p) cli::die("unknown policy '" + flags.get("policy") + "'");
  return *p;
}

std::optional<scenario::ScenarioSpec> scenario_flag(const cli::Flags& flags) {
  if (!flags.has("scenario")) return std::nullopt;
  try {
    return scenario::load(flags.get("scenario"));
  } catch (const scenario::ScenarioError& e) {
    cli::die(std::string("--scenario: ") + e.what());
  }
}

SpeedScenario build_scenario_or_exit(const scenario::ScenarioSpec& spec,
                                     const Topology& topo) {
  try {
    return scenario::build(spec, topo);
  } catch (const scenario::ScenarioError& e) {
    cli::die(std::string("--scenario: ") + e.what());
  }
}

JobId Executor::submit(const Dag& dag, double arrival_offset_s) {
  DAS_CHECK_MSG(arrival_offset_s >= 0.0,
                "submit: arrival offset must be >= 0");
  const JobTicket ticket = submit_job(dag, arrival_offset_s);
  MutexLock g(pending_mu_);
  pending_.emplace(ticket.id, Pending{ticket.arrival_s, dag.num_nodes()});
  return ticket.id;
}

RunResult Executor::wait(JobId id) {
  // Claim (erase) the pending entry BEFORE blocking: exactly one waiter can
  // own a job, so a concurrent drain()/wait() on the same id fails fast
  // here instead of racing into the engine.
  Pending pending;
  {
    MutexLock g(pending_mu_);
    const auto it = pending_.find(id);
    DAS_CHECK_MSG(it != pending_.end(),
                  "job " + std::to_string(id) +
                      " was not submitted through this executor (or was "
                      "already waited)");
    pending = it->second;
    pending_.erase(it);
  }
  return finish_wait(id, pending);
}

RunResult Executor::finish_wait(JobId id, const Pending& pending) {
  RunResult r;
  r.makespan_s = wait_job(id);
  r.tasks = pending.tasks;
  r.tasks_per_s = r.makespan_s > 0.0
                      ? static_cast<double>(pending.tasks) / r.makespan_s
                      : 0.0;
  r.backend = backend();
  r.policy = policy_kind();
  r.job = id;
  r.arrival_s = pending.arrival_s;
  r.stats.reserve(static_cast<std::size_t>(num_ranks()));
  for (int rank = 0; rank < num_ranks(); ++rank)
    r.stats.push_back(stats(rank).snapshot());
  r.timeline = timeline_;
  return r;
}

std::vector<RunResult> Executor::drain() {
  // Claim one unclaimed job at a time (lowest id first = submission order):
  // the claim and the erase are one critical section, so jobs another
  // thread already claimed are simply not ours to drain and drain()
  // composes with concurrent wait()ers on the rt backend.
  std::vector<RunResult> results;
  for (;;) {
    JobId id;
    Pending pending;
    {
      MutexLock g(pending_mu_);
      if (pending_.empty()) break;
      const auto it = pending_.begin();
      id = it->first;
      pending = it->second;
      pending_.erase(it);
    }
    results.push_back(finish_wait(id, pending));
  }
  return results;
}

void Executor::reset_stats() {
  for (int rank = 0; rank < num_ranks(); ++rank) stats(rank).reset();
}

namespace {

rt::RtOptions to_rt_options(const ExecutorConfig& cfg) {
  rt::RtOptions o;
  o.seed = cfg.seed;
  o.scenario = cfg.scenario;
  o.policy_options = cfg.policy_options;
  o.ptt_ratio = cfg.ptt_ratio;
  o.stats_phases = cfg.stats_phases;
  o.pin_threads = cfg.rt.pin_threads;
  o.steal_attempts_per_round = cfg.rt.steal_attempts_per_round;
  return o;
}

sim::SimOptions to_sim_options(const ExecutorConfig& cfg) {
  sim::SimOptions o;
  o.seed = cfg.seed;
  o.policy_options = cfg.policy_options;
  o.ptt_ratio = cfg.ptt_ratio;
  o.stats_phases = cfg.stats_phases;
  o.timeline = cfg.timeline;
  o.dispatch_overhead_s = cfg.sim.dispatch_overhead_s;
  o.steal_latency_s = cfg.sim.steal_latency_s;
  o.completion_overhead_s = cfg.sim.completion_overhead_s;
  o.idle_wake_delay_s = cfg.sim.idle_wake_delay_s;
  o.noise = cfg.sim.noise;
  return o;
}

// Scenarios built from ExecutorConfig::scenario_spec; the executor keeps
// them alive for the engine's lifetime (one per rank — each rank's copy is
// built against that rank's topology).
using OwnedScenarios = std::vector<std::unique_ptr<SpeedScenario>>;

class SimExecutor final : public Executor {
 public:
  SimExecutor(std::vector<sim::RankSpec> ranks, Policy policy,
              const TaskTypeRegistry& registry, const ExecutorConfig& cfg,
              OwnedScenarios owned)
      : Executor(policy, cfg.timeline),
        owned_scenarios_(std::move(owned)),
        engine_(std::move(ranks), policy, registry, to_sim_options(cfg)) {}

  Backend backend() const override { return Backend::kSim; }
  int num_ranks() const override { return engine_.num_ranks(); }
  const Topology& topology(int rank = 0) const override {
    return engine_.stats(rank).topology();
  }
  double now() const override { return engine_.now(); }
  ExecutionStats& stats(int rank = 0) override { return engine_.stats(rank); }
  PolicyEngine& policy(int rank = 0) override { return engine_.policy(rank); }
  PttStore& ptt(int rank = 0) override { return engine_.ptt(rank); }

 protected:
  JobTicket submit_job(const Dag& dag, double arrival_offset_s) override {
    const JobId id = engine_.submit(dag, arrival_offset_s);
    return JobTicket{id, engine_.now() + arrival_offset_s};
  }
  double wait_job(JobId id) override { return engine_.wait(id); }

 private:
  OwnedScenarios owned_scenarios_;  // declared before engine_: outlives it
  sim::SimEngine engine_;
};

class RtExecutor final : public Executor {
 public:
  RtExecutor(const Topology& topo, Policy policy,
             const TaskTypeRegistry& registry, const ExecutorConfig& cfg,
             OwnedScenarios owned)
      : Executor(policy, /*timeline=*/nullptr),  // rt records no timeline yet
        owned_scenarios_(std::move(owned)),
        runtime_(topo, policy, registry, to_rt_options(cfg)) {}

  Backend backend() const override { return Backend::kRt; }
  int num_ranks() const override { return 1; }
  const Topology& topology(int rank = 0) const override {
    DAS_CHECK(rank == 0);
    return runtime_.topology();
  }
  double now() const override { return runtime_.scenario_now(); }
  ExecutionStats& stats(int rank = 0) override {
    DAS_CHECK(rank == 0);
    return runtime_.stats();
  }
  PolicyEngine& policy(int rank = 0) override {
    DAS_CHECK(rank == 0);
    return runtime_.policy();
  }
  PttStore& ptt(int rank = 0) override {
    DAS_CHECK(rank == 0);
    return runtime_.ptt();
  }

 protected:
  JobTicket submit_job(const Dag& dag, double arrival_offset_s) override {
    // The real runtime cannot defer a release on a virtual clock: open-loop
    // drivers pace rt arrivals in wall time and submit with offset 0.
    DAS_CHECK_MSG(arrival_offset_s == 0.0,
                  "Backend::kRt cannot schedule future arrivals; submit with "
                  "offset 0 and pace arrivals in wall time");
    const double arrival = runtime_.scenario_now();
    return JobTicket{runtime_.submit(dag), arrival};
  }
  double wait_job(JobId id) override { return runtime_.wait(id); }

 private:
  OwnedScenarios owned_scenarios_;  // declared before runtime_: outlives it
  rt::Runtime runtime_;
};

}  // namespace

std::unique_ptr<Executor> make_executor(Backend backend, const Topology& topo,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config) {
  return make_executor(backend, {sim::RankSpec{&topo, config.scenario}}, policy,
                       registry, std::move(config));
}

std::unique_ptr<Executor> make_executor(Backend backend,
                                        std::vector<sim::RankSpec> ranks,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config) {
  DAS_CHECK_MSG(!ranks.empty(), "make_executor: at least one rank required");
  DAS_CHECK_MSG(!(config.scenario != nullptr && config.scenario_spec),
                "make_executor: set ExecutorConfig::scenario OR scenario_spec, "
                "not both");
  // A declarative spec is built per rank (against that rank's topology) and
  // owned by the executor — the driver never manages SpeedScenario lifetime.
  OwnedScenarios owned;
  if (config.scenario_spec) {
    for (sim::RankSpec& r : ranks) {
      if (r.scenario != nullptr) continue;  // a RankSpec scenario wins
      owned.push_back(std::make_unique<SpeedScenario>(
          scenario::build(*config.scenario_spec, *r.topo)));
      r.scenario = owned.back().get();
    }
  }
  // config.scenario is the fallback for every rank without its own scenario
  // (so a driver migrating from the single-topology overload does not lose
  // its interference scenario silently); a RankSpec scenario wins.
  for (sim::RankSpec& r : ranks)
    if (r.scenario == nullptr) r.scenario = config.scenario;
  switch (backend) {
    case Backend::kSim:
      return std::make_unique<SimExecutor>(std::move(ranks), policy, registry,
                                           config, std::move(owned));
    case Backend::kRt: {
      DAS_CHECK_MSG(ranks.size() == 1,
                    "Backend::kRt is single-domain; use net::World for real "
                    "multi-rank runs");
      ExecutorConfig cfg = std::move(config);
      cfg.scenario = ranks[0].scenario;
      return std::make_unique<RtExecutor>(*ranks[0].topo, policy, registry, cfg,
                                          std::move(owned));
    }
  }
  DAS_CHECK_MSG(false, "make_executor: unknown backend");
  return nullptr;
}

}  // namespace das
