#include "exec/executor.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>

#include "rt/runtime.hpp"
#include "util/assert.hpp"

namespace das {

namespace {

std::string lower(const std::string& s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kRt: return "rt";
  }
  return "?";
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> kAll = {Backend::kSim, Backend::kRt};
  return kAll;
}

std::optional<Backend> parse_backend(const std::string& name) {
  const std::string n = lower(name);
  if (n == "sim" || n == "des") return Backend::kSim;
  if (n == "rt" || n == "real") return Backend::kRt;
  return std::nullopt;
}

std::optional<Policy> parse_policy(const std::string& name) {
  const std::string n = lower(name);
  for (Policy p : all_known_policies())
    if (n == lower(policy_name(p))) return p;
  return std::nullopt;
}

Backend backend_flag(const cli::Flags& flags, Backend def) {
  if (!flags.has("backend")) return def;
  const auto b = parse_backend(flags.get("backend"));
  if (!b) cli::die("unknown backend '" + flags.get("backend") + "' (sim|rt)");
  return *b;
}

Policy policy_flag(const cli::Flags& flags, Policy def) {
  if (!flags.has("policy")) return def;
  const auto p = parse_policy(flags.get("policy"));
  if (!p) cli::die("unknown policy '" + flags.get("policy") + "'");
  return *p;
}

std::optional<scenario::ScenarioSpec> scenario_flag(const cli::Flags& flags) {
  if (!flags.has("scenario")) return std::nullopt;
  try {
    return scenario::load(flags.get("scenario"));
  } catch (const scenario::ScenarioError& e) {
    cli::die(std::string("--scenario: ") + e.what());
  }
}

SpeedScenario build_scenario_or_exit(const scenario::ScenarioSpec& spec,
                                     const Topology& topo) {
  try {
    return scenario::build(spec, topo);
  } catch (const scenario::ScenarioError& e) {
    cli::die(std::string("--scenario: ") + e.what());
  }
}

// Executor's service-layer methods (submit/wait/drain/sessions) live in
// exec/service.cpp; this file keeps the CLI helpers and the two engine
// adapters.

namespace {

rt::RtOptions to_rt_options(const ExecutorConfig& cfg, FaultPlan faults) {
  rt::RtOptions o;
  o.seed = cfg.seed;
  o.scenario = cfg.scenario;
  o.policy_options = cfg.policy_options;
  o.ptt_ratio = cfg.ptt_ratio;
  o.stats_phases = cfg.stats_phases;
  o.pin_threads = cfg.rt.pin_threads;
  o.steal_attempts_per_round = cfg.rt.steal_attempts_per_round;
  o.faults = std::move(faults);
  o.enable_watchdog = cfg.rt.enable_watchdog;
  o.watchdog_period_s = cfg.rt.watchdog_period_s;
  return o;
}

sim::SimOptions to_sim_options(const ExecutorConfig& cfg) {
  sim::SimOptions o;
  o.seed = cfg.seed;
  o.policy_options = cfg.policy_options;
  o.ptt_ratio = cfg.ptt_ratio;
  o.stats_phases = cfg.stats_phases;
  o.timeline = cfg.timeline;
  o.dispatch_overhead_s = cfg.sim.dispatch_overhead_s;
  o.steal_latency_s = cfg.sim.steal_latency_s;
  o.completion_overhead_s = cfg.sim.completion_overhead_s;
  o.idle_wake_delay_s = cfg.sim.idle_wake_delay_s;
  o.noise = cfg.sim.noise;
  o.force_generic_dispatch = cfg.sim.force_generic_dispatch;
  o.des_threads = cfg.sim.des_threads;
  return o;
}

// Scenarios built from ExecutorConfig::scenario_spec; the executor keeps
// them alive for the engine's lifetime (one per rank — each rank's copy is
// built against that rank's topology).
using OwnedScenarios = std::vector<std::unique_ptr<SpeedScenario>>;
// Likewise for the resolved fail-stop/freeze schedules (scenario_spec
// faults), resolved per rank against that rank's topology.
using OwnedFaultPlans = std::vector<std::unique_ptr<FaultPlan>>;

class SimExecutor final : public Executor {
 public:
  SimExecutor(std::vector<sim::RankSpec> ranks, Policy policy,
              const TaskTypeRegistry& registry, const ExecutorConfig& cfg,
              OwnedScenarios owned, OwnedFaultPlans owned_faults)
      : Executor(policy, cfg.timeline, cfg.service),
        owned_scenarios_(std::move(owned)),
        owned_fault_plans_(std::move(owned_faults)),
        engine_(std::move(ranks), policy, registry, to_sim_options(cfg)) {
    // Deferred notifications only: installing the hooks adds no events and
    // changes no engine decision, so bare submits stay bitwise-identical
    // to a hook-less engine (tests/sim_determinism_test.cpp).
    engine_.set_service_hooks(
        [this](JobId id, double) { on_engine_job_done(id); },
        [this](std::uint64_t token, double) { on_timer(token); });
  }

  Backend backend() const override { return Backend::kSim; }
  const char* dispatch_variant() const override {
    return engine_.dispatch_variant();
  }
  int num_ranks() const override { return engine_.num_ranks(); }
  const Topology& topology(int rank = 0) const override {
    return engine_.stats(rank).topology();
  }
  double now() const override { return engine_.now(); }
  ExecutionStats& stats(int rank = 0) override { return engine_.stats(rank); }
  PolicyEngine& policy(int rank = 0) override { return engine_.policy(rank); }
  PttStore& ptt(int rank = 0) override { return engine_.ptt(rank); }

 protected:
  JobTicket submit_job(const Dag& dag, double arrival_offset_s) override {
    const JobId id = engine_.submit(dag, arrival_offset_s);
    return JobTicket{id, engine_.now() + arrival_offset_s};
  }
  double wait_job(JobId id) override {
    // Pump instead of calling engine_.wait's internal loop so deferred
    // service notifications (job-done, timers) are delivered between
    // steps; the step sequence itself is identical.
    while (!engine_.job_done(id))
      DAS_CHECK_MSG(engine_.pump_one(),
                    "deadlock: job " + std::to_string(id) +
                        " is waiting on an empty event queue");
    return engine_.wait(id);
  }
  void svc_block_until(SvcWait cond, JobId id) override {
    // Single driving thread: nothing else advances the service, so pump
    // virtual time until the condition (release/admission) resolves.
    for (;;) {
      {
        MutexLock g(svc_mu_);
        if (svc_cond_locked(cond, id)) return;
      }
      DAS_CHECK_MSG(engine_.pump_one(),
                    "service deadlock: job " + std::to_string(id) +
                        " cannot progress with no engine events pending "
                        "(blocked admission with nothing in flight?)");
    }
  }
  void svc_arm_timer(double offset_s, std::uint64_t token) override {
    engine_.schedule_timer(offset_s, token);
  }
  bool engine_defers_arrivals() const override { return true; }
  bool svc_finished_by(JobId id, double deadline_s) override {
    // Single driving thread: pump virtual time until the job resolves or
    // the virtual clock passes the deadline. Deterministic like everything
    // else on this backend — same seed + same calls = same outcome.
    for (;;) {
      const JobProbe p = probe_job(id);
      if (p.terminal) return true;
      if (p.released && engine_.job_done(p.engine_id)) return true;
      if (engine_.now() > deadline_s) return false;
      if (!engine_.pump_one()) return false;  // nothing left that could finish it
    }
  }
  std::uint64_t engine_tasks_reexecuted() const override {
    return engine_.tasks_reexecuted();
  }

 private:
  OwnedScenarios owned_scenarios_;  // declared before engine_: outlives it
  OwnedFaultPlans owned_fault_plans_;
  sim::SimEngine engine_;
};

class RtExecutor final : public Executor {
 public:
  RtExecutor(const Topology& topo, Policy policy,
             const TaskTypeRegistry& registry, const ExecutorConfig& cfg,
             OwnedScenarios owned, FaultPlan faults)
      : Executor(policy, /*timeline=*/nullptr,  // rt records no timeline yet
                 cfg.service),
        owned_scenarios_(std::move(owned)),
        runtime_(topo, policy, registry,
                 to_rt_options(cfg, std::move(faults))) {
    // Completion hook fires on the finishing worker's thread with the
    // runtime lock released; the service layer may re-enter submit() from
    // it (lock order svc_mu_ -> runtime mu_ holds on every path).
    runtime_.set_job_done_hook([this](JobId id) { on_engine_job_done(id); });
  }

  ~RtExecutor() override {
    // Stop the pacer BEFORE runtime_ is destroyed: a late timer would
    // submit into a dead runtime. Undelivered timers are dropped — jobs
    // still pending at destruction were never completable anyway.
    {
      MutexLock g(pacer_mu_);
      pacer_stop_ = true;
    }
    pacer_cv_.notify_all();
    if (pacer_.joinable()) pacer_.join();
  }

  Backend backend() const override { return Backend::kRt; }
  const char* dispatch_variant() const override {
    return runtime_.dispatch_variant();
  }
  int num_ranks() const override { return 1; }
  const Topology& topology(int rank = 0) const override {
    DAS_CHECK(rank == 0);
    return runtime_.topology();
  }
  double now() const override { return runtime_.scenario_now(); }
  ExecutionStats& stats(int rank = 0) override {
    DAS_CHECK(rank == 0);
    return runtime_.stats();
  }
  PolicyEngine& policy(int rank = 0) override {
    DAS_CHECK(rank == 0);
    return runtime_.policy();
  }
  PttStore& ptt(int rank = 0) override {
    DAS_CHECK(rank == 0);
    return runtime_.ptt();
  }

 protected:
  JobTicket submit_job(const Dag& dag, double arrival_offset_s) override {
    // The real runtime has no virtual clock: future arrivals never reach
    // it. The service layer paces them in wall time (svc_arm_timer) and
    // releases with offset 0.
    DAS_CHECK_MSG(arrival_offset_s == 0.0,
                  "Backend::kRt releases are immediate; future arrivals are "
                  "paced by the service layer");
    const double arrival = runtime_.scenario_now();
    return JobTicket{runtime_.submit(dag), arrival};
  }
  double wait_job(JobId id) override { return runtime_.wait(id); }
  void svc_block_until(SvcWait cond, JobId id) override {
    MutexLock g(svc_mu_);
    while (!svc_cond_locked(cond, id)) svc_cv_.wait(g);
  }
  void svc_arm_timer(double offset_s, std::uint64_t token) override {
    const std::int64_t deadline =
        steady_now_ns() + static_cast<std::int64_t>(offset_s * 1e9);
    MutexLock g(pacer_mu_);
    // Lazy start: single-shot rt drivers never pay for the thread.
    if (!pacer_.joinable()) pacer_ = std::thread([this] { pacer_main(); });
    pacer_q_.emplace(deadline, token);
    pacer_cv_.notify_one();
  }
  bool engine_defers_arrivals() const override { return false; }
  bool svc_finished_by(JobId id, double deadline_s) override {
    // Completion/release/rejection all notify svc_cv_, so park on it with
    // the remaining wall budget and re-probe on every wake.
    MutexLock g(svc_mu_);
    for (;;) {
      const JobProbe p = probe_job_locked(id);
      if (p.terminal) return true;
      if (p.released && runtime_.job_done(p.engine_id)) return true;
      const double remaining_s = deadline_s - now();
      if (remaining_s <= 0.0) return false;
      svc_cv_.wait_for(g, std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::duration<double>(remaining_s)));
    }
  }
  std::uint64_t engine_tasks_reexecuted() const override {
    return runtime_.tasks_reexecuted();
  }

 private:
  static std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Wall-clock timer thread: sleeps until the earliest deadline, then
  /// delivers the due tokens OUTSIDE pacer_mu_ (on_timer takes svc_mu_ and
  /// may submit into the runtime).
  void pacer_main() {
    std::vector<std::uint64_t> due;
    while (pacer_collect_due(due)) {
      for (const std::uint64_t token : due) on_timer(token);
      due.clear();
    }
  }

  /// Blocks until timers are due (filling `due`, returns true) or shutdown
  /// (returns false).
  bool pacer_collect_due(std::vector<std::uint64_t>& due) {
    MutexLock g(pacer_mu_);
    for (;;) {
      if (pacer_stop_) return false;
      if (pacer_q_.empty()) {
        pacer_cv_.wait(g);
        continue;
      }
      const std::int64_t now = steady_now_ns();
      const std::int64_t head = pacer_q_.begin()->first;
      if (head > now) {
        pacer_cv_.wait_for(g, std::chrono::nanoseconds(head - now));
        continue;
      }
      while (!pacer_q_.empty() && pacer_q_.begin()->first <= now) {
        due.push_back(pacer_q_.begin()->second);
        pacer_q_.erase(pacer_q_.begin());
      }
      return true;
    }
  }

  OwnedScenarios owned_scenarios_;  // declared before runtime_: outlives it
  rt::Runtime runtime_;
  Mutex pacer_mu_;
  CondVar pacer_cv_;
  /// deadline (steady ns) -> public-JobId token.
  std::multimap<std::int64_t, std::uint64_t> pacer_q_ DAS_GUARDED_BY(pacer_mu_);
  bool pacer_stop_ DAS_GUARDED_BY(pacer_mu_) = false;
  std::thread pacer_;  // started under pacer_mu_; joined in the dtor
};

}  // namespace

std::unique_ptr<Executor> make_executor(Backend backend, const Topology& topo,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config) {
  return make_executor(backend, {sim::RankSpec{&topo, config.scenario}}, policy,
                       registry, std::move(config));
}

std::unique_ptr<Executor> make_executor(Backend backend,
                                        std::vector<sim::RankSpec> ranks,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config) {
  DAS_CHECK_MSG(!ranks.empty(), "make_executor: at least one rank required");
  DAS_CHECK_MSG(!(config.scenario != nullptr && config.scenario_spec),
                "make_executor: set ExecutorConfig::scenario OR scenario_spec, "
                "not both");
  // A declarative spec is built per rank (against that rank's topology) and
  // owned by the executor — the driver never manages SpeedScenario lifetime.
  OwnedScenarios owned;
  if (config.scenario_spec) {
    for (sim::RankSpec& r : ranks) {
      if (r.scenario != nullptr) continue;  // a RankSpec scenario wins
      owned.push_back(std::make_unique<SpeedScenario>(
          scenario::build(*config.scenario_spec, *r.topo)));
      r.scenario = owned.back().get();
    }
  }
  // config.scenario is the fallback for every rank without its own scenario
  // (so a driver migrating from the single-topology overload does not lose
  // its interference scenario silently); a RankSpec scenario wins.
  for (sim::RankSpec& r : ranks)
    if (r.scenario == nullptr) r.scenario = config.scenario;
  // Fail-stop/freeze faults resolve from the same spec, also per rank.
  const bool spec_faults =
      config.scenario_spec && config.scenario_spec->has_engine_faults();
  OwnedFaultPlans owned_faults;
  if (spec_faults) {
    for (sim::RankSpec& r : ranks) {
      if (r.faults != nullptr) continue;  // a RankSpec plan wins
      owned_faults.push_back(std::make_unique<FaultPlan>(
          scenario::resolve_faults(*config.scenario_spec, *r.topo)));
      r.faults = owned_faults.back().get();
    }
  }
  switch (backend) {
    case Backend::kSim:
      return std::make_unique<SimExecutor>(std::move(ranks), policy, registry,
                                           config, std::move(owned),
                                           std::move(owned_faults));
    case Backend::kRt: {
      DAS_CHECK_MSG(ranks.size() == 1,
                    "Backend::kRt is single-domain; use net::World for real "
                    "multi-rank runs");
      ExecutorConfig cfg = std::move(config);
      cfg.scenario = ranks[0].scenario;
      FaultPlan faults;
      if (ranks[0].faults != nullptr) faults = *ranks[0].faults;
      return std::make_unique<RtExecutor>(*ranks[0].topo, policy, registry, cfg,
                                          std::move(owned), std::move(faults));
    }
  }
  DAS_CHECK_MSG(false, "make_executor: unknown backend");
  return nullptr;
}

}  // namespace das
