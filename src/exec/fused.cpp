#include "exec/fused.hpp"

namespace das::exec {

DispatchPlan plan_dispatch(Policy policy, const TaskTypeRegistry& registry,
                           bool force_generic) {
  if (force_generic) {
    return DispatchPlan{false, "generic",
                        "force_generic_dispatch set (A/B lever)"};
  }
  const CostClass cls = classify_cost_models(registry);
  if (cls == CostClass::kCallable) {
    return DispatchPlan{false, "generic",
                        "registry has a user std::function cost model"};
  }
  return DispatchPlan{true, fused_variant_name(policy, cls), ""};
}

}  // namespace das::exec
