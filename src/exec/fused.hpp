#pragma once
// Static-dispatch planning for the execution facade.
//
// Both engines select a fused (statically dispatched) hot loop at run time
// when the configuration allows it: the DES instantiates its event loop per
// (policy tag, cost class) — sim::SimEngine::refresh_dispatch — and the
// real-thread runtime binds a per-policy progress round at construction —
// rt::Runtime::bind_progress. plan_dispatch() is the SAME decision,
// evaluated without building an engine, so drivers and tests can predict
// (and assert) which loop a given (policy, registry, config) lands on.
//
// The fused and generic paths are equal by construction — one arithmetic
// implementation (core/cost_expr.hpp), one policy implementation
// (core/policy.hpp's *_static templates) — so falling back is never a
// correctness event, only a throughput one. The fallback conditions are:
//   - a registry type carries a user-supplied std::function cost model
//     (CostClass::kCallable): the closed-form evaluators cannot represent
//     it, so the whole engine demotes to the type-erased loop;
//   - SimOptions::force_generic_dispatch (ExecutorConfig::sim.force_generic_
//     dispatch): the A/B lever the determinism test and benches use to pin
//     fused == generic bitwise and to price the dispatch layers.

#include "core/cost_expr.hpp"
#include "core/policy.hpp"
#include "core/task_type.hpp"

namespace das::exec {

/// The dispatch decision for one engine configuration.
struct DispatchPlan {
  bool fused = false;
  /// Engine label: fused_variant_name(policy, cls) or "generic". Static
  /// storage — safe to hold past the plan.
  const char* variant = "generic";
  /// Why the plan is generic; "" when fused.
  const char* reason = "";
};

/// Predicts the loop an executor built from (policy, registry,
/// force_generic) will run. Matches SimEngine::dispatch_variant() exactly;
/// the rt runtime differs only in carrying no cost-class suffix (its cost
/// evaluation is expression-aware on every path).
DispatchPlan plan_dispatch(Policy policy, const TaskTypeRegistry& registry,
                           bool force_generic = false);

}  // namespace das::exec
