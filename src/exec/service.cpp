#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/executor.hpp"
#include "util/assert.hpp"

// Multi-tenant service layer over the engine facade: admission control,
// deficit-round-robin fair release, claim-ownership job finishing. The
// header (exec/executor.hpp) and exec/session.hpp carry the contracts;
// this file is pure bookkeeping around two engine-provided primitives —
// submit_job() and the svc_* bridge virtuals.
//
// Locking: svc_mu_ guards every service structure and is held ACROSS
// submit_job (lock order svc_mu_ -> engine lock; nothing takes them in the
// other order), but never across wait_job — completion latches are engine
// business. On sim, everything below runs on the one driving thread and
// the lock is uncontended by construction.

namespace das {

JobId Executor::submit(const Dag& dag, const SubmitOptions& opts) {
  return submit_impl(dag, opts, /*tenant=*/-1);
}

JobId Executor::submit_impl(const Dag& dag, const SubmitOptions& opts,
                            int tenant) {
  DAS_CHECK_MSG(opts.arrival_offset_s >= 0.0,
                "submit: arrival offset must be >= 0");
  DAS_CHECK_MSG(opts.deadline_s >= 0.0, "submit: deadline must be >= 0");
  const auto tasks = static_cast<std::int64_t>(dag.num_nodes());
  JobId id = kInvalidJob;
  bool block = false;
  {
    MutexLock g(svc_mu_);
    id = next_public_++;
    ServiceJob job;
    job.tenant = tenant;
    job.dag = &dag;
    job.tasks = tasks;
    job.priority = opts.priority;
    job.deadline_s = opts.deadline_s;
    if (tenant < 0 &&
        (opts.arrival_offset_s == 0.0 || engine_defers_arrivals())) {
      // Bare submit on the engine's own arrival path: no queue, no timer,
      // no hook registration — byte-for-byte the pre-service behavior
      // (single-tenant sim streams stay bitwise-reproducible).
      const JobTicket ticket = submit_job(dag, opts.arrival_offset_s);
      job.engine_id = ticket.id;
      job.arrival_s = ticket.arrival_s;
      job.release_s = ticket.arrival_s;
      job.arrived = true;
      job.released = true;
      jobs_.emplace(id, std::move(job));
      return id;
    }
    if (tenant >= 0) {
      DAS_CHECK_MSG(static_cast<std::size_t>(tenant) < tenants_.size(),
                    "submit: unknown tenant");
      const TenantConfig& cfg = tenants_[static_cast<std::size_t>(tenant)].cfg;
      if (cfg.overload == Overload::kBlock) {
        // A blocking admission decision cannot be deferred to a timer, and
        // an over-budget job would never fit however long it waits.
        DAS_CHECK_MSG(opts.arrival_offset_s == 0.0,
                      "Overload::kBlock tenants cannot defer arrivals "
                      "(arrival_offset_s must be 0)");
        DAS_CHECK_MSG(
            cfg.max_queued_tasks == 0 || tasks <= cfg.max_queued_tasks,
                      "submit: job (" + std::to_string(tasks) +
                          " tasks) exceeds tenant '" + cfg.name +
                          "' queued-task budget " +
                          std::to_string(cfg.max_queued_tasks) +
                          " — an Overload::kBlock submit would never unblock");
      }
    }
    jobs_.emplace(id, std::move(job));
    if (opts.arrival_offset_s > 0.0) {
      // Deferred arrival: bare rt release pacing (tenant < 0) or a session
      // job whose admission check runs at arrival time, both driven by the
      // engine-appropriate timer (virtual event on sim, pacer thread on rt).
      svc_arm_timer(opts.arrival_offset_s, timer_token(kTimerArrival, id));
      return id;
    }
    block = !try_admit_locked(id);
  }
  if (block) svc_block_until(SvcWait::kAdmissionDecided, id);
  return id;
}

bool Executor::try_admit_locked(JobId id) {
  ServiceJob& job = jobs_.at(id);
  if (job.arrived || job.rejected) return true;  // idempotent on retries
  TenantState& t = tenants_[static_cast<std::size_t>(job.tenant)];
  if (t.cfg.max_queued_tasks > 0 &&
      t.pending_tasks + job.tasks > t.cfg.max_queued_tasks) {
    if (t.cfg.overload == Overload::kReject) {
      if (job.retries < t.cfg.max_retries) {
        // Retry policy: instead of bouncing, re-run this admission check
        // after a capped exponential backoff. The submitter is NOT blocked
        // (the job is simply undecided until a retry lands or the budget
        // runs out); wait() resolves either way.
        const double backoff =
            std::min(t.cfg.retry_backoff_s *
                         std::pow(2.0, static_cast<double>(job.retries)),
                     t.cfg.retry_backoff_cap_s);
        ++job.retries;
        ++t.counters.retries;
        svc_arm_timer(backoff, timer_token(kTimerRetry, id));
        return true;
      }
      job.rejected = true;
      job.retries_exhausted = t.cfg.max_retries > 0;
      job.arrival_s = now();
      ++t.counters.rejected;
      svc_cv_.notify_all();
      return true;
    }
    return false;  // kBlock: the submitter parks and retries on drain
  }
  job.arrived = true;
  job.arrival_s = now();
  ++t.counters.submitted;
  t.pending_tasks += job.tasks;
  t.buckets[job.priority].push_back(id);
  if (job.deadline_s > 0.0)
    svc_arm_timer(job.deadline_s, timer_token(kTimerDeadline, id));
  if (!t.in_ring) {
    t.in_ring = true;
    ring_.push_back(static_cast<std::size_t>(job.tenant));
  }
  pump_locked();
  return true;
}

void Executor::pump_locked() {
  // Deficit round-robin over the backlogged-tenant ring: visit the tenant
  // at the cursor, credit one weighted quantum (once per visit — see
  // cursor_credited_), release whole jobs while the deficit covers their
  // task counts, advance. Tenants at their OWN in-flight bound are skipped
  // WITHOUT credit (deficit must not accumulate while the tenant cannot
  // use it — it would burst on unblock); a burst cut short by the GLOBAL
  // bound keeps the cursor so the tenant resumes its turn, un-re-credited,
  // when capacity frees. The loop exits only when every backlogged tenant
  // is bound-blocked or the ring is empty: release is work-conserving.
  for (;;) {
    if (svc_.max_service_inflight > 0 &&
        service_inflight_ >= svc_.max_service_inflight)
      return;
    const std::size_t n = ring_.size();
    if (n == 0) return;
    std::size_t pos = 0;
    bool found = false;
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      pos = (ring_cursor_ + scanned) % n;
      const TenantState& t = tenants_[ring_[pos]];
      if (t.cfg.max_in_flight > 0 &&
          t.released_in_flight >= t.cfg.max_in_flight)
        continue;
      found = true;
      break;
    }
    if (!found) return;
    if (pos != ring_cursor_) {
      ring_cursor_ = pos;
      cursor_credited_ = false;
    }
    TenantState& t = tenants_[ring_[pos]];
    if (!cursor_credited_) {
      t.deficit += t.cfg.weight * static_cast<double>(svc_.drr_quantum_tasks);
      cursor_credited_ = true;
    }
    bool global_blocked = false;
    while (!t.buckets.empty()) {
      if (svc_.max_service_inflight > 0 &&
          service_inflight_ >= svc_.max_service_inflight) {
        global_blocked = true;
        break;
      }
      if (t.cfg.max_in_flight > 0 &&
          t.released_in_flight >= t.cfg.max_in_flight)
        break;
      auto head = t.buckets.begin();
      const JobId id = head->second.front();
      const auto cost = static_cast<double>(jobs_.at(id).tasks);
      if (t.deficit < cost) break;
      t.deficit -= cost;
      head->second.pop_front();
      if (head->second.empty()) t.buckets.erase(head);
      release_locked(id);
    }
    if (global_blocked) return;  // resume THIS tenant when capacity frees
    cursor_credited_ = false;
    if (t.buckets.empty()) {
      // Drained: drop the residual credit (classic DRR — an idle tenant
      // must not bank credit against its next burst) and leave the ring.
      t.deficit = 0.0;
      t.in_ring = false;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(pos));
      if (ring_cursor_ > pos) --ring_cursor_;
      if (!ring_.empty()) ring_cursor_ %= ring_.size();
      else ring_cursor_ = 0;
    } else {
      ring_cursor_ = (pos + 1) % ring_.size();
    }
  }
}

void Executor::release_locked(JobId id) {
  ServiceJob& job = jobs_.at(id);
  const JobTicket ticket = submit_job(*job.dag, 0.0);
  job.engine_id = ticket.id;
  job.release_s = ticket.arrival_s;
  job.released = true;
  if (job.tenant < 0) {
    // Paced bare release: arrival == release, mirroring the engine path.
    job.arrived = true;
    job.arrival_s = ticket.arrival_s;
  }
  if (job.tenant >= 0) {
    engine_to_public_.emplace(ticket.id, id);
    ++service_inflight_;
    TenantState& t = tenants_[static_cast<std::size_t>(job.tenant)];
    ++t.released_in_flight;
    t.pending_tasks -= job.tasks;
    ++t.counters.released;
    t.counters.released_tasks += job.tasks;
  }
  svc_cv_.notify_all();
}

void Executor::on_engine_job_done(JobId engine_id) {
  {
    MutexLock g(svc_mu_);
    const auto it = engine_to_public_.find(engine_id);
    if (it != engine_to_public_.end()) {
      const JobId id = it->second;
      engine_to_public_.erase(it);
      --service_inflight_;
      TenantState& t =
          tenants_[static_cast<std::size_t>(jobs_.at(id).tenant)];
      --t.released_in_flight;
      ++t.counters.completed;
      // A completion frees in-flight headroom: release what it unblocks.
      pump_locked();
    }
    // else: bare job — no accounting, but still fall through to the notify
    // so a wait_for() parked on svc_cv_ re-probes its completion.
  }
  svc_cv_.notify_all();
}

void Executor::on_timer(std::uint64_t token) {
  const std::uint64_t kind = token >> kTimerKindShift;
  const auto id =
      static_cast<JobId>(token & ((std::uint64_t{1} << kTimerKindShift) - 1));
  {
    MutexLock g(svc_mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;  // claimed/finished before the timer fired
    switch (kind) {
      case kTimerArrival:
        if (it->second.tenant < 0) {
          release_locked(id);  // paced bare release (rt future arrival)
        } else {
          (void)try_admit_locked(id);  // deferred session arrival
        }
        break;
      case kTimerDeadline:
        // Only a still-queued job can time out: released jobs run to
        // completion, rejected/retrying ones already have their outcome.
        if (it->second.arrived && !it->second.released) timeout_locked(id);
        break;
      case kTimerRetry:
        if (!it->second.arrived && !it->second.rejected)
          (void)try_admit_locked(id);
        break;
      default:
        DAS_CHECK_MSG(false, "on_timer: unknown timer token kind");
    }
  }
  svc_cv_.notify_all();
}

void Executor::timeout_locked(JobId id) {
  ServiceJob& job = jobs_.at(id);
  TenantState& t = tenants_[static_cast<std::size_t>(job.tenant)];
  auto bucket = t.buckets.find(job.priority);
  DAS_CHECK(bucket != t.buckets.end());
  auto& q = bucket->second;
  const auto pos = std::find(q.begin(), q.end(), id);
  DAS_CHECK(pos != q.end());
  q.erase(pos);
  if (q.empty()) t.buckets.erase(bucket);
  t.pending_tasks -= job.tasks;
  ++t.counters.timed_out;
  job.timed_out = true;
  if (t.buckets.empty() && t.in_ring) {
    // Mirror pump_locked's drained branch: an empty tenant leaves the DRR
    // ring and forfeits its residual credit.
    t.deficit = 0.0;
    t.in_ring = false;
    const auto rit =
        std::find(ring_.begin(), ring_.end(),
                  static_cast<std::size_t>(job.tenant));
    DAS_CHECK(rit != ring_.end());
    const auto pos_in_ring =
        static_cast<std::size_t>(rit - ring_.begin());
    ring_.erase(rit);
    if (ring_cursor_ > pos_in_ring) --ring_cursor_;
    if (!ring_.empty()) ring_cursor_ %= ring_.size();
    else ring_cursor_ = 0;
    cursor_credited_ = false;
  }
}

bool Executor::svc_cond_locked(SvcWait cond, JobId id) {
  switch (cond) {
    case SvcWait::kReleased: {
      const ServiceJob& job = jobs_.at(id);
      return job.released || job.rejected || job.timed_out;
    }
    case SvcWait::kAdmissionDecided:
      return try_admit_locked(id);
  }
  DAS_CHECK_MSG(false, "svc_cond_locked: unknown condition");
  return false;
}

RunResult Executor::wait(JobId id) {
  // Claim BEFORE blocking: exactly one finisher owns a job, so a
  // concurrent drain()/wait() on the same id fails fast here instead of
  // racing into the engine.
  {
    MutexLock g(svc_mu_);
    const auto it = jobs_.find(id);
    DAS_CHECK_MSG(it != jobs_.end() && !it->second.claimed,
                  "job " + std::to_string(id) +
                      " was not submitted through this executor (or was "
                      "already waited)");
    it->second.claimed = true;
  }
  return finish_claimed(id);
}

RunResult Executor::finish_claimed(JobId id) {
  svc_block_until(SvcWait::kReleased, id);
  ServiceJob job;
  std::string tenant_name;
  {
    MutexLock g(svc_mu_);
    job = jobs_.at(id);
    if (job.tenant >= 0)
      tenant_name = tenants_[static_cast<std::size_t>(job.tenant)].cfg.name;
  }
  RunResult r;
  r.backend = backend();
  r.policy = policy_kind();
  r.job = id;
  r.arrival_s = job.arrival_s;
  r.tenant = std::move(tenant_name);
  if (job.timed_out) {
    r.outcome = RunResult::Outcome::kTimedOut;
  } else if (job.rejected) {
    r.outcome = job.retries_exhausted ? RunResult::Outcome::kRetriesExhausted
                                      : RunResult::Outcome::kRejected;
  } else {
    r.makespan_s = wait_job(job.engine_id);
    r.tasks = job.tasks;
    r.tasks_per_s = r.makespan_s > 0.0
                        ? static_cast<double>(job.tasks) / r.makespan_s
                        : 0.0;
    r.queue_s = job.release_s - job.arrival_s;
    r.tasks_reexecuted =
        static_cast<std::int64_t>(engine_tasks_reexecuted());
    r.stats.reserve(static_cast<std::size_t>(num_ranks()));
    for (int rank = 0; rank < num_ranks(); ++rank)
      r.stats.push_back(stats(rank).snapshot());
    r.timeline = timeline_;
  }
  MutexLock g(svc_mu_);
  // On rt the engine's completion hook trails wait_job's return (it runs on
  // the worker thread after the completion latch fires). Its accounting —
  // in-flight decrement, counters.completed, the pump — must land before
  // this job record disappears and before counters() can observe the wait,
  // so park until the hook has erased the engine mapping. On sim the hook
  // was delivered inside whichever pump completed the job: no wait.
  if (!job.rejected && !job.timed_out && job.tenant >= 0)
    while (engine_to_public_.count(job.engine_id) != 0) svc_cv_.wait(g);
  jobs_.erase(id);
  return r;
}

Executor::JobProbe Executor::probe_job_locked(JobId id) {
  const ServiceJob& job = jobs_.at(id);
  JobProbe p;
  p.terminal = job.rejected || job.timed_out;
  p.released = job.released;
  p.engine_id = job.engine_id;
  return p;
}

std::optional<RunResult> Executor::wait_for(JobId id, double timeout_s) {
  DAS_CHECK_MSG(timeout_s >= 0.0, "wait_for: timeout must be >= 0");
  const double deadline = now() + timeout_s;
  {
    MutexLock g(svc_mu_);
    const auto it = jobs_.find(id);
    DAS_CHECK_MSG(it != jobs_.end() && !it->second.claimed,
                  "job " + std::to_string(id) +
                      " was not submitted through this executor (or was "
                      "already waited)");
    it->second.claimed = true;
  }
  if (!svc_finished_by(id, deadline)) {
    // Timed out: release the claim so a later wait()/drain() can finish the
    // job — wait_for never abandons work, it only bounds THIS caller.
    MutexLock g(svc_mu_);
    jobs_.at(id).claimed = false;
    return std::nullopt;
  }
  return finish_claimed(id);  // everything is done; assembles without blocking
}

JobId Executor::claim_next_locked(int tenant) {
  for (auto& [id, job] : jobs_) {
    if (job.claimed) continue;
    if (tenant == -1 || job.tenant == tenant ||
        (tenant == -2 && job.tenant < 0)) {
      job.claimed = true;
      return id;
    }
  }
  return kInvalidJob;
}

std::vector<RunResult> Executor::drain() {
  // Claim one unclaimed job at a time (lowest id first = submission
  // order): the claim is one critical section, so jobs another thread
  // already claimed are simply not ours to drain and drain() composes
  // with concurrent wait()ers on the rt backend.
  std::vector<RunResult> results;
  for (;;) {
    JobId id = kInvalidJob;
    {
      MutexLock g(svc_mu_);
      id = claim_next_locked(-1);
    }
    if (id == kInvalidJob) break;
    results.push_back(finish_claimed(id));
  }
  return results;
}

std::vector<RunResult> Executor::drain_tenant(int tenant) {
  std::vector<RunResult> results;
  for (;;) {
    JobId id = kInvalidJob;
    {
      MutexLock g(svc_mu_);
      id = claim_next_locked(tenant);
    }
    if (id == kInvalidJob) break;
    results.push_back(finish_claimed(id));
  }
  return results;
}

std::vector<TenantResults> Executor::drain_grouped() {
  std::vector<TenantResults> groups;
  {
    MutexLock g(svc_mu_);
    groups.resize(tenants_.size() + 1);
    groups[0].tenant.clear();  // bare group
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      groups[i + 1].tenant = tenants_[i].cfg.name;
      groups[i + 1].weight = tenants_[i].cfg.weight;
    }
  }
  bool bare_any = false;
  for (;;) {
    JobId id = kInvalidJob;
    int tenant = -1;
    {
      MutexLock g(svc_mu_);
      id = claim_next_locked(-1);
      if (id != kInvalidJob) tenant = jobs_.at(id).tenant;
    }
    if (id == kInvalidJob) break;
    if (tenant < 0) bare_any = true;
    groups[static_cast<std::size_t>(tenant + 1)].results.push_back(
        finish_claimed(id));
  }
  if (!bare_any) groups.erase(groups.begin());
  return groups;
}

std::unique_ptr<Session> Executor::open_session(TenantConfig cfg) {
  DAS_CHECK_MSG(cfg.weight > 0.0, "open_session: weight must be > 0");
  DAS_CHECK_MSG(cfg.max_in_flight >= 0,
                "open_session: max_in_flight must be >= 0 (0 = unbounded)");
  DAS_CHECK_MSG(cfg.max_queued_tasks >= 0,
                "open_session: max_queued_tasks must be >= 0 (0 = unbounded)");
  MutexLock g(svc_mu_);
  const int tenant = static_cast<int>(tenants_.size());
  const std::string name = cfg.name;
  const double weight = cfg.weight;
  TenantState state;
  state.cfg = std::move(cfg);
  tenants_.push_back(std::move(state));
  return std::unique_ptr<Session>(new Session(this, tenant, name, weight));
}

TenantCounters Executor::counters_of(int tenant) {
  MutexLock g(svc_mu_);
  DAS_CHECK_MSG(
      tenant >= 0 && static_cast<std::size_t>(tenant) < tenants_.size(),
      "counters_of: unknown tenant");
  return tenants_[static_cast<std::size_t>(tenant)].counters;
}

void Executor::reset_stats() {
  for (int rank = 0; rank < num_ranks(); ++rank) stats(rank).reset();
}

std::vector<JobId> Session::submit_batch(const std::vector<const Dag*>& dags,
                                         const SubmitOptions& opts) {
  std::vector<JobId> ids;
  ids.reserve(dags.size());
  for (const Dag* dag : dags) {
    DAS_CHECK_MSG(dag != nullptr, "submit_batch: null dag");
    ids.push_back(submit(*dag, opts));
  }
  return ids;
}

}  // namespace das
