#include <utility>

#include "exec/executor.hpp"
#include "util/assert.hpp"

// Multi-tenant service layer over the engine facade: admission control,
// deficit-round-robin fair release, claim-ownership job finishing. The
// header (exec/executor.hpp) and exec/session.hpp carry the contracts;
// this file is pure bookkeeping around two engine-provided primitives —
// submit_job() and the svc_* bridge virtuals.
//
// Locking: svc_mu_ guards every service structure and is held ACROSS
// submit_job (lock order svc_mu_ -> engine lock; nothing takes them in the
// other order), but never across wait_job — completion latches are engine
// business. On sim, everything below runs on the one driving thread and
// the lock is uncontended by construction.

namespace das {

JobId Executor::submit(const Dag& dag, const SubmitOptions& opts) {
  return submit_impl(dag, opts, /*tenant=*/-1);
}

JobId Executor::submit_impl(const Dag& dag, const SubmitOptions& opts,
                            int tenant) {
  DAS_CHECK_MSG(opts.arrival_offset_s >= 0.0,
                "submit: arrival offset must be >= 0");
  const auto tasks = static_cast<std::int64_t>(dag.num_nodes());
  JobId id = kInvalidJob;
  bool block = false;
  {
    MutexLock g(svc_mu_);
    id = next_public_++;
    ServiceJob job;
    job.tenant = tenant;
    job.dag = &dag;
    job.tasks = tasks;
    job.priority = opts.priority;
    if (tenant < 0 &&
        (opts.arrival_offset_s == 0.0 || engine_defers_arrivals())) {
      // Bare submit on the engine's own arrival path: no queue, no timer,
      // no hook registration — byte-for-byte the pre-service behavior
      // (single-tenant sim streams stay bitwise-reproducible).
      const JobTicket ticket = submit_job(dag, opts.arrival_offset_s);
      job.engine_id = ticket.id;
      job.arrival_s = ticket.arrival_s;
      job.release_s = ticket.arrival_s;
      job.arrived = true;
      job.released = true;
      jobs_.emplace(id, std::move(job));
      return id;
    }
    if (tenant >= 0) {
      DAS_CHECK_MSG(static_cast<std::size_t>(tenant) < tenants_.size(),
                    "submit: unknown tenant");
      const TenantConfig& cfg = tenants_[static_cast<std::size_t>(tenant)].cfg;
      if (cfg.overload == Overload::kBlock) {
        // A blocking admission decision cannot be deferred to a timer, and
        // an over-budget job would never fit however long it waits.
        DAS_CHECK_MSG(opts.arrival_offset_s == 0.0,
                      "Overload::kBlock tenants cannot defer arrivals "
                      "(arrival_offset_s must be 0)");
        DAS_CHECK_MSG(
            cfg.max_queued_tasks == 0 || tasks <= cfg.max_queued_tasks,
                      "submit: job (" + std::to_string(tasks) +
                          " tasks) exceeds tenant '" + cfg.name +
                          "' queued-task budget " +
                          std::to_string(cfg.max_queued_tasks) +
                          " — an Overload::kBlock submit would never unblock");
      }
    }
    jobs_.emplace(id, std::move(job));
    if (opts.arrival_offset_s > 0.0) {
      // Deferred arrival: bare rt release pacing (tenant < 0) or a session
      // job whose admission check runs at arrival time, both driven by the
      // engine-appropriate timer (virtual event on sim, pacer thread on rt).
      svc_arm_timer(opts.arrival_offset_s, static_cast<std::uint64_t>(id));
      return id;
    }
    block = !try_admit_locked(id);
  }
  if (block) svc_block_until(SvcWait::kAdmissionDecided, id);
  return id;
}

bool Executor::try_admit_locked(JobId id) {
  ServiceJob& job = jobs_.at(id);
  if (job.arrived || job.rejected) return true;  // idempotent on retries
  TenantState& t = tenants_[static_cast<std::size_t>(job.tenant)];
  if (t.cfg.max_queued_tasks > 0 &&
      t.pending_tasks + job.tasks > t.cfg.max_queued_tasks) {
    if (t.cfg.overload == Overload::kReject) {
      job.rejected = true;
      job.arrival_s = now();
      ++t.counters.rejected;
      svc_cv_.notify_all();
      return true;
    }
    return false;  // kBlock: the submitter parks and retries on drain
  }
  job.arrived = true;
  job.arrival_s = now();
  ++t.counters.submitted;
  t.pending_tasks += job.tasks;
  t.buckets[job.priority].push_back(id);
  if (!t.in_ring) {
    t.in_ring = true;
    ring_.push_back(static_cast<std::size_t>(job.tenant));
  }
  pump_locked();
  return true;
}

void Executor::pump_locked() {
  // Deficit round-robin over the backlogged-tenant ring: visit the tenant
  // at the cursor, credit one weighted quantum (once per visit — see
  // cursor_credited_), release whole jobs while the deficit covers their
  // task counts, advance. Tenants at their OWN in-flight bound are skipped
  // WITHOUT credit (deficit must not accumulate while the tenant cannot
  // use it — it would burst on unblock); a burst cut short by the GLOBAL
  // bound keeps the cursor so the tenant resumes its turn, un-re-credited,
  // when capacity frees. The loop exits only when every backlogged tenant
  // is bound-blocked or the ring is empty: release is work-conserving.
  for (;;) {
    if (svc_.max_service_inflight > 0 &&
        service_inflight_ >= svc_.max_service_inflight)
      return;
    const std::size_t n = ring_.size();
    if (n == 0) return;
    std::size_t pos = 0;
    bool found = false;
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      pos = (ring_cursor_ + scanned) % n;
      const TenantState& t = tenants_[ring_[pos]];
      if (t.cfg.max_in_flight > 0 &&
          t.released_in_flight >= t.cfg.max_in_flight)
        continue;
      found = true;
      break;
    }
    if (!found) return;
    if (pos != ring_cursor_) {
      ring_cursor_ = pos;
      cursor_credited_ = false;
    }
    TenantState& t = tenants_[ring_[pos]];
    if (!cursor_credited_) {
      t.deficit += t.cfg.weight * static_cast<double>(svc_.drr_quantum_tasks);
      cursor_credited_ = true;
    }
    bool global_blocked = false;
    while (!t.buckets.empty()) {
      if (svc_.max_service_inflight > 0 &&
          service_inflight_ >= svc_.max_service_inflight) {
        global_blocked = true;
        break;
      }
      if (t.cfg.max_in_flight > 0 &&
          t.released_in_flight >= t.cfg.max_in_flight)
        break;
      auto head = t.buckets.begin();
      const JobId id = head->second.front();
      const auto cost = static_cast<double>(jobs_.at(id).tasks);
      if (t.deficit < cost) break;
      t.deficit -= cost;
      head->second.pop_front();
      if (head->second.empty()) t.buckets.erase(head);
      release_locked(id);
    }
    if (global_blocked) return;  // resume THIS tenant when capacity frees
    cursor_credited_ = false;
    if (t.buckets.empty()) {
      // Drained: drop the residual credit (classic DRR — an idle tenant
      // must not bank credit against its next burst) and leave the ring.
      t.deficit = 0.0;
      t.in_ring = false;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(pos));
      if (ring_cursor_ > pos) --ring_cursor_;
      if (!ring_.empty()) ring_cursor_ %= ring_.size();
      else ring_cursor_ = 0;
    } else {
      ring_cursor_ = (pos + 1) % ring_.size();
    }
  }
}

void Executor::release_locked(JobId id) {
  ServiceJob& job = jobs_.at(id);
  const JobTicket ticket = submit_job(*job.dag, 0.0);
  job.engine_id = ticket.id;
  job.release_s = ticket.arrival_s;
  job.released = true;
  if (job.tenant < 0) {
    // Paced bare release: arrival == release, mirroring the engine path.
    job.arrived = true;
    job.arrival_s = ticket.arrival_s;
  }
  if (job.tenant >= 0) {
    engine_to_public_.emplace(ticket.id, id);
    ++service_inflight_;
    TenantState& t = tenants_[static_cast<std::size_t>(job.tenant)];
    ++t.released_in_flight;
    t.pending_tasks -= job.tasks;
    ++t.counters.released;
    t.counters.released_tasks += job.tasks;
  }
  svc_cv_.notify_all();
}

void Executor::on_engine_job_done(JobId engine_id) {
  {
    MutexLock g(svc_mu_);
    const auto it = engine_to_public_.find(engine_id);
    if (it == engine_to_public_.end()) return;  // bare job: nothing to track
    const JobId id = it->second;
    engine_to_public_.erase(it);
    --service_inflight_;
    TenantState& t =
        tenants_[static_cast<std::size_t>(jobs_.at(id).tenant)];
    --t.released_in_flight;
    ++t.counters.completed;
    // A completion frees in-flight headroom: release what it unblocks.
    pump_locked();
  }
  svc_cv_.notify_all();
}

void Executor::on_timer(std::uint64_t token) {
  {
    MutexLock g(svc_mu_);
    const auto it = jobs_.find(static_cast<JobId>(token));
    if (it == jobs_.end()) return;
    if (it->second.tenant < 0) {
      release_locked(it->first);  // paced bare release (rt future arrival)
    } else {
      (void)try_admit_locked(it->first);  // deferred session arrival
    }
  }
  svc_cv_.notify_all();
}

bool Executor::svc_cond_locked(SvcWait cond, JobId id) {
  switch (cond) {
    case SvcWait::kReleased: {
      const ServiceJob& job = jobs_.at(id);
      return job.released || job.rejected;
    }
    case SvcWait::kAdmissionDecided:
      return try_admit_locked(id);
  }
  DAS_CHECK_MSG(false, "svc_cond_locked: unknown condition");
  return false;
}

RunResult Executor::wait(JobId id) {
  // Claim BEFORE blocking: exactly one finisher owns a job, so a
  // concurrent drain()/wait() on the same id fails fast here instead of
  // racing into the engine.
  {
    MutexLock g(svc_mu_);
    const auto it = jobs_.find(id);
    DAS_CHECK_MSG(it != jobs_.end() && !it->second.claimed,
                  "job " + std::to_string(id) +
                      " was not submitted through this executor (or was "
                      "already waited)");
    it->second.claimed = true;
  }
  return finish_claimed(id);
}

RunResult Executor::finish_claimed(JobId id) {
  svc_block_until(SvcWait::kReleased, id);
  ServiceJob job;
  std::string tenant_name;
  {
    MutexLock g(svc_mu_);
    job = jobs_.at(id);
    if (job.tenant >= 0)
      tenant_name = tenants_[static_cast<std::size_t>(job.tenant)].cfg.name;
  }
  RunResult r;
  r.backend = backend();
  r.policy = policy_kind();
  r.job = id;
  r.arrival_s = job.arrival_s;
  r.tenant = std::move(tenant_name);
  if (job.rejected) {
    r.rejected = true;
  } else {
    r.makespan_s = wait_job(job.engine_id);
    r.tasks = job.tasks;
    r.tasks_per_s = r.makespan_s > 0.0
                        ? static_cast<double>(job.tasks) / r.makespan_s
                        : 0.0;
    r.queue_s = job.release_s - job.arrival_s;
    r.stats.reserve(static_cast<std::size_t>(num_ranks()));
    for (int rank = 0; rank < num_ranks(); ++rank)
      r.stats.push_back(stats(rank).snapshot());
    r.timeline = timeline_;
  }
  MutexLock g(svc_mu_);
  // On rt the engine's completion hook trails wait_job's return (it runs on
  // the worker thread after the completion latch fires). Its accounting —
  // in-flight decrement, counters.completed, the pump — must land before
  // this job record disappears and before counters() can observe the wait,
  // so park until the hook has erased the engine mapping. On sim the hook
  // was delivered inside whichever pump completed the job: no wait.
  if (!job.rejected && job.tenant >= 0)
    while (engine_to_public_.count(job.engine_id) != 0) svc_cv_.wait(g);
  jobs_.erase(id);
  return r;
}

JobId Executor::claim_next_locked(int tenant) {
  for (auto& [id, job] : jobs_) {
    if (job.claimed) continue;
    if (tenant == -1 || job.tenant == tenant ||
        (tenant == -2 && job.tenant < 0)) {
      job.claimed = true;
      return id;
    }
  }
  return kInvalidJob;
}

std::vector<RunResult> Executor::drain() {
  // Claim one unclaimed job at a time (lowest id first = submission
  // order): the claim is one critical section, so jobs another thread
  // already claimed are simply not ours to drain and drain() composes
  // with concurrent wait()ers on the rt backend.
  std::vector<RunResult> results;
  for (;;) {
    JobId id = kInvalidJob;
    {
      MutexLock g(svc_mu_);
      id = claim_next_locked(-1);
    }
    if (id == kInvalidJob) break;
    results.push_back(finish_claimed(id));
  }
  return results;
}

std::vector<RunResult> Executor::drain_tenant(int tenant) {
  std::vector<RunResult> results;
  for (;;) {
    JobId id = kInvalidJob;
    {
      MutexLock g(svc_mu_);
      id = claim_next_locked(tenant);
    }
    if (id == kInvalidJob) break;
    results.push_back(finish_claimed(id));
  }
  return results;
}

std::vector<TenantResults> Executor::drain_grouped() {
  std::vector<TenantResults> groups;
  {
    MutexLock g(svc_mu_);
    groups.resize(tenants_.size() + 1);
    groups[0].tenant.clear();  // bare group
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      groups[i + 1].tenant = tenants_[i].cfg.name;
      groups[i + 1].weight = tenants_[i].cfg.weight;
    }
  }
  bool bare_any = false;
  for (;;) {
    JobId id = kInvalidJob;
    int tenant = -1;
    {
      MutexLock g(svc_mu_);
      id = claim_next_locked(-1);
      if (id != kInvalidJob) tenant = jobs_.at(id).tenant;
    }
    if (id == kInvalidJob) break;
    if (tenant < 0) bare_any = true;
    groups[static_cast<std::size_t>(tenant + 1)].results.push_back(
        finish_claimed(id));
  }
  if (!bare_any) groups.erase(groups.begin());
  return groups;
}

std::unique_ptr<Session> Executor::open_session(TenantConfig cfg) {
  DAS_CHECK_MSG(cfg.weight > 0.0, "open_session: weight must be > 0");
  DAS_CHECK_MSG(cfg.max_in_flight >= 0,
                "open_session: max_in_flight must be >= 0 (0 = unbounded)");
  DAS_CHECK_MSG(cfg.max_queued_tasks >= 0,
                "open_session: max_queued_tasks must be >= 0 (0 = unbounded)");
  MutexLock g(svc_mu_);
  const int tenant = static_cast<int>(tenants_.size());
  const std::string name = cfg.name;
  const double weight = cfg.weight;
  TenantState state;
  state.cfg = std::move(cfg);
  tenants_.push_back(std::move(state));
  return std::unique_ptr<Session>(new Session(this, tenant, name, weight));
}

TenantCounters Executor::counters_of(int tenant) {
  MutexLock g(svc_mu_);
  DAS_CHECK_MSG(
      tenant >= 0 && static_cast<std::size_t>(tenant) < tenants_.size(),
      "counters_of: unknown tenant");
  return tenants_[static_cast<std::size_t>(tenant)].counters;
}

void Executor::reset_stats() {
  for (int rank = 0; rank < num_ranks(); ++rank) stats(rank).reset();
}

std::vector<JobId> Session::submit_batch(const std::vector<const Dag*>& dags,
                                         const SubmitOptions& opts) {
  std::vector<JobId> ids;
  ids.reserve(dags.size());
  for (const Dag* dag : dags) {
    DAS_CHECK_MSG(dag != nullptr, "submit_batch: null dag");
    ids.push_back(submit(*dag, opts));
  }
  return ids;
}

}  // namespace das
