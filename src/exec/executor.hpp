#pragma once
// Unified execution facade over the two engines (paper §4.1.2 / §4.2.3).
//
// The paper's central claim is that ONE scheduling policy object drives both
// a real-thread XiTAO-style runtime and a deterministic discrete-event
// simulator. This header makes that claim the public API: every driver
// (bench, example, test) builds an engine through
//
//     auto exec = das::make_executor(Backend::kSim, topo, Policy::kDamC,
//                                    registry, config);
//     RunResult r = exec->run(dag);
//
// and can switch engines by flipping the Backend value — typically from a
// `--backend=sim|rt` command-line flag (util/cli.hpp). The facade is a job
// SERVICE: `submit(dag)` / `wait(job)` / `drain()` execute a stream of
// independent DAGs concurrently on one worker pool and one learned PTT, and
// open_session() carves that service into TENANTS — each with an admission
// budget, an overload policy and a deficit-round-robin fair-share weight
// (exec/session.hpp documents the model). `run()` is the submit+wait sugar
// shown above and stays single-tenant. ExecutorConfig holds the options
// shared by both engines (seed, scenario, policy tunables, PTT ratio, stats
// phases) plus per-backend sub-structs and the ServiceConfig; build one
// field-by-field or through ExecutorConfig::builder(). run() returns a
// structured RunResult (makespan, throughput, per-rank stats snapshot)
// instead of a bare double.
//
// Engine state persists across run() calls exactly like the underlying
// engines: the PTT keeps learning, stats accumulate, and the clock
// (virtual time for the DES, wall seconds since construction for the
// real-thread runtime) advances monotonically — now() exposes it
// engine-agnostically so drivers can open/close interference windows at
// application-level boundaries on either backend (paper Fig. 9).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "exec/session.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "scenario/scenario.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"
#include "util/cli.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace das {

enum class Backend : std::uint8_t {
  kSim = 0,  ///< deterministic discrete-event engine (src/sim)
  kRt,       ///< real-thread work-stealing runtime (src/rt)
};

/// Canonical name: "sim" | "rt".
const char* backend_name(Backend b);
/// Both backends, in declaration order.
const std::vector<Backend>& all_backends();
/// Parses "sim" / "des" -> kSim, "rt" / "real" -> kRt (case-insensitive);
/// nullopt for unknown names.
std::optional<Backend> parse_backend(const std::string& name);

/// Case-insensitive policy lookup over the Table-1 names ("RWS", "RWSM-C",
/// "FA", "FAM-C", "DA", "DAM-C", "DAM-P") and the "dHEFT" baseline;
/// nullopt for unknown names.
std::optional<Policy> parse_policy(const std::string& name);

/// Resolves the --backend= / --policy= flag against the registries above:
/// returns `def` when the flag is absent, exits with a diagnostic on an
/// unknown name. The one flag block every example/bench driver shares.
Backend backend_flag(const cli::Flags& flags, Backend def);
Policy policy_flag(const cli::Flags& flags, Policy def);

/// Resolves the shared --scenario=<name|file> flag: a catalog name
/// ("clean", "dvfs-wave", ...) or a path to a JSON spec file
/// (src/scenario/scenario.hpp documents the format). Returns nullopt when
/// the flag is absent — the driver keeps its built-in condition; exits 2
/// with the scenario diagnostic (and the catalog list) on a bad value.
/// Assign the result to ExecutorConfig::scenario_spec.
std::optional<scenario::ScenarioSpec> scenario_flag(const cli::Flags& flags);

/// scenario::build with CLI semantics: exits 2 with the diagnostic when the
/// spec references what `topo` lacks — the build-time counterpart of
/// scenario_flag's parse-time exit. Drivers that build eagerly use this;
/// drivers that pass scenario_spec through ExecutorConfig catch
/// scenario::ScenarioError around make_executor instead.
SpeedScenario build_scenario_or_exit(const scenario::ScenarioSpec& spec,
                                     const Topology& topo);

/// Options shared by both engines, plus per-backend sub-structs. The
/// defaults match the engines' standalone defaults, except that `seed`
/// is the single documented kDefaultSeed for BOTH backends (the legacy
/// entry points used to default to 7 for rt and 42 for sim).
struct ExecutorConfig {
  std::uint64_t seed = kDefaultSeed;
  /// Dynamic-asymmetry emulation (DVFS waves, co-runners); null = clean
  /// machine. The DES charges it in virtual time; the real runtime stretches
  /// participations via the throttle. Not owned; must outlive the executor.
  const SpeedScenario* scenario = nullptr;
  /// Declarative alternative to `scenario` (typically from the shared
  /// --scenario= flag): make_executor builds it against each rank's topology
  /// and the executor OWNS the result — no lifetime dance for the driver.
  /// Like `scenario`, it is the fallback for ranks without their own
  /// scenario. Setting both scenario and scenario_spec is a precondition
  /// error; a spec that references what the topology lacks throws
  /// scenario::ScenarioError from make_executor.
  std::optional<scenario::ScenarioSpec> scenario_spec;
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  int stats_phases = 1;
  /// Optional execution timeline (Chrome trace export); recorded by the DES
  /// backend only. Not owned.
  Timeline* timeline = nullptr;

  /// Service-layer knobs (admission + fair release across sessions); the
  /// engines never see these. exec/session.hpp documents the model.
  ServiceConfig service;

  // The per-backend defaults are read off the engines' own option structs
  // so they can never drift from what a direct engine user would get (the
  // divergent-defaults bug class the unified seed fixes).
  struct Rt {
    /// Best-effort pthread affinity.
    bool pin_threads = ::das::rt::RtOptions{}.pin_threads;
    /// Victims probed before backing off.
    int steal_attempts_per_round = ::das::rt::RtOptions{}.steal_attempts_per_round;
    /// Run the fault watchdog even without a fault plan (rt/watchdog.cpp);
    /// a scenario_spec with fail/freeze faults arms it regardless.
    bool enable_watchdog = ::das::rt::RtOptions{}.enable_watchdog;
    double watchdog_period_s = ::das::rt::RtOptions{}.watchdog_period_s;
  } rt;

  struct Sim {
    double dispatch_overhead_s = ::das::sim::SimOptions{}.dispatch_overhead_s;
    double steal_latency_s = ::das::sim::SimOptions{}.steal_latency_s;
    double completion_overhead_s = ::das::sim::SimOptions{}.completion_overhead_s;
    double idle_wake_delay_s = ::das::sim::SimOptions{}.idle_wake_delay_s;
    /// Lognormal measurement noise.
    bool noise = ::das::sim::SimOptions{}.noise;
    /// Pin the DES to the type-erased generic loop even when the registry
    /// qualifies for a fused instantiation (exec/fused.hpp) — the A/B lever
    /// of the determinism test and the dispatch-cost benches. Identical
    /// results either way, by construction.
    bool force_generic_dispatch = ::das::sim::SimOptions{}.force_generic_dispatch;
    /// Worker threads for multi-rank DES runs (conservative parallel
    /// windows, sim/engine.hpp). <= 1 keeps the protocol on the calling
    /// thread; results are bitwise identical either way. Ignored by the rt
    /// backend and by single-rank sims.
    int des_threads = ::das::sim::SimOptions{}.des_threads;
  } sim;

  class Builder;
  /// Fluent construction: `ExecutorConfig::builder().seed(7).build()`.
  static Builder builder();
};

/// Chained-setter construction for ExecutorConfig, split the way the config
/// is consumed: ENGINE options feed the sim/rt engines, SERVICE options
/// feed the multi-tenant layer wrapped around them. Every setter has the
/// same default as the plain struct — builder() with no calls reproduces
/// `ExecutorConfig{}` exactly.
class ExecutorConfig::Builder {
 public:
  // ---- engine options -----------------------------------------------------
  Builder& seed(std::uint64_t v) { cfg_.seed = v; return *this; }
  Builder& scenario(const SpeedScenario* s) { cfg_.scenario = s; return *this; }
  Builder& scenario_spec(scenario::ScenarioSpec s) {
    cfg_.scenario_spec = std::move(s);
    return *this;
  }
  Builder& policy_options(const PolicyOptions& o) {
    cfg_.policy_options = o;
    return *this;
  }
  Builder& ptt_ratio(UpdateRatio r) { cfg_.ptt_ratio = r; return *this; }
  Builder& stats_phases(int n) { cfg_.stats_phases = n; return *this; }
  Builder& timeline(Timeline* t) { cfg_.timeline = t; return *this; }
  Builder& pin_threads(bool v) { cfg_.rt.pin_threads = v; return *this; }
  Builder& steal_attempts_per_round(int v) {
    cfg_.rt.steal_attempts_per_round = v;
    return *this;
  }
  Builder& enable_watchdog(bool v) { cfg_.rt.enable_watchdog = v; return *this; }
  Builder& watchdog_period_s(double v) {
    cfg_.rt.watchdog_period_s = v;
    return *this;
  }
  Builder& sim_noise(bool v) { cfg_.sim.noise = v; return *this; }
  Builder& sim_force_generic_dispatch(bool v) {
    cfg_.sim.force_generic_dispatch = v;
    return *this;
  }
  Builder& sim_des_threads(int v) { cfg_.sim.des_threads = v; return *this; }
  Builder& sim_overheads(double dispatch_s, double steal_s, double completion_s,
                         double idle_wake_s) {
    cfg_.sim.dispatch_overhead_s = dispatch_s;
    cfg_.sim.steal_latency_s = steal_s;
    cfg_.sim.completion_overhead_s = completion_s;
    cfg_.sim.idle_wake_delay_s = idle_wake_s;
    return *this;
  }

  // ---- service options ----------------------------------------------------
  Builder& max_service_inflight(int v) {
    cfg_.service.max_service_inflight = v;
    return *this;
  }
  Builder& drr_quantum_tasks(std::int64_t v) {
    cfg_.service.drr_quantum_tasks = v;
    return *this;
  }

  ExecutorConfig build() const { return cfg_; }

 private:
  ExecutorConfig cfg_;
};

inline ExecutorConfig::Builder ExecutorConfig::builder() { return {}; }

/// Structured result of one job (one submitted DAG): what run() returns and
/// what wait()/drain() return per job.
struct RunResult {
  /// How the job ended. Only kOk carries engine results (makespan, stats);
  /// the other outcomes mean the job never ran: bounced by admission
  /// (kRejected), cancelled by its queueing deadline (kTimedOut), or
  /// bounced after exhausting its tenant's retry budget
  /// (kRetriesExhausted).
  enum class Outcome : std::uint8_t {
    kOk = 0,
    kRejected,
    kTimedOut,
    kRetriesExhausted,
  };

  double makespan_s = 0.0;   ///< job latency: release -> completion, virtual
                             ///< (sim) or wall (rt) seconds
  double tasks_per_s = 0.0;  ///< this job's tasks / makespan_s
  std::int64_t tasks = 0;    ///< nodes executed by this job
  Backend backend = Backend::kSim;
  Policy policy = Policy::kRws;
  JobId job = kInvalidJob;   ///< the job's id within its executor
  /// Service clock at the job's ARRIVAL (admission into its queue); for
  /// bare submits this is the release instant, as before — the arrival
  /// metadata job-stream benches export next to the latency percentiles.
  double arrival_s = 0.0;
  /// Arrival -> engine release: time spent queued behind the tenant's
  /// admission budget and fair-share turn. 0 for bare submits.
  double queue_s = 0.0;
  /// Session name the job was submitted under; empty for bare submits.
  std::string tenant;
  /// How the job ended (see Outcome). Anything but kOk means the job never
  /// reached the engine: makespan_s/tasks_per_s are 0 and stats are empty.
  Outcome outcome = Outcome::kOk;
  bool ok() const { return outcome == Outcome::kOk; }
  [[deprecated("read RunResult::outcome — rejected() only covers one of the "
               "three non-kOk outcomes")]]
  bool rejected() const { return outcome == Outcome::kRejected; }
  /// Engine-cumulative count of tasks re-executed after fail-stop faults
  /// reclaimed their first attempt, snapshotted when this job was waited
  /// (0 on a healthy run; monotone across jobs on the same executor).
  std::int64_t tasks_reexecuted = 0;
  /// One snapshot per rank (scheduling domain), taken when the job was
  /// waited. Counters accumulate across jobs on the same executor (see
  /// Executor::reset_stats()).
  std::vector<StatsSnapshot> stats;
  /// The config's timeline, when the backend recorded into one; else null.
  const Timeline* timeline = nullptr;
};

class Session;

/// drain_grouped() bucket: one tenant's drained results in completion-claim
/// order. `tenant` is empty (weight 0) for the bare-submit group.
struct TenantResults {
  std::string tenant;
  double weight = 0.0;
  std::vector<RunResult> results;
};

/// Engine-agnostic handle. Obtain via make_executor(); all engine state
/// (workers, PTT, stats, clock) lives for the handle's lifetime.
///
/// The executor is a *job service*: submit() registers a DAG as a job
/// without blocking, wait() blocks until one job completes, drain() waits
/// for everything in flight. Jobs in flight concurrently share the worker
/// pool, the queues and the learned PTT — the persistent-runtime regime of
/// paper §4.1.1. run() remains the submit+wait sugar every one-shot driver
/// uses. open_session() adds multi-tenant admission control and weighted
/// fair release on top (exec/session.hpp). On Backend::kRt the job API is
/// thread-safe (multiple submitter threads may drive one executor); on
/// Backend::kSim the event loop is single-threaded — drive a sim executor
/// from one thread.
///
/// CLAIM OWNERSHIP. Every job is claimed by exactly ONE finisher: the first
/// wait(id) / drain() / Session::drain() / drain_grouped() to reach it owns
/// its RunResult, and a second claim of the same id throws. drain() claims
/// every unclaimed job — including jobs submitted through sessions — so an
/// executor-level drain composes with concurrent per-id wait()ers but NOT
/// with a concurrent Session::drain() expecting to collect its own jobs;
/// pick one finisher per job. A Session going out of scope does not claim
/// or cancel anything: its in-flight jobs stay drainable on the executor.
class Executor {
 public:
  virtual ~Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers `dag` as a job and releases it to the engine; returns
  /// immediately. `dag` must stay alive until the job has been waited.
  JobId submit(const Dag& dag) { return submit(dag, SubmitOptions{}); }

  /// submit() with per-job options. `opts.arrival_offset_s` delays the
  /// release on the engine's clock — the DES schedules the roots at
  /// now() + offset in virtual time, which is how a job stream's arrival
  /// trace is replayed deterministically; Backend::kRt paces the release
  /// with a wall-clock timer thread in the service layer.
  JobId submit(const Dag& dag, const SubmitOptions& opts);

  [[deprecated(
      "use submit(dag, SubmitOptions{...}) — or open_session() for "
      "multi-tenant streams")]]
  JobId submit(const Dag& dag, double arrival_offset_s) {
    SubmitOptions opts;
    opts.arrival_offset_s = arrival_offset_s;
    return submit(dag, opts);
  }

  /// Blocks until job `id` completes (or its rejection is recorded);
  /// returns its structured result (makespan_s = release -> completion
  /// latency). Claims the job: each job can be waited exactly once, and
  /// waiting an unknown/already-claimed id throws.
  RunResult wait(JobId id);

  /// wait() with a timeout on the engine clock (virtual seconds on sim —
  /// deterministic; wall seconds on rt). Returns nullopt when the job is
  /// still unfinished at the deadline; the job then remains in flight and
  /// UNCLAIMED, so a later wait()/wait_for()/drain() can finish it. The
  /// degrade-gracefully primitive: a driver facing a wedged backend gets
  /// control back instead of blocking forever.
  std::optional<RunResult> wait_for(JobId id, double timeout_s);

  /// Waits for every unclaimed job (bare and session-submitted alike), in
  /// submission order; returns their results (ordered by JobId). Empty
  /// when nothing is in flight. See the claim-ownership contract above.
  std::vector<RunResult> drain();

  /// drain(), grouped: the bare-submit group first (empty tenant name, only
  /// present when non-empty), then one TenantResults per session in
  /// open_session() order — including sessions with no unclaimed jobs, so
  /// positions are stable across calls.
  std::vector<TenantResults> drain_grouped();

  /// Opens a tenant session: subsequent Session::submit()s are admission-
  /// checked against `cfg`'s budget and released to the engine by weighted
  /// deficit round-robin (exec/session.hpp). The handle borrows this
  /// executor — destroy it before the executor; destroying it early leaves
  /// the tenant's in-flight jobs drainable here. Sim sessions are bitwise-
  /// deterministic: same seed + same submission sequence = same release
  /// trace and results.
  std::unique_ptr<Session> open_session(TenantConfig cfg);

  /// Executes every task of `dag`: submit + wait sugar. Callable
  /// repeatedly; the PTT keeps learning and stats accumulate across runs
  /// (iterative applications keep their learned model, like a persistent
  /// runtime).
  RunResult run(const Dag& dag) { return wait(submit(dag)); }

  /// Zeroes every rank's counters (task counts, busy time, elapsed).
  /// Stats ACCUMULATE across runs/jobs by default — multi-run bench deltas
  /// are silently skewed unless the driver resets between measurement
  /// sections. The learned PTT and the engine clock are NOT reset: the
  /// performance model persisting across jobs is the paper's point.
  /// Call only while no job is in flight.
  void reset_stats();

  virtual Backend backend() const = 0;
  Policy policy_kind() const { return policy_kind_; }
  /// Which hot loop the engine runs: a fused (policy x cost-model)
  /// instantiation label ("fused:DAM-C/expr" on sim, "fused:DAM-C" on rt)
  /// or "generic" (user std::function cost model, or
  /// sim.force_generic_dispatch). exec/fused.hpp::plan_dispatch predicts
  /// this value without building an executor.
  virtual const char* dispatch_variant() const = 0;
  virtual int num_ranks() const = 0;
  virtual const Topology& topology(int rank = 0) const = 0;
  /// Seconds on the engine's scenario clock: virtual time for the DES, wall
  /// seconds since construction for the real runtime. Drivers use it to
  /// open/close SpeedScenario interference windows mid-experiment.
  virtual double now() const = 0;

  virtual ExecutionStats& stats(int rank = 0) = 0;
  virtual PolicyEngine& policy(int rank = 0) = 0;
  virtual PttStore& ptt(int rank = 0) = 0;

 protected:
  Executor(Policy policy, const Timeline* timeline, ServiceConfig service)
      : policy_kind_(policy), timeline_(timeline), svc_(service) {}

  /// A submitted job's identity plus its release instant on the engine
  /// clock (RunResult::arrival_s for bare submits).
  struct JobTicket {
    JobId id = kInvalidJob;
    double arrival_s = 0.0;
  };
  /// Engine-specific submission; must not block on job execution.
  virtual JobTicket submit_job(const Dag& dag, double arrival_offset_s) = 0;
  /// Engine-specific completion latch; returns the job's makespan seconds.
  /// Takes the ENGINE job id (ServiceJob::engine_id), not the public id.
  virtual double wait_job(JobId id) = 0;

  // ---- service bridge (implemented per engine) ----------------------------
  // The admission/fairness layer below is engine-agnostic; these three
  // virtuals are how it borrows an engine's notion of blocking and time.

  /// What a service-layer wait is waiting FOR (svc_block_until).
  enum class SvcWait : std::uint8_t {
    kReleased,          ///< job released to the engine (or rejected)
    kAdmissionDecided,  ///< blocked submit admitted (or rejected)
  };
  /// Blocks until svc_cond_locked(cond, id) holds. The sim implementation
  /// pumps the virtual-time event loop (single thread, nothing else will);
  /// the rt implementation parks on svc_cv_, woken by worker/pacer threads.
  virtual void svc_block_until(SvcWait cond, JobId id) = 0;
  /// Arms a one-shot service timer ~offset_s from now on the engine clock,
  /// delivering on_timer(token): a virtual-time event on sim, a wall-clock
  /// pacer thread on rt.
  virtual void svc_arm_timer(double offset_s, std::uint64_t token) = 0;
  /// True when submit_job() itself honors arrival_offset_s (the DES virtual
  /// clock); false when deferred releases must go through svc_arm_timer
  /// (the rt pacer). Bare sim submits ride the engine path unchanged, which
  /// is what keeps single-tenant sim streams bitwise-identical to pre-
  /// service builds.
  virtual bool engine_defers_arrivals() const = 0;
  /// Timed completion probe for wait_for(): blocks until job `id` (public)
  /// is finishable without blocking — engine-complete, rejected, or timed
  /// out — returning true; or until `deadline_s` on the engine clock passes
  /// first, returning false. Sim pumps virtual time; rt parks on svc_cv_.
  virtual bool svc_finished_by(JobId id, double deadline_s) = 0;
  /// Engine-cumulative fail-stop re-execution counter (RunResult field).
  virtual std::uint64_t engine_tasks_reexecuted() const = 0;

  /// Lock-free-to-callers snapshot used by svc_finished_by implementations.
  struct JobProbe {
    bool terminal = false;  ///< rejected or timed out: finish without engine
    bool released = false;  ///< engine_id is valid
    JobId engine_id = kInvalidJob;
  };
  JobProbe probe_job_locked(JobId id) DAS_REQUIRES(svc_mu_);
  JobProbe probe_job(JobId id) {
    MutexLock g(svc_mu_);
    return probe_job_locked(id);
  }

  /// Engine completion callback: derived classes wire their engine's
  /// job-done hook here. No-op for engine jobs the service is not tracking
  /// (bare submits). Never called with any engine lock held.
  void on_engine_job_done(JobId engine_id);
  /// Service timer callback (token = public JobId): releases a deferred
  /// bare job or runs a deferred session arrival's admission check.
  void on_timer(std::uint64_t token);
  /// Re-evaluates `cond` for job `id`; kAdmissionDecided RETRIES admission
  /// (side effect: the job may be enqueued/rejected here).
  bool svc_cond_locked(SvcWait cond, JobId id) DAS_REQUIRES(svc_mu_);

  /// Protects all service state; never held while calling into wait_job,
  /// but held across submit_job (lock order: svc_mu_ -> engine lock).
  Mutex svc_mu_;
  /// Signaled on every release/rejection/completion (rt waiters).
  CondVar svc_cv_;

 private:
  friend class Session;

  /// One submitted job's service-layer record, public-id keyed. Lives from
  /// submit() until its RunResult is claimed and assembled.
  struct ServiceJob {
    int tenant = -1;  ///< index into tenants_; -1 = bare submit
    const Dag* dag = nullptr;
    std::int64_t tasks = 0;
    int priority = 0;
    double arrival_s = 0.0;  ///< service clock at admission
    double release_s = 0.0;  ///< engine clock at release
    JobId engine_id = kInvalidJob;
    double deadline_s = 0.0;  ///< SubmitOptions::deadline_s (0 = none)
    int retries = 0;          ///< admission retries already run
    bool arrived = false;   ///< admitted into its tenant queue
    bool released = false;  ///< handed to the engine
    bool rejected = false;  ///< bounced by Overload::kReject
    bool retries_exhausted = false;  ///< rejected after the retry budget
    bool timed_out = false;          ///< cancelled by its queueing deadline
    bool claimed = false;   ///< a finisher owns its RunResult
  };

  /// Service timer tokens: low 62 bits = public JobId, top 2 bits = kind.
  /// kTimerArrival (0) keeps the historical plain-id encoding, so existing
  /// sim timer traces are unchanged.
  enum : std::uint64_t {
    kTimerArrival = 0,
    kTimerDeadline = 1,
    kTimerRetry = 2,
  };
  static constexpr int kTimerKindShift = 62;
  static std::uint64_t timer_token(std::uint64_t kind, JobId id) {
    return (kind << kTimerKindShift) | static_cast<std::uint64_t>(id);
  }

  /// One tenant's queue + DRR accounting (exec/session.hpp).
  struct TenantState {
    TenantConfig cfg;
    /// priority -> FIFO of queued public ids; higher priority drains first.
    std::map<int, std::deque<JobId>, std::greater<int>> buckets;
    std::int64_t pending_tasks = 0;  ///< task-weighted queue depth
    int released_in_flight = 0;      ///< released, not yet completed
    double deficit = 0.0;            ///< DRR credit, in tasks
    bool in_ring = false;            ///< member of ring_ (buckets non-empty)
    TenantCounters counters;
  };

  JobId submit_impl(const Dag& dag, const SubmitOptions& opts, int tenant);
  /// Admission decision for a not-yet-arrived job: true when decided
  /// (enqueued or rejected), false when Overload::kBlock defers it.
  bool try_admit_locked(JobId id) DAS_REQUIRES(svc_mu_);
  /// Weighted-DRR release pump: releases queued jobs to the engine until
  /// every backlogged tenant is blocked by an in-flight bound (its own or
  /// the global one) or drained. Deterministic given the queue state.
  void pump_locked() DAS_REQUIRES(svc_mu_);
  /// Hands one queued job to the engine and updates the accounting.
  void release_locked(JobId id) DAS_REQUIRES(svc_mu_);
  /// Deadline expiry for a still-queued session job: removes it from its
  /// tenant's bucket and marks it Outcome::kTimedOut.
  void timeout_locked(JobId id) DAS_REQUIRES(svc_mu_);
  /// Blocks on an already-claimed job and assembles its RunResult.
  RunResult finish_claimed(JobId id);
  /// Claims the lowest unclaimed job (optionally of one tenant; -1 = any,
  /// -2 = bare only); kInvalidJob when none.
  JobId claim_next_locked(int tenant) DAS_REQUIRES(svc_mu_);
  std::vector<RunResult> drain_tenant(int tenant);
  TenantCounters counters_of(int tenant);

  Policy policy_kind_;
  const Timeline* timeline_;
  /// Immutable after construction; read without svc_mu_.
  const ServiceConfig svc_;

  std::map<JobId, ServiceJob> jobs_ DAS_GUARDED_BY(svc_mu_);
  /// Engine id -> public id, for completion hooks; tenant jobs only (bare
  /// jobs are invisible to the hooks — no accounting to update).
  std::map<JobId, JobId> engine_to_public_ DAS_GUARDED_BY(svc_mu_);
  std::vector<TenantState> tenants_ DAS_GUARDED_BY(svc_mu_);
  /// DRR round-robin ring of backlogged tenant indices + cursor. The
  /// credited flag marks that the cursor tenant already received this
  /// visit's quantum — a burst interrupted by the GLOBAL in-flight bound
  /// resumes at the same tenant without re-crediting losing its turn
  /// (otherwise a tight global cap degrades weighted shares to 1:1 RR).
  std::vector<std::size_t> ring_ DAS_GUARDED_BY(svc_mu_);
  std::size_t ring_cursor_ DAS_GUARDED_BY(svc_mu_) = 0;
  bool cursor_credited_ DAS_GUARDED_BY(svc_mu_) = false;
  int service_inflight_ DAS_GUARDED_BY(svc_mu_) = 0;
  JobId next_public_ DAS_GUARDED_BY(svc_mu_) = 0;
};

/// A tenant's handle on a shared executor (Executor::open_session). All
/// methods proxy to the executor under the tenant's admission/fairness
/// contract; thread-safety follows the backend (rt: any thread, sim: the
/// one driving thread). The handle borrows the executor — it must not
/// outlive it. Destroying the handle does NOT cancel the tenant's jobs
/// (they stay drainable via the executor; see the claim-ownership
/// contract in Executor).
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Admission-checked submit under this tenant (exec/session.hpp):
  /// returns immediately unless the tenant is over its queued-task budget
  /// with Overload::kBlock, in which case it blocks until the backlog
  /// drains (kBlock requires opts.arrival_offset_s == 0). With kReject the
  /// id is always returned; wait() reports `rejected` when it bounced.
  JobId submit(const Dag& dag, const SubmitOptions& opts = {}) {
    return exec_->submit_impl(dag, opts, tenant_);
  }

  /// submit() for a batch; one shared SubmitOptions. Order preserved.
  std::vector<JobId> submit_batch(const std::vector<const Dag*>& dags,
                                  const SubmitOptions& opts = {});

  /// Executor::wait — any job id may be waited through any handle; the
  /// session adds no claim of its own.
  RunResult wait(JobId id) { return exec_->wait(id); }

  /// Waits for every unclaimed job of THIS tenant (submission order).
  std::vector<RunResult> drain() { return exec_->drain_tenant(tenant_); }

  /// Snapshot of this tenant's monotonic service counters.
  TenantCounters counters() const { return exec_->counters_of(tenant_); }

  const std::string& name() const { return name_; }
  double weight() const { return weight_; }
  /// The tenant's index within its executor (drain_grouped() position,
  /// bare group excluded).
  int tenant() const { return tenant_; }

 private:
  friend class Executor;
  Session(Executor* exec, int tenant, std::string name, double weight)
      : exec_(exec), tenant_(tenant), name_(std::move(name)), weight_(weight) {}

  Executor* exec_;
  int tenant_;
  std::string name_;
  double weight_;
};

/// Single-domain factory: one topology, optional scenario in `config`.
/// Both backends accept every config; fields the chosen backend does not
/// understand are ignored (e.g. sim.* under Backend::kRt).
std::unique_ptr<Executor> make_executor(Backend backend, const Topology& topo,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config = {});

/// Multi-domain factory (the distributed experiments): one RankSpec per
/// scheduling domain. Backend::kRt accepts exactly one rank (the real
/// runtime is single-domain; use net::World for real multi-rank runs).
/// Ranks without their own scenario inherit config.scenario.
std::unique_ptr<Executor> make_executor(Backend backend,
                                        std::vector<sim::RankSpec> ranks,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config = {});

}  // namespace das
