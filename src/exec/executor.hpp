#pragma once
// Unified execution facade over the two engines (paper §4.1.2 / §4.2.3).
//
// The paper's central claim is that ONE scheduling policy object drives both
// a real-thread XiTAO-style runtime and a deterministic discrete-event
// simulator. This header makes that claim the public API: every driver
// (bench, example, test) builds an engine through
//
//     auto exec = das::make_executor(Backend::kSim, topo, Policy::kDamC,
//                                    registry, config);
//     RunResult r = exec->run(dag);
//
// and can switch engines by flipping the Backend value — typically from a
// `--backend=sim|rt` command-line flag (util/cli.hpp). The facade is a job
// service: `submit(dag)` / `wait(job)` / `drain()` execute a stream of
// independent DAGs concurrently on one worker pool and one learned PTT;
// `run()` is the submit+wait sugar shown above. ExecutorConfig holds
// the options shared by both engines (seed, scenario, policy tunables, PTT
// ratio, stats phases) plus per-backend sub-structs for the knobs only one
// engine understands. run() returns a structured RunResult (makespan,
// throughput, per-rank stats snapshot) instead of a bare double.
//
// Engine state persists across run() calls exactly like the underlying
// engines: the PTT keeps learning, stats accumulate, and the clock
// (virtual time for the DES, wall seconds since construction for the
// real-thread runtime) advances monotonically — now() exposes it
// engine-agnostically so drivers can open/close interference windows at
// application-level boundaries on either backend (paper Fig. 9).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "scenario/scenario.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"
#include "util/cli.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace das {

enum class Backend : std::uint8_t {
  kSim = 0,  ///< deterministic discrete-event engine (src/sim)
  kRt,       ///< real-thread work-stealing runtime (src/rt)
};

/// Canonical name: "sim" | "rt".
const char* backend_name(Backend b);
/// Both backends, in declaration order.
const std::vector<Backend>& all_backends();
/// Parses "sim" / "des" -> kSim, "rt" / "real" -> kRt (case-insensitive);
/// nullopt for unknown names.
std::optional<Backend> parse_backend(const std::string& name);

/// Case-insensitive policy lookup over the Table-1 names ("RWS", "RWSM-C",
/// "FA", "FAM-C", "DA", "DAM-C", "DAM-P") and the "dHEFT" baseline;
/// nullopt for unknown names.
std::optional<Policy> parse_policy(const std::string& name);

/// Resolves the --backend= / --policy= flag against the registries above:
/// returns `def` when the flag is absent, exits with a diagnostic on an
/// unknown name. The one flag block every example/bench driver shares.
Backend backend_flag(const cli::Flags& flags, Backend def);
Policy policy_flag(const cli::Flags& flags, Policy def);

/// Resolves the shared --scenario=<name|file> flag: a catalog name
/// ("clean", "dvfs-wave", ...) or a path to a JSON spec file
/// (src/scenario/scenario.hpp documents the format). Returns nullopt when
/// the flag is absent — the driver keeps its built-in condition; exits 2
/// with the scenario diagnostic (and the catalog list) on a bad value.
/// Assign the result to ExecutorConfig::scenario_spec.
std::optional<scenario::ScenarioSpec> scenario_flag(const cli::Flags& flags);

/// scenario::build with CLI semantics: exits 2 with the diagnostic when the
/// spec references what `topo` lacks — the build-time counterpart of
/// scenario_flag's parse-time exit. Drivers that build eagerly use this;
/// drivers that pass scenario_spec through ExecutorConfig catch
/// scenario::ScenarioError around make_executor instead.
SpeedScenario build_scenario_or_exit(const scenario::ScenarioSpec& spec,
                                     const Topology& topo);

/// Options shared by both engines, plus per-backend sub-structs. The
/// defaults match the engines' standalone defaults, except that `seed`
/// is the single documented kDefaultSeed for BOTH backends (the legacy
/// entry points used to default to 7 for rt and 42 for sim).
struct ExecutorConfig {
  std::uint64_t seed = kDefaultSeed;
  /// Dynamic-asymmetry emulation (DVFS waves, co-runners); null = clean
  /// machine. The DES charges it in virtual time; the real runtime stretches
  /// participations via the throttle. Not owned; must outlive the executor.
  const SpeedScenario* scenario = nullptr;
  /// Declarative alternative to `scenario` (typically from the shared
  /// --scenario= flag): make_executor builds it against each rank's topology
  /// and the executor OWNS the result — no lifetime dance for the driver.
  /// Like `scenario`, it is the fallback for ranks without their own
  /// scenario. Setting both scenario and scenario_spec is a precondition
  /// error; a spec that references what the topology lacks throws
  /// scenario::ScenarioError from make_executor.
  std::optional<scenario::ScenarioSpec> scenario_spec;
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  int stats_phases = 1;
  /// Optional execution timeline (Chrome trace export); recorded by the DES
  /// backend only. Not owned.
  Timeline* timeline = nullptr;

  // The per-backend defaults are read off the engines' own option structs
  // so they can never drift from what a direct engine user would get (the
  // divergent-defaults bug class the unified seed fixes).
  struct Rt {
    /// Best-effort pthread affinity.
    bool pin_threads = ::das::rt::RtOptions{}.pin_threads;
    /// Victims probed before backing off.
    int steal_attempts_per_round = ::das::rt::RtOptions{}.steal_attempts_per_round;
  } rt;

  struct Sim {
    double dispatch_overhead_s = ::das::sim::SimOptions{}.dispatch_overhead_s;
    double steal_latency_s = ::das::sim::SimOptions{}.steal_latency_s;
    double completion_overhead_s = ::das::sim::SimOptions{}.completion_overhead_s;
    double idle_wake_delay_s = ::das::sim::SimOptions{}.idle_wake_delay_s;
    /// Lognormal measurement noise.
    bool noise = ::das::sim::SimOptions{}.noise;
  } sim;
};

/// Structured result of one job (one submitted DAG): what run() returns and
/// what wait()/drain() return per job.
struct RunResult {
  double makespan_s = 0.0;   ///< job latency: release -> completion, virtual
                             ///< (sim) or wall (rt) seconds
  double tasks_per_s = 0.0;  ///< this job's tasks / makespan_s
  std::int64_t tasks = 0;    ///< nodes executed by this job
  Backend backend = Backend::kSim;
  Policy policy = Policy::kRws;
  JobId job = kInvalidJob;   ///< the job's id within its executor
  /// Engine clock at the job's release (sim: virtual arrival instant; rt:
  /// scenario_now() at submit) — the arrival metadata job-stream benches
  /// export next to the latency percentiles.
  double arrival_s = 0.0;
  /// One snapshot per rank (scheduling domain), taken when the job was
  /// waited. Counters accumulate across jobs on the same executor (see
  /// Executor::reset_stats()).
  std::vector<StatsSnapshot> stats;
  /// The config's timeline, when the backend recorded into one; else null.
  const Timeline* timeline = nullptr;
};

/// Engine-agnostic handle. Obtain via make_executor(); all engine state
/// (workers, PTT, stats, clock) lives for the handle's lifetime.
///
/// The executor is a *job service*: submit() registers a DAG as a job
/// without blocking, wait() blocks until one job completes, drain() waits
/// for everything in flight. Jobs in flight concurrently share the worker
/// pool, the queues and the learned PTT — the persistent-runtime regime of
/// paper §4.1.1. run() remains the submit+wait sugar every one-shot driver
/// uses. On Backend::kRt the job API is thread-safe (multiple submitter
/// threads may drive one executor); on Backend::kSim the event loop is
/// single-threaded — drive a sim executor from one thread.
class Executor {
 public:
  virtual ~Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers `dag` as a job and releases it to the engine; returns
  /// immediately. `dag` must stay alive until the job has been waited.
  /// `arrival_offset_s` delays the release on the engine's clock — the DES
  /// schedules the roots at now() + offset in virtual time, which is how a
  /// job stream's arrival trace is replayed deterministically. The real
  /// runtime has no virtual clock to defer on: it requires offset == 0
  /// (open-loop rt drivers pace arrivals in wall time instead).
  JobId submit(const Dag& dag, double arrival_offset_s = 0.0);

  /// Blocks until job `id` completes; returns its structured result
  /// (makespan_s = release -> completion latency). Each job can be waited
  /// exactly once; waiting an unknown/already-waited id throws.
  RunResult wait(JobId id);

  /// Waits for every job still in flight, in submission order; returns
  /// their results (ordered by JobId). Empty when nothing is in flight.
  std::vector<RunResult> drain();

  /// Executes every task of `dag`: submit + wait sugar. Callable
  /// repeatedly; the PTT keeps learning and stats accumulate across runs
  /// (iterative applications keep their learned model, like a persistent
  /// runtime).
  RunResult run(const Dag& dag) { return wait(submit(dag)); }

  /// Zeroes every rank's counters (task counts, busy time, elapsed).
  /// Stats ACCUMULATE across runs/jobs by default — multi-run bench deltas
  /// are silently skewed unless the driver resets between measurement
  /// sections. The learned PTT and the engine clock are NOT reset: the
  /// performance model persisting across jobs is the paper's point.
  /// Call only while no job is in flight.
  void reset_stats();

  virtual Backend backend() const = 0;
  Policy policy_kind() const { return policy_kind_; }
  virtual int num_ranks() const = 0;
  virtual const Topology& topology(int rank = 0) const = 0;
  /// Seconds on the engine's scenario clock: virtual time for the DES, wall
  /// seconds since construction for the real runtime. Drivers use it to
  /// open/close SpeedScenario interference windows mid-experiment.
  virtual double now() const = 0;

  virtual ExecutionStats& stats(int rank = 0) = 0;
  virtual PolicyEngine& policy(int rank = 0) = 0;
  virtual PttStore& ptt(int rank = 0) = 0;

 protected:
  Executor(Policy policy, const Timeline* timeline)
      : policy_kind_(policy), timeline_(timeline) {}

  /// A submitted job's identity plus its release instant on the engine
  /// clock (RunResult::arrival_s).
  struct JobTicket {
    JobId id = kInvalidJob;
    double arrival_s = 0.0;
  };
  /// Engine-specific submission; must not block on job execution.
  virtual JobTicket submit_job(const Dag& dag, double arrival_offset_s) = 0;
  /// Engine-specific completion latch; returns the job's makespan seconds.
  virtual double wait_job(JobId id) = 0;

 private:
  Policy policy_kind_;
  const Timeline* timeline_;

  struct Pending {
    double arrival_s = 0.0;
    std::int64_t tasks = 0;
  };
  /// Blocks on the claimed job and assembles its RunResult.
  RunResult finish_wait(JobId id, const Pending& pending);

  Mutex pending_mu_;
  std::map<JobId, Pending> pending_ DAS_GUARDED_BY(pending_mu_);
};

/// Single-domain factory: one topology, optional scenario in `config`.
/// Both backends accept every config; fields the chosen backend does not
/// understand are ignored (e.g. sim.* under Backend::kRt).
std::unique_ptr<Executor> make_executor(Backend backend, const Topology& topo,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config = {});

/// Multi-domain factory (the distributed experiments): one RankSpec per
/// scheduling domain. Backend::kRt accepts exactly one rank (the real
/// runtime is single-domain; use net::World for real multi-rank runs).
/// Ranks without their own scenario inherit config.scenario.
std::unique_ptr<Executor> make_executor(Backend backend,
                                        std::vector<sim::RankSpec> ranks,
                                        Policy policy,
                                        const TaskTypeRegistry& registry,
                                        ExecutorConfig config = {});

}  // namespace das
