#pragma once
// Real-thread moldable-task runtime (the XiTAO analogue of paper §4.1.2).
//
// One worker thread per topology core. Each worker owns
//   - an assembly queue (AQ): FIFO of participations in moldable tasks that
//     have already been given an execution place — always drained first;
//   - a steal-exempt inbox: high-priority tasks routed here by the
//     criticality-aware policies ("we disable the stealing of high priority
//     tasks", §4.1.2);
//   - a feeder: an MPSC side-channel through which OTHER threads (the
//     submitter, remote wake-ups under ablation options) hand it stealable
//     tasks — drained into the WSQ by the owner, preserving the Chase-Lev
//     single-owner invariant;
//   - a Chase-Lev WSQ of stealable (low-priority) tasks.
//
// Task lifetime follows the paper's Fig. 3: wake-up -> queue insertion
// (policy decides where) -> dequeue (width molding) -> insertion into the
// AQs of the place's cores -> cooperative execution -> last finisher updates
// the PTT and wakes dependents.
//
// Job service: the runtime executes a *stream* of independent DAGs (jobs).
// submit() registers a job and releases its roots into the worker queues
// immediately; wait() blocks until that job's last task finishes and returns
// its wall-clock latency (submit -> completion). Jobs in flight concurrently
// interleave on the same workers, inboxes, WSQs and shared PTT — the
// persistent-runtime regime of paper §4.1.1, where the performance model
// keeps learning across application phases. submit() and wait() are
// thread-safe: multiple submitter threads may drive one runtime. run()
// remains submit+wait sugar for the one-shot case.
//
// Asymmetry is emulated: when an RtOptions::scenario is given, every
// participation is stretched by busy-waiting to the wall time a core of that
// effective speed would need (platform/throttle.hpp explains why this
// preserves the scheduling problem).

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/speed_model.hpp"
#include "platform/throttle.hpp"
#include "platform/topology.hpp"
#include "rt/wsq.hpp"
#include "trace/stats.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace das::rt {

struct RtOptions {
  std::uint64_t seed = kDefaultSeed;  ///< shared default (util/rng.hpp)
  bool pin_threads = false;            ///< best-effort pthread affinity
  const SpeedScenario* scenario = nullptr;  ///< asymmetry emulation; null = off
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  int stats_phases = 1;
  int steal_attempts_per_round = 4;    ///< victims probed before backing off
};

class Runtime {
 public:
  Runtime(const Topology& topo, Policy policy, const TaskTypeRegistry& registry,
          RtOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers `dag` as a job and releases its roots to the workers without
  /// blocking. `dag` must stay alive until the job has been wait()ed.
  /// Thread-safe: concurrent submitters interleave their jobs on the shared
  /// worker pool and PTT.
  JobId submit(const Dag& dag);

  /// Blocks until job `id` completes; returns its wall-clock latency in
  /// seconds (submit -> last task finished). Each job can be waited exactly
  /// once; waiting an unknown/already-waited id throws.
  double wait(JobId id);

  /// Executes every task of `dag`, returns wall seconds for this run
  /// (submit + wait). Callable repeatedly and concurrently; workers, PTT
  /// state and stats persist across runs.
  double run(const Dag& dag) { return wait(submit(dag)); }

  const Topology& topology() const { return *topo_; }
  ExecutionStats& stats() { return *stats_; }
  PolicyEngine& policy() { return *policy_; }
  PttStore& ptt() { return *ptt_; }
  /// True if every worker thread was successfully pinned.
  bool pinned() const { return pinned_; }
  /// Seconds elapsed since the runtime's construction — the time base of
  /// the RtOptions::scenario (drivers use it to open/close interference
  /// windows at application-level boundaries, cf. the paper's Fig. 9).
  double scenario_now() const;
  /// Jobs submitted but not yet wait()ed to completion.
  int jobs_in_flight() const;

 private:
  struct Job;  // fwd

  struct TaskRec {
    const DagNode* node = nullptr;
    NodeId id = kInvalidNode;
    Job* job = nullptr;             // owning job (set before publication)
    std::atomic<int> preds{0};
    bool has_fixed_place = false;   // written before publication
    ExecutionPlace place{};
    std::atomic<int> arrivals{0};
    std::atomic<int> departures{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> max_busy_ns{0};  ///< slowest participant
  };

  /// One in-flight job: its record block (one TaskRec per node) and a
  /// completion latch. `outstanding` counts unfinished tasks; the worker
  /// that drops it to zero marks the job done under mu_ and broadcasts
  /// cv_ — the per-job latch every wait(id) blocks on.
  struct Job {
    JobId id = kInvalidJob;
    const Dag* dag = nullptr;
    std::unique_ptr<TaskRec[]> records;
    std::atomic<std::int64_t> outstanding{0};
    std::int64_t submit_ns = 0;
    std::int64_t done_ns = 0;
    bool done = false;  // guarded by mu_
  };

  struct alignas(kCacheLine) Worker {
    WsDeque<TaskRec> wsq;
    std::deque<TaskRec*> inbox;   // guarded by lock
    std::deque<TaskRec*> aq;      // guarded by lock
    std::deque<TaskRec*> feeder;  // guarded by lock
    Spinlock lock;
    Xoshiro256 rng;
    std::thread thread;
  };

  // worker.cpp
  void worker_loop(int core);
  bool try_make_progress(int core);
  void participate(int core, TaskRec* task);
  void distribute(int core, TaskRec* task, const ExecutionPlace& place);
  TaskRec* try_steal(int core);
  /// `caller_is_worker` means the calling thread IS worker `waking_core`
  /// (enables the owner-only WSQ fast path; the submitter passes false).
  void wake_task(TaskRec* task, int waking_core, bool caller_is_worker);
  void push_stealable(int target_core, TaskRec* task, bool from_owner);
  void complete_job(Job* job);

  // runtime.cpp
  void submit_roots(Job& job);

  const Topology* topo_;
  const TaskTypeRegistry* registry_;
  RtOptions options_;
  std::unique_ptr<PttStore> ptt_;
  std::unique_ptr<PolicyEngine> policy_;
  std::unique_ptr<ExecutionStats> stats_;
  std::unique_ptr<SpeedEmulator> emulator_;  // null when no scenario
  std::int64_t epoch_ns_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  bool pinned_ = true;

  // Job coordination. jobs_ and the per-job `done` flags are guarded by
  // mu_; cv_ is both the worker parking lot (armed by active_jobs_) and the
  // per-job completion latch. active_jobs_ is additionally atomic so the
  // worker spin loop can poll it without taking mu_.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::atomic<int> active_jobs_{0};
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;  // guarded by mu_
  JobId next_job_ = 0;                                    // guarded by mu_
  // Stats attribution: elapsed accumulates only wall time while >= 1 job is
  // in flight (the union of job windows), so overlapping jobs are not
  // double-counted and sequential runs sum exactly as before.
  std::int64_t busy_window_start_ns_ = 0;  // guarded by mu_
};

}  // namespace das::rt
