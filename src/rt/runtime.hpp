#pragma once
// Real-thread moldable-task runtime (the XiTAO analogue of paper §4.1.2).
//
// One worker thread per topology core. Each worker owns
//   - an assembly queue (AQ): FIFO of participations in moldable tasks that
//     have already been given an execution place — always drained first;
//   - a steal-exempt inbox: high-priority tasks routed here by the
//     criticality-aware policies ("we disable the stealing of high priority
//     tasks", §4.1.2);
//   - a feeder: an MPSC side-channel through which OTHER threads (the
//     submitter, remote wake-ups under ablation options) hand it stealable
//     tasks — drained into the WSQ by the owner, preserving the Chase-Lev
//     single-owner invariant;
//   - a Chase-Lev WSQ of stealable (low-priority) tasks.
//
// Task lifetime follows the paper's Fig. 3: wake-up -> queue insertion
// (policy decides where) -> dequeue (width molding) -> insertion into the
// AQs of the place's cores -> cooperative execution -> last finisher updates
// the PTT and wakes dependents.
//
// Asymmetry is emulated: when an RtOptions::scenario is given, every
// participation is stretched by busy-waiting to the wall time a core of that
// effective speed would need (platform/throttle.hpp explains why this
// preserves the scheduling problem).

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/speed_model.hpp"
#include "platform/throttle.hpp"
#include "platform/topology.hpp"
#include "rt/wsq.hpp"
#include "trace/stats.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace das::rt {

struct RtOptions {
  std::uint64_t seed = kDefaultSeed;  ///< shared default (util/rng.hpp)
  bool pin_threads = false;            ///< best-effort pthread affinity
  const SpeedScenario* scenario = nullptr;  ///< asymmetry emulation; null = off
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  int stats_phases = 1;
  int steal_attempts_per_round = 4;    ///< victims probed before backing off
};

class Runtime {
 public:
  Runtime(const Topology& topo, Policy policy, const TaskTypeRegistry& registry,
          RtOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes every task of `dag`, returns wall seconds for this run.
  /// Callable repeatedly; workers, PTT state and stats persist across runs.
  double run(const Dag& dag);

  const Topology& topology() const { return *topo_; }
  ExecutionStats& stats() { return *stats_; }
  PolicyEngine& policy() { return *policy_; }
  PttStore& ptt() { return *ptt_; }
  /// True if every worker thread was successfully pinned.
  bool pinned() const { return pinned_; }
  /// Seconds elapsed since the runtime's construction — the time base of
  /// the RtOptions::scenario (drivers use it to open/close interference
  /// windows at application-level boundaries, cf. the paper's Fig. 9).
  double scenario_now() const;

 private:
  struct TaskRec {
    const DagNode* node = nullptr;
    NodeId id = kInvalidNode;
    std::atomic<int> preds{0};
    bool has_fixed_place = false;   // written before publication
    ExecutionPlace place{};
    std::atomic<int> arrivals{0};
    std::atomic<int> departures{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> max_busy_ns{0};  ///< slowest participant
  };

  struct alignas(kCacheLine) Worker {
    WsDeque<TaskRec> wsq;
    std::deque<TaskRec*> inbox;   // guarded by lock
    std::deque<TaskRec*> aq;      // guarded by lock
    std::deque<TaskRec*> feeder;  // guarded by lock
    Spinlock lock;
    Xoshiro256 rng;
    std::thread thread;
  };

  // worker.cpp
  void worker_loop(int core);
  bool try_make_progress(int core);
  void participate(int core, TaskRec* task);
  void distribute(int core, TaskRec* task, const ExecutionPlace& place);
  TaskRec* try_steal(int core);
  /// `caller_is_worker` means the calling thread IS worker `waking_core`
  /// (enables the owner-only WSQ fast path; the submitter passes false).
  void wake_task(TaskRec* task, int waking_core, bool caller_is_worker);
  void push_stealable(int target_core, TaskRec* task, bool from_owner);
  void complete_run_if_drained();

  // runtime.cpp
  void submit_roots(const Dag& dag);

  const Topology* topo_;
  const TaskTypeRegistry* registry_;
  RtOptions options_;
  std::unique_ptr<PttStore> ptt_;
  std::unique_ptr<PolicyEngine> policy_;
  std::unique_ptr<ExecutionStats> stats_;
  std::unique_ptr<SpeedEmulator> emulator_;  // null when no scenario
  std::int64_t epoch_ns_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
  bool pinned_ = true;

  // Run/epoch coordination.
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;       // bumped per run() under mu_
  bool shutdown_ = false;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<bool> run_active_{false};

  std::unique_ptr<TaskRec[]> records_;  // one per DAG node, per run
  std::size_t num_records_ = 0;
};

}  // namespace das::rt
