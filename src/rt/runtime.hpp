#pragma once
// Real-thread moldable-task runtime (the XiTAO analogue of paper §4.1.2).
//
// One worker thread per topology core. Each worker owns
//   - an assembly queue (AQ): FIFO of participations in moldable tasks that
//     have already been given an execution place — always drained first;
//   - a steal-exempt inbox: high-priority tasks routed here by the
//     criticality-aware policies ("we disable the stealing of high priority
//     tasks", §4.1.2);
//   - a feeder: an MPSC side-channel through which OTHER threads (the
//     submitter, remote wake-ups under ablation options) hand it stealable
//     tasks — drained into the WSQ by the owner, preserving the Chase-Lev
//     single-owner invariant;
//   - a Chase-Lev WSQ of stealable (low-priority) tasks.
//
// Task lifetime follows the paper's Fig. 3: wake-up -> queue insertion
// (policy decides where) -> dequeue (width molding) -> insertion into the
// AQs of the place's cores -> cooperative execution -> last finisher updates
// the PTT and wakes dependents.
//
// Lock-free channel design. The paper's runtime must react to asymmetry
// faster than the asymmetry changes, so per-task handoff is the hot path.
// Inbox, AQ and feeder are intrusive Vyukov MPSC queues (util/mpsc_queue.hpp)
// rather than mutex-guarded deques: every TaskRec embeds one queue hook,
// `ready_hook`, which serves every channel role the task occupies one at a
// time — the inbox OR the feeder at wake-up, then AQ slot 0 at distribution
// (pop() only returns fully-unlinked nodes, so the hook is free again by
// then). A width-W assembly sits in W assembly queues simultaneously; its
// W-1 non-leader slots come from a per-job arena allocated lazily by the
// first wide distribute, so width-1 workloads never pay for it.
// Steady-state dispatch therefore performs no allocation and takes no lock:
// a push is one atomic exchange, a pop one acquire load.
//
// Memory-ordering contract of the handoff: a producer writes the task's
// routing state (`place`, `has_fixed_place`) BEFORE pushing; the MPSC push
// publishes with a release store that the consumer's pop acquires, so the
// consumer always observes a fully-routed task. The WSQ keeps the Chase-Lev
// orderings documented in rt/wsq.hpp. Idle workers park on a per-worker
// EventCount (util/eventcount.hpp) under the three-phase
// prepare/re-check/commit protocol; every push either targets a specific
// worker (inbox/AQ/feeder: notify that worker's eventcount) or is stealable
// (WSQ push: wake one worker from the parked-set registry). The seq_cst
// fences inside the eventcount close the push-vs-park race, so a parked
// worker never misses work and an idle pool burns ~0 CPU instead of
// spinning on the producers' cache lines.
//
// Job service: the runtime executes a *stream* of independent DAGs (jobs).
// submit() registers a job and releases its roots into the worker queues
// immediately; wait() blocks until that job's last task finishes, returns
// its wall-clock latency (submit -> completion) and retires the job's
// record block — the jobs_ map holds only jobs in flight. Jobs in flight
// concurrently interleave on the same workers, inboxes, WSQs and shared
// PTT — the persistent-runtime regime of paper §4.1.1, where the
// performance model keeps learning across application phases. submit() and
// wait() are thread-safe: multiple submitter threads may drive one runtime.
// run() remains submit+wait sugar for the one-shot case.
//
// Asymmetry is emulated: when an RtOptions::scenario is given, every
// participation is stretched by busy-waiting to the wall time a core of that
// effective speed would need (platform/throttle.hpp explains why this
// preserves the scheduling problem).

#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/fault_plan.hpp"
#include "platform/speed_model.hpp"
#include "platform/throttle.hpp"
#include "platform/topology.hpp"
#include "rt/wsq.hpp"
#include "trace/stats.hpp"
#include "util/aligned.hpp"
#include "util/eventcount.hpp"
#include "util/mpsc_queue.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace das::rt {

struct RtOptions {
  std::uint64_t seed = kDefaultSeed;  ///< shared default (util/rng.hpp)
  bool pin_threads = false;            ///< best-effort pthread affinity
  const SpeedScenario* scenario = nullptr;  ///< asymmetry emulation; null = off
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  int stats_phases = 1;
  int steal_attempts_per_round = 4;    ///< victims probed before backing off
  /// Fail-stop / freeze schedule (scenario::resolve_faults output). A
  /// non-empty plan spawns the watchdog thread, which arms each fault at
  /// epoch + t_s and re-homes the retired workers' queued tasks.
  FaultPlan faults{};
  /// Runs the watchdog even with an empty plan — needed by
  /// inject_worker_wedge() and by services that want wedge detection on an
  /// otherwise healthy pool.
  bool enable_watchdog = false;
  double watchdog_period_s = 0.001;  ///< watchdog tick == detection grain
};

class Runtime {
 public:
  Runtime(const Topology& topo, Policy policy, const TaskTypeRegistry& registry,
          RtOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers `dag` as a job and releases its roots to the workers without
  /// blocking. `dag` must stay alive until the job has been wait()ed.
  /// Thread-safe: concurrent submitters interleave their jobs on the shared
  /// worker pool and PTT.
  JobId submit(const Dag& dag);

  /// Blocks until job `id` completes; returns its wall-clock latency in
  /// seconds (submit -> last task finished) and releases the job's record
  /// block (jobs_ stays bounded by the number of jobs in flight). Each job
  /// can be waited exactly once; waiting an unknown/already-waited id
  /// throws.
  double wait(JobId id);

  /// Executes every task of `dag`, returns wall seconds for this run
  /// (submit + wait). Callable repeatedly and concurrently; workers, PTT
  /// state and stats persist across runs.
  double run(const Dag& dag) { return wait(submit(dag)); }

  const Topology& topology() const { return *topo_; }
  ExecutionStats& stats() { return *stats_; }
  PolicyEngine& policy() { return *policy_; }
  PttStore& ptt() { return *ptt_; }
  /// True if every worker thread was successfully pinned.
  bool pinned() const { return pinned_; }
  /// Seconds elapsed since the runtime's construction — the time base of
  /// the RtOptions::scenario (drivers use it to open/close interference
  /// windows at application-level boundaries, cf. the paper's Fig. 9).
  double scenario_now() const;
  /// Jobs submitted but not yet wait()ed to completion (== the size of the
  /// internal job map: finished-and-waited jobs are erased eagerly).
  int jobs_in_flight() const;
  /// Non-blocking probe: has job `id` (submitted, not yet wait()ed)
  /// completed? The timed waits of Executor::wait_for poll this between
  /// parks instead of committing to the blocking wait().
  bool job_done(JobId id) const;
  /// Which dequeue/execute loop the workers run: a per-policy fused
  /// instantiation ("fused:DAM-C") whose scheduling hooks inline into the
  /// progress round, or "generic" (an unrecognised future policy). Cost
  /// models always evaluate through the expression fast path when one
  /// exists (core/cost_expr.hpp); behaviour is identical either way.
  const char* dispatch_variant() const { return dispatch_variant_; }
  /// Workers currently parked on their eventcount (advisory snapshot; the
  /// starved-pool tests use it to observe that idle workers sleep instead
  /// of spinning).
  int parked_workers() const;

  /// Tasks re-executed after a fail-stop reclaimed a participation (the
  /// at-least-once execution / exactly-once completion accounting of the
  /// fault-tolerance layer). 0 on a healthy run.
  std::uint64_t tasks_reexecuted() const {
    return tasks_reexecuted_.load(std::memory_order_relaxed);
  }
  /// Workers retired by the watchdog (planned fail-stops + detected wedges).
  int workers_failed() const {
    return workers_failed_.load(std::memory_order_relaxed);
  }
  /// Test API: makes worker `core` go silent at its next loop top — no
  /// heartbeat, no queue consumption, no self-quarantine — so the watchdog
  /// must DETECT the failure from heartbeat staleness and re-home its work.
  /// Requires the watchdog (RtOptions::enable_watchdog or a non-empty plan).
  void inject_worker_wedge(int core);

  /// Installs a hook invoked (from the finishing worker's thread) each time
  /// a job's last task completes, AFTER the runtime released its internal
  /// lock — the hook may call submit()/wait() on this runtime. Install
  /// before the first submit(); the exec-layer job service uses it to free
  /// per-tenant in-flight slots and release queued jobs.
  void set_job_done_hook(std::function<void(JobId)> hook);

 private:
  struct Job;  // fwd

  struct TaskRec {
    const DagNode* node = nullptr;
    NodeId id = kInvalidNode;
    Job* job = nullptr;             // owning job (set before publication)
    std::atomic<int> preds{0};
    bool has_fixed_place = false;   // written before publication
    ExecutionPlace place{};
    std::atomic<int> arrivals{0};
    std::atomic<int> departures{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> max_busy_ns{0};  ///< slowest participant
    // Intrusive channel hook (allocation-free queue membership). A task is
    // in at most one wake-up channel at a time (inbox OR feeder), and by
    // the time distribute() runs it has been popped from whichever channel
    // held it — pop() only returns fully-unlinked nodes — so the same hook
    // serves as AQ slot 0. Wide assemblies take slots 1..W-1 from the
    // job's lazily-allocated wide-hook arena (see Job::wide_dir).
    MpscQueue::Node ready_hook;
  };

  /// Tasks covered by one wide-hook chunk (see Job::wide_dir). 256 tasks x
  /// (width-1) x 16-byte nodes keeps a chunk in the tens of kilobytes.
  static constexpr std::size_t kWideChunkTasks = 256;

  /// One in-flight job: its record block (one TaskRec per node), a
  /// lazily-allocated arena of AQ hooks for the non-leader slots of wide
  /// assemblies, and a completion latch. `outstanding` counts unfinished
  /// tasks; the worker that drops it to zero marks the job done under mu_
  /// and broadcasts cv_ — the per-job latch every wait(id) blocks on.
  struct Job {
    JobId id = kInvalidJob;
    const Dag* dag = nullptr;
    std::unique_ptr<TaskRec[]> records;
    /// Two-level lazy arena for the non-leader AQ hooks of wide
    /// assemblies: a CAS-published directory of `num_wide_chunks` chunk
    /// pointers, each chunk holding kWideChunkTasks x (max_place_width - 1)
    /// MpscQueue::Nodes and CAS-claimed by the first wide distribute() of a
    /// task in its range (wide_hooks()). Width-1 workloads never allocate
    /// either level, and a job with a handful of wide tasks pays for the
    /// touched chunks only, not num_nodes x (width-1) up front. The
    /// directory entries own their chunks (freed in ~Job); the unique_ptr,
    /// written only by the directory-CAS winner, owns the directory.
    std::atomic<std::atomic<MpscQueue::Node*>*> wide_dir{nullptr};
    std::unique_ptr<std::atomic<MpscQueue::Node*>[]> wide_dir_owner;
    std::size_t num_wide_chunks = 0;
    std::atomic<std::int64_t> outstanding{0};
    std::int64_t submit_ns = 0;
    std::int64_t done_ns = 0;
    // Guarded by the owning Runtime's mu_ (a nested struct cannot name the
    // outer instance's member in a guarded_by attribute; complete_job and
    // wait() only touch it under MutexLock).
    bool done = false;

    ~Job() {
      if (auto* dir = wide_dir.load(std::memory_order_acquire)) {
        for (std::size_t c = 0; c < num_wide_chunks; ++c)
          delete[] dir[c].load(std::memory_order_acquire);
      }
    }
  };

  struct alignas(kCacheLine) Worker {
    WsDeque<TaskRec> wsq;
    MpscQueue inbox;    // steal-exempt, fixed-place tasks
    MpscQueue aq;       // committed participations; drained first
    MpscQueue feeder;   // stealable handoffs from other threads
    EventCount ec;      // only this worker ever waits on it
    std::atomic<bool> parked{false};  // set before the pre-park work re-check
    Xoshiro256 rng;
    std::thread thread;
    // Fault-tolerance plumbing (rt/watchdog.cpp); all of it inert — never
    // loaded or stored — unless faults_armed_.
    std::atomic<std::uint64_t> heartbeat{0};   ///< bumped each loop top
    std::atomic<std::uint8_t> fault_state{0};  ///< FaultState transitions
    std::atomic<std::int64_t> freeze_until_ns{0};  ///< absolute thaw time
    std::atomic<bool> in_round{false};  ///< inside a progress round (may block
                                    ///< in run_work; exempt from wedge scan)
  };

  /// Worker::fault_state values. Healthy -> (kWedgeRequested |
  /// kQuarantineRequested) is written by the injector/watchdog; the worker
  /// itself publishes kQuarantined (release) right before it stops consuming
  /// its queues, which is the watchdog's license to become their sole
  /// consumer (acquire) and re-home what is left. A wedged worker never
  /// acks; the watchdog force-marks it kQuarantined after the heartbeat
  /// grace period, relying on in_round to prove it holds no queue pop.
  enum FaultState : std::uint8_t {
    kHealthy = 0,
    kWedgeRequested,       ///< test injection: go silent, never ack
    kQuarantineRequested,  ///< planned fail-stop: ack then retire
    kQuarantined,          ///< retired; queues belong to the watchdog
  };

  // worker.cpp
  void worker_loop(int core);
  /// Steady-state progress round, templated over a policy-hook adapter
  /// (core/policy.hpp) so the scheduling hooks inline into the dequeue loop.
  /// worker_loop dispatches through progress_fn_, bound to the policy's
  /// fused instantiation at construction (bind_progress); the
  /// DynamicPolicyHooks instantiation IS the generic fallback — one
  /// implementation, two dispatch depths.
  template <class Hooks> bool try_make_progress_t(int core);
  template <class Hooks> void participate_t(int core, TaskRec* task);
  /// Executes the node's work (or emulates its cost model), applies the
  /// scenario throttle, records busy time; returns this participant's busy
  /// nanoseconds.
  std::int64_t run_work(int core, TaskRec* task, int rank);
  /// Last-finisher tail: wake dependents, retire the task from its job.
  template <class Hooks> void finish_last_t(int core, TaskRec* task);
  template <class Hooks>
  void distribute_t(int core, TaskRec* task, const ExecutionPlace& place);
  TaskRec* try_steal(int core);
  /// `caller_is_worker` means the calling thread IS worker `waking_core`
  /// (enables the owner-only WSQ fast path; the submitter passes false).
  template <class Hooks>
  void wake_task_t(TaskRec* task, int waking_core, bool caller_is_worker);
  /// Generic-dispatch wake-up for the cold submission path (submit_roots):
  /// the fused loops wake successors through wake_task_t<Hooks> directly.
  void wake_task(TaskRec* task, int waking_core, bool caller_is_worker);
  /// Selects progress_fn_/dispatch_variant_ for policy_: one switch over the
  /// per-policy instantiations, mirroring sim::SimEngine::refresh_dispatch.
  void bind_progress();
  template <class Hooks> void bind_progress_for(const char* name);
  void push_stealable(int target_core, TaskRec* task, bool from_owner);
  /// Wakes one parked worker (if any) to come steal; `from_core` seeds the
  /// rotation so wakes spread instead of always hitting worker 0.
  void notify_stealers(int from_core);
  /// Pre-park re-check: anything this worker could do right now?
  bool has_work(int core) const;
  /// The (max_place_width_ - 1) AQ hooks for task `id`'s non-leader slots,
  /// from the job's two-level lazy arena (directory and chunks are
  /// allocated on first use; CAS losers free their block and adopt the
  /// winner's).
  MpscQueue::Node* wide_hooks(Job* job, NodeId id);
  void complete_job(Job* job);

  // rt/watchdog.cpp — the fault-tolerance layer. A participation reclaimed
  // from a dead worker's AQ is a "wounded" task: the watchdog (its sole
  // accountant) waits until every live participant of the doomed attempt
  // has departed, then resets the record and re-wakes it — at-least-once
  // execution, exactly-once completion, single requeuer by construction.
  struct Wounded {
    TaskRec* task = nullptr;
    int lost = 0;  ///< participations reclaimed from dead workers
  };
  void watchdog_loop();
  void drain_worker(int core, std::vector<Wounded>& wounded);
  void poll_wounded(std::vector<Wounded>& wounded);
  void requeue_task(TaskRec* task);
  /// Cyclic scan for a non-retired worker starting at `from`; aborts if the
  /// whole pool died (resolve_faults refuses such plans up front).
  int live_worker_after(int from) const;
  bool worker_dead(int c) const {  // callers gate on faults_armed_
    return dead_[static_cast<std::size_t>(c)].load(std::memory_order_acquire);
  }
  void quarantine_self(int core);  // ack + retire (thread exits)
  void wedge_self();               // go silent until shutdown
  void freeze_self(int core, std::int64_t thaw_ns);

  // runtime.cpp
  void submit_roots(Job& job);

  const Topology* topo_;
  const TaskTypeRegistry* registry_;
  RtOptions options_;
  std::unique_ptr<PttStore> ptt_;
  std::unique_ptr<PolicyEngine> policy_;
  std::unique_ptr<ExecutionStats> stats_;
  std::unique_ptr<SpeedEmulator> emulator_;  // null when no scenario
  std::int64_t epoch_ns_ = 0;
  int max_place_width_ = 1;  ///< widest valid place; sizes the AQ arenas

  std::vector<std::unique_ptr<Worker>> workers_;
  bool pinned_ = true;

  // Static-dispatch plumbing (bind_progress, worker.cpp): one captureless
  // lambda per policy converts to this pointer, so the only indirect call
  // left on the steady-state path is one per progress round — the
  // policy hooks inside the round are inlined per instantiation.
  bool (*progress_fn_)(Runtime&, int) = nullptr;
  const char* dispatch_variant_ = "generic";

  // Parking registry: parked_count_ lets producers skip the wake scan when
  // nobody sleeps; Worker::parked marks scan candidates. Workers set both
  // BEFORE their pre-park has_work() re-check (the Dekker pairing with
  // notify_stealers' fence — see util/eventcount.hpp).
  std::atomic<int> parked_count_{0};
  std::atomic<bool> shutdown_{false};

  // Fault-tolerance state (rt/watchdog.cpp). faults_armed_ is written once
  // before the workers spawn; every per-dispatch fault check hides behind
  // it, so a healthy runtime pays one predictable branch. dead_[c] flips
  // true exactly once, when worker c's queues pass to the watchdog; wake
  // routing and place molding consult it to steer new work to survivors.
  bool faults_armed_ = false;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<std::uint64_t> tasks_reexecuted_{0};
  std::atomic<int> workers_failed_{0};
  std::thread watchdog_;

  // Job coordination. jobs_ and the per-job `done` flags are guarded by
  // mu_; cv_ is the per-job completion latch (workers park on their
  // eventcounts, not on cv_). active_jobs_ is atomic so complete_job can
  // close the stats window without re-reading the map.
  mutable Mutex mu_;
  CondVar cv_;
  std::atomic<int> active_jobs_{0};
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_ DAS_GUARDED_BY(mu_);
  JobId next_job_ DAS_GUARDED_BY(mu_) = 0;
  // Stats attribution: elapsed accumulates only wall time while >= 1 job is
  // in flight (the union of job windows), so overlapping jobs are not
  // double-counted and sequential runs sum exactly as before.
  std::int64_t busy_window_start_ns_ DAS_GUARDED_BY(mu_) = 0;
  // Job-completion hook (see set_job_done_hook). Written once before any
  // submit, read by worker threads without mu_ — the install happens-before
  // every completion via the submit that publishes the job.
  std::function<void(JobId)> job_done_hook_;
};

}  // namespace das::rt
