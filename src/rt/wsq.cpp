#include "rt/wsq.hpp"

// WsDeque is a header-only template; this explicit instantiation anchors the
// object library and gives the tests a concrete symbol to link against.

namespace das::rt {

template class WsDeque<int>;

}  // namespace das::rt
