#include "core/cost_expr.hpp"
#include "platform/affinity.hpp"
#include "rt/runtime.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"  // cpu_relax
#include "util/time.hpp"

namespace das::rt {

namespace {

/// Failed progress rounds a worker tolerates (with pause bursts) before it
/// parks on its eventcount. Small on purpose: a round already probes every
/// local channel plus `steal_attempts_per_round` victims, and parking frees
/// the core on oversubscribed machines where spinning starves producers.
constexpr int kSpinRoundsBeforePark = 2;

}  // namespace

void Runtime::worker_loop(int core) {
  if (options_.pin_threads) {
    if (!pin_current_thread(core)) pinned_ = false;
  }
  Worker& self = *workers_[static_cast<std::size_t>(core)];

  int idle_rounds = 0;
  for (;;) {
    if (faults_armed_) [[unlikely]] {
      // Fault checks happen only here, at a loop top — never mid-task — so
      // a planned fail-stop loses queued work but no in-flight
      // participation (rt/watchdog.cpp). in_round brackets the progress
      // round: a worker blocked in run_work is exempt from the wedge scan,
      // and conversely any worker with in_round == false provably holds no
      // queue pop, which is what licenses a forced takeover.
      self.in_round.store(false, std::memory_order_seq_cst);
      self.heartbeat.fetch_add(1, std::memory_order_relaxed);
      const std::uint8_t fs = self.fault_state.load(std::memory_order_acquire);
      if (fs == kWedgeRequested) {
        wedge_self();
        return;
      }
      if (fs == kQuarantineRequested || fs == kQuarantined) {
        quarantine_self(core);
        return;
      }
      const std::int64_t thaw =
          self.freeze_until_ns.load(std::memory_order_acquire);
      if (thaw > now_ns()) {
        freeze_self(core, thaw);
        continue;
      }
      self.in_round.store(true, std::memory_order_seq_cst);
    }
    if (progress_fn_(*this, core)) {
      idle_rounds = 0;
      continue;
    }
    if (faults_armed_) [[unlikely]]
      self.in_round.store(false, std::memory_order_seq_cst);
    if (++idle_rounds <= kSpinRoundsBeforePark) {
      for (int i = 0; i < 64; ++i) cpu_relax();
      continue;
    }
    idle_rounds = 0;

    // Park. Three-phase eventcount protocol (util/eventcount.hpp):
    // announce intent, publish the parked bit, THEN re-check for work.
    // Producers push first and signal after, so either the re-check sees
    // their task or their notify sees this waiter — no lost wake-up.
    const std::uint64_t key = self.ec.prepare_wait();
    self.parked.store(true, std::memory_order_seq_cst);
    parked_count_.fetch_add(1, std::memory_order_seq_cst);
    // Registry exit, shared by every branch below so the count/flag pair
    // can never diverge between them.
    const auto unpark = [&] {
      parked_count_.fetch_sub(1, std::memory_order_seq_cst);
      self.parked.store(false, std::memory_order_seq_cst);
    };
    if (shutdown_.load(std::memory_order_seq_cst)) {
      unpark();
      self.ec.cancel_wait();
      return;
    }
    if (has_work(core)) {
      unpark();
      self.ec.cancel_wait();
      continue;
    }
    self.ec.commit_wait(key);
    unpark();
  }
}

bool Runtime::has_work(int core) const {
  const Worker& self = *workers_[static_cast<std::size_t>(core)];
  // Own channels (this thread is their consumer, so empty() is exact up to
  // the mid-push transient, which reads as non-empty — the safe direction).
  if (!self.aq.empty() || !self.inbox.empty() || !self.feeder.empty())
    return true;
  if (self.wsq.size_estimate() > 0) return true;
  // Steal opportunities: a deterministic sweep, unlike try_steal's random
  // probes — a parked worker must never overlook a non-empty victim.
  const auto* workers = workers_.data();
  const int n = topo_->num_cores();
  for (int c = 0; c < n; ++c) {
    if (c != core && workers[static_cast<std::size_t>(c)]->wsq.size_estimate() > 0)
      return true;
  }
  return false;
}

void Runtime::notify_stealers(int from_core) {
  // Dekker pairing with the parking protocol: the caller's queue push must
  // be ordered before the parked-registry loads (see util/eventcount.hpp).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (parked_count_.load(std::memory_order_relaxed) == 0) return;
  const auto* workers = workers_.data();
  const int n = topo_->num_cores();
  // off < n: offset n would be the caller itself, which is awake by
  // construction.
  for (int off = 1; off < n; ++off) {
    const int c = (from_core + off) % n;
    Worker& w = *workers[static_cast<std::size_t>(c)];
    if (w.parked.load(std::memory_order_seq_cst)) {
      w.ec.notify();
      return;  // one task was pushed; one thief suffices (wakes propagate)
    }
  }
}

// daslint: begin-hot-path(rt-dispatch)
// Steady-state dispatch: every task popped anywhere in the pool flows
// through these functions. The project linter (tools/daslint) forbids
// allocation, lock acquisition and type-erased dispatch between the
// hot-path markers — the no-alloc/no-lock/no-std::function property the
// runtime's overhead gate depends on is enforced textually on every push,
// not just measured. Everything here is templated over the policy-hook
// adapter `Hooks` (core/policy.hpp): worker_loop binds one instantiation
// per policy at construction, so the scheduling hooks inline into the
// round instead of going through the PolicyEngine virtual-free-but-
// branchy dynamic entry points.
template <class Hooks>
bool Runtime::try_make_progress_t(int core) {
  Worker& w = *workers_[static_cast<std::size_t>(core)];

  // 1. Assembly queue: committed participations come first. The pop's
  //    acquire pairs with distribute_t()'s release push, so `place` is
  //    visible.
  if (auto* t = static_cast<TaskRec*>(w.aq.pop())) {
    participate_t<Hooks>(core, t);
    return true;
  }
  // 2. Steal-exempt inbox (fixed-place high-priority tasks).
  if (auto* t = static_cast<TaskRec*>(w.inbox.pop())) {
    DAS_ASSERT(t->has_fixed_place);
    // Copy, like the WSQ/steal sites below: distribute_t() writes
    // task->place and re-reads the place after publishing the task, so it
    // must not receive a reference aliasing that field.
    const ExecutionPlace place = t->place;
    distribute_t<Hooks>(core, t, place);
    return true;
  }
  // 3. Feeder: stealable tasks handed to us by other threads; drain into our
  //    WSQ (owner-only push keeps the Chase-Lev invariant). Draining more
  //    than one makes the surplus steal-visible — tell a parked peer.
  int drained = 0;
  while (auto* t = static_cast<TaskRec*>(w.feeder.pop())) {
    w.wsq.push_bottom(t);
    ++drained;
  }
  if (drained > 1) notify_stealers(core);
  // 4. Own WSQ, newest first.
  if (TaskRec* t = w.wsq.pop_bottom()) {
    const ExecutionPlace place =
        t->has_fixed_place
            ? t->place
            : Hooks::on_execute(*policy_, t->node->type, t->node->priority,
                                core);
    distribute_t<Hooks>(core, t, place);
    return true;
  }
  // 5. Steal from a random victim; the thief re-runs the local search
  //    (paper Fig. 3 steps 4-5).
  if (TaskRec* t = try_steal(core)) {
    const ExecutionPlace place =
        t->has_fixed_place
            ? t->place
            : Hooks::on_execute(*policy_, t->node->type, t->node->priority,
                                core);
    distribute_t<Hooks>(core, t, place);
    return true;
  }
  return false;
}

Runtime::TaskRec* Runtime::try_steal(int core) {
  const int n = topo_->num_cores();
  if (n <= 1) return nullptr;
  const auto* workers = workers_.data();  // hoisted off the per-probe path
  Worker& self = *workers[static_cast<std::size_t>(core)];
  for (int attempt = 0; attempt < options_.steal_attempts_per_round; ++attempt) {
    // Draw from n-1 and remap around self: every attempt probes a real
    // victim instead of burning draws on victim == core.
    int victim = static_cast<int>(self.rng.below(static_cast<std::uint64_t>(n - 1)));
    if (victim >= core) ++victim;
    Worker& v = *workers[static_cast<std::size_t>(victim)];
    if (TaskRec* t = v.wsq.steal_top()) {
      // Wake propagation: if the victim still has surplus, a parked peer
      // can join the party (one push woke only one thief).
      if (v.wsq.size_estimate() > 0) notify_stealers(core);
      return t;
    }
  }
  return nullptr;
}

template <class Hooks>
void Runtime::distribute_t(int core, TaskRec* task,
                           const ExecutionPlace& place) {
  ExecutionPlace p = place;
  if (faults_armed_) [[unlikely]] {
    // A place that touches a retired worker would strand its AQ slots:
    // degrade to solo on the (live) distributing worker. Conservative but
    // simple, and the policy re-molds the next wake against the shrunken
    // pool anyway.
    for (int i = 0; i < p.width; ++i) {
      if (worker_dead(p.leader + i)) {
        p = ExecutionPlace{core, 1};
        break;
      }
    }
  }
  DAS_ASSERT(topo_->is_valid_place(p));
  DAS_ASSERT(p.width <= max_place_width_);
  task->place = p;
  task->has_fixed_place = true;
  if (p.width == 1 && p.leader == core) {
    // Solo self-assembly — the dominant fine-grained case: the distributing
    // worker is the whole place, so skip the AQ round-trip (an MPSC
    // push/pop pair plus a progress-loop lap per task) and execute in
    // place. Queue order is unchanged: the AQ path would have made this
    // task the worker's next action anyway.
    participate_t<Hooks>(core, task);
    return;
  }
  // Publish into every participant's AQ: W lock-free pushes, then at most
  // one wake per participant. The writes of `place` above happen-before
  // each pop (the MPSC push/pop release/acquire edge provides it). Slot 0
  // reuses ready_hook (the task was popped from its wake-up channel to get
  // here, so the hook is unlinked); slots 1..W-1 come from the job's
  // lazily-allocated wide-hook arena.
  const auto* workers = workers_.data();
  MpscQueue::Node* wide =
      p.width > 1 ? wide_hooks(task->job, task->id) : nullptr;
  for (int i = 0; i < p.width; ++i) {
    MpscQueue::Node* hook =
        i == 0 ? &task->ready_hook : &wide[static_cast<std::size_t>(i - 1)];
    workers[static_cast<std::size_t>(p.leader + i)]->aq.push(hook, task);
  }
  for (int i = 0; i < p.width; ++i) {
    const int c = p.leader + i;
    if (c != core) workers[static_cast<std::size_t>(c)]->ec.notify();
  }
}
// daslint: end-hot-path

MpscQueue::Node* Runtime::wide_hooks(Job* job, NodeId id) {
  // Level 1: the chunk directory (one atomic pointer per kWideChunkTasks
  // tasks). First wide assembly of the job allocates it; concurrent
  // distributors race on the CAS, losers free their block and adopt the
  // winner's. Only the winner writes wide_dir_owner, so the unique_ptr has
  // a single writer and frees the directory with the job.
  auto* dir = job->wide_dir.load(std::memory_order_acquire);
  if (dir == nullptr) {
    auto fresh = std::make_unique<std::atomic<MpscQueue::Node*>[]>(
        job->num_wide_chunks);
    std::atomic<MpscQueue::Node*>* expected = nullptr;
    if (job->wide_dir.compare_exchange_strong(expected, fresh.get(),
                                              std::memory_order_acq_rel)) {
      dir = fresh.get();
      job->wide_dir_owner = std::move(fresh);
    } else {
      dir = expected;  // another distributor won; `fresh` frees on return
    }
  }
  // Level 2: the chunk covering task `id` — kWideChunkTasks x (max_width-1)
  // hooks, so a job with a handful of wide tasks allocates kilobytes, not
  // num_nodes x (max_width-1) nodes. The winning directory entry OWNS its
  // chunk (released from the unique_ptr; ~Job deletes through the
  // directory).
  const std::size_t stride = static_cast<std::size_t>(max_place_width_ - 1);
  const std::size_t chunk = static_cast<std::size_t>(id) / kWideChunkTasks;
  DAS_ASSERT(chunk < job->num_wide_chunks);
  MpscQueue::Node* base = dir[chunk].load(std::memory_order_acquire);
  if (base == nullptr) {
    auto fresh = std::make_unique<MpscQueue::Node[]>(kWideChunkTasks * stride);
    MpscQueue::Node* expected = nullptr;
    if (dir[chunk].compare_exchange_strong(expected, fresh.get(),
                                           std::memory_order_acq_rel)) {
      base = fresh.release();
    } else {
      base = expected;  // another distributor won; `fresh` frees on return
    }
  }
  return base + (static_cast<std::size_t>(id) % kWideChunkTasks) * stride;
}

std::int64_t Runtime::run_work(int core, TaskRec* task, int rank) {
  const DagNode& node = *task->node;
  const std::int64_t t0 = now_ns();
  if (node.work) {
    node.work(ExecContext{rank, task->place.width, task->place.leader, core});
  } else {
    // DES-style node: emulate the cost model's native-speed duration, which
    // the throttle below then stretches by the core's scenario speed.
    CostQuery q;
    q.place = task->place;
    q.rank = rank;
    q.core = core;
    q.cluster = &topo_->cluster_of_core(core);
    q.speed = topo_->max_base_speed();
    q.bw_share = 1.0;
    // Expression-aware: catalog types evaluate their closed form inline,
    // user std::function models still work (core/cost_expr.hpp).
    busy_wait_ns(s_to_ns(cost_eval(registry_->info(node.type), node.params, q)));
  }
  std::int64_t busy = now_ns() - t0;
  if (emulator_ != nullptr) {
    const double rel = emulator_->relative_speed(core, t0);
    const std::int64_t deficit = SpeedEmulator::deficit_ns(busy, rel);
    busy_wait_ns(deficit);
    busy += deficit;
  }
  stats_->record_busy(core, busy);
  return busy;
}

template <class Hooks>
void Runtime::finish_last_t(int core, TaskRec* task) {
  Job* job = task->job;
  // CSR fan-out: the sealed adjacency arena makes this a flat-span walk.
  for (const DagEdge& e : job->dag->successors(task->id)) {
    TaskRec* succ = &job->records[static_cast<std::size_t>(e.to)];
    if (succ->preds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wake_task_t<Hooks>(succ, core, /*caller_is_worker=*/true);
    }
  }
  if (job->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    complete_job(job);
  }
}

template <class Hooks>
void Runtime::participate_t(int core, TaskRec* task) {
  const DagNode& node = *task->node;
  const int width = task->place.width;

  if (width == 1) {
    // Width-1 fast path: this participant IS the assembly. No arrival or
    // departure counters, no start-stamp CAS, no max-busy folding — the
    // participant's busy time is both the PTT sample and the span, and two
    // clock reads per task (inside run_work) replace the wide path's four.
    const std::int64_t busy = run_work(core, task, /*rank=*/0);
    const double busy_s = ns_to_s(busy);
    Hooks::record_sample(*policy_, node.type, task->place, busy_s);
    stats_->record_task_at(node.priority, topo_->place_id(task->place), busy_s,
                           node.phase);
    finish_last_t<Hooks>(core, task);
    return;
  }

  const int rank = task->arrivals.fetch_add(1, std::memory_order_acq_rel);
  DAS_ASSERT(rank >= 0 && rank < width);
  // First arrival stamps the assembly start (CAS so any arrival order works).
  std::int64_t expected = 0;
  const std::int64_t arrive_ns = now_ns();
  task->start_ns.compare_exchange_strong(expected, arrive_ns,
                                         std::memory_order_acq_rel);

  const std::int64_t busy = run_work(core, task, rank);
  // Fold this participant's busy time into the assembly maximum (CAS loop:
  // no fetch_max before C++26).
  std::int64_t seen = task->max_busy_ns.load(std::memory_order_relaxed);
  while (busy > seen &&
         !task->max_busy_ns.compare_exchange_weak(seen, busy,
                                                  std::memory_order_acq_rel)) {
  }

  const int departed = task->departures.fetch_add(1, std::memory_order_acq_rel) + 1;
  DAS_ASSERT(departed <= width);
  if (departed < width) return;

  // Last finisher: train the PTT and wake the dependents (paper Fig. 3
  // step 8). The PTT learns the slowest participant's busy time — the
  // task's intrinsic duration at this place, what the paper's leader core
  // observes — not the assembly span, which arrival skew would poison.
  const double span =
      ns_to_s(now_ns() - task->start_ns.load(std::memory_order_acquire));
  Hooks::record_sample(
      *policy_, node.type, task->place,
      ns_to_s(task->max_busy_ns.load(std::memory_order_acquire)));
  stats_->record_task_at(node.priority, topo_->place_id(task->place), span,
                         node.phase);
  finish_last_t<Hooks>(core, task);
}

// daslint: begin-hot-path(rt-wakeup)
// Per-task wake-up/handoff: runs once per DAG edge that becomes ready.
template <class Hooks>
void Runtime::wake_task_t(TaskRec* task, int waking_core,
                          bool caller_is_worker) {
  const DagNode& node = *task->node;
  WakeDecision wd =
      Hooks::on_ready(*policy_, node.type, node.priority, waking_core);
  if (faults_armed_) [[unlikely]] {
    // Never route to a retired worker: its queues belong to the watchdog
    // (which would re-home the task, but only a tick later). A fixed place
    // that touches a dead worker degrades at distribute time.
    if (worker_dead(wd.queue_core))
      wd.queue_core = live_worker_after(wd.queue_core);
  }

  if (wd.has_fixed_place) {
    task->place = wd.fixed_place;
    task->has_fixed_place = true;
  } else if (!options_.policy_options.remold_on_dequeue &&
             policy_->traits().uses_ptt) {
    // Ablation: width decided at wake-up, honoured by owner and thieves.
    task->place =
        Hooks::on_execute(*policy_, node.type, node.priority, wd.queue_core);
    task->has_fixed_place = true;
  }

  Worker& target = *workers_[static_cast<std::size_t>(wd.queue_core)];
  if (!wd.stealable) {
    // Steal-exempt: only worker queue_core may run it — wake that worker
    // specifically (notify is a fence + one load when it is not parked).
    target.inbox.push(&task->ready_hook, task);
    if (!(caller_is_worker && wd.queue_core == waking_core)) target.ec.notify();
  } else {
    const bool owner_path = caller_is_worker && wd.queue_core == waking_core;
    push_stealable(wd.queue_core, task, owner_path);
  }
}

void Runtime::push_stealable(int target_core, TaskRec* task, bool from_owner) {
  Worker& target = *workers_[static_cast<std::size_t>(target_core)];
  if (from_owner) {
    // The calling thread IS this worker: Chase-Lev owner push. Lazy wake:
    // when the owner's next progress round pops this very task, a fresh
    // task on an otherwise-empty deque offers thieves nothing — only work
    // the owner will NOT get to immediately is worth a wake (this is what
    // keeps a serial dependency chain from paying a futex round-trip per
    // task). That means surplus beyond the fresh task, OR anything queued
    // in the AQ/inbox, which try_make_progress drains BEFORE the WSQ — a
    // committed assembly there would otherwise pin this task steal-visible
    // but unannounced for its whole duration. A worker never parks while
    // any WSQ shows surplus (has_work sweeps them all), so unnotified
    // tasks cannot strand.
    target.wsq.push_bottom(task);
    if (target.wsq.size_estimate() > 1 || !target.aq.empty() ||
        !target.inbox.empty()) {
      notify_stealers(target_core);
    }
    return;
  }
  // Any other thread (the submitter, or remote wake-ups under ablation
  // options) hands the task over through the MPSC feeder; the owner drains
  // it into its WSQ.
  target.feeder.push(&task->ready_hook, task);
  target.ec.notify();
}
// daslint: end-hot-path

void Runtime::wake_task(TaskRec* task, int waking_core, bool caller_is_worker) {
  // Cold path (submit_roots): generic hooks are fine — the dynamic entry
  // points are one switch over the static instantiations, so the decision
  // is identical to what the fused loop would have made.
  wake_task_t<DynamicPolicyHooks>(task, waking_core, caller_is_worker);
}

template <class Hooks>
void Runtime::bind_progress_for(const char* name) {
  progress_fn_ = [](Runtime& r, int core) {
    return r.try_make_progress_t<Hooks>(core);
  };
  dispatch_variant_ = name;
}

void Runtime::bind_progress() {
  // One switch, mirroring sim::SimEngine::refresh_dispatch. The rt labels
  // carry no cost-class axis: run_work always evaluates through cost_eval,
  // which takes the closed form whenever one exists, so there is nothing to
  // specialize on the cost side here.
  switch (policy_->policy()) {
    case Policy::kRws: return bind_progress_for<StaticPolicyHooks<RwsTag>>("fused:RWS");
    case Policy::kRwsmC: return bind_progress_for<StaticPolicyHooks<RwsmCTag>>("fused:RWSM-C");
    case Policy::kFa: return bind_progress_for<StaticPolicyHooks<FaTag>>("fused:FA");
    case Policy::kFamC: return bind_progress_for<StaticPolicyHooks<FamCTag>>("fused:FAM-C");
    case Policy::kDa: return bind_progress_for<StaticPolicyHooks<DaTag>>("fused:DA");
    case Policy::kDamC: return bind_progress_for<StaticPolicyHooks<DamCTag>>("fused:DAM-C");
    case Policy::kDamP: return bind_progress_for<StaticPolicyHooks<DamPTag>>("fused:DAM-P");
    case Policy::kDheft: return bind_progress_for<StaticPolicyHooks<DheftTag>>("fused:dHEFT");
  }
  bind_progress_for<DynamicPolicyHooks>("generic");
}

void Runtime::complete_job(Job* job) {
  const std::int64_t done_ns = now_ns();
  const JobId id = job->id;
  {
    MutexLock g(mu_);
    job->done_ns = done_ns;
    job->done = true;  // fires the per-job latch wait(id) blocks on
    // Close the stats busy-window when the pool goes active -> idle:
    // elapsed accumulates the union of job windows, so overlapping jobs are
    // counted once and sequential runs sum exactly as before.
    if (active_jobs_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      stats_->set_elapsed(stats_->elapsed_s() +
                          ns_to_s(done_ns - busy_window_start_ns_));
  }
  cv_.notify_all();
  // Service notification strictly after mu_ is released: the hook may
  // re-enter submit() (which takes mu_) to release queued jobs. `job` may be
  // freed by a concurrent wait() the moment cv_ fired, hence the id copy.
  if (job_done_hook_) job_done_hook_(id);
}

}  // namespace das::rt
