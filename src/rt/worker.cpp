#include "platform/affinity.hpp"
#include "rt/runtime.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace das::rt {

namespace {

/// Pops the front of a spinlock-guarded deque; nullptr when empty.
template <typename Lock, typename Deque>
typename Deque::value_type pop_front_locked(Lock& lock, Deque& dq) {
  std::lock_guard<Lock> g(lock);
  if (dq.empty()) return nullptr;
  auto* item = dq.front();
  dq.pop_front();
  return item;
}

}  // namespace

void Runtime::worker_loop(int core) {
  if (options_.pin_threads) {
    if (!pin_current_thread(core)) pinned_ = false;
  }
  Worker& self = *workers_[static_cast<std::size_t>(core)];

  for (;;) {
    // Park until at least one job is in flight (or shutdown).
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait(g, [&] {
        return shutdown_ || active_jobs_.load(std::memory_order_acquire) > 0;
      });
      if (shutdown_) return;
    }

    int idle_spins = 0;
    while (active_jobs_.load(std::memory_order_acquire) > 0) {
      if (try_make_progress(core)) {
        idle_spins = 0;
        continue;
      }
      // Backoff: spin briefly, then yield so oversubscribed configurations
      // (more workers than allowed CPUs) stay live.
      if (++idle_spins < 64) {
        cpu_relax();
      } else {
        std::this_thread::yield();
        idle_spins = 0;
      }
    }
    (void)self;
  }
}

bool Runtime::try_make_progress(int core) {
  Worker& w = *workers_[static_cast<std::size_t>(core)];

  // 1. Assembly queue: committed participations come first.
  if (TaskRec* t = pop_front_locked(w.lock, w.aq)) {
    participate(core, t);
    return true;
  }
  // 2. Steal-exempt inbox (fixed-place high-priority tasks).
  if (TaskRec* t = pop_front_locked(w.lock, w.inbox)) {
    DAS_ASSERT(t->has_fixed_place);
    distribute(core, t, t->place);
    return true;
  }
  // 3. Feeder: stealable tasks handed to us by other threads; drain into our
  //    WSQ (owner-only push keeps the Chase-Lev invariant).
  for (;;) {
    TaskRec* t = pop_front_locked(w.lock, w.feeder);
    if (t == nullptr) break;
    w.wsq.push_bottom(t);
  }
  // 4. Own WSQ, newest first.
  if (TaskRec* t = w.wsq.pop_bottom()) {
    const ExecutionPlace place =
        t->has_fixed_place
            ? t->place
            : policy_->on_execute(t->node->type, t->node->priority, core);
    distribute(core, t, place);
    return true;
  }
  // 5. Steal from a random victim; the thief re-runs the local search
  //    (paper Fig. 3 steps 4-5).
  if (TaskRec* t = try_steal(core)) {
    const ExecutionPlace place =
        t->has_fixed_place
            ? t->place
            : policy_->on_execute(t->node->type, t->node->priority, core);
    distribute(core, t, place);
    return true;
  }
  return false;
}

Runtime::TaskRec* Runtime::try_steal(int core) {
  Worker& self = *workers_[static_cast<std::size_t>(core)];
  const int n = topo_->num_cores();
  if (n <= 1) return nullptr;
  for (int attempt = 0; attempt < options_.steal_attempts_per_round; ++attempt) {
    const int victim = static_cast<int>(self.rng.below(static_cast<std::uint64_t>(n)));
    if (victim == core) continue;
    if (TaskRec* t = workers_[static_cast<std::size_t>(victim)]->wsq.steal_top())
      return t;
  }
  return nullptr;
}

void Runtime::distribute(int core, TaskRec* task, const ExecutionPlace& place) {
  (void)core;
  DAS_ASSERT(topo_->is_valid_place(place));
  task->place = place;
  task->has_fixed_place = true;
  // Publish into every participant's AQ. The write of `place` above
  // happens-before the AQ push (the queue lock provides the edge).
  for (int i = 0; i < place.width; ++i) {
    Worker& w = *workers_[static_cast<std::size_t>(place.leader + i)];
    std::lock_guard<Spinlock> g(w.lock);
    w.aq.push_back(task);
  }
}

void Runtime::participate(int core, TaskRec* task) {
  const DagNode& node = *task->node;
  const int width = task->place.width;

  const int rank = task->arrivals.fetch_add(1, std::memory_order_acq_rel);
  DAS_ASSERT(rank >= 0 && rank < width);
  // First arrival stamps the assembly start (CAS so any arrival order works).
  std::int64_t expected = 0;
  const std::int64_t arrive_ns = now_ns();
  task->start_ns.compare_exchange_strong(expected, arrive_ns,
                                         std::memory_order_acq_rel);

  const std::int64_t t0 = now_ns();
  if (node.work) {
    node.work(ExecContext{rank, width, task->place.leader, core});
  } else {
    // DES-style node: emulate the cost model's native-speed duration, which
    // the throttle below then stretches by the core's scenario speed.
    CostQuery q;
    q.place = task->place;
    q.rank = rank;
    q.core = core;
    q.cluster = &topo_->cluster_of_core(core);
    q.speed = topo_->max_base_speed();
    q.bw_share = 1.0;
    busy_wait_ns(s_to_ns(registry_->info(node.type).cost(node.params, q)));
  }
  std::int64_t busy = now_ns() - t0;
  if (emulator_ != nullptr) {
    const double rel = emulator_->relative_speed(core, t0);
    const std::int64_t deficit = SpeedEmulator::deficit_ns(busy, rel);
    busy_wait_ns(deficit);
    busy += deficit;
  }
  stats_->record_busy(core, busy);
  // Fold this participant's busy time into the assembly maximum (CAS loop:
  // no fetch_max before C++26).
  std::int64_t seen = task->max_busy_ns.load(std::memory_order_relaxed);
  while (busy > seen &&
         !task->max_busy_ns.compare_exchange_weak(seen, busy,
                                                  std::memory_order_acq_rel)) {
  }

  const int departed = task->departures.fetch_add(1, std::memory_order_acq_rel) + 1;
  DAS_ASSERT(departed <= width);
  if (departed < width) return;

  // Last finisher: train the PTT and wake the dependents (paper Fig. 3
  // step 8). The PTT learns the slowest participant's busy time — the
  // task's intrinsic duration at this place, what the paper's leader core
  // observes — not the assembly span, which arrival skew would poison.
  const double span =
      ns_to_s(now_ns() - task->start_ns.load(std::memory_order_acquire));
  policy_->record_sample(node.type, task->place,
                         ns_to_s(task->max_busy_ns.load(std::memory_order_acquire)));
  stats_->record_task_at(node.priority, topo_->place_id(task->place), span,
                         node.phase);
  Job* job = task->job;
  for (const DagEdge& e : node.successors) {
    TaskRec* succ = &job->records[static_cast<std::size_t>(e.to)];
    if (succ->preds.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      wake_task(succ, core, /*caller_is_worker=*/true);
    }
  }
  if (job->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    complete_job(job);
  }
}

void Runtime::wake_task(TaskRec* task, int waking_core, bool caller_is_worker) {
  const DagNode& node = *task->node;
  const WakeDecision wd = policy_->on_ready(node.type, node.priority, waking_core);

  if (wd.has_fixed_place) {
    task->place = wd.fixed_place;
    task->has_fixed_place = true;
  } else if (!options_.policy_options.remold_on_dequeue &&
             policy_->traits().uses_ptt) {
    // Ablation: width decided at wake-up, honoured by owner and thieves.
    task->place = policy_->on_execute(node.type, node.priority, wd.queue_core);
    task->has_fixed_place = true;
  }

  Worker& target = *workers_[static_cast<std::size_t>(wd.queue_core)];
  if (!wd.stealable) {
    std::lock_guard<Spinlock> g(target.lock);
    target.inbox.push_back(task);
  } else {
    const bool owner_path = caller_is_worker && wd.queue_core == waking_core;
    push_stealable(wd.queue_core, task, owner_path);
  }
}

void Runtime::push_stealable(int target_core, TaskRec* task, bool from_owner) {
  Worker& target = *workers_[static_cast<std::size_t>(target_core)];
  if (from_owner) {
    // The calling thread IS this worker: Chase-Lev owner push.
    target.wsq.push_bottom(task);
    return;
  }
  // Any other thread (the submitter, or remote wake-ups under ablation
  // options) hands the task over through the MPSC feeder; the owner drains
  // it into its WSQ.
  std::lock_guard<Spinlock> g(target.lock);
  target.feeder.push_back(task);
}

void Runtime::complete_job(Job* job) {
  const std::int64_t done_ns = now_ns();
  {
    std::lock_guard<std::mutex> g(mu_);
    job->done_ns = done_ns;
    job->done = true;  // fires the per-job latch wait(id) blocks on
    // Close the stats busy-window when the pool goes active -> idle:
    // elapsed accumulates the union of job windows, so overlapping jobs are
    // counted once and sequential runs sum exactly as before.
    if (active_jobs_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      stats_->set_elapsed(stats_->elapsed_s() +
                          ns_to_s(done_ns - busy_window_start_ns_));
  }
  cv_.notify_all();
}

}  // namespace das::rt
