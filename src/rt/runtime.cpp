#include "rt/runtime.hpp"

#include "platform/affinity.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace das::rt {

Runtime::Runtime(const Topology& topo, Policy policy,
                 const TaskTypeRegistry& registry, RtOptions options)
    : topo_(&topo), registry_(&registry), options_(options) {
  ptt_ = std::make_unique<PttStore>(topo, registry.size(), options_.ptt_ratio);
  policy_ = std::make_unique<PolicyEngine>(policy, topo, ptt_.get(),
                                           options_.seed, options_.policy_options);
  stats_ = std::make_unique<ExecutionStats>(topo, options_.stats_phases);
  epoch_ns_ = now_ns();
  if (options_.scenario != nullptr) {
    DAS_CHECK_MSG(&options_.scenario->topology() == &topo,
                  "scenario topology must match runtime topology");
    emulator_ = std::make_unique<SpeedEmulator>(*options_.scenario, epoch_ns_);
  }

  const int n = topo.num_cores();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    auto w = std::make_unique<Worker>();
    w->rng.reseed(options_.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(c) + 1);
    workers_.push_back(std::move(w));
  }
  for (int c = 0; c < n; ++c) {
    workers_[static_cast<std::size_t>(c)]->thread =
        std::thread([this, c] { worker_loop(c); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

double Runtime::scenario_now() const { return ns_to_s(now_ns() - epoch_ns_); }

void Runtime::submit_roots(const Dag& dag) {
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    if (n.num_predecessors != 0) continue;
    const int waking = n.affinity_core >= 0 ? n.affinity_core : 0;
    DAS_CHECK(waking < topo_->num_cores());
    wake_task(&records_[static_cast<std::size_t>(i)], waking,
              /*caller_is_worker=*/false);
  }
}

double Runtime::run(const Dag& dag) {
  DAS_CHECK(dag.num_nodes() > 0);
  DAS_CHECK_MSG(!run_active_.load(std::memory_order_acquire),
                "run() is not reentrant");
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    DAS_CHECK_MSG(n.rank == 0, "the threaded runtime executes single-rank DAGs"
                               " (distributed DAGs run via das::net)");
    DAS_CHECK_MSG(n.work != nullptr || registry_->info(n.type).cost != nullptr,
                  "node without work closure needs a cost model to emulate");
  }

  num_records_ = static_cast<std::size_t>(dag.num_nodes());
  records_ = std::make_unique<TaskRec[]>(num_records_);
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    TaskRec& r = records_[static_cast<std::size_t>(i)];
    r.node = &dag.node(i);
    r.id = i;
    r.preds.store(r.node->num_predecessors, std::memory_order_relaxed);
  }

  outstanding_.store(dag.num_nodes(), std::memory_order_release);
  const std::int64_t t0 = now_ns();
  {
    std::lock_guard<std::mutex> g(mu_);
    run_active_.store(true, std::memory_order_release);
    ++epoch_;
  }
  // Roots are submitted while workers may already be spinning up: queues are
  // thread-safe and a worker finding nothing simply retries.
  submit_roots(dag);
  cv_.notify_all();

  {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [this] { return !run_active_.load(std::memory_order_acquire); });
  }
  const double elapsed = ns_to_s(now_ns() - t0);
  stats_->set_elapsed(stats_->elapsed_s() + elapsed);
  return elapsed;
}

}  // namespace das::rt
