#include "rt/runtime.hpp"

#include "platform/affinity.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace das::rt {

Runtime::Runtime(const Topology& topo, Policy policy,
                 const TaskTypeRegistry& registry, RtOptions options)
    : topo_(&topo), registry_(&registry), options_(options) {
  ptt_ = std::make_unique<PttStore>(topo, registry.size(), options_.ptt_ratio);
  policy_ = std::make_unique<PolicyEngine>(policy, topo, ptt_.get(),
                                           options_.seed, options_.policy_options);
  stats_ = std::make_unique<ExecutionStats>(topo, options_.stats_phases);
  epoch_ns_ = now_ns();
  if (options_.scenario != nullptr) {
    DAS_CHECK_MSG(&options_.scenario->topology() == &topo,
                  "scenario topology must match runtime topology");
    emulator_ = std::make_unique<SpeedEmulator>(*options_.scenario, epoch_ns_);
  }
  for (const ExecutionPlace& p : topo.places())
    max_place_width_ = std::max(max_place_width_, p.width);
  bind_progress();  // before the workers spawn: they read progress_fn_ raw

  const int n = topo.num_cores();
  faults_armed_ = !options_.faults.empty() || options_.enable_watchdog;
  if (faults_armed_) {
    for (const CoreFault& f : options_.faults.events) {
      DAS_CHECK_MSG(f.core >= 0 && f.core < n,
                    "fault plan core out of range for this topology");
      DAS_CHECK(f.t_s >= 0.0);
    }
    dead_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c)
      dead_[static_cast<std::size_t>(c)].store(false,
                                               std::memory_order_relaxed);
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    auto w = std::make_unique<Worker>();
    w->rng.reseed(options_.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(c) + 1);
    workers_.push_back(std::move(w));
  }
  for (int c = 0; c < n; ++c) {
    workers_[static_cast<std::size_t>(c)]->thread =
        std::thread([this, c] { worker_loop(c); });
  }
  if (faults_armed_) watchdog_ = std::thread([this] { watchdog_loop(); });
}

Runtime::~Runtime() {
  shutdown_.store(true, std::memory_order_seq_cst);
  // Workers observe shutdown_ inside the parking protocol: either their
  // pre-park re-check sees the flag, or their prepare_wait predates these
  // notifies and the eventcount wakes them (util/eventcount.hpp).
  for (auto& w : workers_) w->ec.notify();
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

double Runtime::scenario_now() const { return ns_to_s(now_ns() - epoch_ns_); }

int Runtime::jobs_in_flight() const {
  MutexLock g(mu_);
  return static_cast<int>(jobs_.size());
}

bool Runtime::job_done(JobId id) const {
  MutexLock g(mu_);
  const auto it = jobs_.find(id);
  DAS_CHECK_MSG(it != jobs_.end(),
                "job " + std::to_string(id) + " is not in flight");
  return it->second->done;
}

int Runtime::parked_workers() const {
  return parked_count_.load(std::memory_order_seq_cst);
}

void Runtime::submit_roots(Job& job) {
  const Dag& dag = *job.dag;
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    if (n.num_predecessors != 0) continue;
    const int waking = n.affinity_core >= 0 ? n.affinity_core : 0;
    DAS_CHECK(waking < topo_->num_cores());
    wake_task(&job.records[static_cast<std::size_t>(i)], waking,
              /*caller_is_worker=*/false);
  }
}

JobId Runtime::submit(const Dag& dag) {
  DAS_CHECK(dag.num_nodes() > 0);
  // Compact any staged edges into the CSR arena before workers fan out
  // through it. A no-op for the (usual) already-sealed DAG; submitting one
  // UNSEALED Dag from several threads concurrently is the caller's race.
  dag.seal();
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    DAS_CHECK_MSG(n.rank == 0, "the threaded runtime executes single-rank DAGs"
                               " (distributed DAGs run via das::net)");
    DAS_CHECK_MSG(n.work != nullptr || registry_->info(n.type).cost != nullptr ||
                      registry_->info(n.type).expr.kind != CostExpr::Kind::kCallable,
                  "node without work closure needs a cost model to emulate");
  }

  auto job = std::make_unique<Job>();
  job->dag = &dag;
  // The record block is the job's only up-front allocation (the wide-hook
  // arena is lazy, see wide_hooks) — steady-state dispatch allocates
  // nothing.
  job->records = std::make_unique<TaskRec[]>(static_cast<std::size_t>(dag.num_nodes()));
  job->num_wide_chunks =
      (static_cast<std::size_t>(dag.num_nodes()) + kWideChunkTasks - 1) /
      kWideChunkTasks;
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    TaskRec& r = job->records[static_cast<std::size_t>(i)];
    r.node = &dag.node(i);
    r.id = i;
    r.job = job.get();
    r.preds.store(r.node->num_predecessors, std::memory_order_relaxed);
  }
  job->outstanding.store(dag.num_nodes(), std::memory_order_release);
  job->submit_ns = now_ns();

  Job* raw = job.get();
  {
    MutexLock g(mu_);
    raw->id = next_job_++;
    jobs_.emplace(raw->id, std::move(job));
    // Open the stats busy-window when the pool goes idle -> active.
    if (active_jobs_.fetch_add(1, std::memory_order_acq_rel) == 0)
      busy_window_start_ns_ = raw->submit_ns;
  }
  // Roots are released while workers may already be busy with other jobs:
  // the channels are thread-safe and every push wakes its target (or a
  // parked stealer), so no broadcast is needed here.
  submit_roots(*raw);
  return raw->id;
}

void Runtime::set_job_done_hook(std::function<void(JobId)> hook) {
  MutexLock g(mu_);
  DAS_CHECK_MSG(jobs_.empty(),
                "set_job_done_hook: install before the first submit()");
  job_done_hook_ = std::move(hook);
}

double Runtime::wait(JobId id) {
  MutexLock g(mu_);
  const auto it = jobs_.find(id);
  DAS_CHECK_MSG(it != jobs_.end(),
                "job " + std::to_string(id) + " is not in flight");
  // The Job* stays valid across the unlock (unordered_map never moves its
  // mapped values); the ITERATOR does not — a concurrent submit() can
  // rehash jobs_ while cv_.wait has mu_ released — so re-erase by key.
  Job* job = it->second.get();
  while (!job->done) cv_.wait(g);
  const double elapsed = ns_to_s(job->done_ns - job->submit_ns);
  // The latch fired: no worker touches this job any more. Erasing here
  // frees the record block and AQ arena, keeping jobs_ bounded by the jobs
  // actually in flight (a 10k-job stream must not accumulate 10k record
  // blocks — see JobServiceTest.TenThousandJobStreamStaysBounded).
  jobs_.erase(id);
  return elapsed;
}

}  // namespace das::rt
