// Fail-stop fault tolerance for the threaded runtime (paper-repro
// robustness layer; the sim engine's counterpart lives in sim/engine.cpp).
//
// One watchdog thread per runtime, spawned only when RtOptions carries a
// fault plan or enable_watchdog. Each tick (watchdog_period_s) it
//
//   1. arms due plan events: kFreeze publishes an absolute thaw time the
//      worker honours at its next loop top; kFail asks the worker to
//      quarantine itself — cooperatively, at a loop top, never mid-task, so
//      rt fail-stop loses only QUEUED work, never in-flight participations;
//   2. scans for wedged workers: a worker whose heartbeat has not moved for
//      kWedgeGraceTicks while it is neither parked, nor frozen, nor inside
//      a progress round (in_round) is presumed dead and force-retired.
//      in_round is what makes the takeover sound: every queue pop happens
//      under in_round == true, so a worker eligible for force-retirement
//      provably holds no pop, and the watchdog can become the sole consumer
//      of its MPSC channels without a second-consumer race. A false
//      positive (an OS-descheduled worker) is merely conservative — the
//      worker retires at its next loop top and its work ran elsewhere;
//   3. drains retired workers' channels — every tick, not once, because a
//      producer that read dead_[c] == false just before the flip may still
//      land a task there. Undistributed tasks (inbox/feeder/WSQ) re-home
//      via a fresh wake-up; committed participations (AQ) become "wounded"
//      records;
//   4. polls wounded tasks: once departures + lost == width, no live
//      participant of the doomed attempt remains, so the watchdog — the
//      single requeuer by construction — resets the record and re-wakes it.
//
// Completion stays exactly-once: the doomed attempt can never fire
// finish_last_t (departures is short of width by exactly `lost`), and only
// the watchdog requeues, so the task's job-outstanding decrement happens
// once, on the attempt that runs to full width.

#include <algorithm>
#include <chrono>
#include <thread>

#include "rt/runtime.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace das::rt {

namespace {

/// Watchdog ticks a silent (no heartbeat), unparked, out-of-round worker is
/// given before it is presumed wedged. Generous on purpose: the only cost
/// of waiting longer is detection latency, while a premature takeover of a
/// merely descheduled worker retires it for the rest of the run.
constexpr int kWedgeGraceTicks = 20;

}  // namespace

void Runtime::inject_worker_wedge(int core) {
  DAS_CHECK(core >= 0 && core < topo_->num_cores());
  DAS_CHECK_MSG(faults_armed_,
                "inject_worker_wedge needs the watchdog (RtOptions::"
                "enable_watchdog or a non-empty fault plan)");
  Worker& w = *workers_[static_cast<std::size_t>(core)];
  w.fault_state.store(kWedgeRequested, std::memory_order_release);
  w.ec.notify();
}

int Runtime::live_worker_after(int from) const {
  const int n = topo_->num_cores();
  for (int off = 0; off < n; ++off) {
    const int c = (from + off) % n;
    if (!worker_dead(c)) return c;
  }
  DAS_CHECK_MSG(false, "fault plan retired every worker; no survivor left");
  return 0;
}

void Runtime::quarantine_self(int core) {
  Worker& self = *workers_[static_cast<std::size_t>(core)];
  // The release store is the handoff: everything this worker did to its
  // queues happens-before the watchdog's acquire of kQuarantined, after
  // which the watchdog is their sole consumer. The thread then simply
  // exits; join in ~Runtime is unchanged.
  self.fault_state.store(kQuarantined, std::memory_order_release);
}

void Runtime::wedge_self() {
  // Injected wedge: stay alive but silent — no heartbeat, no consumption,
  // no ack — so the watchdog must prove the failure from the outside.
  while (!shutdown_.load(std::memory_order_seq_cst))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void Runtime::freeze_self(int core, std::int64_t thaw_ns) {
  // Transient freeze: the worker stalls (its queues intentionally stall
  // with it — a bounded hiccup, not a failure) but keeps heartbeating so
  // the wedge scan never confuses a freeze with a death.
  Worker& self = *workers_[static_cast<std::size_t>(core)];
  while (!shutdown_.load(std::memory_order_seq_cst) && now_ns() < thaw_ns) {
    self.heartbeat.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void Runtime::requeue_task(TaskRec* task) {
  // No live participant of the doomed attempt remains (departures + lost ==
  // width) and the watchdog is the only requeuer, so these plain resets
  // race with nobody. has_fixed_place is cleared so the policy re-molds
  // against the shrunken pool.
  task->arrivals.store(0, std::memory_order_relaxed);
  task->departures.store(0, std::memory_order_relaxed);
  task->start_ns.store(0, std::memory_order_relaxed);
  task->max_busy_ns.store(0, std::memory_order_relaxed);
  task->has_fixed_place = false;
  tasks_reexecuted_.fetch_add(1, std::memory_order_relaxed);
  wake_task(task, live_worker_after(0), /*caller_is_worker=*/false);
}

void Runtime::drain_worker(int core, std::vector<Wounded>& wounded) {
  Worker& w = *workers_[static_cast<std::size_t>(core)];
  const auto rehome = [&](TaskRec* t) {
    // Queued but never distributed: nothing of it ran, so a fresh wake-up
    // is exact re-homing (not a re-execution). A fixed place that touches a
    // retired worker is cleared so the policy decides anew.
    if (t->has_fixed_place) {
      for (int i = 0; i < t->place.width; ++i) {
        if (worker_dead(t->place.leader + i)) {
          t->has_fixed_place = false;
          break;
        }
      }
    }
    wake_task(t, live_worker_after(core), /*caller_is_worker=*/false);
  };
  while (auto* t = static_cast<TaskRec*>(w.inbox.pop())) rehome(t);
  while (auto* t = static_cast<TaskRec*>(w.feeder.pop())) rehome(t);
  while (TaskRec* t = w.wsq.steal_top()) rehome(t);
  while (auto* t = static_cast<TaskRec*>(w.aq.pop())) {
    // A committed participation: the assembly is doomed, count the slot
    // lost. One task can lose several slots (multiple dead participants),
    // so aggregate per task.
    const auto it = std::find_if(wounded.begin(), wounded.end(),
                                 [&](const Wounded& e) { return e.task == t; });
    if (it == wounded.end()) {
      wounded.push_back(Wounded{t, 1});
    } else {
      ++it->lost;
    }
  }
}

void Runtime::poll_wounded(std::vector<Wounded>& wounded) {
  for (std::size_t i = 0; i < wounded.size();) {
    TaskRec* t = wounded[i].task;
    const int width = t->place.width;
    const int departed = t->departures.load(std::memory_order_acquire);
    DAS_ASSERT(departed + wounded[i].lost <= width);
    if (departed + wounded[i].lost == width) {
      // The acquire above synchronizes with the last live departure, so
      // the resets in requeue_task happen-after every participant's writes.
      requeue_task(t);
      wounded[i] = wounded.back();
      wounded.pop_back();
    } else {
      ++i;
    }
  }
}

void Runtime::watchdog_loop() {
  const int n = topo_->num_cores();
  const auto& plan = options_.faults.events;  // resolve_faults sorts by t_s
  std::size_t next = 0;
  std::vector<Wounded> wounded;
  std::vector<std::uint64_t> last_hb(static_cast<std::size_t>(n), 0);
  std::vector<int> stale_ticks(static_cast<std::size_t>(n), 0);
  // Per-worker retirement progress: 0 healthy, 1 retirement issued (waiting
  // for the ack), 2 queues taken over (dead_ flipped; drained every tick).
  std::vector<int> retire(static_cast<std::size_t>(n), 0);

  while (!shutdown_.load(std::memory_order_seq_cst)) {
    const double now_s = ns_to_s(now_ns() - epoch_ns_);

    // 1. Arm due plan events.
    while (next < plan.size() && plan[next].t_s <= now_s) {
      const CoreFault& f = plan[next++];
      Worker& w = *workers_[static_cast<std::size_t>(f.core)];
      if (f.kind == CoreFault::Kind::kFreeze) {
        w.freeze_until_ns.store(epoch_ns_ + s_to_ns(f.until_s),
                                std::memory_order_release);
        w.ec.notify();  // a parked worker wakes, observes, stalls
      } else if (retire[static_cast<std::size_t>(f.core)] == 0) {
        w.fault_state.store(kQuarantineRequested, std::memory_order_release);
        w.ec.notify();
        retire[static_cast<std::size_t>(f.core)] = 1;
        workers_failed_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // 2. Wedge scan (see file comment for why in_round makes this sound).
    for (int c = 0; c < n; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (retire[ci] != 0) continue;
      Worker& w = *workers_[ci];
      const std::uint64_t hb = w.heartbeat.load(std::memory_order_relaxed);
      if (hb != last_hb[ci] || w.parked.load(std::memory_order_acquire) ||
          w.in_round.load(std::memory_order_acquire)) {
        last_hb[ci] = hb;
        stale_ticks[ci] = 0;
        continue;
      }
      if (++stale_ticks[ci] < kWedgeGraceTicks) continue;
      // Presumed wedged: it will never ack, take the queues directly.
      w.fault_state.store(kQuarantined, std::memory_order_seq_cst);
      dead_[ci].store(true, std::memory_order_seq_cst);
      retire[ci] = 2;
      workers_failed_.fetch_add(1, std::memory_order_relaxed);
    }

    // 3. Take over acked retirements; drain every retired worker. The
    //    drain repeats each tick because a producer that sampled dead_[c]
    //    just before the flip may still push one more task there.
    for (int c = 0; c < n; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (retire[ci] == 0) continue;
      if (retire[ci] == 1) {
        Worker& w = *workers_[ci];
        if (w.fault_state.load(std::memory_order_acquire) != kQuarantined)
          continue;  // still finishing its current task; try next tick
        dead_[ci].store(true, std::memory_order_seq_cst);
        retire[ci] = 2;
      }
      drain_worker(c, wounded);
    }

    // 4. Requeue wounded tasks whose live participants all departed.
    poll_wounded(wounded);

    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(options_.watchdog_period_s, 1e-5)));
  }
}

}  // namespace das::rt
