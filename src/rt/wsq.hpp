#pragma once
// Chase-Lev work-stealing deque.
//
// The owner pushes/pops at the bottom (LIFO — newest first, preserving the
// paper's release-order execution); thieves steal from the top (FIFO —
// oldest first). Lock-free; the memory ordering follows Lê, Pop, Cohen,
// Nardelli — "Correct and efficient work-stealing for weak memory models"
// (PPoPP'13).
//
// Grown arrays are retired to a list that is reclaimed only on destruction:
// a thief may still be reading a stale array, and the deques live for the
// whole runtime, so leaking a handful of small arrays until then is the
// standard, safe choice.
//
// Why the fence-based publish in push_bottom is correct (audit, PR 6).
// push_bottom writes the item into its slot, then
//
//     atomic_thread_fence(release);           (F)
//     bottom_.store(b + 1, relaxed);          (W)
//
// and a thief reads
//
//     b = bottom_.load(acquire);              (R)
//     ... a->get(t) ... top_.CAS ...          (D)
//
// [atomics.fences]p2 (C++20 32.9.2): a release fence F synchronizes with
// an acquire operation R when R observes the value of SOME atomic write W
// sequenced after F. Here W is the relaxed bottom_ store sequenced after
// the fence; when the thief's acquire load R reads that value (or any
// later bottom_ value — each later store is also fence-preceded), F
// synchronizes-with R, so the slot write sequenced before F happens-before
// the thief's dereference D. The item the thief is ALLOWED to take is
// bounded by top_ <= index < bottom_, and every index below the bottom_
// value R read was published before the fence that preceded that store —
// so a stolen pointer is always dereferenced after its construction, under
// the plain C++ memory model, with no release store on the owner's
// per-task hot path (on weak ISAs the fence amortizes: one barrier
// instruction vs. a store-release per push).
//
// ThreadSanitizer, however, does not model atomic_thread_fence, so this
// edge is invisible to it and every stolen-item dereference would be
// reported as racing with the item's construction. Instrumented builds
// therefore strengthen the bottom_ publish to a release STORE — a strictly
// stronger ordering (release store = release fence + relaxed store
// combined, minus the fence's cumulative effect on OTHER later stores,
// which nothing here relies on) — keeping the fence-based fast path for
// real builds. The deterministic model checker (src/chk) models fences
// faithfully and re-verifies the fence-based variant on every CI run:
// tests/model_check_test exhausts small-bound schedules of exactly this
// code (owner + thieves) and proves no item is lost, taken twice, or
// dereferenced unpublished — and that downgrading the seq_cst fences in
// pop_bottom/steal_top (the Dekker duel on the last item) is caught.
//
// Templated on a synchronization model (util/sync_model.hpp): production
// code uses WsDeque<T> (RealModel — identical codegen); the checker
// instantiates WsDeque<T, chk::Model>.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/sync_model.hpp"

#if defined(__SANITIZE_THREAD__)
#define DAS_WSQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DAS_WSQ_TSAN 1
#endif
#endif
#ifndef DAS_WSQ_TSAN
#define DAS_WSQ_TSAN 0
#endif

namespace das::rt {

/// Ordering for the owner's bottom_ publish in push_bottom: the release
/// fence above it carries the real edge (see the header audit), but TSan
/// cannot see fences, so instrumented builds promote the store itself.
inline constexpr std::memory_order kWsqPublishOrder =
    DAS_WSQ_TSAN ? std::memory_order_release : std::memory_order_relaxed;

template <typename T, class Model = RealModel>
class WsDeque {
 public:
  explicit WsDeque(std::int64_t initial_capacity = 256)
      : top_(0), bottom_(0) {
    DAS_CHECK(initial_capacity >= 2 &&
              (initial_capacity & (initial_capacity - 1)) == 0);
    auto a = std::make_unique<Array>(initial_capacity);
    array_.store(a.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(a));
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only.
  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) a = grow(a, t, b);
    a->put(b, item);
    Model::thread_fence(std::memory_order_release);
    bottom_.store(b + 1, kWsqPublishOrder);
  }

  /// Owner only. nullptr when empty.
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    Model::thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T* item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. nullptr when empty or when the CAS race was lost (callers
  /// treat both as a failed steal attempt).
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    Model::thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    T* item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  bool empty() const { return size_estimate() <= 0; }

  /// Racy but monotone-consistent size hint (steal heuristics only).
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b - t;
  }

 private:
  struct Array {
    explicit Array(std::int64_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<Slot[]>(static_cast<std::size_t>(cap))) {}
    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) {
      slots[static_cast<std::size_t>(i & mask)].store(v, std::memory_order_relaxed);
    }
    using Slot = typename Model::template atomic<T*>;
    std::int64_t capacity;
    std::int64_t mask;
    std::unique_ptr<Slot[]> slots;
  };

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Array>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Array* raw = bigger.get();
    array_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(bigger));  // owner-only container
    return raw;
  }

  typename Model::template atomic<std::int64_t> top_;
  typename Model::template atomic<std::int64_t> bottom_;
  typename Model::template atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;
};

}  // namespace das::rt
