#pragma once
// Chase-Lev work-stealing deque.
//
// The owner pushes/pops at the bottom (LIFO — newest first, preserving the
// paper's release-order execution); thieves steal from the top (FIFO —
// oldest first). Lock-free; the memory ordering follows Lê, Pop, Cohen,
// Nardelli — "Correct and efficient work-stealing for weak memory models"
// (PPoPP'13).
//
// Grown arrays are retired to a list that is reclaimed only on destruction:
// a thief may still be reading a stale array, and the deques live for the
// whole runtime, so leaking a handful of small arrays until then is the
// standard, safe choice.
//
// ThreadSanitizer does not model std::atomic_thread_fence, so the
// owner->thief publication edge (release fence + relaxed bottom_ store,
// paired with the thief's acquire bottom_ load) is invisible to it and
// every dereference of a stolen item would be reported as racing with the
// item's construction. Instrumented builds therefore strengthen the
// bottom_ publish to a release STORE — a strictly stronger ordering that
// TSan does model — keeping the fence-based fast path for real builds.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

#if defined(__SANITIZE_THREAD__)
#define DAS_WSQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DAS_WSQ_TSAN 1
#endif
#endif
#ifndef DAS_WSQ_TSAN
#define DAS_WSQ_TSAN 0
#endif

namespace das::rt {

/// Ordering for the owner's bottom_ publish in push_bottom: the release
/// fence above it carries the real edge, but TSan cannot see fences (see
/// the header comment), so instrumented builds promote the store itself.
inline constexpr std::memory_order kWsqPublishOrder =
    DAS_WSQ_TSAN ? std::memory_order_release : std::memory_order_relaxed;

template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::int64_t initial_capacity = 256)
      : top_(0), bottom_(0) {
    DAS_CHECK(initial_capacity >= 2 &&
              (initial_capacity & (initial_capacity - 1)) == 0);
    auto a = std::make_unique<Array>(initial_capacity);
    array_.store(a.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(a));
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only.
  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > a->capacity - 1) a = grow(a, t, b);
    a->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, kWsqPublishOrder);
  }

  /// Owner only. nullptr when empty.
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T* item = nullptr;
    if (t <= b) {
      item = a->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. nullptr when empty or when the CAS race was lost (callers
  /// treat both as a failed steal attempt).
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Array* a = array_.load(std::memory_order_acquire);
    T* item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  bool empty() const { return size_estimate() <= 0; }

  /// Racy but monotone-consistent size hint (steal heuristics only).
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b - t;
  }

 private:
  struct Array {
    explicit Array(std::int64_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T*>[]>(static_cast<std::size_t>(cap))) {}
    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) {
      slots[static_cast<std::size_t>(i & mask)].store(v, std::memory_order_relaxed);
    }
    std::int64_t capacity;
    std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Array>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Array* raw = bigger.get();
    array_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(bigger));  // owner-only container
    return raw;
  }

  std::atomic<std::int64_t> top_;
  std::atomic<std::int64_t> bottom_;
  std::atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;
};

}  // namespace das::rt
