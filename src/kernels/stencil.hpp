#pragma once
// Stencil kernel — the paper's cache-intensive workload class (§4.2.2):
// 5-point Jacobi update on an n x n grid; interior rows partitioned by rank.

namespace das::kernels {

/// out(i,j) = 0.25 * (in(i-1,j) + in(i+1,j) + in(i,j-1) + in(i,j+1)) for the
/// rank's share of interior rows [1, n-1); border rows/columns of `out` are
/// left untouched. `in` and `out` are n x n row-major.
void stencil_partition(const double* in, double* out, int n, int rank,
                       int width);

/// Single-threaded reference sweep for tests.
void stencil_reference(const double* in, double* out, int n);

}  // namespace das::kernels
