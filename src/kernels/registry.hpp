#pragma once
// Registers the paper's task types (with their DES cost models and noise
// coefficients) into a TaskTypeRegistry and hands back the ids.

#include "core/task_type.hpp"
#include "kernels/cost_models.hpp"

namespace das::kernels {

struct PaperKernelIds {
  TaskTypeId matmul = kInvalidTaskType;
  TaskTypeId copy = kInvalidTaskType;
  TaskTypeId stencil = kInvalidTaskType;
  TaskTypeId comm = kInvalidTaskType;          // MPI-boundary exchange (Heat)
  TaskTypeId kmeans_map = kInvalidTaskType;
  TaskTypeId kmeans_reduce = kInvalidTaskType;
  TaskTypeId heat_compute = kInvalidTaskType;  // interior stencil rows (Heat)
};

/// Network parameters only matter for the `comm` type.
struct CommParams {
  double latency_s = 15e-6;  ///< FDR InfiniBand-ish small-message latency
  double bw_gbs = 5.0;       ///< effective per-link bandwidth
};

PaperKernelIds register_paper_kernels(TaskTypeRegistry& registry,
                                      CostModelConfig cfg = {},
                                      CommParams comm = {});

}  // namespace das::kernels
