#include "kernels/copy.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace das::kernels {

void copy_partition(const double* src, double* dst, std::size_t n, int rank,
                    int width) {
  DAS_CHECK(width >= 1);
  DAS_CHECK(rank >= 0 && rank < width);
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t base = n / w;
  const std::size_t extra = n % w;
  const std::size_t begin = r * base + (r < extra ? r : extra);
  const std::size_t len = base + (r < extra ? 1 : 0);
  if (len > 0) std::memcpy(dst + begin, src + begin, len * sizeof(double));
}

double checksum(const double* data, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += data[i];
  return acc;
}

}  // namespace das::kernels
