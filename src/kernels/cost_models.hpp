#pragma once
// Analytic per-kernel cost models for the discrete-event engine.
//
// The DES does not execute kernels; it charges each participant of a
// moldable task the busy time this model predicts for its share of the work,
// given the participant core's effective speed and the cluster's bandwidth
// share at that instant (both from SpeedScenario). The models encode the
// three behaviour classes the paper's synthetic DAGs exercise:
//
//   MatMul  — compute-bound: time ~ flops / (rate * speed * cache_fit) where
//             cache_fit depends on whether one tile matrix (8*tile^2 bytes)
//             fits the core's L1, the cluster L2, or spills to DRAM. This
//             reproduces the paper's tile-size narrative (32 fits both L1s,
//             64/80 only the Denver L1, 96 only L2; §5.3).
//   Copy    — memory-bound: a single core reaches only a fraction of the
//             cluster bandwidth; width 2 saturates it (widths beyond that
//             neither help nor hurt). CPU speed matters only under deep DVFS
//             throttling, when issue rate becomes the bottleneck (visible in
//             the paper's Fig. 7(b)).
//   Stencil — cache-bound: compute-like scaling, lower per-width efficiency
//             (participants share the L2), plus an L2-fit factor.
//
// TaskParams conventions per kernel are documented at each factory.
//
// Static dispatch: every factory below returns its CostFn wrapped around a
// tagged CostExpr (core/task_type.hpp) — a closed-form payload of the
// calibration constants that core/cost_expr.hpp evaluates inline with the
// identical arithmetic. TaskTypeRegistry::register_type recovers the
// expression from the CostFn automatically, which is what lets the engines
// select a fused (policy x cost-kind) loop for catalog-built registries
// while a hand-written lambda cost model keeps the generic std::function
// path. Both paths produce bitwise-identical costs by construction (one
// shared implementation), pinned by the sim-determinism goldens.

#include "core/task_type.hpp"

namespace das::kernels {

/// All calibration constants in one place (values discussed in DESIGN.md §7).
struct CostModelConfig {
  // MatMul. 0.9 GFLOP/s reproduces the paper's ~0.6 ms 64x64 tile on the
  // Denver core (32000 tasks at ~3200 tasks/s peak in Fig. 4(a)) — the
  // kernel is a naive triple loop, not a tuned GEMM.
  double matmul_gflops = 0.9;   ///< per-core rate at speed 1.0, L1-resident
  double l1_fit = 1.0;          ///< rate factor when a tile matrix fits L1
  double l2_fit = 0.6;          ///< ... fits the shared L2
  double mem_fit = 0.35;        ///< ... spills to DRAM
  double matmul_alpha = 0.08;   ///< per-extra-participant inefficiency

  // Copy. The issue-rate bound (outstanding misses a core can sustain)
  // scales with effective speed: a full-speed Denver core is just
  // bandwidth-bound (13 > 12 GB/s share), the slower A57s are mildly
  // issue-bound (13 * 0.55 = 7.2 GB/s — Denver copies faster, as on the
  // TX2), a core sharing cycles with a co-runner drops to 7.8 GB/s, and a
  // 345 MHz DVFS-throttled Denver collapses to 2.2 GB/s — the paper's
  // Fig. 7(b) sensitivity.
  double copy_single_core_bw_frac = 0.6;  ///< fraction of cluster BW one core
                                          ///< can pull
  double copy_cpu_gbs_per_speed = 13.0;   ///< issue-rate bound: GB/s at speed 1

  // Stencil (the L2-spill penalty itself is per-cluster: Cluster::stream_fit)
  double stencil_flops_per_point = 2.5;
  double stencil_alpha = 0.18;  ///< L2 sharing penalty per extra participant

  // Moldability is not free: assembling w participants costs wake-up +
  // completion synchronisation. Charged per rank as sync * (w - 1), it makes
  // wide molding of very short tasks (e.g. 64x64 matmul tiles, ~100 us)
  // unattractive while leaving millisecond tasks (copy, k-means chunks)
  // profitable — the behaviour behind the paper's Fig. 5(g)/Fig. 7
  // "conservative widths" discussion.
  double sync_overhead_s = 25e-6;

  // Measurement noise: lognormal sigma = noise0 + noise1 / (T in ms), i.e.
  // a ~2% relative dispersion floor plus a ~25 us absolute timing error per
  // measurement. Tile-32 matmul tasks (~73 us) see sigma ~0.36 while tile-64
  // tasks (~0.6 ms) see ~0.06 — which is exactly what makes the PTT's
  // smoothing ratio matter only for the smallest tile in the paper's Fig. 8.
  double noise0 = 0.02;
  double noise1 = 0.025;
};

/// MatMul: p0 = tile dimension n (task multiplies n x n tiles).
CostFn matmul_cost(CostModelConfig cfg = {});

/// Copy: p0 = number of doubles moved by the task (read + write charged).
CostFn copy_cost(CostModelConfig cfg = {});

/// Stencil: p0 = grid dimension n (task sweeps an n x n tile).
CostFn stencil_cost(CostModelConfig cfg = {});

/// Heat row-band sweep: p0 = grid-equivalent dimension n (n^2 points per
/// task). Unlike the tile stencil above, these are large streaming bands
/// whose per-participant sub-bands fit private caches better as the width
/// grows, so molding scales near-linearly with a small cache-aggregation
/// bonus (the paper's §5.4: "sharing CPU caches can have a significant
/// impact"), making the cost-based searches willing to mold — the mechanism
/// behind RWSM-C's and DAM-C's Fig. 10 edge.
CostFn heat_compute_cost(CostModelConfig cfg = {});

/// Fixed-duration task (e.g. a barrier-ish helper); p0 ignored.
CostFn fixed_cost(double seconds);

/// Communication task: time = latency + p0 bytes / bandwidth, scaled by
/// nothing else (message passing is single-core by nature; the paper's Heat
/// still benefits from molding because sharing caches speeds the copies —
/// modelled as a mild width discount on the local packing portion).
CostFn comm_cost(double latency_s, double bw_gbs);

/// K-means assignment chunk: p0 = points, p1 = dims, p2 = k.
CostFn kmeans_map_cost(double flops_rate_g = 3.0);
/// K-means reduction: p0 = k * dims accumulated values.
CostFn kmeans_reduce_cost(double flops_rate_g = 3.0);

}  // namespace das::kernels
