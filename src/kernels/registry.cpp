#include "kernels/registry.hpp"

namespace das::kernels {

PaperKernelIds register_paper_kernels(TaskTypeRegistry& registry,
                                      CostModelConfig cfg, CommParams comm) {
  PaperKernelIds ids;
  ids.matmul = registry.register_type(
      TaskTypeInfo{"matmul", matmul_cost(cfg), cfg.noise0, cfg.noise1});
  ids.copy = registry.register_type(
      TaskTypeInfo{"copy", copy_cost(cfg), cfg.noise0, cfg.noise1});
  ids.stencil = registry.register_type(
      TaskTypeInfo{"stencil", stencil_cost(cfg), cfg.noise0, cfg.noise1});
  ids.comm = registry.register_type(
      TaskTypeInfo{"comm", comm_cost(comm.latency_s, comm.bw_gbs), cfg.noise0, 0.0});
  ids.kmeans_map = registry.register_type(
      TaskTypeInfo{"kmeans_map", kmeans_map_cost(), cfg.noise0, cfg.noise1});
  ids.kmeans_reduce = registry.register_type(
      TaskTypeInfo{"kmeans_reduce", kmeans_reduce_cost(), cfg.noise0, cfg.noise1});
  ids.heat_compute = registry.register_type(
      TaskTypeInfo{"heat_compute", heat_compute_cost(cfg), cfg.noise0, cfg.noise1});
  return ids;
}

}  // namespace das::kernels
