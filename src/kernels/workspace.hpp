#pragma once
// Fixed-size pool of kernel workspaces for the real-thread engine.
//
// Synthetic DAGs contain tens of thousands of tasks, but at most
// `num_cores` assemblies execute concurrently, so a pool of that many
// buffers suffices; tasks acquire on entry and release on completion. The
// pool is a spinlock-guarded freelist — acquire/release are two pointer
// moves, negligible against millisecond kernels.

#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace das::kernels {

class WorkspacePool {
 public:
  /// `count` buffers of `doubles_each` doubles, zero-initialised.
  WorkspacePool(int count, std::size_t doubles_each)
      : doubles_each_(doubles_each) {
    DAS_CHECK(count >= 1);
    DAS_CHECK(doubles_each >= 1);
    buffers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      buffers_.push_back(std::make_unique<double[]>(doubles_each));
      free_.push_back(buffers_.back().get());
    }
  }

  std::size_t doubles_each() const { return doubles_each_; }

  /// Takes a free buffer; spins if the pool is momentarily empty (only
  /// possible if more assemblies run concurrently than `count`).
  double* acquire() {
    for (;;) {
      {
        SpinlockGuard g(lock_);
        if (!free_.empty()) {
          double* b = free_.back();
          free_.pop_back();
          return b;
        }
      }
      cpu_relax();
    }
  }

  void release(double* buffer) {
    DAS_CHECK(buffer != nullptr);
    SpinlockGuard g(lock_);
    DAS_ASSERT(free_.size() < buffers_.size());
    free_.push_back(buffer);
  }

 private:
  std::size_t doubles_each_;
  std::vector<std::unique_ptr<double[]>> buffers_;
  std::vector<double*> free_ DAS_GUARDED_BY(lock_);
  Spinlock lock_;
};

}  // namespace das::kernels
