#pragma once
// MatMul kernel — the paper's compute-intensive workload class (§4.2.2).
//
// C = A x B on tile x tile row-major doubles. Moldable: participants split
// the rows of C by rank, so a width-w execution place runs w disjoint row
// bands concurrently with no synchronisation beyond the assembly's
// completion counter.

#include <cstddef>

namespace das::kernels {

/// Computes rows [rank*n/width, (rank+1)*n/width) of C = A*B.
/// A, B, C are n x n row-major. The i-k-j loop order keeps the inner loop
/// streaming over B and C rows.
void matmul_partition(const double* a, const double* b, double* c, int n,
                      int rank, int width);

/// Naive reference for tests (single-threaded, whole matrix).
void matmul_reference(const double* a, const double* b, double* c, int n);

/// Row range assigned to `rank` of `width` for an n-row iteration space:
/// the first (n % width) ranks take one extra row. Shared by all kernels.
struct RowRange {
  int begin = 0;
  int end = 0;
};
RowRange partition_rows(int n, int rank, int width);

}  // namespace das::kernels
