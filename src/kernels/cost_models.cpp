#include "kernels/cost_models.hpp"

#include "core/cost_expr.hpp"
#include "util/assert.hpp"

// Each factory builds the tagged closed form (core/task_type.hpp) and wraps
// it in a CostExprFn, so the returned CostFn and a fused engine loop
// evaluating the expression directly share ONE implementation of the
// arithmetic (core/cost_expr.hpp) — bitwise-identical results on both
// dispatch paths, and register_type can recover the expression from the
// CostFn without any change at the registration sites. The per-kernel model
// documentation lives with the evaluation in cost_expr.hpp and the header
// comments here.

namespace das::kernels {

CostFn matmul_cost(CostModelConfig cfg) {
  CostExpr e;
  e.kind = CostExpr::Kind::kMatMul;
  e.u.matmul = CostExpr::MatMul{cfg.matmul_gflops, cfg.l1_fit,
                                cfg.l2_fit,        cfg.mem_fit,
                                cfg.matmul_alpha,  cfg.sync_overhead_s};
  return CostExprFn{e};
}

CostFn copy_cost(CostModelConfig cfg) {
  CostExpr e;
  e.kind = CostExpr::Kind::kCopy;
  e.u.copy =
      CostExpr::Copy{cfg.copy_single_core_bw_frac, cfg.copy_cpu_gbs_per_speed};
  return CostExprFn{e};
}

CostFn stencil_cost(CostModelConfig cfg) {
  CostExpr e;
  e.kind = CostExpr::Kind::kStencil;
  e.u.stencil = CostExpr::Stencil{cfg.matmul_gflops, cfg.stencil_flops_per_point,
                                  cfg.stencil_alpha, cfg.sync_overhead_s};
  return CostExprFn{e};
}

CostFn heat_compute_cost(CostModelConfig cfg) {
  CostExpr e;
  e.kind = CostExpr::Kind::kHeatBand;
  e.u.heat =
      CostExpr::HeatBand{cfg.matmul_gflops, cfg.stencil_flops_per_point};
  return CostExprFn{e};
}

CostFn fixed_cost(double seconds) {
  DAS_CHECK(seconds >= 0.0);
  CostExpr e;
  e.kind = CostExpr::Kind::kFixed;
  e.u.fixed = CostExpr::Fixed{seconds};
  return CostExprFn{e};
}

CostFn comm_cost(double latency_s, double bw_gbs) {
  DAS_CHECK(latency_s >= 0.0 && bw_gbs > 0.0);
  CostExpr e;
  e.kind = CostExpr::Kind::kComm;
  e.u.comm = CostExpr::Comm{latency_s, bw_gbs};
  return CostExprFn{e};
}

CostFn kmeans_map_cost(double flops_rate_g) {
  CostExpr e;
  e.kind = CostExpr::Kind::kKmeansMap;
  e.u.kmeans = CostExpr::Kmeans{flops_rate_g};
  return CostExprFn{e};
}

CostFn kmeans_reduce_cost(double flops_rate_g) {
  CostExpr e;
  e.kind = CostExpr::Kind::kKmeansReduce;
  e.u.kmeans = CostExpr::Kmeans{flops_rate_g};
  return CostExprFn{e};
}

}  // namespace das::kernels
