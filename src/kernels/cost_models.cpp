#include "kernels/cost_models.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace das::kernels {

namespace {

/// Cache-fit factor for a working set of `bytes` against the participant's
/// cluster caches.
double cache_fit(double bytes, const Cluster& cl, const CostModelConfig& cfg) {
  // Strict comparison: a working set exactly the size of the cache does not
  // fit (conflict misses / other residents). This makes the 64x64 tile
  // (8*64^2 = 32 KB) miss the A57's 32 KB L1 while fitting the Denver's
  // 64 KB one — the paper's §5.3 residency narrative.
  if (bytes < cl.l1_kb * 1024.0) return cfg.l1_fit;
  if (bytes < cl.l2_kb * 1024.0) return cfg.l2_fit;
  return cfg.mem_fit;
}

}  // namespace

CostFn matmul_cost(CostModelConfig cfg) {
  return [cfg](const TaskParams& p, const CostQuery& q) -> double {
    const double n = p.p0;
    DAS_CHECK_MSG(n >= 1.0, "matmul cost model requires p0 = tile >= 1");
    DAS_CHECK(q.cluster != nullptr);
    const double flops_total = 2.0 * n * n * n;
    const double flops_rank = flops_total / q.place.width;
    // One tile matrix (the paper's per-matrix footprint notion, §5.3).
    const double fit = cache_fit(8.0 * n * n, *q.cluster, cfg);
    const double eff = 1.0 / (1.0 + cfg.matmul_alpha * (q.place.width - 1));
    const double rate = cfg.matmul_gflops * 1e9 * q.speed * fit * eff;
    return flops_rank / rate + cfg.sync_overhead_s * (q.place.width - 1);
  };
}

CostFn copy_cost(CostModelConfig cfg) {
  return [cfg](const TaskParams& p, const CostQuery& q) -> double {
    const double elems = p.p0;
    DAS_CHECK_MSG(elems >= 1.0, "copy cost model requires p0 = element count");
    DAS_CHECK(q.cluster != nullptr);
    const double bytes_rank = 16.0 * elems / q.place.width;  // read + write
    const double avail = q.cluster->mem_bw_gbs * 1e9 * q.bw_share;
    const double single = cfg.copy_single_core_bw_frac * q.cluster->mem_bw_gbs * 1e9;
    const double bw_bound = std::min(single, avail / q.place.width);
    // Issue-rate bound: at deep DVFS throttle the core cannot generate
    // enough outstanding requests to saturate its bandwidth share.
    const double cpu_bound = cfg.copy_cpu_gbs_per_speed * 1e9 * q.speed;
    return bytes_rank / std::min(bw_bound, cpu_bound);
  };
}

CostFn stencil_cost(CostModelConfig cfg) {
  return [cfg](const TaskParams& p, const CostQuery& q) -> double {
    const double n = p.p0;
    DAS_CHECK_MSG(n >= 3.0, "stencil cost model requires p0 = grid >= 3");
    DAS_CHECK(q.cluster != nullptr);
    const double points_rank = n * n / q.place.width;
    // Two grids resident (in + out); spilling the shared L2 hurts, by an
    // amount that depends on the core class's latency hiding (Cluster::
    // stream_fit) — big out-of-order cores keep streaming, little ones stall.
    const double ws_bytes = 2.0 * 8.0 * n * n;
    const double fit =
        ws_bytes <= q.cluster->l2_kb * 1024.0 ? 1.0 : q.cluster->stream_fit;
    const double eff = 1.0 / (1.0 + cfg.stencil_alpha * (q.place.width - 1));
    const double rate =
        (cfg.matmul_gflops / cfg.stencil_flops_per_point) * 1e9 * q.speed * fit * eff;
    return points_rank / rate + cfg.sync_overhead_s * (q.place.width - 1);
  };
}

CostFn heat_compute_cost(CostModelConfig cfg) {
  return [cfg](const TaskParams& p, const CostQuery& q) -> double {
    const double n = p.p0;
    DAS_CHECK_MSG(n >= 3.0, "heat cost model requires p0 = grid >= 3");
    DAS_CHECK(q.cluster != nullptr);
    const int w = q.place.width;
    const double points_rank = n * n / w;
    // Cache-aggregation bonus: each participant's sub-band working set is
    // 1/w of the task's, so it fits closer to the private caches. Capped —
    // the bonus saturates once everything is L1-resident.
    const double aggr = std::min(1.0 + 0.04 * (w - 1), 1.25);
    const double rate =
        (cfg.matmul_gflops / cfg.stencil_flops_per_point) * 1e9 * q.speed * aggr;
    // Lighter sync than the tile kernels: band sweeps have no tile handoff,
    // only the assembly barrier.
    return points_rank / rate + 3e-6 * (w - 1);
  };
}

CostFn fixed_cost(double seconds) {
  DAS_CHECK(seconds >= 0.0);
  return [seconds](const TaskParams&, const CostQuery&) { return seconds; };
}

CostFn comm_cost(double latency_s, double bw_gbs) {
  DAS_CHECK(latency_s >= 0.0 && bw_gbs > 0.0);
  return [latency_s, bw_gbs](const TaskParams& p, const CostQuery& q) -> double {
    const double bytes = std::max(p.p0, 0.0);
    const double wire = latency_s + bytes / (bw_gbs * 1e9);
    // Local packing/unpacking of ghost cells: benefits mildly from cache
    // sharing when molded (paper §5.4 attributes the DAM-C/DAM-P edge on
    // Heat to exactly this effect).
    const double pack = 0.3 * wire / (1.0 + 0.5 * (q.place.width - 1));
    return wire / q.speed + pack;
  };
}

CostFn kmeans_map_cost(double flops_rate_g) {
  return [flops_rate_g](const TaskParams& p, const CostQuery& q) -> double {
    const double points = p.p0, dims = p.p1, k = p.p2;
    DAS_CHECK(points >= 1.0 && dims >= 1.0 && k >= 1.0);
    const int w = q.place.width;
    const double flops = 3.0 * points * dims * k / w;
    // The paper's K-means nests the assignment loop inside a graph node, so
    // a molded task streams disjoint point ranges against shared read-only
    // centroids: per-participant working sets shrink with width (mild cache
    // aggregation), against a small assembly-sync overhead. Net effect:
    // molding is slightly cost-positive — the paper's Fig. 9(c) shows the
    // wide places dominating under DAM-P.
    const double aggr = std::min(1.0 + 0.03 * (w - 1), 1.2);
    return flops / (flops_rate_g * 1e9 * q.speed * aggr) + 3e-6 * (w - 1);
  };
}

CostFn kmeans_reduce_cost(double flops_rate_g) {
  return [flops_rate_g](const TaskParams& p, const CostQuery& q) -> double {
    const double vals = std::max(p.p0, 1.0);
    const double flops = 8.0 * vals;  // accumulate + divide per value
    return flops / (flops_rate_g * 1e9 * q.speed) / q.place.width +
           1e-6;  // fixed task-dispatch floor
  };
}

}  // namespace das::kernels
