#include "kernels/stencil.hpp"

#include "kernels/matmul.hpp"  // partition_rows
#include "util/assert.hpp"

namespace das::kernels {

void stencil_partition(const double* in, double* out, int n, int rank,
                       int width) {
  DAS_CHECK(n >= 3);
  // Interior rows are 1 .. n-2; map the partition over n-2 rows.
  const RowRange r = partition_rows(n - 2, rank, width);
  for (int i = 1 + r.begin; i < 1 + r.end; ++i) {
    const double* up = in + static_cast<std::size_t>(i - 1) * n;
    const double* mid = in + static_cast<std::size_t>(i) * n;
    const double* down = in + static_cast<std::size_t>(i + 1) * n;
    double* o = out + static_cast<std::size_t>(i) * n;
    for (int j = 1; j < n - 1; ++j) {
      o[j] = 0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
    }
  }
}

void stencil_reference(const double* in, double* out, int n) {
  stencil_partition(in, out, n, 0, 1);
}

}  // namespace das::kernels
