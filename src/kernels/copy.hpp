#pragma once
// Copy kernel — the paper's memory-intensive workload class (§4.2.2):
// streams large arrays through main memory.

#include <cstddef>

namespace das::kernels {

/// Copies the rank's share of `n` doubles from src to dst (block partition).
void copy_partition(const double* src, double* dst, std::size_t n, int rank,
                    int width);

/// Checksum used by tests to verify a copy without a second pass being
/// optimised away.
double checksum(const double* data, std::size_t n);

}  // namespace das::kernels
