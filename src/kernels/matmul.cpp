#include "kernels/matmul.hpp"

#include "util/assert.hpp"

namespace das::kernels {

RowRange partition_rows(int n, int rank, int width) {
  DAS_CHECK(width >= 1);
  DAS_CHECK(rank >= 0 && rank < width);
  const int base = n / width;
  const int extra = n % width;
  const int begin = rank * base + (rank < extra ? rank : extra);
  const int len = base + (rank < extra ? 1 : 0);
  return RowRange{begin, begin + len};
}

void matmul_partition(const double* a, const double* b, double* c, int n,
                      int rank, int width) {
  const RowRange r = partition_rows(n, rank, width);
  for (int i = r.begin; i < r.end; ++i) {
    double* ci = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0;
    const double* ai = a + static_cast<std::size_t>(i) * n;
    for (int k = 0; k < n; ++k) {
      const double aik = ai[k];
      const double* bk = b + static_cast<std::size_t>(k) * n;
      for (int j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void matmul_reference(const double* a, const double* b, double* c, int n) {
  matmul_partition(a, b, c, n, 0, 1);
}

}  // namespace das::kernels
