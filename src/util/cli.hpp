#pragma once
// Minimal command-line flag parsing for the bench and example drivers.
//
// Two argument forms only, so parsing stays unambiguous without a
// declaration step:
//   --key=value   a valued flag (e.g. --backend=rt, --scale=0.05)
//   --flag        a bare boolean flag (e.g. --help)
// Anything not starting with "--" is collected as a positional argument.
// Lookup is by key without the leading dashes.

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace das::cli {

class Flags {
 public:
  Flags(int argc, char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          values_[arg.substr(2)] = "";
        } else {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& def = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  double get_double(const std::string& key, double def) const {
    return parse_number<double>(key, def, [](const std::string& v, std::size_t* p) {
      return std::stod(v, p);
    });
  }

  std::int64_t get_int(const std::string& key, std::int64_t def) const {
    return parse_number<std::int64_t>(
        key, def,
        [](const std::string& v, std::size_t* p) { return std::stoll(v, p); });
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const {
    return parse_number<std::uint64_t>(
        key, def,
        [](const std::string& v, std::size_t* p) { return std::stoull(v, p); });
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Exits with a diagnostic if any parsed --key is not in `known` — a
  /// typo'd flag name would otherwise silently fall back to its default.
  void require_known(std::initializer_list<const char*> known) const {
    for (const auto& [key, value] : values_) {
      bool ok = false;
      for (const char* k : known) ok = ok || key == k;
      if (!ok) {
        std::cerr << "error: unknown flag '--" << key << "'\n";
        std::exit(2);
      }
    }
  }

 private:
  template <typename T, typename Parse>
  T parse_number(const std::string& key, T def, Parse parse) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return def;
    const std::string& v = it->second;
    try {
      std::size_t pos = 0;
      const T parsed = parse(v, &pos);
      // stod/stoll stop at the first bad character; require a full parse,
      // and keep stoull from silently wrapping negative input.
      if (pos != v.size() || (std::is_unsigned_v<T> && v[0] == '-'))
        throw std::invalid_argument(v);
      return parsed;
    } catch (const std::exception&) {
      std::cerr << "error: --" << key << "=" << v
                << " is not a valid number\n";
      std::exit(2);
    }
  }

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The flags every bench driver accepts (see bench/support.hpp); examples
/// reuse the relevant prefix in their own --help text.
inline constexpr const char* kCommonFlagsUsage =
    "--backend=sim|rt --policy=NAME[,NAME...] --scenario=<name|file> "
    "--json=<path> --scale=F --seed=N";

/// The job-stream flags (bench/job_stream, fig9_kmeans): how many jobs a
/// driver submits, how they arrive, and — for the multi-tenant
/// scheduler-as-a-service regime — how they are split across weighted
/// sessions and gated against a checked-in fairness baseline.
inline constexpr const char* kJobStreamFlagsUsage =
    "--jobs=N --arrival=poisson:<rate>|fixed:<gap> --inflight=K "
    "--tenants=N --weights=W[,W...] --tenant-inflight=K "
    "--service-inflight=K --queue-tasks=N "
    "--baseline=PATH --update-baseline --tolerance=F";

/// A job-stream arrival process: either a fixed inter-arrival gap (seconds)
/// or a Poisson process with the given mean rate (jobs/second). Drivers turn
/// it into per-job arrival offsets — virtual-time offsets on the sim
/// backend, wall-clock pacing on rt.
struct Arrival {
  enum class Kind { kFixed, kPoisson };
  Kind kind = Kind::kFixed;
  double gap_s = 0.0;    ///< kFixed: seconds between arrivals
  double rate_hz = 0.0;  ///< kPoisson: mean arrivals per second
};

/// Parses "poisson:<rate>" | "fixed:<gap>"; nullopt on malformed input
/// (unknown prefix, missing/non-positive number).
inline std::optional<Arrival> parse_arrival(const std::string& s) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string kind = s.substr(0, colon);
  const std::string num = s.substr(colon + 1);
  double value = 0.0;
  try {
    std::size_t pos = 0;
    value = std::stod(num, &pos);
    if (pos != num.size()) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!(value > 0.0)) return std::nullopt;
  Arrival a;
  if (kind == "fixed") {
    a.kind = Arrival::Kind::kFixed;
    a.gap_s = value;
  } else if (kind == "poisson") {
    a.kind = Arrival::Kind::kPoisson;
    a.rate_hz = value;
  } else {
    return std::nullopt;
  }
  return a;
}

/// Resolves --arrival= against parse_arrival: nullopt when the flag is
/// absent, exits 2 with a diagnostic on a malformed value.
inline std::optional<Arrival> arrival_flag(const Flags& flags) {
  if (!flags.has("arrival")) return std::nullopt;
  const std::string v = flags.get("arrival");
  const auto a = parse_arrival(v);
  if (!a) {
    std::cerr << "error: --arrival=" << v
              << " (expected poisson:<rate> or fixed:<gap>, value > 0)\n";
    std::exit(2);
  }
  return a;
}

/// Prints "flags: <usage>" and exits 0 when --help was given.
inline void maybe_help(const Flags& flags, const std::string& usage) {
  if (!flags.has("help")) return;
  std::cout << "flags: " << usage << "\n";
  std::exit(0);
}

/// Drivers that take no positional arguments call this to reject the
/// "--key value" spelling (only "--key=value" is supported — the bare word
/// would otherwise be ignored silently and the flag fall back to its
/// default).
inline void require_no_positionals(const Flags& flags) {
  if (!flags.positional().empty()) {
    std::cerr << "error: unexpected argument '" << flags.positional().front()
              << "' (flags are spelled --key=value)\n";
    std::exit(2);
  }
}

inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

[[noreturn]] inline void die(const std::string& msg) {
  std::cerr << "error: " << msg << '\n';
  std::exit(2);
}

}  // namespace das::cli
