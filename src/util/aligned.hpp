#pragma once
// Cache-line constants and padding helpers.
//
// The PTT (core/ptt.hpp) requires that per-core rows occupy distinct cache
// lines so that a worker mostly touches the line indexed by its own core id
// (paper §4.1.1). These helpers centralise the layout arithmetic.

#include <cstddef>
#include <new>

namespace das {

// Fixed at 64 bytes (x86-64 / most AArch64). Using
// std::hardware_destructive_interference_size would make the PTT layout part
// of the ABI vary with compiler tuning flags (gcc warns about exactly this).
inline constexpr std::size_t kCacheLine = 64;

/// Round `n` up to the next multiple of `align` (align must be a power of 2).
constexpr std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Wraps a T in its own cache line to prevent false sharing between
/// neighbouring array elements (e.g. per-worker counters).
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  CachePadded() = default;
  explicit CachePadded(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace das
