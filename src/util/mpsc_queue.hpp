#pragma once
// Intrusive, lock-free multi-producer / single-consumer FIFO queue
// (Vyukov's non-blocking MPSC algorithm).
//
// The queue never allocates: callers embed a `MpscQueue::Node` in the object
// they enqueue (the rt engine embeds one hook per channel role in
// Runtime::TaskRec) and a push is one relaxed store, one exchange and one
// release store — no CAS loop, no heap traffic, wait-free for producers.
// The consumer pops in global push order, which is also FIFO per producer
// (the `exchange` on head_ linearises pushes).
//
// Node ownership protocol: a node may be pushed again the moment pop() has
// returned its tag — pop only returns a node after the queue's tail has
// advanced past it (when the popped node is the last element, the queue
// re-enqueues its internal stub first), so no later push or pop touches it.
// A node must not be in two queues at once; the rt engine gives each task
// one hook per channel it can occupy simultaneously.
//
// Memory-ordering contract (the documentation bar set by rt/wsq.hpp):
//   - push: `prev = head_.exchange(n, acq_rel)` linearises concurrent
//     producers; the subsequent `prev->next.store(n, release)` publishes the
//     node AND everything the producer wrote before the push (the rt engine
//     relies on this: `TaskRec::place` is written before the AQ push and
//     read by the consumer after pop's acquire load of `next`).
//   - pop: every `next` load is acquire, pairing with the producer's release
//     store — the consumer observes the fully-initialised payload.
//   - The transient between a producer's exchange and its `next` store makes
//     the queue momentarily unlinkable: pop() returns nullptr ("empty") and
//     empty() returns false. Callers that park on emptiness must re-check
//     through an EventCount-style protocol (util/eventcount.hpp): the
//     producer completes the link *before* it signals, so a parked consumer
//     is always woken after the node becomes poppable.
//
// The class is templated on a synchronization model (util/sync_model.hpp):
// production code uses the `MpscQueue` alias (= RealModel, identical
// codegen to plain std::atomic), and the deterministic model checker
// (src/chk) instantiates `BasicMpscQueue<chk::Model>` to run this exact
// algorithm under exhaustive interleavings and a weak-memory simulator —
// including the FIFO-per-producer, payload-publication and
// unlink-before-reuse claims above. `tag` is a Model::var: the checker
// flags any schedule where the consumer could read it without the release
// edge the contract promises.

#include <atomic>

#include "util/assert.hpp"
#include "util/sync_model.hpp"

namespace das {

template <class Model = RealModel>
class BasicMpscQueue {
 public:
  /// Intrusive hook. `tag` carries the payload pointer back out of pop()
  /// (embedding objects at arbitrary offsets stays free of offsetof
  /// gymnastics on non-standard-layout types).
  struct Node {
    typename Model::template atomic<Node*> next{nullptr};
    typename Model::template var<void*> tag{nullptr};
  };

  BasicMpscQueue() : head_(&stub_), tail_(&stub_) {}

  BasicMpscQueue(const BasicMpscQueue&) = delete;
  BasicMpscQueue& operator=(const BasicMpscQueue&) = delete;

  /// Any thread. Wait-free (one exchange). `n` must not currently be in any
  /// queue; `tag` must be non-null (pop() uses nullptr for "empty").
  void push(Node* n, void* tag) {
    DAS_ASSERT(tag != nullptr);
    n->tag = tag;
    push_node(n);
  }

  /// Consumer only. Returns the tag of the oldest node, or nullptr when the
  /// queue is empty (or transiently unlinkable, see push).
  void* pop() {
    Node* tail = tail_.load(std::memory_order_relaxed);
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      // The stub is a consumed dummy: skip past it.
      if (next == nullptr) return nullptr;  // empty (or mid-push)
      tail_.store(next, std::memory_order_relaxed);
      tail = next;
      next = tail->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      // Common case: advance past `tail` and hand it out.
      tail_.store(next, std::memory_order_relaxed);
      return tail->tag;
    }
    // `tail` is the last linked node. If a producer is mid-push behind it,
    // report empty and let the caller retry after the producer's signal.
    if (tail != head_.load(std::memory_order_acquire)) return nullptr;
    // Re-enqueue the stub so tail_ can advance past the final node, making
    // it safe for immediate reuse by the caller.
    push_node(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_.store(next, std::memory_order_relaxed);
      return tail->tag;
    }
    return nullptr;  // another producer slipped in mid-push; retry later
  }

  /// True when no unconsumed node is in the queue. Exact for the consumer;
  /// producers may observe a stale answer (tail_ is written only by the
  /// consumer, with relaxed atomics so cross-thread reads are defined).
  /// During another producer's mid-push transient this correctly reports
  /// non-empty (head_ has already moved off the stub).
  bool empty() const {
    return tail_.load(std::memory_order_relaxed) == &stub_ &&
           head_.load(std::memory_order_acquire) == &stub_;
  }

 private:
  void push_node(Node* n) {
    n->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    // Between the exchange and this store the chain is broken at `prev`;
    // pop() observes next == nullptr with head_ != tail_ and reports empty
    // until the link lands (see the header contract).
    prev->next.store(n, std::memory_order_release);
  }

  /// newest node (producers exchange onto it)
  typename Model::template atomic<Node*> head_;
  /// Consumer cursor: oldest unconsumed, or stub. Written only by the
  /// consumer (relaxed is enough — same-thread ordering); atomic so
  /// producer-side empty() probes stay defined behaviour.
  typename Model::template atomic<Node*> tail_;
  Node stub_;  ///< queue-owned dummy; in the chain when idle

  static_assert(sizeof(Node*) <= sizeof(void*));
};

/// The production instantiation every engine uses.
using MpscQueue = BasicMpscQueue<>;

}  // namespace das
