#pragma once
// Compiler inlining hint for the fused hot loops.
//
// The fused (policy × cost-model) engine specializations multiply the
// event-loop call tree 16-fold inside one translation unit. GCC's
// unit-growth budget then declines inlining decisions it happily made for
// the old monolithic loop, leaving the per-event chain (event handler →
// start_participation → participation_cost) as out-of-line calls — which
// costs more than the devirtualization saves. DAS_HOT_INLINE restores the
// monolithic layout deterministically, for every instantiation.
//
// Use it only on the per-event call chain below a dispatch root (a marked
// `daslint` hot-path region), never on cold or API-boundary code: each use
// is duplicated into every fused instantiation.

#if defined(__GNUC__) || defined(__clang__)
#define DAS_HOT_INLINE inline __attribute__((always_inline))
#else
#define DAS_HOT_INLINE inline
#endif
