#pragma once
// EventCount: the "condition variable of lock-free programming".
//
// Lets a consumer park until a lock-free predicate (e.g. "some MpscQueue is
// non-empty") becomes true, without the lost-wakeup race of checking and
// then sleeping, and without producers paying a mutex on the hot path. The
// three-phase waiter protocol:
//
//     const auto key = ec.prepare_wait();   // announce intent (waiters++)
//     if (predicate()) { ec.cancel_wait(); /* consume */ }
//     else ec.commit_wait(key);             // sleep unless notified since
//
// and producers, after making the predicate true:
//
//     ec.notify();   // wakes waiters; cheap no-op when nobody is parked
//
// Memory-ordering contract — the correctness is a Dekker store/load duel:
//   producer:  W(queue)          then R(waiters_)
//   consumer:  W(waiters_)       then R(queue)
// At least one side must observe the other or a push could slip between the
// consumer's predicate check and its sleep with the producer seeing no
// waiter. Both sides therefore order their store before their load with
// sequentially-consistent operations: prepare_wait's fetch_add is a seq_cst
// RMW (a full fence on every mainstream ISA), and notify issues an explicit
// seq_cst fence between the caller's queue writes and the waiters_ load.
// The epoch bump in notify happens under mu_, and commit_wait re-evaluates
// the epoch under the same mutex inside cv_.wait — the classic
// missed-notify window between predicate check and sleep is closed by the
// mutex, the window between predicate check and prepare is closed by the
// fences.
//
// The rt engine embeds one EventCount per worker (only that worker ever
// waits on it), so notify_all degenerates to waking at most one thread.
//
// Templated on a synchronization model (util/sync_model.hpp): production
// code uses the `EventCount` alias (RealModel — std atomics, identical
// codegen); the deterministic model checker (src/chk) instantiates
// `BasicEventCount<chk::Model>` and proves the no-lost-wakeup claim by
// exhausting small-bound schedules — including that downgrading either
// seq_cst fence deadlocks a waiter (mutant mode, tests/model_check_test).

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/sync_model.hpp"

namespace das {

template <class Model = RealModel>
class BasicEventCount {
 public:
  BasicEventCount() = default;
  BasicEventCount(const BasicEventCount&) = delete;
  BasicEventCount& operator=(const BasicEventCount&) = delete;

  /// Phase 1: announce the intent to sleep and snapshot the epoch. Must be
  /// followed by exactly one cancel_wait() or commit_wait(key).
  std::uint64_t prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // Belt over the RMW's braces: the predicate loads that follow must not
    // be hoisted above the waiter announcement on any implementation.
    Model::thread_fence(std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Phase 2a: the predicate turned out true — abandon the wait.
  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Phase 2b: sleep until a notify() that started after prepare_wait().
  /// Returns immediately if one already happened (epoch moved past `key`).
  void commit_wait(std::uint64_t key) {
    std::unique_lock<typename Model::mutex> g(mu_);
    while (epoch_.load(std::memory_order_relaxed) == key) cv_.wait(g);
    g.unlock();
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wakes every waiter whose prepare_wait() predates this call. Callers
  /// make the predicate true FIRST; the fence below then guarantees either
  /// this call sees their waiter count, or the waiter's predicate re-check
  /// sees the new state. Fast path (no waiter): one fence + one load.
  void notify() {
    Model::thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    {
      // The epoch bump must happen under mu_: commit_wait's wait condition
      // is re-evaluated with mu_ held, so a waiter is either not yet inside
      // cv_.wait (and will see the bumped epoch) or is parked (and gets the
      // notify_all).
      std::lock_guard<typename Model::mutex> g(mu_);
      epoch_.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_all();
  }

  /// Waiters currently between prepare_wait and the end of their wait.
  /// Advisory (racy) — used by tests and wake-target heuristics only.
  int waiters() const { return waiters_.load(std::memory_order_seq_cst); }

 private:
  typename Model::template atomic<std::uint64_t> epoch_{0};
  typename Model::template atomic<int> waiters_{0};
  typename Model::mutex mu_;
  typename Model::cond_var cv_;
};

/// The production instantiation every engine uses.
using EventCount = BasicEventCount<>;

}  // namespace das
