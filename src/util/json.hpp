#pragma once
// Minimal JSON value model, parser and writer — just enough for the two
// data interchange points the project has: declarative scenario specs
// (src/scenario reads them) and machine-readable bench results
// (bench/support.hpp writes BENCH_<name>.json). No external dependency.
//
// Deliberate restrictions (all diagnosed, nothing silently accepted):
//   - numbers are doubles (64-bit integers round-trip exactly up to 2^53,
//     far beyond any task count or seed we emit);
//   - object keys keep their insertion order, so dumps are deterministic
//     and diff-friendly;
//   - no \uXXXX escapes beyond Latin-1 in the writer (input \uXXXX parses
//     to UTF-8); scenario specs and bench output are ASCII in practice.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace das::json {

/// Thrown by parse() and the typed accessors; carries a human-readable
/// message with line:column context when it comes from the parser.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object: deterministic dumps, stable diffs.
using Member = std::pair<std::string, Value>;

enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;  // null
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int v) : Value(static_cast<double>(v)) {}
  Value(std::int64_t v) : Value(static_cast<double>(v)) {}
  Value(std::uint64_t v) : Value(static_cast<double>(v)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}

  /// Named constructors for the composite types.
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw json::Error on a type mismatch so callers get a
  /// diagnostic instead of UB.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const std::vector<Member>& members() const;

  // --- object helpers -------------------------------------------------------

  /// Sets (or replaces) an object member; first insertion fixes its position.
  Value& set(const std::string& key, Value v);
  /// Member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  // --- array helpers --------------------------------------------------------

  Value& push_back(Value v);
  std::size_t size() const;

  /// Serialises. indent <= 0: compact one-line form; indent > 0: pretty,
  /// `indent` spaces per nesting level. Deterministic (insertion order).
  std::string dump(int indent = 0) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  std::vector<Member> obj_;
};

/// Parses one JSON document (trailing garbage is an error). Throws
/// json::Error with "<origin>:line:col: message" context. `origin` names the
/// source in diagnostics (a file path, "<flag>", ...).
Value parse(const std::string& text, const std::string& origin = "<json>");

/// Reads and parses a file; json::Error on IO failure or parse failure.
Value parse_file(const std::string& path);

}  // namespace das::json
