#pragma once
// Nanosecond wall-clock helpers and calibrated busy-waiting.
//
// The threaded engine (src/rt) emulates slow cores by *extending* the wall
// time of each task participation (see platform/throttle.hpp); that requires
// a busy-wait that neither yields (a yield would free the core, which a
// genuinely slow core would not do) nor drifts.

#include <chrono>
#include <cstdint>

namespace das {

using Clock = std::chrono::steady_clock;

/// Monotonic now() in nanoseconds.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

inline double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }
inline std::int64_t s_to_ns(double s) { return static_cast<std::int64_t>(s * 1e9); }

/// Busy-wait for `ns` nanoseconds without yielding the core.
void busy_wait_ns(std::int64_t ns);

/// RAII stopwatch measuring elapsed ns.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  std::int64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const { return ns_to_s(elapsed_ns()); }

 private:
  std::int64_t start_;
};

}  // namespace das
