#pragma once
// Test-and-test-and-set spinlock with exponential-ish backoff.
//
// Used where critical sections are a handful of instructions (assembly-queue
// push/pop, stats accumulation) and a futex round-trip would dominate.
// Satisfies Lockable so it composes with std::lock_guard.

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace das {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin read-only until the lock looks free; bounded pause burst keeps
      // the coherence traffic low without parking the thread.
      int spins = 1;
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < spins; ++i) cpu_relax();
        if (spins < 64) spins <<= 1;
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace das
