#pragma once
// Test-and-test-and-set spinlock with exponential-ish backoff.
//
// Used where critical sections are a handful of instructions (workspace
// freelist push/pop, timeline appends) and a futex round-trip would
// dominate. Satisfies Lockable so it composes with std::lock_guard, but
// prefer SpinlockGuard: it carries the clang Thread Safety Analysis scope,
// so DAS_GUARDED_BY members are statically checked (libstdc++'s lock_guard
// is not annotated and would not register the acquisition).

#include <atomic>

#include "util/thread_annotations.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace das {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class DAS_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() DAS_ACQUIRE() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin read-only until the lock looks free; bounded pause burst keeps
      // the coherence traffic low without parking the thread.
      int spins = 1;
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < spins; ++i) cpu_relax();
        if (spins < 64) spins <<= 1;
      }
    }
  }

  bool try_lock() DAS_TRY_ACQUIRE(true) {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() DAS_RELEASE() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for Spinlock, visible to the thread-safety analysis.
class DAS_SCOPED_CAPABILITY SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& lock) DAS_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinlockGuard() DAS_RELEASE() { lock_.unlock(); }

  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace das
