#pragma once
// Console table and CSV rendering used by the benchmark harnesses to print
// the paper's tables/series in a stable, diff-friendly layout.

#include <ostream>
#include <string>
#include <vector>

namespace das {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so benchmark output is stable across runs of the
/// deterministic engine.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_* calls fill it left to right.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add(double v, int precision = 1);
  TextTable& add(std::int64_t v);
  TextTable& add(int v) { return add(static_cast<std::int64_t>(v)); }
  TextTable& add(std::size_t v) { return add(static_cast<std::int64_t>(v)); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with a separator line under the header.
  void print(std::ostream& os) const;
  /// Renders as CSV (no alignment, comma-separated, header first).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-zero stripping).
std::string fmt_double(double v, int precision = 1);

/// prefix + to_string(n), built by append: the `"lit" + std::to_string(...)`
/// operator+ chain trips GCC 12's -Wrestrict false positive (PR105329)
/// under -O2, so every indexed label ("C3", "n0", ...) goes through here.
std::string fmt_indexed(const char* prefix, long long n);

/// Formats a fraction as a percentage string, e.g. 0.425 -> "42.5%".
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace das
