#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in das (victim selection for work stealing,
// tie-breaking, cost-model noise, workload generation) flows through
// Xoshiro256** seeded via SplitMix64, so any experiment is reproducible from
// a single 64-bit seed. std::mt19937_64 is avoided in hot paths (stealing)
// because of its state size; xoshiro fits in 32 bytes.

#include <cstdint>

namespace das {

/// The single default seed shared by every engine entry point and the
/// Executor facade. The legacy defaults diverged (RtOptions used 7,
/// SimOptions 42), so "the same experiment" silently meant different random
/// streams per backend; figure-reproduction benches still pin their own
/// bench::kFigureSeed = 2020.
inline constexpr std::uint64_t kDefaultSeed = 42;

/// SplitMix64: used to expand a single seed into xoshiro's 4-word state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14); public-domain reference implementation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: general-purpose 64-bit PRNG (Blackman & Vigna,
/// public-domain reference implementation). Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x6a09e667f3bcc908ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift reduction (bias negligible for our bounds).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace das
