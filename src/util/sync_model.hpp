#pragma once
// Synchronization model used by the lock-free primitives.
//
// The hand-rolled primitives (util/mpsc_queue.hpp, util/eventcount.hpp,
// rt/wsq.hpp) are templated on a *model* that supplies their atomics,
// fences, mutexes and condition variables. Production code instantiates
// them with RealModel below — a zero-cost passthrough to the std types, so
// codegen is identical to writing std::atomic directly. The deterministic
// model checker (src/chk) instantiates the SAME primitive code with
// chk::Model, whose types route every operation through a cooperative
// scheduler and a weak-memory simulator — the checker exercises the real
// algorithms, not reimplementations.
//
// Model concept:
//   template <class T> using atomic = ...;   // std::atomic-shaped
//   template <class T> using var    = ...;   // checked non-atomic cell
//                                            // (plain T in RealModel)
//   using mutex    = ...;                    // BasicLockable
//   using cond_var = ...;                    // wait(unique_lock<mutex>&),
//                                            // notify_one/notify_all
//   static void thread_fence(std::memory_order);

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace das {

struct RealModel {
  template <class T>
  using atomic = std::atomic<T>;
  /// Non-atomic data whose cross-thread publication rides on an adjacent
  /// atomic edge. Plain storage here; the model checker's counterpart
  /// detects unsynchronized access.
  template <class T>
  using var = T;
  using mutex = std::mutex;
  using cond_var = std::condition_variable;
  static void thread_fence(std::memory_order order) {
    std::atomic_thread_fence(order);
  }
};

}  // namespace das
