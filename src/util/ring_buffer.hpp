#pragma once
// Flat ring buffer (single-threaded).
//
// The discrete-event engine's per-core queues (WSQ, inbox, assembly queue)
// need O(1) pushes and pops at BOTH ends: the owner pops its WSQ LIFO while
// thieves take the oldest entry FIFO, and the inbox/AQ are plain FIFOs.
// std::vector gives O(n) front pops (erase(begin()) memmoves the whole
// queue — quadratic when a wide DAG parks thousands of stealable tasks) and
// std::deque allocates per block. This ring keeps one power-of-two array
// that is reused across jobs: after warm-up, pushing and popping allocate
// nothing, and clear() keeps the capacity.
//
// Not thread-safe — the simulator is single-threaded by design. The
// real-thread engine's queues (rt/wsq.hpp, util/mpsc_queue.hpp) own the
// concurrent story.
//
// The kMutantWrap parameter exists only for the correctness harness
// (tests/model_check_test.cpp): it re-introduces the classic grow-time bug
// of copying by raw index instead of logical position, which corrupts the
// queue exactly when growth happens with head_ mid-ring (wrapped). Keeping
// the buggy variant compiled-in (but never instantiated by production
// code) proves the edge-case tests would catch a regression of this shape.

#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace das {

template <typename T, bool kMutantWrap = false>
class RingBuffer {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + size_) & mask()] = v;
    ++size_;
  }

  T& front() {
    DAS_ASSERT(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    DAS_ASSERT(size_ > 0);
    return buf_[head_];
  }
  T& back() {
    DAS_ASSERT(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask()];
  }
  const T& back() const {
    DAS_ASSERT(size_ > 0);
    return buf_[(head_ + size_ - 1) & mask()];
  }

  /// FIFO end (thief / dispatch order).
  void pop_front() {
    DAS_ASSERT(size_ > 0);
    head_ = (head_ + 1) & mask();
    --size_;
  }

  /// LIFO end (owner order).
  void pop_back() {
    DAS_ASSERT(size_ > 0);
    --size_;
  }

  /// Drops every entry but keeps the storage: steady-state reuse across
  /// jobs is the point of this container.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Grows storage to at least `min_capacity` (rounded up to a power of
  /// two), preserving contents and order. Works while non-empty and while
  /// head_ is wrapped — the relocation loop walks logical positions, not
  /// raw indices (see tests/ring_buffer_edge_test.cpp).
  void reserve(std::size_t min_capacity) {
    if (min_capacity <= buf_.size()) return;
    std::size_t cap = buf_.empty() ? 8 : buf_.size();
    while (cap < min_capacity) cap *= 2;
    grow(cap);
  }

 private:
  std::size_t mask() const { return buf_.size() - 1; }

  void grow(std::size_t new_cap) {
    std::vector<T> next(new_cap);
    if constexpr (kMutantWrap) {
      // Deliberately wrong: copies by raw slot index, so a wrapped queue
      // (head_ + size_ > capacity) lands permuted. Harness-only.
      for (std::size_t i = 0; i < size_; ++i) next[i] = buf_[i];
    } else {
      for (std::size_t i = 0; i < size_; ++i)
        next[i] = buf_[(head_ + i) & mask()];
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;     // capacity is always 0 or a power of two
  std::size_t head_ = 0;   // index of front(); wraps via mask()
  std::size_t size_ = 0;
};

}  // namespace das
