#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace das::json {

namespace {

const char* type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Type got) {
  throw Error(std::string("expected ") + want + ", got " + type_name(got));
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const std::vector<Member>& Value::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

Value& Value::set(const std::string& key, Value v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : obj_)
    if (m.first == key) return &m.second;
  return nullptr;
}

Value& Value::push_back(Value v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
  return *this;
}

std::size_t Value::size() const {
  switch (type_) {
    case Type::kArray: return arr_.size();
    case Type::kObject: return obj_.size();
    default: type_error("array or object", type_);
  }
}

// --- writer -----------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional lossy stand-in and
    // keeps the document parseable by any consumer.
    out += "null";
    return;
  }
  // Integers (the common case: counts, seeds) print without an exponent or
  // trailing ".0"; everything else gets round-trip precision.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: write_number(out, num_); break;
    case Type::kString: write_escaped(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        newline(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        newline(depth + 1);
        write_escaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error(origin_ + ":" + std::to_string(line) + ":" +
                std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Line comments: scenario files are written by hand; allowing
        // "// ..." costs nothing and the writer never emits them.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    const std::size_t n = std::char_traits<char>::length(w);
    if (text_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_word("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported —
          // diagnose rather than emit broken UTF-8).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escapes unsupported");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a JSON value");
    const std::string tok = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double v = std::stod(tok, &used);
      if (used != tok.size()) throw std::invalid_argument(tok);
      return Value(v);
    } catch (const std::exception&) {
      pos_ = start;
      fail("invalid number '" + tok + "'");
    }
  }

  const std::string& text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& origin) {
  return Parser(text, origin).parse_document();
}

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw Error(path + ": read error");
  return parse(buf.str(), path);
}

}  // namespace das::json
