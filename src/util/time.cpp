#include "util/time.hpp"

#include "util/spinlock.hpp"  // cpu_relax

namespace das {

void busy_wait_ns(std::int64_t ns) {
  if (ns <= 0) return;
  const std::int64_t deadline = now_ns() + ns;
  // Check the clock in bursts: reading steady_clock costs ~20 ns, so a burst
  // of pauses between reads keeps the overhead below 1% for waits >= 2 us
  // while staying accurate to well under a microsecond.
  while (now_ns() < deadline) {
    for (int i = 0; i < 8; ++i) cpu_relax();
  }
}

}  // namespace das
