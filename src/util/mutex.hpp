#pragma once
// Annotated mutex / condition-variable wrappers.
//
// Thin shims over std::mutex and std::condition_variable that carry clang
// Thread Safety Analysis attributes (util/thread_annotations.hpp), so
// `DAS_GUARDED_BY(mu_)` members are statically checked under the CI clang
// cell. libstdc++'s std::mutex has no capability annotations, which is why
// the wrapper exists at all — the analysis needs an annotated type to track.
//
// Usage mirrors the std types:
//
//     Mutex mu_;
//     CondVar cv_;
//     int guarded_ DAS_GUARDED_BY(mu_);
//
//     MutexLock g(mu_);             // scoped acquire (std::unique_lock)
//     while (!guarded_) cv_.wait(g);
//
// Prefer explicit `while (!pred) cv.wait(g);` loops over predicate lambdas:
// the analysis cannot see that a lambda body runs with the lock held, so a
// predicate reading guarded state would need an opt-out annotation.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace das {

class DAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DAS_ACQUIRE() { mu_.lock(); }
  void unlock() DAS_RELEASE() { mu_.unlock(); }
  bool try_lock() DAS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock for Mutex; also the handle CondVar::wait() parks on (the wait
/// releases and reacquires the underlying std::mutex through it).
class DAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DAS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() DAS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a MutexLock. No capability of its own:
/// the guarded predicate is re-evaluated by the caller's while-loop, which
/// the analysis checks against the MutexLock in scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `g`'s mutex and sleeps; the mutex is reheld on
  /// return. Spurious wakeups happen — always wait in a predicate loop.
  void wait(MutexLock& g) { cv_.wait(g.lock_); }

  /// wait() with a relative deadline: returns std::cv_status::timeout when
  /// `d` elapsed without a notification. Same predicate-loop discipline as
  /// wait() — timeout only bounds one sleep, not the loop.
  std::cv_status wait_for(MutexLock& g, std::chrono::nanoseconds d) {
    return cv_.wait_for(g.lock_, d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace das
