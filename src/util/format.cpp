#include "util/format.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace das {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  DAS_CHECK(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  DAS_CHECK_MSG(!rows_.empty(), "call row() before add()");
  DAS_CHECK_MSG(rows_.back().size() < header_.size(), "row has more cells than header");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double v, int precision) {
  return add(fmt_double(v, precision));
}

TextTable& TextTable::add(std::int64_t v) {
  return add(std::to_string(v));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << s;
      if (c + 1 < header_.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_indexed(const char* prefix, long long n) {
  std::string out(prefix);
  out += std::to_string(n);
  return out;
}

}  // namespace das
