#pragma once
// Checked preconditions for the das library.
//
// DAS_CHECK is always on (cold paths: construction, configuration, API
// boundaries) and throws, so tests can assert misuse. DAS_ASSERT compiles to
// the standard assert and is meant for hot paths (queue operations, event
// dispatch).

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace das {

/// Thrown when a DAS_CHECK precondition fails.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "DAS_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace das

#define DAS_CHECK(expr)                                                 \
  do {                                                                  \
    if (!(expr)) ::das::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define DAS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream das_check_os_;                                 \
      das_check_os_ << msg;                                             \
      ::das::detail::check_failed(#expr, __FILE__, __LINE__, das_check_os_.str()); \
    }                                                                   \
  } while (0)

#define DAS_ASSERT(expr) assert(expr)
