#pragma once
// Clang Thread Safety Analysis annotations.
//
// These macros expand to clang's `capability` attribute family when the
// compiler supports it and to nothing otherwise (GCC builds see plain
// declarations). CI compiles the tree with clang and
// `-Wthread-safety -Werror`, so every annotated lock acquisition/guarded
// access is checked statically on every push; local GCC builds are
// unaffected.
//
// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   DAS_CAPABILITY(name)    - the type is a lock ("capability")
//   DAS_SCOPED_CAPABILITY   - RAII type that acquires on ctor / releases on dtor
//   DAS_GUARDED_BY(mu)      - data member readable/writable only with mu held
//   DAS_PT_GUARDED_BY(mu)   - pointee guarded (the pointer itself is not)
//   DAS_REQUIRES(mu)        - function must be called with mu held
//   DAS_EXCLUDES(mu)        - function must be called with mu NOT held
//   DAS_ACQUIRE(mu...)      - function acquires mu (member fn: `this`)
//   DAS_RELEASE(mu...)      - function releases mu
//   DAS_TRY_ACQUIRE(b, mu)  - try-lock: acquires mu when returning `b`
//   DAS_NO_THREAD_SAFETY_ANALYSIS - opt a function out (document why!)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DAS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DAS_THREAD_ANNOTATION
#define DAS_THREAD_ANNOTATION(x)
#endif

#define DAS_CAPABILITY(x) DAS_THREAD_ANNOTATION(capability(x))
#define DAS_SCOPED_CAPABILITY DAS_THREAD_ANNOTATION(scoped_lockable)
#define DAS_GUARDED_BY(x) DAS_THREAD_ANNOTATION(guarded_by(x))
#define DAS_PT_GUARDED_BY(x) DAS_THREAD_ANNOTATION(pt_guarded_by(x))
#define DAS_REQUIRES(...) \
  DAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DAS_REQUIRES_SHARED(...) \
  DAS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define DAS_EXCLUDES(...) DAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DAS_ACQUIRE(...) \
  DAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DAS_RELEASE(...) \
  DAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DAS_TRY_ACQUIRE(...) \
  DAS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DAS_RETURN_CAPABILITY(x) DAS_THREAD_ANNOTATION(lock_returned(x))
#define DAS_ASSERT_CAPABILITY(x) \
  DAS_THREAD_ANNOTATION(assert_capability(x))
#define DAS_NO_THREAD_SAFETY_ANALYSIS \
  DAS_THREAD_ANNOTATION(no_thread_safety_analysis)
