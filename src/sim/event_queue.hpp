#pragma once
// Deterministic event queue for the discrete-event engine.
//
// Events are ordered by (time, insertion sequence): ties in virtual time are
// resolved FIFO, so a simulation is a pure function of (DAG, topology,
// scenario, seed) — the property the determinism tests pin down.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace das::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Item {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(double time, Payload payload) {
    DAS_ASSERT(time >= 0.0);
    heap_.push_back(Item{time, seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Item& top() const {
    DAS_ASSERT(!heap_.empty());
    return heap_.front();
  }

  Item pop() {
    DAS_ASSERT(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return item;
  }

  /// Appends to `out` every event tied with the earliest virtual time, in
  /// (time, seq) order — exactly the order repeated pop() calls would
  /// produce, so batch consumers replay bitwise. Returns the number popped.
  /// Callers reuse one `out` buffer across calls (clearing, not
  /// deallocating) to keep million-event runs free of per-step allocation.
  std::size_t pop_ready(std::vector<Item>& out) {
    if (heap_.empty()) return 0;
    const double t = heap_.front().time;
    std::size_t n = 0;
    do {
      out.push_back(pop());
      ++n;
    } while (!heap_.empty() && heap_.front().time == t);
    return n;
  }

  /// Pre-sizes the heap for `n` more events than currently queued. Called
  /// at job release with the DAG's node count: root/release pushes then
  /// grow the vector at most once instead of through the doubling ladder.
  /// Growth stays geometric (never below 2x the current capacity) so a
  /// burst of submits does not degrade into quadratic exact-fit
  /// reallocations.
  void reserve(std::size_t n) {
    const std::size_t want = heap_.size() + n;
    if (want > heap_.capacity())
      heap_.reserve(std::max(heap_.capacity() * 2, want));
  }

  void clear() { heap_.clear(); }

 private:
  // std::push_heap builds a max-heap; After makes the *earliest* event the
  // max element.
  struct After {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Item> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace das::sim
