#pragma once
// Deterministic event queue for the discrete-event engine.
//
// Events are ordered by (time, insertion sequence): ties in virtual time are
// resolved FIFO, so a simulation is a pure function of (DAG, topology,
// scenario, seed) — the property the determinism tests pin down.
//
// Two storage tiers, one logical order:
//
//   - FIFO *lanes* for event classes whose timestamps are nondecreasing by
//     construction. Virtual time never goes backwards, so "now + <fixed
//     per-lane delay>" pushes arrive already sorted — a flat ring buffer
//     holds them in pop order with O(1) push and pop, no heap at all. The
//     engine routes its dominant traffic (dispatch/completion/steal wakes,
//     zero-delay releases) through lanes; push_lane asserts the
//     monotonicity contract.
//   - a 4-ary array *heap* for irregular timestamps (cost-model completion
//     times, jittered backoff wakes, job arrival offsets). Explicit 4-ary
//     beats std::push_heap/std::pop_heap over a binary tree: half the
//     sift depth and the four children sit in adjacent slots.
//
// pop() merges the tiers by (time, seq), which IS the global order — a lane
// is internally sorted and the heap yields its minimum, so the earliest
// head across sources is the earliest event outright. The pop sequence is
// therefore bit-identical to a single binary heap's; only the internal
// layout differs. An occupancy mask over the sources (bit 0 = heap, bit
// 1+i = lane i) keeps the merge from scanning empty heads: with one hot
// source — the common regime, a lane burst or a heap-only tail — pop does
// a single countr_zero and no compare at all.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/ring_buffer.hpp"

namespace das::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Item {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  /// Configures `n` FIFO lanes (ids 0..n-1). Must be called while empty;
  /// engines do it once at construction.
  void set_num_lanes(int n) {
    DAS_CHECK(empty());
    DAS_CHECK(n >= 0 && n < 31);  // mask bit 1+i per lane
    lanes_.resize(static_cast<std::size_t>(n));
    heads_.assign(lanes_.size() + 1, Head{});
    active_mask_ = 0;
  }

  /// Heap push: any timestamp >= 0.
  void push(double time, Payload payload) {
    DAS_ASSERT(time >= 0.0);
    heap_.push_back(Item{time, seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
    ++size_;
    heads_[0] = Head{heap_.front().time, heap_.front().seq};
    active_mask_ |= 1u;
  }

  /// Lane push: `time` must be >= the lane's newest entry (the caller's
  /// class-of-event guarantees it — virtual now() is nondecreasing and the
  /// lane's delay is a constant).
  void push_lane(int lane, double time, Payload payload) {
    DAS_ASSERT(time >= 0.0);
    RingBuffer<Item>& q = lanes_[static_cast<std::size_t>(lane)];
    DAS_ASSERT(q.empty() || time >= q.back().time);
    if (q.empty()) {
      heads_[static_cast<std::size_t>(lane) + 1] = Head{time, seq_};
      active_mask_ |= 1u << (lane + 1);
    }
    q.push_back(Item{time, seq_++, std::move(payload)});
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  const Item& top() const {
    DAS_ASSERT(!empty());
    const int src = best_source();
    return src < 0 ? heap_.front()
                   : lanes_[static_cast<std::size_t>(src)].front();
  }

  Item pop() { return pop_from(best_source()); }

  /// Pre-sizes the heap for `n` more events than currently queued. Called
  /// at job release with the DAG's node count: root/release pushes then
  /// grow the vector at most once instead of through the doubling ladder.
  /// Growth stays geometric (never below 2x the current capacity) so a
  /// burst of submits does not degrade into quadratic exact-fit
  /// reallocations.
  void reserve(std::size_t n) {
    const std::size_t want = heap_.size() + n;
    if (want > heap_.capacity())
      heap_.reserve(std::max(heap_.capacity() * 2, want));
  }

  void clear() {
    heap_.clear();
    for (auto& q : lanes_) q.clear();
    heads_.assign(lanes_.size() + 1, Head{});
    active_mask_ = 0;
    size_ = 0;
  }

 private:
  /// True when `a` pops strictly before `b`.
  static bool before(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Removes and returns the head of `src` (lane index or -1 = heap).
  Item pop_from(int src) {
    DAS_ASSERT(!empty());
    --size_;
    if (src >= 0) {
      RingBuffer<Item>& q = lanes_[static_cast<std::size_t>(src)];
      Item out = std::move(q.front());
      q.pop_front();
      if (q.empty()) {
        heads_[static_cast<std::size_t>(src) + 1] = Head{};
        active_mask_ &= ~(1u << (src + 1));
      } else {
        heads_[static_cast<std::size_t>(src) + 1] =
            Head{q.front().time, q.front().seq};
      }
      return out;
    }
    Item out = std::move(heap_.front());
    Item last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = std::move(last);
      sift_down(0);
      heads_[0] = Head{heap_.front().time, heap_.front().seq};
    } else {
      heads_[0] = Head{};
      active_mask_ &= ~1u;
    }
    return out;
  }

  /// Source holding the global (time, seq) minimum: lane index, or -1 for
  /// the heap. Caller guarantees !empty(). Walks only the OCCUPIED bits of
  /// the source mask: one countr_zero when a single source is hot (the
  /// common case), a strict (time, seq) compare per extra live source
  /// otherwise — ascending bit order keeps the lowest-index tie-break the
  /// full scan had, so the pop order is bit-identical.
  int best_source() const {
    DAS_ASSERT(active_mask_ != 0);
    std::uint32_t m = active_mask_;
    std::size_t best = static_cast<std::size_t>(std::countr_zero(m));
    m &= m - 1;
    while (m != 0) {
      const auto i = static_cast<std::size_t>(std::countr_zero(m));
      m &= m - 1;
      const Head& h = heads_[i];
      const Head& b = heads_[best];
      if (h.time < b.time || (h.time == b.time && h.seq < b.seq)) best = i;
    }
    DAS_ASSERT(heads_[best].time !=
               std::numeric_limits<double>::infinity());
    return static_cast<int>(best) - 1;
  }

  void sift_up(std::size_t i) {
    Item item = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(item, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(item);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Item item = std::move(heap_[i]);
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + 4, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], item)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(item);
  }

  /// Head summary of one source for the merge scan; empty = +inf sentinel
  /// (never selected while any source holds a real event).
  struct Head {
    double time = std::numeric_limits<double>::infinity();
    std::uint64_t seq = std::numeric_limits<std::uint64_t>::max();
  };

  std::vector<Item> heap_;            // 4-ary min-heap, irregular times
  std::vector<RingBuffer<Item>> lanes_;  // per-class FIFOs, sorted by contract
  std::vector<Head> heads_ = std::vector<Head>(1);  // [0]=heap, [1+i]=lane i
  std::uint32_t active_mask_ = 0;     // bit set <=> heads_[bit] is live
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;              // heap + all lanes
};

}  // namespace das::sim
