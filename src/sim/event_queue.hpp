#pragma once
// Deterministic event queue for the discrete-event engine.
//
// Events are ordered by (time, insertion sequence): ties in virtual time are
// resolved FIFO, so a simulation is a pure function of (DAG, topology,
// scenario, seed) — the property the determinism tests pin down.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace das::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Item {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(double time, Payload payload) {
    DAS_ASSERT(time >= 0.0);
    heap_.push_back(Item{time, seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Item& top() const {
    DAS_ASSERT(!heap_.empty());
    return heap_.front();
  }

  Item pop() {
    DAS_ASSERT(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    return item;
  }

  void clear() { heap_.clear(); }

 private:
  // std::push_heap builds a max-heap; After makes the *earliest* event the
  // max element.
  struct After {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Item> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace das::sim
