#pragma once
// Barrier-free window synchronization for the conservative parallel DES.
//
// Each DES rank thread (sim/engine.hpp) advances through a sequence of
// phases per time window: (1) process every local event inside the window
// horizon, staging cross-rank releases into boundary queues; (2) after all
// ranks finished phase 1, drain the in-bound boundary queues and publish
// the rank's next-event time. A rank publishes each phase transition as a
// monotone per-rank epoch; ranks that reach a phase boundary early park on
// the PR 4 eventcount until the stragglers' epochs catch up. There is no
// central coordinator and no lock on the fast path — one release store +
// notify per phase, one acquire sweep (usually already satisfied) per wait.
//
// Determinism contract: the epochs only order *phases*; everything a rank
// publishes for others to read (next-event times, boundary spill buffers)
// is written before its phase store and read after the waiter's acquire
// sweep. The window-min rule (next window start = min over published
// next-event times) is computed redundantly per rank over the same
// published slots, so every rank derives the same window without another
// round of communication.
//
// Templated on the sync model (util/sync_model.hpp): the model-checker
// scenarios in tests/model_check_test.cpp explore this exact template and
// catch the seeded clock-publication and park/wake mutants before any real
// thread runs the protocol.

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/eventcount.hpp"
#include "util/sync_model.hpp"

namespace das::sim {

template <class Model = RealModel>
class BasicRankSync {
 public:
  explicit BasicRankSync(int num_ranks)
      : slots_(static_cast<std::size_t>(num_ranks)) {
    DAS_CHECK(num_ranks > 0);
  }

  BasicRankSync(const BasicRankSync&) = delete;
  BasicRankSync& operator=(const BasicRankSync&) = delete;

  /// Publishes `rank`'s phase epoch (strictly monotone per rank) and wakes
  /// any rank parked in wait_all_at_least. Everything the rank wrote for
  /// other ranks to read this phase — its next-event time slot, boundary
  /// spill buffers — happens-before this store.
  void publish_phase(int rank, std::uint64_t phase) {
    slot(rank).phase.store(phase, std::memory_order_release);
    ec_.notify();
  }

  /// Blocks until every rank's published epoch is >= `phase`, parking on
  /// the eventcount between sweeps. On return the caller is synchronized
  /// with every rank's publish_phase(phase) — their time slots (and
  /// anything else they published before the phase store) are visible.
  void wait_all_at_least(std::uint64_t phase) {
    while (!all_at_least(phase)) {
      const auto key = ec_.prepare_wait();
      if (all_at_least(phase)) {
        ec_.cancel_wait();
        return;
      }
      ec_.commit_wait(key);
    }
  }

  /// Stores `rank`'s next-event time for the window-min rule. Must be
  /// followed by publish_phase before any other rank reads it.
  void set_time(int rank, double t) { slot(rank).time = t; }

  /// Minimum published next-event time across all ranks; +infinity when
  /// every queue drained. Callers must hold a wait_all_at_least
  /// synchronization covering the set_time writes they read.
  double min_time() const {
    double m = std::numeric_limits<double>::infinity();
    for (const Slot& s : slots_) {
      const double t = s.time;
      if (t < m) m = t;
    }
    return m;
  }

  /// `rank`'s published epoch (acquire): test/diagnostic hook.
  std::uint64_t phase(int rank) const {
    return slot(rank).phase.load(std::memory_order_acquire);
  }

  int num_ranks() const { return static_cast<int>(slots_.size()); }

 private:
  // Cacheline-padded so rank A's phase stores do not invalidate the line
  // rank B spins its sweep on. (The chk instantiation's cells are fat
  // bookkeeping objects anyway; padding is for RealModel.)
  struct alignas(64) Slot {
    typename Model::template atomic<std::uint64_t> phase{0};
    typename Model::template var<double> time{
        std::numeric_limits<double>::infinity()};
  };

  Slot& slot(int rank) { return slots_[static_cast<std::size_t>(rank)]; }
  const Slot& slot(int rank) const {
    return slots_[static_cast<std::size_t>(rank)];
  }

  bool all_at_least(std::uint64_t phase) const {
    for (const Slot& s : slots_)
      if (s.phase.load(std::memory_order_acquire) < phase) return false;
    return true;
  }

  std::vector<Slot> slots_;
  BasicEventCount<Model> ec_;
};

using RankSync = BasicRankSync<RealModel>;

}  // namespace das::sim
