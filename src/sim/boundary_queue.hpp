#pragma once
// Bounded SPSC boundary-release queue for the conservative parallel DES.
//
// One queue per ordered rank pair (sender -> receiver) carries cross-rank
// DAG releases between per-rank event loops (sim/engine.hpp). The producer
// is the sender rank's worker thread staging releases while it processes a
// time window; the consumer is the receiver rank draining at the next
// window-phase boundary (sim/rank_sync.hpp publishes the phase epochs that
// separate the two).
//
// The ring itself is safe under *concurrent* producer/consumer use — slot
// payloads are published by the release store of tail_ and consumed behind
// the acquire load — so the protocol does not depend on the phase barrier
// for memory safety, only for determinism (drain order must be a pure
// function of the event streams, not the thread schedule). Overflow past
// the fixed ring capacity spills to a producer-owned vector whose
// publication DOES ride the phase epoch: spill_ is only touched by the
// producer between drains, and drain() may only observe it after the
// caller synchronized with the producer's phase publication. daslint's
// hot-path rules apply to push(): the ring fast path allocates nothing.
//
// Templated on the sync model (util/sync_model.hpp) so the deterministic
// model checker (src/chk) explores the REAL template: the boundary-queue
// scenarios in tests/model_check_test.cpp run this exact code under
// exhaustive schedules and catch the seeded publication mutants.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/sync_model.hpp"

namespace das::sim {

template <class T, class Model = RealModel>
class BasicBoundaryQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2). The ring is
  /// sized once: steady-state cross-rank traffic allocates nothing, bursts
  /// beyond it spill (correctly, but through the slow path). Slots are
  /// constructed in place — chk::Var cells are neither movable nor
  /// copyable, so the vector is sized exactly once here.
  explicit BasicBoundaryQueue(std::size_t capacity = 256)
      : slots_(round_up_pow2(capacity)) {}

  BasicBoundaryQueue(const BasicBoundaryQueue&) = delete;
  BasicBoundaryQueue& operator=(const BasicBoundaryQueue&) = delete;

  /// Producer side. Publishes `v` to the consumer: ring fast path, spill
  /// vector once the ring is full (the consumer has not caught up within
  /// this window — it drains only at phase boundaries).
  void push(const T& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      spill_.push_back(v);
      spill_count_ = static_cast<std::uint64_t>(spill_.size());
      return;
    }
    slots_[static_cast<std::size_t>(t) & (slots_.size() - 1)] = v;
    tail_.store(t + 1, std::memory_order_release);
  }

  /// Consumer side: invokes `fn(item)` on everything the producer pushed,
  /// ring first (push order), then the spill. The ring segment is safe
  /// against a concurrently pushing producer; observing the spill requires
  /// the caller to have synchronized with the producer's phase epoch
  /// (sim/rank_sync.hpp) — which also hands the spill storage back to the
  /// producer race-free after this returns.
  template <class Fn>
  void drain(Fn&& fn) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    for (; h != t; ++h)
      fn(static_cast<T>(slots_[static_cast<std::size_t>(h) & (slots_.size() - 1)]));
    head_.store(h, std::memory_order_release);
    // Reading spill_count_ (a checked cell under chk::Model) asserts the
    // caller really did synchronize with the producer's phase epoch; the
    // plain spill storage is shadowed by it.
    const auto spilled =
        static_cast<std::size_t>(static_cast<std::uint64_t>(spill_count_));
    if (spilled != 0) {
      for (std::size_t i = 0; i < spilled; ++i) fn(spill_[i]);
      spill_.clear();
      spill_count_ = 0;
    }
  }

  /// Producer-side view (both sides quiescent at phase boundaries).
  bool empty() const {
    return tail_.load(std::memory_order_relaxed) ==
               head_.load(std::memory_order_relaxed) &&
           static_cast<std::uint64_t>(spill_count_) == 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    return cap;
  }

  std::vector<typename Model::template var<T>> slots_;
  typename Model::template atomic<std::uint64_t> head_{0};
  typename Model::template atomic<std::uint64_t> tail_{0};
  // Overflow spill: producer-owned between drains; synchronized by the
  // window-phase epoch, not by the ring's atomics (see header comment).
  // spill_count_ is the model-checked shadow of spill_.size(): every
  // producer append writes it, every consumer drain reads it, so an
  // unsynchronized handoff surfaces as a race on this cell.
  std::vector<T> spill_;
  typename Model::template var<std::uint64_t> spill_count_{0};
};

template <class T>
using BoundaryQueue = BasicBoundaryQueue<T, RealModel>;

}  // namespace das::sim
