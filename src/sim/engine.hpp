#pragma once
// Discrete-event execution engine.
//
// Simulates the XiTAO-style runtime of paper §4.1.2 — per-worker
// work-stealing queue (WSQ), steal-exempt priority inbox, FIFO assembly
// queue (AQ), moldable assemblies — in deterministic virtual time. Task
// durations come from the task type's analytic cost model evaluated against
// the SpeedScenario at the participant's start instant, optionally perturbed
// by lognormal measurement noise.
//
// The engine drives the *same* PolicyEngine and Ptt code as the real-thread
// runtime, so scheduling behaviour (searches, exploration, steal-exemption)
// is shared, not re-implemented. It exists because the paper's figures
// depend on relative core speeds that the build machine does not have: in
// virtual time the TX2's asymmetry, the DVFS square wave and the co-runner
// interference are exact, and every figure regenerates bit-identically from
// a seed.
//
// Hot-path design (bench/sim_throughput.cpp is the regression sentinel; the
// golden determinism test pins that none of this perturbs the event or RNG
// streams):
//   - per-core queues are flat ring buffers reused across jobs (no
//     steady-state allocation, O(1) pops at both WSQ ends);
//   - an idle-core bitmap (bit set <=> no pending wake/done event) lets a
//     stealable push wake exactly the idle cores of the rank in ascending
//     core order without scanning every core;
//   - a WSQ-occupancy bitmap gives try_steal its victim count and the k-th
//     victim by bit rank, replacing the per-call victim vector while
//     preserving the seeded victim-selection stream;
//   - jobs live in a slot-indexed table (free-list reuse) with a flat
//     JobId -> slot window, so per-event job resolution is two array
//     loads, not a std::map walk;
//   - release fan-out walks the DAG's sealed CSR adjacency arena.
//
// Job service: the engine executes a *stream* of independent DAGs (jobs)
// over one persistent worker/PTT state. submit() releases a job's roots at
// now() + arrival_offset in virtual time; wait() advances the event loop
// until that job's last task completes and returns its makespan (release ->
// completion). Jobs whose release windows overlap interleave on the same
// queues exactly like concurrent applications sharing a runtime; the event
// queue's (time, insertion-sequence) order makes any fixed submission trace
// bitwise replayable. run() remains submit+wait sugar for the one-shot case.
//
// Multi-rank mode: each rank (MPI-process analogue) has its own topology,
// scenario, policy, PTT and stats; work stealing never crosses ranks; DAG
// edges between ranks carry a network delay (DagEdge::delay_s).
//
// Sharded / parallel DES: ALL mutable per-rank simulation state — event
// queue, virtual clock, RNG stream, core rings, idle/WSQ bitmaps, event
// counter — lives in a per-rank, cacheline-aligned Shard arena; event
// payloads carry rank-LOCAL core ids, so the hot handlers never resolve a
// global core to a rank at all. A single-rank engine is exactly shard 0 and
// byte-for-byte reproduces the historical event/RNG streams (the
// sim_determinism goldens pin this). A multi-rank engine runs a
// conservative (Chandy-Misra-style) time-window protocol over the shards:
//
//   window:  [W, W + L], L = min cross-rank DagEdge::delay_s over the
//            in-flight jobs (Dag::min_cross_rank_delay(), sealed metadata);
//            W = min next-event time across shards.
//   phase 1: every rank processes its local events with time <= W + L;
//            cross-rank releases are staged into bounded SPSC boundary
//            queues (sim/boundary_queue.hpp), never pushed remotely.
//   phase 2: after all ranks published phase 1 (per-rank atomic epochs +
//            eventcount parking — sim/rank_sync.hpp, no barrier object, no
//            lock), each rank drains its in-bound boundary queues in
//            sender-rank order and publishes its next-event time; the next
//            W is the min over those.
//
// Because a cross-rank release sent from t_send >= W arrives at
// t_send + delay >= W + L, nothing can land inside a horizon a rank already
// processed — the window partition, the drain order and therefore the whole
// simulation are pure functions of the event streams, independent of the
// thread schedule. SimOptions::des_threads > 1 runs the SAME protocol with
// one worker thread per rank block; des_threads == 1 (default) runs it on
// the calling thread in rank order. Serial and parallel multi-rank runs are
// bitwise identical by construction (tests/parallel_des_test.cpp asserts
// per-rank trace hashes and RunResults across the policy grid).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/cost_expr.hpp"
#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/fault_plan.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "sim/boundary_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rank_sync.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"
#include "util/eventcount.hpp"
#include "util/inline.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace das::sim {

struct SimOptions {
  std::uint64_t seed = kDefaultSeed;  ///< shared default (util/rng.hpp)
  double dispatch_overhead_s = 1e-6;  ///< dequeue -> assembly insertion cost
  double steal_latency_s = 2e-6;      ///< successful steal round-trip
  /// Bookkeeping a finishing participant performs (PTT update, waking the
  /// dependents) before it looks for new work. This matters: it gives a
  /// just-released high-priority assembly time to reach the finisher's AQ,
  /// so the finisher joins it instead of grabbing a low-priority child from
  /// its own WSQ first (priority inversion).
  double completion_overhead_s = 2e-6;
  /// Idle workers back off (XiTAO-style sleep between failed steal sweeps),
  /// so a task pushed while a core sleeps is noticed only after this delay.
  /// Busy cores re-examine their queues immediately on completion.
  double idle_wake_delay_s = 200e-6;
  bool noise = true;                  ///< lognormal measurement noise
  int stats_phases = 1;               ///< phase dimension of ExecutionStats
  /// Pin the type-erased generic event loop even when every cost model has
  /// a closed form — the A/B lever the determinism test uses to assert the
  /// fused instantiations are bitwise-identical to generic dispatch.
  bool force_generic_dispatch = false;
  /// Worker threads for multi-rank runs: <= 1 simulates every rank's
  /// window phases on the calling thread (default); N > 1 spreads the
  /// ranks over min(N, num_ranks) threads running the identical
  /// conservative window protocol — results are bitwise the same either
  /// way. Ignored for single-rank engines (nothing to parallelize).
  int des_threads = 1;
  /// Fold every processed event (time, kind, core, job, task, waker) into
  /// a per-rank FNV-1a trace hash, exposed by trace_hash(rank). The
  /// parallel-vs-serial equality tests compare these; off by default so
  /// the hot loop pays one predicted-untaken branch.
  bool hash_traces = false;
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  /// Optional execution timeline (Chrome trace export); not owned.
  Timeline* timeline = nullptr;
};

/// One scheduling domain (a machine node). `scenario` and `faults` may be
/// null; a non-empty fault plan (cores of THIS rank, rank-local ids) seeds
/// fail-stop/freeze events into the rank's shard at construction.
struct RankSpec {
  const Topology* topo = nullptr;
  const SpeedScenario* scenario = nullptr;
  const FaultPlan* faults = nullptr;
};

class SimEngine {
 public:
  SimEngine(std::vector<RankSpec> ranks, Policy policy,
            const TaskTypeRegistry& registry, SimOptions options = {});
  /// Single-rank convenience.
  SimEngine(const Topology& topo, Policy policy, const TaskTypeRegistry& registry,
            SimOptions options = {}, const SpeedScenario* scenario = nullptr,
            const FaultPlan* faults = nullptr);

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;
  ~SimEngine();

  /// Registers `dag` as a job whose roots release at now() + arrival_offset_s
  /// virtual seconds, without advancing the clock. `dag` must stay alive
  /// until the job has been wait()ed. Submissions are part of the replayable
  /// trace: the same (seed, submit/arrival sequence) is bitwise deterministic.
  JobId submit(const Dag& dag, double arrival_offset_s = 0.0);

  /// Advances the event loop until job `id` completes (events of other
  /// in-flight jobs interleave in virtual-time order) and returns the job's
  /// makespan: completion - release, in virtual seconds. Each job can be
  /// waited exactly once; waiting an unknown/already-waited id throws.
  double wait(JobId id);

  /// Executes every task of `dag` and returns the run's makespan in virtual
  /// seconds (submit + wait). May be called repeatedly: the virtual clock,
  /// the PTTs and the stats accumulate across runs (iterative applications
  /// keep their learned model, exactly like a persistent runtime).
  double run(const Dag& dag) { return wait(submit(dag)); }

  /// Virtual clock: the single shard's clock, or — multi-rank — the latest
  /// instant any rank has simulated to (ranks inside one committed window
  /// are mutually unordered; the max is the cluster's wall clock).
  double now() const;
  /// Events dispatched since construction (wakes, completions, releases,
  /// root drops), summed over ranks. The simulator-throughput bench divides
  /// this by wall time; it is also a cheap cross-check that two runs took
  /// identical paths.
  std::uint64_t events_processed() const;
  /// Events dispatched by one rank's shard (per-rank bench reporting and
  /// the parallel-vs-serial equality tests).
  std::uint64_t events_processed(int rank) const;
  /// FNV-1a hash of the rank's processed-event trace; 0 unless
  /// SimOptions::hash_traces. Two runs with equal hashes per rank took
  /// bitwise-identical per-rank event paths.
  std::uint64_t trace_hash(int rank = 0) const;
  /// The window lookahead currently in force: min cross-rank delay over
  /// every job submitted so far (+inf before the first cross-rank edge).
  double lookahead_s() const { return lookahead_; }
  /// Which event loop the engine currently dispatches: "generic" (type-
  /// erased policy + std::function escape hatch) or a fused instantiation
  /// label ("fused:DAM-C/expr", see core/cost_expr.hpp). Re-evaluated at
  /// every submit() — registering a kCallable cost model demotes the next
  /// job to generic dispatch; the simulated results are identical either
  /// way (pinned bitwise by tests/sim_determinism_test.cpp).
  const char* dispatch_variant() const { return dispatch_variant_; }
  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  /// Jobs submitted but not yet wait()ed to completion.
  int jobs_in_flight() const { return live_jobs_; }
  /// Fail-stop recovery accounting, summed over ranks: tasks re-released to
  /// survivors after losing at least one participant, and cores fail-stopped
  /// so far. Deterministic functions of (seed, fault plan, submission trace).
  std::uint64_t tasks_reexecuted() const;
  int cores_failed() const;

  ExecutionStats& stats(int rank = 0);
  const ExecutionStats& stats(int rank = 0) const;
  PolicyEngine& policy(int rank = 0);
  PttStore& ptt(int rank = 0);

  /// Virtual completion time of a node of the most recently wait()ed job.
  double completion_time(NodeId id) const;

  // --- service hooks (the exec-layer session/admission machinery) ----------
  // The job-service layer above the engine needs two notifications delivered
  // in event order: "job X finished at t" (to free an in-flight slot and
  // release queued jobs) and "timer T fired at t" (deferred tenant
  // arrivals). Both MAY re-enter the engine (submit(), schedule_timer()), so
  // they are NOT invoked from inside step() — step holds a live Job& while
  // job_slots_ could reallocate under a re-entrant submit. Instead step()
  // records them in a deferred list that pump_one() delivers after the
  // handler frame unwinds. Without hooks installed nothing is recorded and
  // the event/RNG streams are bit-identical to the bare engine.

  /// Installs the service hooks. Must be called before the first event that
  /// would fire one; typically right after construction.
  void set_service_hooks(std::function<void(JobId, double)> job_done,
                         std::function<void(std::uint64_t, double)> timer);
  /// Schedules a timer event at now() + offset_s carrying `token` back to
  /// the timer hook (rank 0's event stream). Requires service hooks
  /// installed.
  void schedule_timer(double offset_s, std::uint64_t token);
  /// Advances the simulation by one quantum — one event (single-rank), one
  /// conservative window (multi-rank) — then delivers any deferred service
  /// notifications it produced; returns false (advancing nothing) when
  /// every event queue is empty. Hooks may submit()/schedule_timer() but
  /// must not re-enter pump_one()/wait().
  bool pump_one();
  /// True once job `id`'s last task completed. `id` must be in flight
  /// (submitted, not yet wait()ed).
  bool job_done(JobId id) { return job_of(id).done; }

 private:
  enum class Ev : std::uint8_t { kWake, kDone, kRelease, kRoot, kTimer, kFault };
  struct Event {
    Ev kind;
    int core = -1;             // rank-LOCAL core id (kWake, kDone)
    JobId job = kInvalidJob;   // owning job (kDone, kRelease, kRoot)
    NodeId task = kInvalidNode;
    int from_core = -1;        // releasing LOCAL core, or kRemoteWaker
  };
  /// from_core sentinel on releases that crossed a rank boundary: the
  /// remote core id is meaningless here, and make_ready must take the
  /// affinity path (a remote completion cannot name local queues).
  static constexpr int kRemoteWaker = -2;

  /// A staged cross-rank release travelling through a boundary queue.
  struct BoundaryMsg {
    double time;
    Event ev;
  };

  // FIFO lanes of the event queue (see sim/event_queue.hpp): each carries
  // one class of event whose delay from now() is a fixed constant, so its
  // timestamps are nondecreasing by construction and it needs no heap.
  static constexpr int kLaneImmediate = 0;   // direct wakes, 0-delay releases
  static constexpr int kLaneDispatch = 1;    // now + dispatch_overhead_s
  static constexpr int kLaneCompletion = 2;  // now + completion_overhead_s
  static constexpr int kLaneSteal = 3;       // now + steal + dispatch
  static constexpr int kNumLanes = 4;

  /// A task reference as queued: jobs interleave on the same per-core
  /// queues, so every entry names its job.
  struct QueuedTask {
    JobId job = kInvalidJob;
    NodeId task = kInvalidNode;
  };

  struct Participation {
    JobId job;
    NodeId task;
    int rank_in_assembly;
  };

  /// Per-core queues are flat rings, reused across jobs: pushing and
  /// popping allocate nothing in steady state, and the thief-side FIFO pop
  /// is O(1) instead of vector::erase(begin())'s memmove.
  struct CoreState {
    RingBuffer<QueuedTask> inbox;      // steal-exempt FIFO (pop front)
    RingBuffer<QueuedTask> wsq;        // owner pops back, thieves pop front
    RingBuffer<Participation> aq;      // FIFO (pop front)
    bool active = false;               // has a pending kWake/kDone event
    bool busy = false;                 // mid-participation (invariant check)
    /// Fail-stopped: queues reclaimed, active pinned true forever so
    /// activate() no-ops and the idle-bitmap sweep never wakes it again.
    bool dead = false;
    /// Freeze thaw instant: pending kWake/kDone popped before this are
    /// re-pushed at it (no progress inside the window). -inf-free sentinel.
    double frozen_until = -1.0;
    /// The participation currently executing (valid while busy): lets a
    /// core-death event reclaim its in-flight task. Written unconditionally
    /// — a plain store never perturbs the event/RNG streams.
    Participation running{};
  };

  struct TaskState {
    bool has_fixed_place = false;
    ExecutionPlace place{};
    int arrivals = 0;
    int departures = 0;
    /// Participations lost to core deaths: the task re-releases (fresh
    /// attempt on survivors) once departures + lost == place.width — live
    /// participants always finish their busy window first, so completion
    /// stays exactly-once.
    int lost = 0;
    double first_arrival = 0.0;
    double max_cost = 0.0;  ///< slowest participant's busy time
    double completion = -1.0;
    /// Registry row, resolved ONCE at make_ready: every participant of the
    /// task (cost evaluation + noise sigma) reads this instead of repeating
    /// the registry lookup. Valid for the task's lifetime — registering
    /// types mid-run is already unsupported (the PTT is sized at engine
    /// construction).
    const TaskTypeInfo* type_info = nullptr;
  };

  // Deferred service notifications (see set_service_hooks): appended by the
  // event handlers in event order, drained by pump_one() after the quantum
  // completes. Empty unless hooks are installed.
  struct Deferred {
    bool timer = false;
    std::uint64_t id = 0;  // JobId (done) or timer token
    double time = 0.0;
  };

  /// One in-flight job: its DAG, per-node state, and completion accounting.
  /// Lives in a reusable slot of job_slots_ (the tasks array's capacity
  /// survives slot reuse, so job churn stops allocating). `tasks` is an
  /// overwrite array, not a vector: entries are UNINITIALIZED until
  /// make_ready's first-touch reset, so a million-node submit does not
  /// sweep 50 MB of task state it is about to overwrite anyway.
  ///
  /// Sharing across ranks: dag/preds/tasks entries are only ever touched by
  /// the rank owning the node, so the only cross-rank fields are the
  /// completion accounting below — multi-rank handlers access `completed`,
  /// `finish_s` (max over completion instants — order-free, hence
  /// schedule-independent) and `done` through std::atomic_ref; the
  /// single-rank path keeps the historical plain operations.
  struct Job {
    const Dag* dag = nullptr;
    std::unique_ptr<TaskState[]> tasks;
    std::size_t tasks_cap = 0;
    /// Remaining-predecessor countdown, one int per node — separate from
    /// TaskState so submit seeds it with one flat copy from the DAG's
    /// sealed predecessor_counts() instead of a strided scatter.
    std::vector<std::int32_t> preds;
    std::int64_t completed = 0;
    double release_s = 0.0;   ///< virtual arrival instant of the roots
    double finish_s = -1.0;   ///< completion of the last task; -1 while open
    bool done = false;
  };

  /// Per-rank immutable configuration + learning state (the PTT/policy/
  /// stats were always rank-local; they stay here, next to the shard that
  /// is the only writer).
  struct Rank {
    const Topology* topo;
    const SpeedScenario* scenario;
    std::unique_ptr<PttStore> ptt;
    std::unique_ptr<PolicyEngine> policy;
    std::unique_ptr<ExecutionStats> stats;
    int first_core = 0;  // global core id of this rank's core 0 (timeline)
  };

  /// ALL mutable per-rank simulation state, one cacheline-aligned arena per
  /// rank so two ranks' hot loops never share a line. Core ids inside a
  /// shard are rank-local [0, num_cores) — the cross-rank hot path does no
  /// rank_of_core resolution at all. Single-rank engines have exactly one
  /// shard and local == global.
  struct alignas(64) Shard {
    int rank = 0;
    int num_cores = 0;
    EventQueue<Event> events;
    double now = 0.0;
    std::uint64_t events_processed = 0;
    std::uint64_t trace_hash = 0xcbf29ce484222325ULL;  // FNV offset basis
    Xoshiro256 rng{0};
    std::vector<CoreState> cores;
    std::vector<std::uint64_t> idle_bits;  // bit set <=> !cores[c].active
    std::vector<std::uint64_t> wsq_bits;   // bit set <=> !cores[c].wsq.empty()
    std::vector<Deferred> deferred;
    /// This rank's resolved fault schedule (empty without faults). Seeded
    /// into the event heap at construction; kFault events carry an index
    /// into this vector in their job field.
    std::vector<CoreFault> faults;
    std::uint64_t tasks_reexecuted = 0;
    int cores_failed = 0;
    /// Out-bound boundary-release queues, one per destination rank
    /// ([self] stays null). This shard is the only producer; the
    /// destination shard drains in window phase 2.
    std::vector<std::unique_ptr<BoundaryQueue<BoundaryMsg>>> out;

    double next_event_time() const;
  };

  /// API-boundary resolution (submit/wait): throws on unknown ids.
  Job& job_of(JobId id);
  /// Hot-path resolution: event payloads only ever name live jobs, so this
  /// is two array loads behind an assert.
  Job& job_at(JobId id) {
    const auto idx = static_cast<std::size_t>(id - lookup_base_);
    DAS_ASSERT(id >= lookup_base_ && idx < job_lookup_.size() &&
               job_lookup_[idx] >= 0);
    return job_slots_[static_cast<std::size_t>(job_lookup_[idx])];
  }
  const DagNode& node_of(const Job& job, NodeId id) const { return job.dag->node(id); }

  // --- core activity / occupancy bitmaps -----------------------------------
  // idle_bits mirrors !CoreState::active (bit set = idle, may be woken);
  // wsq_bits mirrors !CoreState::wsq.empty() (bit set = steal victim).
  // Every transition routes through these helpers so the bitmaps can never
  // drift from the per-core flags they index. All ids are shard-local.
  static void set_active(Shard& sh, int core) {
    sh.cores[static_cast<std::size_t>(core)].active = true;
    sh.idle_bits[static_cast<std::size_t>(core) >> 6] &=
        ~(std::uint64_t{1} << (core & 63));
  }
  static void set_inactive(Shard& sh, int core) {
    sh.cores[static_cast<std::size_t>(core)].active = false;
    sh.idle_bits[static_cast<std::size_t>(core) >> 6] |=
        std::uint64_t{1} << (core & 63);
  }
  static void wsq_push(Shard& sh, int core, const QueuedTask& qt) {
    CoreState& cs = sh.cores[static_cast<std::size_t>(core)];
    if (cs.wsq.empty())
      sh.wsq_bits[static_cast<std::size_t>(core) >> 6] |=
          std::uint64_t{1} << (core & 63);
    cs.wsq.push_back(qt);
  }
  static void wsq_mark_if_empty(Shard& sh, int core) {
    if (sh.cores[static_cast<std::size_t>(core)].wsq.empty())
      sh.wsq_bits[static_cast<std::size_t>(core) >> 6] &=
          ~(std::uint64_t{1} << (core & 63));
  }
  /// The word range [lo, hi) masked out of `bits`, for bitmap scans.
  static std::uint64_t masked_word(const std::vector<std::uint64_t>& bits,
                                   int word, int lo, int hi);

  /// `direct` models an explicit wake signal to the target worker (used for
  /// steal-exempt placements): no backoff-sleep jitter is added.
  void activate(Shard& sh, int core, double at, bool direct = false);
  /// activate(c, t) for every idle core of the shard in ascending core
  /// order — the bitmap replacement for the all-cores activation sweep.
  void wake_idle_cores(Shard& sh, double t);
  /// Dispatches one shard-0 event (single-rank pump path) through whichever
  /// loop refresh_dispatch() selected.
  void step() { step_fn_(*this); }
  bool events_pending() const;
  /// Outlined kTimer record (the call site sits inside the step hot-path
  /// lint region; the deferred-list push must not).
  void note_timer_fired(Shard& sh, const Event& e, double t);

  // --- event handlers, templated over the dispatch mode --------------------
  // `Mode` binds a PolicyHooks adapter (core/policy.hpp: static tag or
  // dynamic fallback) and a CostEval strategy (engine.cpp: closed-form,
  // fixed-constant, or the std::function escape hatch). There is exactly ONE
  // implementation of every handler — the generic loop is the
  // (DynamicPolicyHooks, callable) instantiation — so fused and generic
  // dispatch cannot diverge; the sim-determinism goldens pin them bitwise.
  // Every handler operates on ONE shard; in parallel runs that shard's
  // owning thread is the only caller. Definitions and all instantiations
  // live in engine.cpp.
  template <class Mode> void step_t(Shard& sh);
  template <class Mode>
  DAS_HOT_INLINE void handle_wake_t(Shard& sh, int core, double t);
  template <class Mode> void handle_done_t(Shard& sh, const Event& e, double t);
  // --- fail-stop / freeze machinery (engine.cpp, outside the lint regions) --
  // Everything below is reached only when faults_enabled_; an empty fault
  // plan leaves the event and RNG streams byte-identical to the bare engine
  // (the determinism goldens pin this).
  /// kFault dispatch: freeze extends the core's thaw instant; fail-stop
  /// marks the core dead, reclaims its inbox/WSQ entries (re-homed to a
  /// survivor) and counts its queued + in-flight participations lost.
  template <class Mode> void handle_fault_t(Shard& sh, const Event& e, double t);
  /// One participation lost to a core death; re-releases the task when no
  /// live participant remains outstanding.
  template <class Mode>
  void reclaim_participation_t(Shard& sh, JobId job_id, NodeId id, double t);
  /// Re-releases a task whose attempt lost participants (exactly-once: the
  /// lost attempt recorded no completion).
  template <class Mode>
  void requeue_lost_t(Shard& sh, JobId job_id, NodeId id, double t);
  /// Outlined freeze deferral (the call site sits inside the step hot-path
  /// lint region; the heap push must not).
  void defer_frozen(Shard& sh, const Event& e, double until);
  /// First live core at or cyclically after `from`; checks the rank still
  /// has survivors.
  int live_fallback_core(const Shard& sh, int from) const;
  template <class Mode>
  void handle_release_t(Shard& sh, const Event& e, double t);
  template <class Mode>
  void make_ready_t(Shard& sh, JobId job, NodeId id, int waking_core,
                    double t);
  // The participation chain is DAS_HOT_INLINE (util/inline.hpp): with 16
  // fused instantiations in the TU, GCC's unit-growth budget otherwise
  // stops inlining it into the handlers — the layout the monolithic
  // pre-fusion loop had — and the extra calls cost more than the
  // devirtualization saves.
  template <class Mode>
  DAS_HOT_INLINE void start_participation_t(Shard& sh, int core,
                                            const Participation& p, double t);
  template <class Mode> bool try_steal_t(Shard& sh, int core, double t);
  template <class Mode>
  DAS_HOT_INLINE double participation_cost_t(Shard& sh, const Job& job,
                                             NodeId id, int core,
                                             int rank_in_assembly, double t);
  DAS_HOT_INLINE void distribute(Shard& sh, Job& job, JobId job_id, NodeId id,
                                 const ExecutionPlace& place, double t);
  static double lognormal_noise(Shard& sh, double sigma);

  // --- conservative window protocol (multi-rank) ---------------------------
  /// Phase 1 of the current window for one shard: process local events up
  /// to and including window_hi_, staging cross-rank releases.
  template <class Mode> void window_phase1_t(Shard& sh);
  /// Phase 2: drain in-bound boundary queues in sender-rank order (the
  /// deterministic seq assignment), publish the shard's next-event time.
  void window_phase2(Shard& sh);
  /// Runs one complete window [window start = sync_ min, + lookahead_] over
  /// all shards — on the calling thread in rank order (des_threads <= 1) or
  /// with the parked worker threads (des_threads > 1). Caller must have
  /// refreshed the published next-event times (refresh_times()).
  void run_window();
  /// Re-publishes every shard's next-event time; only valid while the
  /// workers are quiescent (between windows). submit() invalidates the
  /// published times, hence this runs at the top of every drain/pump.
  void refresh_times();
  /// Window loop until `job` completes or every queue drains.
  void drain_windows(const Job& job);
  /// Delivers the deferred service notifications of every shard in rank
  /// order (event order within a shard), then clears them.
  void deliver_deferred();
  /// Lazily spawns the worker threads (multi-rank, des_threads > 1).
  void ensure_workers();
  /// Worker-thread body: waits for window commands, runs the owned rank
  /// block's phases, parks again.
  void worker_loop(int thread_index);
  /// Ranks owned by protocol thread `t` (contiguous block partition; thread
  /// 0 is the caller). The partition does not affect results — only which
  /// thread executes a given shard's deterministic phase.
  std::pair<int, int> rank_block(int thread_index) const;

  // --- dispatch selection ---------------------------------------------------
  /// Rebinds step_fn_/drain_fn_/window_fn_ to the loop matching (policy,
  /// registry): a fused (policy-tag x cost-class) instantiation when every
  /// executable cost model carries a closed form, the generic loop
  /// otherwise (or under SimOptions::force_generic_dispatch). Called at
  /// construction and at every submit().
  void refresh_dispatch();
  template <class Mode> void set_mode();
  template <class Tag> void set_fused(CostClass cls);
  template <class Mode> void drain_t(const Job& job);

  std::vector<Rank> ranks_;
  std::vector<Shard> shards_;
  Policy policy_kind_;
  const TaskTypeRegistry* registry_;
  SimOptions options_;
  /// Any rank has a non-empty fault plan. Gates every fault check in the
  /// hot handlers behind one predicted-untaken branch.
  bool faults_enabled_ = false;

  // Slot-indexed job table. JobIds are handed out monotonically, so the
  // id -> slot resolution is a flat window [lookup_base_, next_job_): two
  // array loads per event instead of a std::map walk. Completed ids mark
  // their window entry -1; the dead prefix is trimmed amortized-O(1).
  std::vector<Job> job_slots_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::int32_t> job_lookup_;  // [id - lookup_base_] -> slot | -1
  JobId lookup_base_ = 0;
  std::size_t lookup_dead_prefix_ = 0;
  int live_jobs_ = 0;
  JobId next_job_ = 0;
  double elapsed_mark_ = 0.0;  ///< now() at the end of the previous wait()
  // completion_time() source: the most recent wait()'s task array (swapped
  // out of the retiring job, counted entries only are meaningful).
  std::unique_ptr<TaskState[]> last_waited_tasks_;
  std::size_t last_waited_cap_ = 0;
  std::size_t last_waited_count_ = 0;

  std::function<void(JobId, double)> job_done_hook_;
  std::function<void(std::uint64_t, double)> timer_hook_;

  // --- window protocol state (multi-rank only) -----------------------------
  /// Conservative lookahead: min Dag::min_cross_rank_delay() over every job
  /// ever submitted. Monotone non-increasing — a deterministic function of
  /// the submission trace, which is what makes the window partition (and
  /// with it every cross-rank seq assignment) replayable.
  double lookahead_ = std::numeric_limits<double>::infinity();
  /// Inclusive horizon of the window currently executing; written by the
  /// driving thread before the command publication, read by workers after
  /// its acquire.
  double window_hi_ = 0.0;
  RankSync sync_{1};              // ctor initializes with the real rank count
  std::uint64_t round_ = 0;       // windows issued (command sequence)
  std::atomic<std::uint64_t> cmd_round_{0};
  std::atomic<bool> cmd_exit_{false};
  EventCount cmd_ec_;             // workers park here between windows
  std::vector<std::thread> workers_;
  int protocol_threads_ = 1;      // min(des_threads, num_ranks)

  // Selected event loop (see refresh_dispatch): step_fn_ dispatches one
  // event, drain_fn_ runs the wait() loop entirely inside one instantiation
  // so not even the per-event indirect call survives on the hot path;
  // window_fn_ runs one shard's window phase 1 (the multi-rank inner loop —
  // one indirect call per window, not per event).
  using StepFn = void (*)(SimEngine&);
  using DrainFn = void (*)(SimEngine&, const Job&);
  using WindowFn = void (*)(SimEngine&, Shard&);
  StepFn step_fn_ = nullptr;
  DrainFn drain_fn_ = nullptr;
  WindowFn window_fn_ = nullptr;
  const char* dispatch_variant_ = "generic";
};

}  // namespace das::sim
