#pragma once
// Discrete-event execution engine.
//
// Simulates the XiTAO-style runtime of paper §4.1.2 — per-worker
// work-stealing queue (WSQ), steal-exempt priority inbox, FIFO assembly
// queue (AQ), moldable assemblies — in deterministic virtual time. Task
// durations come from the task type's analytic cost model evaluated against
// the SpeedScenario at the participant's start instant, optionally perturbed
// by lognormal measurement noise.
//
// The engine drives the *same* PolicyEngine and Ptt code as the real-thread
// runtime, so scheduling behaviour (searches, exploration, steal-exemption)
// is shared, not re-implemented. It exists because the paper's figures
// depend on relative core speeds that the build machine does not have: in
// virtual time the TX2's asymmetry, the DVFS square wave and the co-runner
// interference are exact, and every figure regenerates bit-identically from
// a seed.
//
// Hot-path design (bench/sim_throughput.cpp is the regression sentinel; the
// golden determinism test pins that none of this perturbs the event or RNG
// streams):
//   - per-core queues are flat ring buffers reused across jobs (no
//     steady-state allocation, O(1) pops at both WSQ ends);
//   - an idle-core bitmap (bit set <=> no pending wake/done event) lets a
//     stealable push wake exactly the idle cores of the rank in ascending
//     core order without scanning every core;
//   - a WSQ-occupancy bitmap gives try_steal its victim count and the k-th
//     victim by bit rank, replacing the per-call victim vector while
//     preserving the seeded victim-selection stream;
//   - jobs live in a slot-indexed table (free-list reuse) with a flat
//     JobId -> slot window, so per-event job resolution is two array
//     loads, not a std::map walk;
//   - release fan-out walks the DAG's sealed CSR adjacency arena.
//
// Job service: the engine executes a *stream* of independent DAGs (jobs)
// over one persistent worker/PTT state. submit() releases a job's roots at
// now() + arrival_offset in virtual time; wait() advances the event loop
// until that job's last task completes and returns its makespan (release ->
// completion). Jobs whose release windows overlap interleave on the same
// queues exactly like concurrent applications sharing a runtime; the event
// queue's (time, insertion-sequence) order makes any fixed submission trace
// bitwise replayable. run() remains submit+wait sugar for the one-shot case.
//
// Multi-rank mode: each rank (MPI-process analogue) has its own topology,
// scenario, policy, PTT and stats; work stealing never crosses ranks; DAG
// edges between ranks carry a network delay (DagEdge::delay_s).

#include <functional>
#include <memory>
#include <vector>

#include "core/cost_expr.hpp"
#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "sim/event_queue.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"
#include "util/inline.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace das::sim {

struct SimOptions {
  std::uint64_t seed = kDefaultSeed;  ///< shared default (util/rng.hpp)
  double dispatch_overhead_s = 1e-6;  ///< dequeue -> assembly insertion cost
  double steal_latency_s = 2e-6;      ///< successful steal round-trip
  /// Bookkeeping a finishing participant performs (PTT update, waking the
  /// dependents) before it looks for new work. This matters: it gives a
  /// just-released high-priority assembly time to reach the finisher's AQ,
  /// so the finisher joins it instead of grabbing a low-priority child from
  /// its own WSQ first (priority inversion).
  double completion_overhead_s = 2e-6;
  /// Idle workers back off (XiTAO-style sleep between failed steal sweeps),
  /// so a task pushed while a core sleeps is noticed only after this delay.
  /// Busy cores re-examine their queues immediately on completion.
  double idle_wake_delay_s = 200e-6;
  bool noise = true;                  ///< lognormal measurement noise
  int stats_phases = 1;               ///< phase dimension of ExecutionStats
  /// Pin the type-erased generic event loop even when every cost model has
  /// a closed form — the A/B lever the determinism test uses to assert the
  /// fused instantiations are bitwise-identical to generic dispatch.
  bool force_generic_dispatch = false;
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  /// Optional execution timeline (Chrome trace export); not owned.
  Timeline* timeline = nullptr;
};

/// One scheduling domain (a machine node). `scenario` may be null.
struct RankSpec {
  const Topology* topo = nullptr;
  const SpeedScenario* scenario = nullptr;
};

class SimEngine {
 public:
  SimEngine(std::vector<RankSpec> ranks, Policy policy,
            const TaskTypeRegistry& registry, SimOptions options = {});
  /// Single-rank convenience.
  SimEngine(const Topology& topo, Policy policy, const TaskTypeRegistry& registry,
            SimOptions options = {}, const SpeedScenario* scenario = nullptr);

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;
  ~SimEngine();

  /// Registers `dag` as a job whose roots release at now() + arrival_offset_s
  /// virtual seconds, without advancing the clock. `dag` must stay alive
  /// until the job has been wait()ed. Submissions are part of the replayable
  /// trace: the same (seed, submit/arrival sequence) is bitwise deterministic.
  JobId submit(const Dag& dag, double arrival_offset_s = 0.0);

  /// Advances the event loop until job `id` completes (events of other
  /// in-flight jobs interleave in virtual-time order) and returns the job's
  /// makespan: completion - release, in virtual seconds. Each job can be
  /// waited exactly once; waiting an unknown/already-waited id throws.
  double wait(JobId id);

  /// Executes every task of `dag` and returns the run's makespan in virtual
  /// seconds (submit + wait). May be called repeatedly: the virtual clock,
  /// the PTTs and the stats accumulate across runs (iterative applications
  /// keep their learned model, exactly like a persistent runtime).
  double run(const Dag& dag) { return wait(submit(dag)); }

  double now() const { return now_; }
  /// Events dispatched since construction (wakes, completions, releases,
  /// root drops). The simulator-throughput bench divides this by wall time;
  /// it is also a cheap cross-check that two runs took identical paths.
  std::uint64_t events_processed() const { return events_processed_; }
  /// Which event loop the engine currently dispatches: "generic" (type-
  /// erased policy + std::function escape hatch) or a fused instantiation
  /// label ("fused:DAM-C/expr", see core/cost_expr.hpp). Re-evaluated at
  /// every submit() — registering a kCallable cost model demotes the next
  /// job to generic dispatch; the simulated results are identical either
  /// way (pinned bitwise by tests/sim_determinism_test.cpp).
  const char* dispatch_variant() const { return dispatch_variant_; }
  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  /// Jobs submitted but not yet wait()ed to completion.
  int jobs_in_flight() const { return live_jobs_; }

  ExecutionStats& stats(int rank = 0);
  const ExecutionStats& stats(int rank = 0) const;
  PolicyEngine& policy(int rank = 0);
  PttStore& ptt(int rank = 0);

  /// Virtual completion time of a node of the most recently wait()ed job.
  double completion_time(NodeId id) const;

  // --- service hooks (the exec-layer session/admission machinery) ----------
  // The job-service layer above the engine needs two notifications delivered
  // in event order: "job X finished at t" (to free an in-flight slot and
  // release queued jobs) and "timer T fired at t" (deferred tenant
  // arrivals). Both MAY re-enter the engine (submit(), schedule_timer()), so
  // they are NOT invoked from inside step() — step holds a live Job& while
  // job_slots_ could reallocate under a re-entrant submit. Instead step()
  // records them in a deferred list that pump_one() delivers after the
  // handler frame unwinds. Without hooks installed nothing is recorded and
  // the event/RNG streams are bit-identical to the bare engine.

  /// Installs the service hooks. Must be called before the first event that
  /// would fire one; typically right after construction.
  void set_service_hooks(std::function<void(JobId, double)> job_done,
                         std::function<void(std::uint64_t, double)> timer);
  /// Schedules a timer event at now() + offset_s carrying `token` back to
  /// the timer hook. Requires service hooks installed.
  void schedule_timer(double offset_s, std::uint64_t token);
  /// Dispatches ONE pending event, then delivers any deferred service
  /// notifications it produced; returns false (dispatching nothing) when the
  /// event queue is empty. Hooks may submit()/schedule_timer() but must not
  /// re-enter pump_one()/wait().
  bool pump_one();
  /// True once job `id`'s last task completed. `id` must be in flight
  /// (submitted, not yet wait()ed).
  bool job_done(JobId id) { return job_of(id).done; }

 private:
  enum class Ev : std::uint8_t { kWake, kDone, kRelease, kRoot, kTimer };
  struct Event {
    Ev kind;
    int core = -1;             // global core id (kWake, kDone)
    JobId job = kInvalidJob;   // owning job (kDone, kRelease, kRoot)
    NodeId task = kInvalidNode;
    int from_core = -1;        // releasing core (kRelease, kRoot)
  };

  // FIFO lanes of the event queue (see sim/event_queue.hpp): each carries
  // one class of event whose delay from now() is a fixed constant, so its
  // timestamps are nondecreasing by construction and it needs no heap.
  static constexpr int kLaneImmediate = 0;   // direct wakes, 0-delay releases
  static constexpr int kLaneDispatch = 1;    // now + dispatch_overhead_s
  static constexpr int kLaneCompletion = 2;  // now + completion_overhead_s
  static constexpr int kLaneSteal = 3;       // now + steal + dispatch
  static constexpr int kNumLanes = 4;

  /// A task reference as queued: jobs interleave on the same per-core
  /// queues, so every entry names its job.
  struct QueuedTask {
    JobId job = kInvalidJob;
    NodeId task = kInvalidNode;
  };

  struct Participation {
    JobId job;
    NodeId task;
    int rank_in_assembly;
  };

  /// Per-core queues are flat rings, reused across jobs: pushing and
  /// popping allocate nothing in steady state, and the thief-side FIFO pop
  /// is O(1) instead of vector::erase(begin())'s memmove.
  struct CoreState {
    RingBuffer<QueuedTask> inbox;      // steal-exempt FIFO (pop front)
    RingBuffer<QueuedTask> wsq;        // owner pops back, thieves pop front
    RingBuffer<Participation> aq;      // FIFO (pop front)
    bool active = false;               // has a pending kWake/kDone event
    bool busy = false;                 // mid-participation (invariant check)
  };

  struct TaskState {
    bool has_fixed_place = false;
    ExecutionPlace place{};
    int arrivals = 0;
    int departures = 0;
    double first_arrival = 0.0;
    double max_cost = 0.0;  ///< slowest participant's busy time
    double completion = -1.0;
    /// Registry row, resolved ONCE at make_ready: every participant of the
    /// task (cost evaluation + noise sigma) reads this instead of repeating
    /// the registry lookup. Valid for the task's lifetime — registering
    /// types mid-run is already unsupported (the PTT is sized at engine
    /// construction).
    const TaskTypeInfo* type_info = nullptr;
  };

  /// One in-flight job: its DAG, per-node state, and completion accounting.
  /// Lives in a reusable slot of job_slots_ (the tasks array's capacity
  /// survives slot reuse, so job churn stops allocating). `tasks` is an
  /// overwrite array, not a vector: entries are UNINITIALIZED until
  /// make_ready's first-touch reset, so a million-node submit does not
  /// sweep 50 MB of task state it is about to overwrite anyway.
  struct Job {
    const Dag* dag = nullptr;
    std::unique_ptr<TaskState[]> tasks;
    std::size_t tasks_cap = 0;
    /// Remaining-predecessor countdown, one int per node — separate from
    /// TaskState so submit seeds it with one flat copy from the DAG's
    /// sealed predecessor_counts() instead of a strided scatter.
    std::vector<std::int32_t> preds;
    std::int64_t completed = 0;
    double release_s = 0.0;   ///< virtual arrival instant of the roots
    double finish_s = -1.0;   ///< completion of the last task; -1 while open
    bool done = false;
  };

  struct Rank {
    const Topology* topo;
    const SpeedScenario* scenario;
    std::unique_ptr<PttStore> ptt;
    std::unique_ptr<PolicyEngine> policy;
    std::unique_ptr<ExecutionStats> stats;
    int first_core = 0;  // global core id of this rank's core 0
  };

  int global_core(int rank, int local) const { return ranks_[static_cast<std::size_t>(rank)].first_core + local; }
  int rank_of_core(int core) const;
  int local_core(int core) const;
  /// API-boundary resolution (submit/wait): throws on unknown ids.
  Job& job_of(JobId id);
  /// Hot-path resolution: event payloads only ever name live jobs, so this
  /// is two array loads behind an assert.
  Job& job_at(JobId id) {
    const auto idx = static_cast<std::size_t>(id - lookup_base_);
    DAS_ASSERT(id >= lookup_base_ && idx < job_lookup_.size() &&
               job_lookup_[idx] >= 0);
    return job_slots_[static_cast<std::size_t>(job_lookup_[idx])];
  }
  const DagNode& node_of(const Job& job, NodeId id) const { return job.dag->node(id); }

  // --- core activity / occupancy bitmaps -----------------------------------
  // idle_bits_ mirrors !CoreState::active (bit set = idle, may be woken);
  // wsq_bits_ mirrors !CoreState::wsq.empty() (bit set = steal victim).
  // Every transition routes through these helpers so the bitmaps can never
  // drift from the per-core flags they index.
  void set_active(int core) {
    cores_[static_cast<std::size_t>(core)].active = true;
    idle_bits_[static_cast<std::size_t>(core) >> 6] &=
        ~(std::uint64_t{1} << (core & 63));
  }
  void set_inactive(int core) {
    cores_[static_cast<std::size_t>(core)].active = false;
    idle_bits_[static_cast<std::size_t>(core) >> 6] |=
        std::uint64_t{1} << (core & 63);
  }
  void wsq_push(int core, const QueuedTask& qt) {
    CoreState& cs = cores_[static_cast<std::size_t>(core)];
    if (cs.wsq.empty())
      wsq_bits_[static_cast<std::size_t>(core) >> 6] |=
          std::uint64_t{1} << (core & 63);
    cs.wsq.push_back(qt);
  }
  void wsq_mark_if_empty(int core) {
    if (cores_[static_cast<std::size_t>(core)].wsq.empty())
      wsq_bits_[static_cast<std::size_t>(core) >> 6] &=
          ~(std::uint64_t{1} << (core & 63));
  }
  /// The rank's word range [lo, hi) masked out of `bits`, for bitmap scans.
  static std::uint64_t masked_word(const std::vector<std::uint64_t>& bits,
                                   int word, int lo, int hi);

  /// `direct` models an explicit wake signal to the target worker (used for
  /// steal-exempt placements): no backoff-sleep jitter is added.
  void activate(int core, double at, bool direct = false);
  /// activate(c, t) for every idle core of the rank in ascending core
  /// order — the bitmap replacement for the all-cores activation sweep.
  void wake_idle_cores(int rank, double t);
  /// Dispatches one event (events_pending() must be true) through whichever
  /// loop refresh_dispatch() selected.
  void step() { step_fn_(*this); }
  bool events_pending() const { return !events_.empty(); }
  /// Outlined kTimer record (the call site sits inside the step hot-path
  /// lint region; the deferred-list push must not).
  void note_timer_fired(const Event& e, double t);

  // --- event handlers, templated over the dispatch mode --------------------
  // `Mode` binds a PolicyHooks adapter (core/policy.hpp: static tag or
  // dynamic fallback) and a CostEval strategy (engine.cpp: closed-form,
  // fixed-constant, or the std::function escape hatch). There is exactly ONE
  // implementation of every handler — the generic loop is the
  // (DynamicPolicyHooks, callable) instantiation — so fused and generic
  // dispatch cannot diverge; the sim-determinism goldens pin them bitwise.
  // Definitions and all instantiations live in engine.cpp.
  template <class Mode> void step_t();
  template <class Mode> DAS_HOT_INLINE void handle_wake_t(int core, double t);
  template <class Mode> void handle_done_t(const Event& e, double t);
  template <class Mode> void handle_release_t(const Event& e, double t);
  template <class Mode>
  void make_ready_t(JobId job, NodeId id, int waking_core, double t);
  // The participation chain is DAS_HOT_INLINE (util/inline.hpp): with 16
  // fused instantiations in the TU, GCC's unit-growth budget otherwise
  // stops inlining it into the handlers — the layout the monolithic
  // pre-fusion loop had — and the extra calls cost more than the
  // devirtualization saves.
  template <class Mode>
  DAS_HOT_INLINE void start_participation_t(int core, const Participation& p,
                                            double t);
  template <class Mode> bool try_steal_t(int core, double t);
  template <class Mode>
  DAS_HOT_INLINE double participation_cost_t(const Job& job, NodeId id,
                                             int core, int rank_in_assembly,
                                             double t);
  DAS_HOT_INLINE void distribute(Job& job, JobId job_id, NodeId id,
                                 const ExecutionPlace& place, int rank,
                                 double t);
  double lognormal_noise(double sigma);

  // --- dispatch selection ---------------------------------------------------
  /// Rebinds step_fn_/drain_fn_ to the loop matching (policy, registry):
  /// a fused (policy-tag x cost-class) instantiation when every executable
  /// cost model carries a closed form, the generic loop otherwise (or under
  /// SimOptions::force_generic_dispatch). Called at construction and at
  /// every submit().
  void refresh_dispatch();
  template <class Mode> void set_mode();
  template <class Tag> void set_fused(CostClass cls);

  std::vector<Rank> ranks_;
  std::vector<int> rank_of_core_;  // global core -> rank index
  std::vector<int> first_core_of_core_;  // global core -> its rank's core 0
  Policy policy_kind_;
  const TaskTypeRegistry* registry_;
  SimOptions options_;
  Xoshiro256 rng_;
  EventQueue<Event> events_;
  double now_ = 0.0;
  std::uint64_t events_processed_ = 0;
  std::vector<CoreState> cores_;
  std::vector<std::uint64_t> idle_bits_;  // bit set <=> !cores_[c].active
  std::vector<std::uint64_t> wsq_bits_;   // bit set <=> !cores_[c].wsq.empty()

  // Slot-indexed job table. JobIds are handed out monotonically, so the
  // id -> slot resolution is a flat window [lookup_base_, next_job_): two
  // array loads per event instead of a std::map walk. Completed ids mark
  // their window entry -1; the dead prefix is trimmed amortized-O(1).
  std::vector<Job> job_slots_;
  std::vector<std::int32_t> free_slots_;
  std::vector<std::int32_t> job_lookup_;  // [id - lookup_base_] -> slot | -1
  JobId lookup_base_ = 0;
  std::size_t lookup_dead_prefix_ = 0;
  int live_jobs_ = 0;
  JobId next_job_ = 0;
  double elapsed_mark_ = 0.0;  ///< now_ at the end of the previous wait()
  // completion_time() source: the most recent wait()'s task array (swapped
  // out of the retiring job, counted entries only are meaningful).
  std::unique_ptr<TaskState[]> last_waited_tasks_;
  std::size_t last_waited_cap_ = 0;
  std::size_t last_waited_count_ = 0;

  // Deferred service notifications (see set_service_hooks): appended by the
  // event handlers in event order, drained by pump_one() after step()
  // returns. Empty unless hooks are installed.
  struct Deferred {
    bool timer = false;
    std::uint64_t id = 0;  // JobId (done) or timer token
    double time = 0.0;
  };
  std::vector<Deferred> deferred_;
  std::function<void(JobId, double)> job_done_hook_;
  std::function<void(std::uint64_t, double)> timer_hook_;

  // Selected event loop (see refresh_dispatch): step_fn_ dispatches one
  // event, drain_fn_ runs the wait() loop entirely inside one instantiation
  // so not even the per-event indirect call survives on the hot path.
  using StepFn = void (*)(SimEngine&);
  using DrainFn = void (*)(SimEngine&, const Job&);
  StepFn step_fn_ = nullptr;
  DrainFn drain_fn_ = nullptr;
  const char* dispatch_variant_ = "generic";
};

}  // namespace das::sim
