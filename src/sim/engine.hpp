#pragma once
// Discrete-event execution engine.
//
// Simulates the XiTAO-style runtime of paper §4.1.2 — per-worker
// work-stealing queue (WSQ), steal-exempt priority inbox, FIFO assembly
// queue (AQ), moldable assemblies — in deterministic virtual time. Task
// durations come from the task type's analytic cost model evaluated against
// the SpeedScenario at the participant's start instant, optionally perturbed
// by lognormal measurement noise.
//
// The engine drives the *same* PolicyEngine and Ptt code as the real-thread
// runtime, so scheduling behaviour (searches, exploration, steal-exemption)
// is shared, not re-implemented. It exists because the paper's figures
// depend on relative core speeds that the build machine does not have: in
// virtual time the TX2's asymmetry, the DVFS square wave and the co-runner
// interference are exact, and every figure regenerates bit-identically from
// a seed.
//
// Job service: the engine executes a *stream* of independent DAGs (jobs)
// over one persistent worker/PTT state. submit() releases a job's roots at
// now() + arrival_offset in virtual time; wait() advances the event loop
// until that job's last task completes and returns its makespan (release ->
// completion). Jobs whose release windows overlap interleave on the same
// queues exactly like concurrent applications sharing a runtime; the event
// queue's (time, insertion-sequence) order makes any fixed submission trace
// bitwise replayable. run() remains submit+wait sugar for the one-shot case.
//
// Multi-rank mode: each rank (MPI-process analogue) has its own topology,
// scenario, policy, PTT and stats; work stealing never crosses ranks; DAG
// edges between ranks carry a network delay (DagEdge::delay_s).

#include <map>
#include <memory>
#include <vector>

#include "core/dag.hpp"
#include "core/policy.hpp"
#include "core/ptt.hpp"
#include "core/task_type.hpp"
#include "platform/speed_model.hpp"
#include "platform/topology.hpp"
#include "sim/event_queue.hpp"
#include "trace/stats.hpp"
#include "trace/timeline.hpp"
#include "util/rng.hpp"

namespace das::sim {

struct SimOptions {
  std::uint64_t seed = kDefaultSeed;  ///< shared default (util/rng.hpp)
  double dispatch_overhead_s = 1e-6;  ///< dequeue -> assembly insertion cost
  double steal_latency_s = 2e-6;      ///< successful steal round-trip
  /// Bookkeeping a finishing participant performs (PTT update, waking the
  /// dependents) before it looks for new work. This matters: it gives a
  /// just-released high-priority assembly time to reach the finisher's AQ,
  /// so the finisher joins it instead of grabbing a low-priority child from
  /// its own WSQ first (priority inversion).
  double completion_overhead_s = 2e-6;
  /// Idle workers back off (XiTAO-style sleep between failed steal sweeps),
  /// so a task pushed while a core sleeps is noticed only after this delay.
  /// Busy cores re-examine their queues immediately on completion.
  double idle_wake_delay_s = 200e-6;
  bool noise = true;                  ///< lognormal measurement noise
  int stats_phases = 1;               ///< phase dimension of ExecutionStats
  PolicyOptions policy_options{};
  UpdateRatio ptt_ratio{};
  /// Optional execution timeline (Chrome trace export); not owned.
  Timeline* timeline = nullptr;
};

/// One scheduling domain (a machine node). `scenario` may be null.
struct RankSpec {
  const Topology* topo = nullptr;
  const SpeedScenario* scenario = nullptr;
};

class SimEngine {
 public:
  SimEngine(std::vector<RankSpec> ranks, Policy policy,
            const TaskTypeRegistry& registry, SimOptions options = {});
  /// Single-rank convenience.
  SimEngine(const Topology& topo, Policy policy, const TaskTypeRegistry& registry,
            SimOptions options = {}, const SpeedScenario* scenario = nullptr);

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;
  ~SimEngine();

  /// Registers `dag` as a job whose roots release at now() + arrival_offset_s
  /// virtual seconds, without advancing the clock. `dag` must stay alive
  /// until the job has been wait()ed. Submissions are part of the replayable
  /// trace: the same (seed, submit/arrival sequence) is bitwise deterministic.
  JobId submit(const Dag& dag, double arrival_offset_s = 0.0);

  /// Advances the event loop until job `id` completes (events of other
  /// in-flight jobs interleave in virtual-time order) and returns the job's
  /// makespan: completion - release, in virtual seconds. Each job can be
  /// waited exactly once; waiting an unknown/already-waited id throws.
  double wait(JobId id);

  /// Executes every task of `dag` and returns the run's makespan in virtual
  /// seconds (submit + wait). May be called repeatedly: the virtual clock,
  /// the PTTs and the stats accumulate across runs (iterative applications
  /// keep their learned model, exactly like a persistent runtime).
  double run(const Dag& dag) { return wait(submit(dag)); }

  double now() const { return now_; }
  int num_ranks() const { return static_cast<int>(ranks_.size()); }
  /// Jobs submitted but not yet wait()ed to completion.
  int jobs_in_flight() const { return static_cast<int>(jobs_.size()); }

  ExecutionStats& stats(int rank = 0);
  const ExecutionStats& stats(int rank = 0) const;
  PolicyEngine& policy(int rank = 0);
  PttStore& ptt(int rank = 0);

  /// Virtual completion time of a node of the most recently wait()ed job.
  double completion_time(NodeId id) const;

 private:
  enum class Ev : std::uint8_t { kWake, kDone, kRelease, kRoot };
  struct Event {
    Ev kind;
    int core = -1;             // global core id (kWake, kDone)
    JobId job = kInvalidJob;   // owning job (kDone, kRelease, kRoot)
    NodeId task = kInvalidNode;
    int from_core = -1;        // releasing core (kRelease, kRoot)
    double cost = 0.0;         // participation busy time (kDone)
  };

  /// A task reference as queued: jobs interleave on the same per-core
  /// queues, so every entry names its job.
  struct QueuedTask {
    JobId job = kInvalidJob;
    NodeId task = kInvalidNode;
  };

  struct Participation {
    JobId job;
    NodeId task;
    int rank_in_assembly;
  };

  struct CoreState {
    std::vector<QueuedTask> inbox;      // steal-exempt FIFO (pop front)
    std::vector<QueuedTask> wsq;        // owner pops back, thieves pop front
    std::vector<Participation> aq;      // FIFO (pop front)
    bool active = false;                // has a pending kWake/kDone event
    bool busy = false;                  // mid-participation (invariant check)
  };

  struct TaskState {
    int preds = 0;
    bool has_fixed_place = false;
    ExecutionPlace place{};
    int arrivals = 0;
    int departures = 0;
    double first_arrival = 0.0;
    double max_cost = 0.0;  ///< slowest participant's busy time
    double completion = -1.0;
  };

  /// One in-flight job: its DAG, per-node state, and completion accounting.
  struct Job {
    const Dag* dag = nullptr;
    std::vector<TaskState> tasks;
    std::int64_t completed = 0;
    double release_s = 0.0;   ///< virtual arrival instant of the roots
    double finish_s = -1.0;   ///< completion of the last task; -1 while open
    bool done = false;
  };

  struct Rank {
    const Topology* topo;
    const SpeedScenario* scenario;
    std::unique_ptr<PttStore> ptt;
    std::unique_ptr<PolicyEngine> policy;
    std::unique_ptr<ExecutionStats> stats;
    int first_core = 0;  // global core id of this rank's core 0
  };

  int global_core(int rank, int local) const { return ranks_[static_cast<std::size_t>(rank)].first_core + local; }
  int rank_of_core(int core) const;
  int local_core(int core) const;
  Job& job_of(JobId id);
  const DagNode& node_of(const Job& job, NodeId id) const { return job.dag->node(id); }

  /// `direct` models an explicit wake signal to the target worker (used for
  /// steal-exempt placements): no backoff-sleep jitter is added.
  void activate(int core, double at, bool direct = false);
  void step();  ///< dispatches one event (events_pending() must be true)
  /// True while the ready batch or the heap still holds events. wait()
  /// loops on this, never on events_.empty() alone: step() drains
  /// identical-time events through ready_batch_ (one heap sweep per
  /// distinct virtual instant), and a job can complete mid-batch.
  bool events_pending() const {
    return ready_pos_ < ready_batch_.size() || !events_.empty();
  }
  void handle_wake(int core, double t);
  void handle_done(const Event& e, double t);
  void handle_release(const Event& e, double t);
  void make_ready(JobId job, NodeId id, int waking_core, double t);
  void distribute(JobId job, NodeId id, const ExecutionPlace& place, int rank,
                  double t);
  void start_participation(int core, const Participation& p, double t);
  bool try_steal(int core, double t);
  double participation_cost(const Job& job, NodeId id, int core,
                            int rank_in_assembly, double t);
  double lognormal_noise(double sigma);

  std::vector<Rank> ranks_;
  std::vector<int> rank_of_core_;  // global core -> rank index
  Policy policy_kind_;
  const TaskTypeRegistry* registry_;
  SimOptions options_;
  Xoshiro256 rng_;
  EventQueue<Event> events_;
  /// Identical-time batch buffer, reused across steps (allocation-free in
  /// steady state). Handlers may push new events for the SAME instant while
  /// a batch drains; those carry larger insertion sequences than anything
  /// in the batch, so heap order == batch-then-heap order and the replay
  /// stays bitwise identical to one-at-a-time popping.
  std::vector<EventQueue<Event>::Item> ready_batch_;
  std::size_t ready_pos_ = 0;
  double now_ = 0.0;
  std::vector<CoreState> cores_;

  // In-flight jobs, keyed by id. Ordered map: deterministic by construction
  // (lookups only drive execution; iteration order never does), and cheap to
  // reason about in the debugger.
  std::map<JobId, Job> jobs_;
  JobId next_job_ = 0;
  double elapsed_mark_ = 0.0;  ///< now_ at the end of the previous wait()
  std::vector<TaskState> last_waited_tasks_;  // completion_time() source
};

}  // namespace das::sim
