#include "sim/event_queue.hpp"

// EventQueue is a header-only template; this translation unit anchors the
// sim object library and provides an explicit instantiation used by tests to
// keep template bloat out of every including TU.

namespace das::sim {

template class EventQueue<int>;

}  // namespace das::sim
