#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>

#include "core/cost_expr.hpp"
#include "util/assert.hpp"

namespace das::sim {

namespace {

// Cost-evaluation strategies the event loop binds at compile time (the
// second axis of the fused (policy x cost) instantiation grid; the first is
// the PolicyHooks adapter from core/policy.hpp). All three produce
// bit-identical doubles for catalog-built registries because they share one
// arithmetic implementation (core/cost_expr.hpp) — the callable path merely
// reaches it through the std::function the factories wrapped around it.

/// Generic escape hatch: honours a user-supplied std::function (and still
/// skips the indirection when a closed form exists).
struct CallableCostEval {
  static double eval(const TaskTypeInfo& info, const TaskParams& p,
                     const CostQuery& q) {
    return cost_eval(info, p, q);
  }
};

/// Every executable type carries a closed form: inline switch, no erasure.
struct ExprCostEval {
  static double eval(const TaskTypeInfo& info, const TaskParams& p,
                     const CostQuery& q) {
    return cost_expr_eval(info.expr, p, q);
  }
};

/// Every executable type is a kFixed constant: one load replaces the whole
/// evaluation — the regime the scheduler-overhead benches run in.
struct FixedCostEval {
  static double eval(const TaskTypeInfo& info, const TaskParams&,
                     const CostQuery&) {
    DAS_ASSERT(info.expr.kind == CostExpr::Kind::kFixed);
    return info.expr.u.fixed.seconds;
  }
};

template <class Hooks, class Cost>
struct SimMode {
  using PolicyHooks = Hooks;
  using CostEval = Cost;
};

/// The type-erased fallback loop: dynamic policy dispatch + the callable
/// escape hatch. Everything exotic (user cost models, future policies,
/// force_generic_dispatch A/B runs) lands here.
using GenericMode = SimMode<DynamicPolicyHooks, CallableCostEval>;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SimEngine::SimEngine(std::vector<RankSpec> ranks, Policy policy,
                     const TaskTypeRegistry& registry, SimOptions options)
    : policy_kind_(policy), registry_(&registry), options_(options),
      sync_(static_cast<int>(ranks.size())) {
  DAS_CHECK(!ranks.empty());
  const std::size_t num_ranks = ranks.size();
  ranks_.reserve(num_ranks);
  int next_core = 0;
  for (std::size_t r = 0; r < num_ranks; ++r) {
    DAS_CHECK(ranks[r].topo != nullptr);
    Rank rank;
    rank.topo = ranks[r].topo;
    rank.scenario = ranks[r].scenario;
    rank.first_core = next_core;
    rank.ptt = std::make_unique<PttStore>(*rank.topo, registry.size(),
                                          options_.ptt_ratio);
    rank.policy = std::make_unique<PolicyEngine>(
        policy, *rank.topo, rank.ptt.get(), options_.seed + 17 * (r + 1),
        options_.policy_options);
    rank.stats =
        std::make_unique<ExecutionStats>(*rank.topo, options_.stats_phases);
    next_core += rank.topo->num_cores();
    ranks_.push_back(std::move(rank));
  }

  // Per-rank shard arenas, every vector sized up front (the hot loops never
  // grow them mid-window). Rank 0's RNG stream IS the historical
  // single-engine stream — the determinism goldens pin it; other ranks get
  // independent streams derived from the same seed.
  shards_ = std::vector<Shard>(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r) {
    Shard& sh = shards_[r];
    sh.rank = static_cast<int>(r);
    sh.num_cores = ranks_[r].topo->num_cores();
    sh.events.set_num_lanes(kNumLanes);
    sh.rng.reseed(r == 0 ? options_.seed
                         : options_.seed + 0x9e3779b97f4a7c15ULL *
                                               static_cast<std::uint64_t>(r));
    sh.cores.resize(static_cast<std::size_t>(sh.num_cores));
    const std::size_t words =
        (static_cast<std::size_t>(sh.num_cores) + 63) / 64;
    sh.idle_bits.assign(words, 0);
    sh.wsq_bits.assign(words, 0);
    // Every core starts idle (no pending event).
    for (int c = 0; c < sh.num_cores; ++c)
      sh.idle_bits[static_cast<std::size_t>(c) >> 6] |= std::uint64_t{1}
                                                        << (c & 63);
    if (num_ranks > 1) {
      sh.out.resize(num_ranks);
      for (std::size_t d = 0; d < num_ranks; ++d)
        if (d != r) sh.out[d] = std::make_unique<BoundaryQueue<BoundaryMsg>>();
    }
    // Seed the rank's fault schedule into its heap (kFault events carry the
    // schedule index in their job field). Without faults nothing is pushed
    // and faults_enabled_ stays false: the event and RNG streams are
    // byte-identical to the bare engine.
    if (ranks[r].faults != nullptr && !ranks[r].faults->empty()) {
      sh.faults = ranks[r].faults->events;
      faults_enabled_ = true;
      for (std::size_t i = 0; i < sh.faults.size(); ++i) {
        const CoreFault& f = sh.faults[i];
        DAS_CHECK_MSG(f.core >= 0 && f.core < sh.num_cores,
                      "fault core " + std::to_string(f.core) +
                          " out of range for rank " + std::to_string(r));
        DAS_CHECK_MSG(f.t_s >= 0.0, "fault onset must be >= 0");
        sh.events.push(f.t_s, Event{Ev::kFault, f.core,
                                    static_cast<JobId>(i), kInvalidNode, -1});
      }
    }
  }

  protocol_threads_ =
      num_ranks > 1
          ? std::clamp(options_.des_threads, 1, static_cast<int>(num_ranks))
          : 1;
  // The timeline sink is a single unsynchronized stream; parallel window
  // execution would interleave ranks' records nondeterministically.
  DAS_CHECK_MSG(options_.timeline == nullptr || protocol_threads_ == 1,
                "timeline recording requires des_threads <= 1");
  refresh_dispatch();
}

SimEngine::SimEngine(const Topology& topo, Policy policy,
                     const TaskTypeRegistry& registry, SimOptions options,
                     const SpeedScenario* scenario, const FaultPlan* faults)
    : SimEngine(std::vector<RankSpec>{RankSpec{&topo, scenario, faults}},
                policy, registry, options) {}

SimEngine::~SimEngine() {
  if (!workers_.empty()) {
    // Workers are parked awaiting the next window command (every wait()/
    // pump_one() leaves them quiescent); publish an exit command instead.
    cmd_exit_.store(true, std::memory_order_release);
    cmd_round_.store(++round_, std::memory_order_release);
    cmd_ec_.notify();
    for (std::thread& w : workers_) w.join();
  }
}

double SimEngine::Shard::next_event_time() const {
  return events.empty() ? kInf : events.top().time;
}

double SimEngine::now() const {
  double m = shards_[0].now;
  for (std::size_t r = 1; r < shards_.size(); ++r)
    m = std::max(m, shards_[r].now);
  return m;
}

std::uint64_t SimEngine::events_processed() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.events_processed;
  return n;
}

std::uint64_t SimEngine::events_processed(int rank) const {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return shards_[static_cast<std::size_t>(rank)].events_processed;
}

std::uint64_t SimEngine::trace_hash(int rank) const {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return shards_[static_cast<std::size_t>(rank)].trace_hash;
}

std::uint64_t SimEngine::tasks_reexecuted() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.tasks_reexecuted;
  return n;
}

int SimEngine::cores_failed() const {
  int n = 0;
  for (const Shard& sh : shards_) n += sh.cores_failed;
  return n;
}

bool SimEngine::events_pending() const {
  for (const Shard& sh : shards_)
    if (!sh.events.empty()) return true;
  return false;
}

SimEngine::Job& SimEngine::job_of(JobId id) {
  const std::int64_t idx = id - lookup_base_;
  DAS_CHECK_MSG(idx >= 0 &&
                    idx < static_cast<std::int64_t>(job_lookup_.size()) &&
                    job_lookup_[static_cast<std::size_t>(idx)] >= 0,
                "job " + std::to_string(id) + " is not in flight");
  return job_slots_[static_cast<std::size_t>(
      job_lookup_[static_cast<std::size_t>(idx)])];
}

std::uint64_t SimEngine::masked_word(const std::vector<std::uint64_t>& bits,
                                     int word, int lo, int hi) {
  std::uint64_t w = bits[static_cast<std::size_t>(word)];
  if (word == (lo >> 6)) w &= ~std::uint64_t{0} << (lo & 63);
  if (word == ((hi - 1) >> 6)) {
    const int top = hi - (word << 6);
    if (top < 64) w &= (std::uint64_t{1} << top) - 1;
  }
  return w;
}

ExecutionStats& SimEngine::stats(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].stats;
}

const ExecutionStats& SimEngine::stats(int rank) const {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].stats;
}

PolicyEngine& SimEngine::policy(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].policy;
}

PttStore& SimEngine::ptt(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].ptt;
}

double SimEngine::completion_time(NodeId id) const {
  DAS_CHECK(id >= 0 && id < static_cast<NodeId>(last_waited_count_));
  return last_waited_tasks_[static_cast<std::size_t>(id)].completion;
}

double SimEngine::lognormal_noise(Shard& sh, double sigma) {
  if (sigma <= 0.0) return 1.0;
  // Marsaglia polar method on the shard's RNG — deterministic across
  // standard libraries, unlike std::normal_distribution.
  double u, v, s;
  do {
    u = sh.rng.uniform(-1.0, 1.0);
    v = sh.rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double z = u * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(sigma * z);
}

JobId SimEngine::submit(const Dag& dag, double arrival_offset_s) {
  DAS_CHECK(dag.num_nodes() > 0);
  DAS_CHECK_MSG(arrival_offset_s >= 0.0,
                "submit: arrival offset must be >= 0");
  // Compact any staged edges into the CSR arena once, up front: the release
  // fan-out in handle_done then walks flat spans for the whole job.
  dag.seal();
  // Validation over the DAG's sealed metadata — O(#types + 1), not O(nodes),
  // and entirely before any engine state mutates, so a rejected DAG leaves
  // the engine untouched.
  for (const TaskTypeId t : dag.distinct_types()) {
    const TaskTypeInfo& ti = registry_->info(t);
    DAS_CHECK_MSG(ti.cost != nullptr ||
                      ti.expr.kind != CostExpr::Kind::kCallable,
                  "task type '" + ti.name +
                      "' has no cost model; the DES cannot execute it");
  }
  // Registration may have happened since the last submit (a new kCallable
  // type demotes to generic; a catalog-only registry promotes to fused).
  refresh_dispatch();
  DAS_CHECK_MSG(dag.min_node_rank() >= 0 && dag.max_node_rank() < num_ranks(),
                "dag node rank out of range");
  // The conservative window lookahead tightens monotonically to the
  // smallest cross-rank delay any submitted job carries. Monotone-min (it
  // never relaxes when small-delay jobs retire) keeps the window partition
  // a pure function of the submission trace — window boundaries determine
  // cross-rank drain batching, so they must replay bitwise too.
  lookahead_ = std::min(lookahead_, dag.min_cross_rank_delay());

  const JobId id = next_job_++;
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(job_slots_.size());
    job_slots_.emplace_back();
  }
  Job& job = job_slots_[static_cast<std::size_t>(slot)];
  job.dag = &dag;
  job.release_s = now() + arrival_offset_s;
  job.completed = 0;
  job.finish_s = -1.0;
  job.done = false;
  // Overwrite allocation, no initialization: every entry is reset by
  // make_ready, which each task passes exactly once before any other read
  // of its TaskState.
  const auto num_nodes = static_cast<std::size_t>(dag.num_nodes());
  if (job.tasks_cap < num_nodes) {
    job.tasks = std::make_unique_for_overwrite<TaskState[]>(num_nodes);
    job.tasks_cap = num_nodes;
  }
  const std::vector<std::int32_t>& pc = dag.predecessor_counts();
  job.preds.assign(pc.begin(), pc.end());

  DAS_ASSERT(id - lookup_base_ ==
             static_cast<std::int64_t>(job_lookup_.size()));
  job_lookup_.push_back(slot);
  ++live_jobs_;

  // Pre-size each shard's heap for the irregular events it still carries
  // (roots, pending completions, jittered wakes) — the steady-state
  // wake/release traffic lives in the FIFO lanes and needs no headroom.
  for (Shard& sh : shards_)
    sh.events.reserve(dag.root_ids().size() +
                      2 * static_cast<std::size_t>(sh.num_cores) + 64);

  // Release the roots "from" their rank's core 0 (or the affinity core),
  // in node order at the job's arrival instant, each into its owning
  // rank's shard. root_ids() is the sealed cache — only the roots are
  // touched, not the whole node array.
  for (const NodeId i : dag.root_ids()) {
    const DagNode& n = dag.node(i);
    DAS_CHECK_MSG(n.rank >= 0 && n.rank < num_ranks(),
                  "dag node rank out of range");
    const int local = n.affinity_core >= 0 ? n.affinity_core : 0;
    DAS_CHECK(local <
              ranks_[static_cast<std::size_t>(n.rank)].topo->num_cores());
    shards_[static_cast<std::size_t>(n.rank)].events.push(
        job.release_s, Event{Ev::kRoot, -1, id, i, local});
  }
  return id;
}

double SimEngine::wait(JobId id) {
  Job& job = job_of(id);
  // Advance the event loop until THIS job completes. Events of other
  // in-flight jobs that fall before its completion execute on the way — the
  // interleave is a pure function of (seed, submission trace). The whole
  // loop runs inside ONE dispatch instantiation (drain_fn_), so a fused
  // configuration pays no per-event indirect call at all.
  drain_fn_(*this, job);
  DAS_CHECK_MSG(job.done,
                "event queue drained with " +
                    std::to_string(job.dag->num_nodes() - job.completed) +
                    " tasks of job " + std::to_string(id) +
                    " incomplete (dependency deadlock?)");
  const double makespan = job.finish_s - job.release_s;
  // Elapsed accumulates the virtual time this wait advanced the clock by
  // (not the absolute clock): sequential runs still sum to now(), but after
  // an ExecutionStats::reset() the counters restart from zero instead of
  // silently re-including pre-reset time — matching the rt backend.
  const double now_s = now();
  for (auto& r : ranks_)
    r.stats->set_elapsed(r.stats->elapsed_s() + (now_s - elapsed_mark_));
  elapsed_mark_ = now_s;
  // Swap, not move: the retired job's slot keeps its grown tasks array, so
  // the next job reusing the slot writes into existing capacity.
  std::swap(last_waited_tasks_, job.tasks);
  std::swap(last_waited_cap_, job.tasks_cap);
  last_waited_count_ = static_cast<std::size_t>(job.dag->num_nodes());

  const auto idx = static_cast<std::size_t>(id - lookup_base_);
  free_slots_.push_back(job_lookup_[idx]);
  job_lookup_[idx] = -1;
  --live_jobs_;
  // Amortized dead-prefix trim keeps the lookup window proportional to the
  // in-flight span, not the total jobs ever submitted.
  while (lookup_dead_prefix_ < job_lookup_.size() &&
         job_lookup_[lookup_dead_prefix_] < 0)
    ++lookup_dead_prefix_;
  if (lookup_dead_prefix_ > 64 &&
      lookup_dead_prefix_ * 2 > job_lookup_.size()) {
    job_lookup_.erase(job_lookup_.begin(),
                      job_lookup_.begin() +
                          static_cast<std::ptrdiff_t>(lookup_dead_prefix_));
    lookup_base_ += static_cast<JobId>(lookup_dead_prefix_);
    lookup_dead_prefix_ = 0;
  }
  return makespan;
}

// daslint: begin-hot-path(sim-step)
// The event-loop inner step: one pop + one handler per simulated event,
// instantiated once per dispatch mode so the policy hooks and the cost
// evaluation inline into the handlers. tools/daslint forbids allocation,
// lock acquisition, parking and type-erased calls here (the handlers reuse
// per-core flat queues; see sim's throughput gate). Everything touched is
// shard-local: in parallel runs the shard's owning thread is the only
// caller, so this loop needs no atomics at all.
template <class Mode>
void SimEngine::step_t(Shard& sh) {
  // Direct pop: with the lane/heap queue a pop is one source scan plus an
  // O(1) ring pop for the dominant event classes — cheaper than staging
  // identical-time batches through a side buffer was.
  const EventQueue<Event>::Item item = sh.events.pop();
  ++sh.events_processed;
  DAS_ASSERT(item.time + 1e-12 >= sh.now);
  sh.now = std::max(sh.now, item.time);
  const Event& e = item.payload;
  if (options_.hash_traces) [[unlikely]] {
    // FNV-1a over the full event identity: equal per-rank hashes <=> the
    // runs took bitwise-identical per-rank event paths (the parallel-vs-
    // serial equality tests compare these).
    std::uint64_t h = sh.trace_hash;
    const auto fold = [&h](std::uint64_t v) { h = (h ^ v) * 0x100000001b3ULL; };
    fold(std::bit_cast<std::uint64_t>(item.time));
    fold(static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.kind)));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.core)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.from_core))
          << 32));
    fold(static_cast<std::uint64_t>(e.job));
    fold(static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.task)));
    sh.trace_hash = h;
  }
  if (faults_enabled_) [[unlikely]] {
    // Per-core events against a failed or frozen core: a dead core's stale
    // wakes/completions are dropped (its queued and in-flight work was
    // reclaimed at the kFault event); a frozen core makes no progress inside
    // its window, so its events re-materialize at the thaw instant.
    if (e.kind == Ev::kWake || e.kind == Ev::kDone) {
      const CoreState& cs = sh.cores[static_cast<std::size_t>(e.core)];
      if (cs.dead) return;
      if (sh.now < cs.frozen_until) {
        defer_frozen(sh, e, cs.frozen_until);
        return;
      }
    }
  }
  switch (e.kind) {
    case Ev::kWake:
      set_inactive(sh, e.core);
      handle_wake_t<Mode>(sh, e.core, sh.now);
      break;
    case Ev::kDone:
      handle_done_t<Mode>(sh, e, sh.now);
      break;
    case Ev::kRelease:
      handle_release_t<Mode>(sh, e, sh.now);
      break;
    case Ev::kRoot:
      make_ready_t<Mode>(sh, e.job, e.task, e.from_core, sh.now);
      break;
    case Ev::kTimer:
      note_timer_fired(sh, e, sh.now);
      break;
    case Ev::kFault:
      handle_fault_t<Mode>(sh, e, sh.now);
      break;
  }
}
// daslint: end-hot-path

void SimEngine::note_timer_fired(Shard& sh, const Event& e, double t) {
  // Only the service layer schedules timers, so the hook is always present.
  DAS_ASSERT(timer_hook_);
  sh.deferred.push_back(
      Deferred{true, static_cast<std::uint64_t>(e.job), t});
}

// --- fail-stop / freeze machinery --------------------------------------------

void SimEngine::defer_frozen(Shard& sh, const Event& e, double until) {
  sh.events.push(until, e);
}

int SimEngine::live_fallback_core(const Shard& sh, int from) const {
  const int n = sh.num_cores;
  for (int i = 0; i < n; ++i) {
    const int c = (from + i) % n;
    if (!sh.cores[static_cast<std::size_t>(c)].dead) return c;
  }
  DAS_CHECK_MSG(false, "every core of rank " + std::to_string(sh.rank) +
                           " is dead; the fault plan must leave a survivor");
  return 0;
}

template <class Mode>
void SimEngine::requeue_lost_t(Shard& sh, JobId job_id, NodeId id, double t) {
  // Fresh attempt on the survivors. make_ready resets the TaskState (lost
  // counter included) and re-runs the wake path; the dead-core reroutes in
  // make_ready/distribute keep the new attempt off dead queues. Completion
  // stays exactly-once: the lost attempt recorded nothing — its remaining
  // kDone events belong to dead cores and are dropped in step_t.
  ++sh.tasks_reexecuted;
  make_ready_t<Mode>(sh, job_id, id, /*waking_core=*/-1, t);
}

template <class Mode>
void SimEngine::reclaim_participation_t(Shard& sh, JobId job_id, NodeId id,
                                        double t) {
  Job& job = job_at(job_id);
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  ++ts.lost;
  DAS_ASSERT(ts.departures + ts.lost <= ts.place.width);
  // Live participants (queued or running) still hold slots; the last of
  // them triggers the re-release from handle_done. Only when none remain is
  // the fault event itself the last accountant.
  if (ts.departures + ts.lost == ts.place.width)
    requeue_lost_t<Mode>(sh, job_id, id, t);
}

template <class Mode>
void SimEngine::handle_fault_t(Shard& sh, const Event& e, double t) {
  const CoreFault& f = sh.faults[static_cast<std::size_t>(e.job)];
  CoreState& cs = sh.cores[static_cast<std::size_t>(f.core)];
  if (f.kind == CoreFault::Kind::kFreeze) {
    if (!cs.dead) cs.frozen_until = std::max(cs.frozen_until, f.until_s);
    return;
  }
  if (cs.dead) return;  // overlapping fail-stop entries: first one wins
  cs.dead = true;
  ++sh.cores_failed;
  // Pin the core "active" with no pending event: activate() no-ops forever
  // and the idle-bitmap sweep skips it, so no new wake can ever target it.
  set_active(sh, f.core);

  // Re-home the queued-but-undistributed work. These tasks already passed
  // make_ready (their TaskState is live), so they move queue-to-queue: the
  // place decision happens later, at distribution, where dead members are
  // degraded away. FIFO order keeps the re-home deterministic.
  bool rehomed_stealable = false;
  while (!cs.inbox.empty()) {
    const QueuedTask qt = cs.inbox.front();
    cs.inbox.pop_front();
    const int target = live_fallback_core(sh, f.core);
    sh.cores[static_cast<std::size_t>(target)].inbox.push_back(qt);
    activate(sh, target, t, /*direct=*/true);
  }
  while (!cs.wsq.empty()) {
    const QueuedTask qt = cs.wsq.front();
    cs.wsq.pop_front();
    const int target = live_fallback_core(sh, f.core);
    wsq_push(sh, target, qt);
    activate(sh, target, t);
    rehomed_stealable = true;
  }
  wsq_mark_if_empty(sh, f.core);
  if (rehomed_stealable) wake_idle_cores(sh, t);

  // Account the lost participations: assembly slots queued in the dead
  // core's AQ plus the one it was executing. Each may be the last
  // outstanding slot of its task, in which case the task re-releases here.
  while (!cs.aq.empty()) {
    const Participation p = cs.aq.front();
    cs.aq.pop_front();
    reclaim_participation_t<Mode>(sh, p.job, p.task, t);
  }
  if (cs.busy) {
    cs.busy = false;
    reclaim_participation_t<Mode>(sh, cs.running.job, cs.running.task, t);
  }
}

void SimEngine::set_service_hooks(
    std::function<void(JobId, double)> job_done,
    std::function<void(std::uint64_t, double)> timer) {
  DAS_CHECK_MSG(job_done && timer, "set_service_hooks: both hooks required");
  job_done_hook_ = std::move(job_done);
  timer_hook_ = std::move(timer);
  for (Shard& sh : shards_) sh.deferred.reserve(64);
}

void SimEngine::schedule_timer(double offset_s, std::uint64_t token) {
  DAS_CHECK_MSG(timer_hook_ != nullptr,
                "schedule_timer: install service hooks first");
  DAS_CHECK_MSG(offset_s >= 0.0, "schedule_timer: offset must be >= 0");
  // Timers live on rank 0's event stream; now() >= shard 0's clock, so the
  // push never lands in shard 0's past.
  shards_[0].events.push(now() + offset_s,
                         Event{Ev::kTimer, -1, static_cast<JobId>(token),
                               kInvalidNode, -1});
}

bool SimEngine::pump_one() {
  if (shards_.size() == 1) {
    if (shards_[0].events.empty()) return false;
    step();
  } else {
    // Multi-rank quantum = one conservative window (the finest step whose
    // end state is schedule-independent).
    refresh_times();
    if (sync_.min_time() == kInf) return false;
    run_window();
  }
  deliver_deferred();
  return true;
}

void SimEngine::deliver_deferred() {
  // Deliver deferred notifications AFTER the handler frames unwound: the
  // hooks may submit() or schedule_timer() (job_slots_/event-queue
  // mutation), which must not run under the live Job& a handler holds.
  // Rank-ascending shard order keeps multi-rank delivery deterministic;
  // within a shard the list is in event order. Index loop: a hook must not
  // re-enter pump_one(), but appends would still be delivered.
  for (Shard& sh : shards_) {
    for (std::size_t i = 0; i < sh.deferred.size(); ++i) {
      const Deferred d = sh.deferred[i];
      if (d.timer)
        timer_hook_(d.id, d.time);
      else
        job_done_hook_(static_cast<JobId>(d.id), d.time);
    }
    sh.deferred.clear();
  }
}

void SimEngine::activate(Shard& sh, int core, double at, bool direct) {
  if (sh.cores[static_cast<std::size_t>(core)].active) return;
  set_active(sh, core);
  if (direct) {
    // Explicit wake signal (steal-exempt placement): immediate.
    sh.events.push_lane(kLaneImmediate, at,
                        Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
    return;
  }
  // An inactive core is an idle worker in backoff sleep; it notices the new
  // work after the wake delay. The delay is jittered (uniform in
  // [0.5, 1.5] x nominal): each sleeper is at a random point of its backoff
  // period, which is also what keeps the steal race unbiased — with a fixed
  // delay, ties resolve FIFO and the lowest-numbered idle core would always
  // win the race (cores 3..5 would never work at low DAG parallelism).
  const double jitter = 0.5 + sh.rng.uniform();
  sh.events.push(at + options_.idle_wake_delay_s * jitter,
                 Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
}

void SimEngine::wake_idle_cores(Shard& sh, double t) {
  const int hi = sh.num_cores;
  for (int w = 0; w <= (hi - 1) >> 6; ++w) {
    // Snapshot the word: activate() only CLEARS bits (of the core being
    // woken), so iterating the snapshot visits exactly the cores that were
    // idle when the sweep began — the same set, in the same ascending
    // order, as the old activate-every-core scan.
    std::uint64_t bits = masked_word(sh.idle_bits, w, 0, hi);
    while (bits != 0) {
      const int core = (w << 6) + std::countr_zero(bits);
      bits &= bits - 1;
      activate(sh, core, t);
    }
  }
}

template <class Mode>
void SimEngine::make_ready_t(Shard& sh, JobId job_id, NodeId id,
                             int waking_core, double t) {
  Job& job = job_at(job_id);
  const DagNode& n = node_of(job, id);
  // Live check, not just the sealed-metadata snapshot submit saw: a caller
  // that mutates node ranks on an already-sealed DAG must get a thrown
  // precondition here — in the sharded engine every event must execute on
  // the rank that owns its node.
  DAS_CHECK_MSG(n.rank == sh.rank, "dag node rank out of range");
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  ts = TaskState{};  // first touch of this task: clear recycled slot state
  // Per-task invariant, resolved once: every participant's cost evaluation
  // and noise-sigma lookup read this row instead of re-walking the registry.
  ts.type_info = &registry_->info(n.type);
  Rank& rank = ranks_[static_cast<std::size_t>(sh.rank)];

  // Releases crossing ranks carry kRemoteWaker and land on the task's
  // affinity core (or core 0 of its rank): a remote completion cannot name
  // another process's queues. Local wakers arrive as shard-local core ids.
  const int local_waker =
      waking_core >= 0 ? waking_core
                       : (n.affinity_core >= 0 ? n.affinity_core : 0);

  const WakeDecision wd = Mode::PolicyHooks::on_ready(*rank.policy, n.type,
                                                      n.priority, local_waker);
  int queue_core = wd.queue_core;
  if (faults_enabled_) [[unlikely]] {
    // A dead core's queues are permanently unreachable; reroute to the next
    // survivor (deterministic: pure function of the dead set).
    if (sh.cores[static_cast<std::size_t>(queue_core)].dead)
      queue_core = live_fallback_core(sh, queue_core);
  }

  if (wd.has_fixed_place) {
    ts.has_fixed_place = true;
    ts.place = wd.fixed_place;
  } else if (!options_.policy_options.remold_on_dequeue &&
             rank.policy->traits().uses_ptt) {
    // Ablation: decide the width at wake-up and never re-mold.
    ts.has_fixed_place = true;
    ts.place = Mode::PolicyHooks::on_execute(*rank.policy, n.type, n.priority,
                                             wd.queue_core);
  }

  if (wd.stealable) {
    wsq_push(sh, queue_core, QueuedTask{job_id, id});
    // The new task is visible to thieves: give every idle core of the rank a
    // chance to grab it (they re-idle immediately if they lose the race).
    activate(sh, queue_core, t);
    wake_idle_cores(sh, t);
  } else {
    sh.cores[static_cast<std::size_t>(queue_core)].inbox.push_back(
        QueuedTask{job_id, id});
    activate(sh, queue_core, t, /*direct=*/true);
  }
}

void SimEngine::distribute(Shard& sh, Job& job, JobId job_id, NodeId id,
                           const ExecutionPlace& place, double t) {
  const Rank& r = ranks_[static_cast<std::size_t>(sh.rank)];
  DAS_CHECK_MSG(r.topo->is_valid_place(place),
                "policy produced invalid place " + to_string(place));
  ExecutionPlace p = place;
  if (faults_enabled_) [[unlikely]] {
    // Degrade a place containing dead members to a width-1 survivor: a
    // participation pushed onto a dead core's AQ would be lost on arrival.
    // Deterministic (function of the dead set); width-1 places are always
    // valid.
    for (int i = 0; i < p.width; ++i) {
      if (sh.cores[static_cast<std::size_t>(p.leader + i)].dead) {
        p = ExecutionPlace{live_fallback_core(sh, p.leader), 1};
        break;
      }
    }
  }
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  ts.place = p;
  ts.has_fixed_place = true;
  for (int i = 0; i < p.width; ++i) {
    const int core = p.leader + i;
    sh.cores[static_cast<std::size_t>(core)].aq.push_back(
        Participation{job_id, id, i});
    activate(sh, core, t + options_.dispatch_overhead_s);
  }
}

template <class Mode>
double SimEngine::participation_cost_t(Shard& sh, const Job& job, NodeId id,
                                       int core, int rank_in_assembly,
                                       double t) {
  const DagNode& n = node_of(job, id);
  const TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  const Rank& r = ranks_[static_cast<std::size_t>(sh.rank)];
  const Cluster& cluster = r.topo->cluster_of_core(core);

  CostQuery q;
  q.place = ts.place;
  q.rank = rank_in_assembly;
  q.core = core;
  q.cluster = &cluster;
  if (r.scenario != nullptr) {
    q.speed = r.scenario->speed(core, t);
    q.bw_share = r.scenario->bandwidth_share(r.topo->cluster_index_of(core), t);
  } else {
    q.speed = cluster.base_speed;
    q.bw_share = 1.0;
  }

  // Hoisted per-task invariant (make_ready cached the registry row): the
  // per-participant path is the query build + the cost arithmetic itself.
  const TaskTypeInfo& info = *ts.type_info;
  double cost = Mode::CostEval::eval(info, n.params, q);
  if (options_.noise) {
    cost *= lognormal_noise(sh, TaskTypeRegistry::noise_sigma_of(info, cost));
  }
  return std::max(cost, 1e-9);
}

template <class Mode>
void SimEngine::start_participation_t(Shard& sh, int core,
                                      const Participation& p, double t) {
  CoreState& cs = sh.cores[static_cast<std::size_t>(core)];
  DAS_CHECK_MSG(!cs.busy, "core double-booked: a participation started while "
                          "another is still running");
  Job& job = job_at(p.job);
  TaskState& ts = job.tasks[static_cast<std::size_t>(p.task)];
  if (ts.arrivals == 0) ts.first_arrival = t;
  ts.arrivals++;
  const double cost =
      participation_cost_t<Mode>(sh, job, p.task, core, p.rank_in_assembly, t);
  ts.max_cost = std::max(ts.max_cost, cost);
  const Rank& r = ranks_[static_cast<std::size_t>(sh.rank)];
  r.stats->record_busy_st(core, static_cast<std::int64_t>(cost * 1e9));
  // Timeline bookkeeping (node lookup, type-name resolution) is hoisted
  // behind the null check: the common timeline-less run pays nothing. The
  // recorded core id is global (first_core + local) so multi-rank traces
  // keep one row per physical core.
  if (options_.timeline != nullptr) {
    const DagNode& n = node_of(job, p.task);
    options_.timeline->record(r.first_core + core, t, cost,
                              registry_->info(n.type).name, n.priority,
                              ts.place.width);
  }
  set_active(sh, core);
  cs.busy = true;
  cs.running = p;  // lets a core-death event reclaim the in-flight task
  sh.events.push(t + cost, Event{Ev::kDone, core, p.job, p.task, -1});
}

template <class Mode>
bool SimEngine::try_steal_t(Shard& sh, int core, double t) {
  const Rank& r = ranks_[static_cast<std::size_t>(sh.rank)];
  const int hi = sh.num_cores;
  const int self_word = core >> 6;
  const std::uint64_t self_mask = ~(std::uint64_t{1} << (core & 63));

  // Victim count by bit rank over the occupancy bitmap — the same count,
  // and below the same k-th victim in ascending core order, that the old
  // scan-and-collect vector produced, so the seeded RNG stream (and with it
  // every virtual-time result) is unchanged.
  int n_victims = 0;
  for (int w = 0; w <= (hi - 1) >> 6; ++w) {
    std::uint64_t bits = masked_word(sh.wsq_bits, w, 0, hi);
    if (w == self_word) bits &= self_mask;
    n_victims += std::popcount(bits);
  }
  if (n_victims == 0) return false;

  std::size_t k = sh.rng.below(static_cast<std::size_t>(n_victims));
  int victim = -1;
  for (int w = 0; w <= (hi - 1) >> 6; ++w) {
    std::uint64_t bits = masked_word(sh.wsq_bits, w, 0, hi);
    if (w == self_word) bits &= self_mask;
    const auto pc = static_cast<std::size_t>(std::popcount(bits));
    if (k < pc) {
      for (; k > 0; --k) bits &= bits - 1;  // drop k lowest set bits
      victim = (w << 6) + std::countr_zero(bits);
      break;
    }
    k -= pc;
  }
  DAS_ASSERT(victim >= 0);

  CoreState& vs = sh.cores[static_cast<std::size_t>(victim)];
  const QueuedTask qt = vs.wsq.front();  // thieves take the oldest task
  vs.wsq.pop_front();
  wsq_mark_if_empty(sh, victim);

  Job& job = job_at(qt.job);
  const DagNode& n = node_of(job, qt.task);
  TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
  const ExecutionPlace place =
      ts.has_fixed_place
          ? ts.place
          : Mode::PolicyHooks::on_execute(*r.policy, n.type, n.priority, core);
  // Mark the thief active first (one pending wake), then distribute after
  // the steal round-trip.
  set_active(sh, core);
  sh.events.push_lane(
      kLaneSteal, t + options_.steal_latency_s + options_.dispatch_overhead_s,
      Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
  distribute(sh, job, qt.job, qt.task, place, t + options_.steal_latency_s);
  return true;
}

template <class Mode>
void SimEngine::handle_wake_t(Shard& sh, int core, double t) {
  CoreState& cs = sh.cores[static_cast<std::size_t>(core)];

  // 1. Assembly queue first: committed work.
  if (!cs.aq.empty()) {
    const Participation p = cs.aq.front();
    cs.aq.pop_front();
    start_participation_t<Mode>(sh, core, p, t);
    return;
  }
  const Rank& r = ranks_[static_cast<std::size_t>(sh.rank)];
  // 2. Steal-exempt inbox: high-priority tasks with fixed places.
  if (!cs.inbox.empty()) {
    const QueuedTask qt = cs.inbox.front();
    cs.inbox.pop_front();
    Job& job = job_at(qt.job);
    const TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
    DAS_ASSERT(ts.has_fixed_place);
    // Mark THIS core active (single pending wake) before distribute() tries
    // to activate the participants — otherwise the distributor would get a
    // second wake event and could double-book itself.
    set_active(sh, core);
    sh.events.push_lane(kLaneDispatch, t + options_.dispatch_overhead_s,
                        Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
    distribute(sh, job, qt.job, qt.task, ts.place, t);
    return;
  }
  // 3. Own WSQ (LIFO end).
  if (!cs.wsq.empty()) {
    const QueuedTask qt = cs.wsq.back();
    cs.wsq.pop_back();
    wsq_mark_if_empty(sh, core);
    Job& job = job_at(qt.job);
    const DagNode& n = node_of(job, qt.task);
    const TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
    const ExecutionPlace place =
        ts.has_fixed_place
            ? ts.place
            : Mode::PolicyHooks::on_execute(*r.policy, n.type, n.priority,
                                            core);
    set_active(sh, core);  // see the inbox branch: one pending wake only
    sh.events.push_lane(kLaneDispatch, t + options_.dispatch_overhead_s,
                        Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
    distribute(sh, job, qt.job, qt.task, place, t);
    return;
  }
  // 4. Steal from a random victim within the rank.
  if (try_steal_t<Mode>(sh, core, t)) return;
  // 5. Nothing anywhere: go idle. A future push will re-activate us.
}

template <class Mode>
void SimEngine::handle_done_t(Shard& sh, const Event& e, double t) {
  Job& job = job_at(e.job);
  const NodeId id = e.task;
  const DagNode& n = node_of(job, id);
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  Rank& r = ranks_[static_cast<std::size_t>(sh.rank)];

  ts.departures++;
  DAS_ASSERT(ts.departures + ts.lost <= ts.place.width);
  if (faults_enabled_ && ts.lost > 0) [[unlikely]] {
    // This attempt lost participants to a core death: it can never complete
    // (departures can no longer reach width). The last live finisher
    // re-releases the task to the survivors; the completion bookkeeping
    // below belongs to the fresh attempt, which starts from a reset
    // TaskState.
    if (ts.departures + ts.lost == ts.place.width)
      requeue_lost_t<Mode>(sh, e.job, e.task, t);
    CoreState& finisher = sh.cores[static_cast<std::size_t>(e.core)];
    DAS_ASSERT(finisher.busy);
    finisher.busy = false;
    set_active(sh, e.core);
    sh.events.push_lane(kLaneCompletion, t + options_.completion_overhead_s,
                        Event{Ev::kWake, e.core, kInvalidJob, kInvalidNode, -1});
    return;
  }
  if (ts.departures == ts.place.width) {
    // Last finisher: train the PTT and release successors (paper Fig. 3
    // step 8). The PTT learns the task's intrinsic duration at this place —
    // the slowest participant's busy time, which is what the paper's leader
    // core observes — NOT the assembly span: the span includes arrival skew
    // (participants queueing behind other work), which would make wide
    // places look slow for reasons that have nothing to do with the place.
    const double span = t - ts.first_arrival;
    Mode::PolicyHooks::record_sample(*r.policy, n.type, ts.place, ts.max_cost);
    const int place_id = r.topo->place_id(ts.place);
    r.stats->record_task_at_st(n.priority, place_id, span, n.phase);
    ts.completion = t;
    if (shards_.size() == 1) {
      // Single-rank: the historical plain-field path, byte-for-byte.
      job.completed++;
      // Release fan-out over the sealed CSR arena: a flat span walk, no
      // per-node vector indirection. The overwhelmingly common zero-delay
      // edge releases at `t` exactly — FIFO-lane territory; only delayed
      // edges pay the heap.
      for (const DagEdge& edge : job.dag->successors(id)) {
        const Event rel{Ev::kRelease, -1, e.job, edge.to, e.core};
        if (edge.delay_s == 0.0) {
          sh.events.push_lane(kLaneImmediate, t, rel);
        } else {
          sh.events.push(t + edge.delay_s, rel);
        }
      }
      if (job.completed == job.dag->num_nodes()) {
        job.done = true;
        job.finish_s = t;
        if (job_done_hook_)
          sh.deferred.push_back(
              Deferred{false, static_cast<std::uint64_t>(e.job), t});
      }
    } else {
      // Multi-rank: rank-local releases stay on this shard; cross-rank
      // releases are STAGED into the destination's boundary queue (drained
      // at the next window-phase boundary in sender-rank order — never
      // pushed into another shard's live event queue).
      for (const DagEdge& edge : job.dag->successors(id)) {
        const int target = job.dag->node(edge.to).rank;
        if (target == sh.rank) {
          const Event rel{Ev::kRelease, -1, e.job, edge.to, e.core};
          if (edge.delay_s == 0.0) {
            sh.events.push_lane(kLaneImmediate, t, rel);
          } else {
            sh.events.push(t + edge.delay_s, rel);
          }
        } else {
          sh.out[static_cast<std::size_t>(target)]->push(BoundaryMsg{
              t + edge.delay_s,
              Event{Ev::kRelease, -1, e.job, edge.to, kRemoteWaker}});
        }
      }
      // Cross-shard completion accounting. finish_s is the MAX over
      // completion instants — order-free, so schedule-independent; the
      // atomic-max CAS publishes it, and the acq_rel counter RMW makes
      // every prior finisher's CAS visible to whichever shard lands the
      // final increment.
      std::atomic_ref<double> fin(job.finish_s);
      double prev = fin.load(std::memory_order_acquire);
      while (prev < t &&
             !fin.compare_exchange_weak(prev, t, std::memory_order_release,
                                        std::memory_order_acquire)) {
      }
      std::atomic_ref<std::int64_t> completed(job.completed);
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.dag->num_nodes()) {
        const double finish = fin.load(std::memory_order_acquire);
        std::atomic_ref<bool>(job.done).store(true,
                                              std::memory_order_release);
        if (job_done_hook_)
          sh.deferred.push_back(
              Deferred{false, static_cast<std::uint64_t>(e.job), finish});
      }
    }
  }

  // The participant core looks for new work after the completion
  // bookkeeping (see SimOptions::completion_overhead_s).
  CoreState& cs = sh.cores[static_cast<std::size_t>(e.core)];
  DAS_ASSERT(cs.busy);
  cs.busy = false;
  set_active(sh, e.core);
  sh.events.push_lane(kLaneCompletion, t + options_.completion_overhead_s,
                      Event{Ev::kWake, e.core, kInvalidJob, kInvalidNode, -1});
}

template <class Mode>
void SimEngine::handle_release_t(Shard& sh, const Event& e, double t) {
  Job& job = job_at(e.job);
  std::int32_t& preds = job.preds[static_cast<std::size_t>(e.task)];
  DAS_ASSERT(preds > 0);
  if (--preds == 0) make_ready_t<Mode>(sh, e.job, e.task, e.from_core, t);
}

// --- conservative window protocol (multi-rank) -------------------------------

// daslint: begin-hot-path(rank-window)
// The per-rank window loop: pure shard-local event processing between two
// phase publications. No allocation, no locks, no parking — a rank that
// blocks here stalls every other rank at the next phase boundary.
template <class Mode>
void SimEngine::window_phase1_t(Shard& sh) {
  const double hi = window_hi_;
  // INCLUSIVE horizon: with zero lookahead the window degenerates to
  // [W, W] and the protocol still advances one timestamp per round.
  while (!sh.events.empty() && sh.events.top().time <= hi) step_t<Mode>(sh);
}
// daslint: end-hot-path

void SimEngine::window_phase2(Shard& sh) {
  // Drain in-bound boundary links in SENDER-RANK order, FIFO within each
  // link: the receiving queue's seq assignment — and with it every
  // same-time tie-break — is a pure function of the event streams,
  // independent of which thread ran which rank when. All staged messages
  // carry time >= W + L >= this shard's clock, so nothing lands in the
  // shard's past (step_t asserts this).
  const int nr = num_ranks();
  for (int s = 0; s < nr; ++s) {
    if (s == sh.rank) continue;
    shards_[static_cast<std::size_t>(s)]
        .out[static_cast<std::size_t>(sh.rank)]
        ->drain([&sh](const BoundaryMsg& m) { sh.events.push(m.time, m.ev); });
  }
  sync_.set_time(sh.rank, sh.next_event_time());
}

void SimEngine::refresh_times() {
  // Only legal between windows: every protocol thread is parked, so the
  // driving thread owns all slots (its previous wait_all_at_least
  // synchronized with their last publications).
  for (const Shard& sh : shards_) sync_.set_time(sh.rank, sh.next_event_time());
}

void SimEngine::run_window() {
  const double w = sync_.min_time();
  DAS_ASSERT(w != kInf);
  window_hi_ = w + lookahead_;  // +inf lookahead: one window drains all
  ++round_;
  if (protocol_threads_ <= 1) {
    // Serial multi-rank: the SAME protocol on one thread, phases in rank
    // order. This is the reference ordering the parallel path must (and
    // does) reproduce bitwise — phase separation, drain order and seq
    // assignment are identical.
    for (Shard& sh : shards_) window_fn_(*this, sh);
    for (Shard& sh : shards_) window_phase2(sh);
    return;
  }
  ensure_workers();
  // The command publication (release) carries window_hi_ and everything
  // else written since the workers parked; workers pick it up with an
  // acquire load of cmd_round_.
  cmd_round_.store(round_, std::memory_order_release);
  cmd_ec_.notify();
  const auto [lo, hi] = rank_block(0);
  for (int r = lo; r < hi; ++r)
    window_fn_(*this, shards_[static_cast<std::size_t>(r)]);
  for (int r = lo; r < hi; ++r) sync_.publish_phase(r, 3 * round_ - 2);
  sync_.wait_all_at_least(3 * round_ - 2);
  for (int r = lo; r < hi; ++r)
    window_phase2(shards_[static_cast<std::size_t>(r)]);
  for (int r = lo; r < hi; ++r) sync_.publish_phase(r, 3 * round_ - 1);
  // Regaining exclusive access: after this wait every worker has published
  // its last phase and gone back to parking on cmd_round_ — the driving
  // thread may read and write any shard until the next command.
  sync_.wait_all_at_least(3 * round_ - 1);
}

void SimEngine::drain_windows(const Job& job) {
  for (;;) {
    // Plain read is safe: the workers are quiescent between windows and
    // the final done-store happened-before the last phase publication.
    if (job.done) return;
    refresh_times();
    if (sync_.min_time() == kInf) return;  // drained: wait() raises deadlock
    run_window();
  }
}

void SimEngine::ensure_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(static_cast<std::size_t>(protocol_threads_ - 1));
  for (int t = 1; t < protocol_threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

std::pair<int, int> SimEngine::rank_block(int thread_index) const {
  const int nr = num_ranks();
  return {thread_index * nr / protocol_threads_,
          (thread_index + 1) * nr / protocol_threads_};
}

void SimEngine::worker_loop(int thread_index) {
  const auto [lo, hi] = rank_block(thread_index);
  for (std::uint64_t round = 1;; ++round) {
    // Park until the driver publishes window command `round` (or exit).
    while (cmd_round_.load(std::memory_order_acquire) < round) {
      const auto key = cmd_ec_.prepare_wait();
      if (cmd_round_.load(std::memory_order_acquire) >= round) {
        cmd_ec_.cancel_wait();
        break;
      }
      cmd_ec_.commit_wait(key);
    }
    if (cmd_exit_.load(std::memory_order_acquire)) return;
    for (int r = lo; r < hi; ++r)
      window_fn_(*this, shards_[static_cast<std::size_t>(r)]);
    for (int r = lo; r < hi; ++r) sync_.publish_phase(r, 3 * round - 2);
    sync_.wait_all_at_least(3 * round - 2);
    for (int r = lo; r < hi; ++r)
      window_phase2(shards_[static_cast<std::size_t>(r)]);
    // No wait on the final phase here: the worker touches nothing shared
    // until the next command, and the driver's wait_all_at_least is what
    // closes the round.
    for (int r = lo; r < hi; ++r) sync_.publish_phase(r, 3 * round - 1);
  }
}

// --- dispatch selection ------------------------------------------------------

template <class Mode>
void SimEngine::drain_t(const Job& job) {
  if (shards_.size() == 1) {
    Shard& sh = shards_[0];
    while (!job.done && !sh.events.empty()) step_t<Mode>(sh);
    return;
  }
  drain_windows(job);
}

template <class Mode>
void SimEngine::set_mode() {
  step_fn_ = [](SimEngine& e) { e.step_t<Mode>(e.shards_[0]); };
  drain_fn_ = [](SimEngine& e, const Job& j) { e.drain_t<Mode>(j); };
  window_fn_ = [](SimEngine& e, Shard& sh) { e.window_phase1_t<Mode>(sh); };
}

template <class Tag>
void SimEngine::set_fused(CostClass cls) {
  if (cls == CostClass::kFixed) {
    set_mode<SimMode<StaticPolicyHooks<Tag>, FixedCostEval>>();
  } else {
    set_mode<SimMode<StaticPolicyHooks<Tag>, ExprCostEval>>();
  }
  dispatch_variant_ = fused_variant_name(Tag::kPolicy, cls);
}

void SimEngine::refresh_dispatch() {
  const CostClass cls = options_.force_generic_dispatch
                            ? CostClass::kCallable
                            : classify_cost_models(*registry_);
  if (cls == CostClass::kCallable) {
    set_mode<GenericMode>();
    dispatch_variant_ = "generic";
    return;
  }
  switch (policy_kind_) {
    case Policy::kRws: set_fused<RwsTag>(cls); return;
    case Policy::kRwsmC: set_fused<RwsmCTag>(cls); return;
    case Policy::kFa: set_fused<FaTag>(cls); return;
    case Policy::kFamC: set_fused<FamCTag>(cls); return;
    case Policy::kDa: set_fused<DaTag>(cls); return;
    case Policy::kDamC: set_fused<DamCTag>(cls); return;
    case Policy::kDamP: set_fused<DamPTag>(cls); return;
    case Policy::kDheft: set_fused<DheftTag>(cls); return;
  }
  // Unknown future policy value: the type-erased loop handles it.
  set_mode<GenericMode>();
  dispatch_variant_ = "generic";
}

}  // namespace das::sim
