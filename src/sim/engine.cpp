#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/cost_expr.hpp"
#include "util/assert.hpp"

namespace das::sim {

namespace {

// Cost-evaluation strategies the event loop binds at compile time (the
// second axis of the fused (policy x cost) instantiation grid; the first is
// the PolicyHooks adapter from core/policy.hpp). All three produce
// bit-identical doubles for catalog-built registries because they share one
// arithmetic implementation (core/cost_expr.hpp) — the callable path merely
// reaches it through the std::function the factories wrapped around it.

/// Generic escape hatch: honours a user-supplied std::function (and still
/// skips the indirection when a closed form exists).
struct CallableCostEval {
  static double eval(const TaskTypeInfo& info, const TaskParams& p,
                     const CostQuery& q) {
    return cost_eval(info, p, q);
  }
};

/// Every executable type carries a closed form: inline switch, no erasure.
struct ExprCostEval {
  static double eval(const TaskTypeInfo& info, const TaskParams& p,
                     const CostQuery& q) {
    return cost_expr_eval(info.expr, p, q);
  }
};

/// Every executable type is a kFixed constant: one load replaces the whole
/// evaluation — the regime the scheduler-overhead benches run in.
struct FixedCostEval {
  static double eval(const TaskTypeInfo& info, const TaskParams&,
                     const CostQuery&) {
    DAS_ASSERT(info.expr.kind == CostExpr::Kind::kFixed);
    return info.expr.u.fixed.seconds;
  }
};

template <class Hooks, class Cost>
struct SimMode {
  using PolicyHooks = Hooks;
  using CostEval = Cost;
};

/// The type-erased fallback loop: dynamic policy dispatch + the callable
/// escape hatch. Everything exotic (user cost models, future policies,
/// force_generic_dispatch A/B runs) lands here.
using GenericMode = SimMode<DynamicPolicyHooks, CallableCostEval>;

}  // namespace

SimEngine::SimEngine(std::vector<RankSpec> ranks, Policy policy,
                     const TaskTypeRegistry& registry, SimOptions options)
    : policy_kind_(policy), registry_(&registry), options_(options),
      rng_(options.seed) {
  DAS_CHECK(!ranks.empty());
  int total_cores = 0;
  for (const RankSpec& rs : ranks) {
    DAS_CHECK(rs.topo != nullptr);
    total_cores += rs.topo->num_cores();
  }
  rank_of_core_.reserve(static_cast<std::size_t>(total_cores));
  ranks_.reserve(ranks.size());

  int next_core = 0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    Rank rank;
    rank.topo = ranks[r].topo;
    rank.scenario = ranks[r].scenario;
    rank.first_core = next_core;
    rank.ptt = std::make_unique<PttStore>(*rank.topo, registry.size(),
                                          options_.ptt_ratio);
    rank.policy = std::make_unique<PolicyEngine>(
        policy, *rank.topo, rank.ptt.get(), options_.seed + 17 * (r + 1),
        options_.policy_options);
    rank.stats =
        std::make_unique<ExecutionStats>(*rank.topo, options_.stats_phases);
    for (int c = 0; c < rank.topo->num_cores(); ++c) {
      rank_of_core_.push_back(static_cast<int>(r));
      first_core_of_core_.push_back(next_core);
    }
    next_core += rank.topo->num_cores();
    ranks_.push_back(std::move(rank));
  }
  events_.set_num_lanes(kNumLanes);
  cores_.resize(static_cast<std::size_t>(total_cores));
  const std::size_t words = (static_cast<std::size_t>(total_cores) + 63) / 64;
  idle_bits_.assign(words, 0);
  wsq_bits_.assign(words, 0);
  // Every core starts idle (no pending event).
  for (int c = 0; c < total_cores; ++c)
    idle_bits_[static_cast<std::size_t>(c) >> 6] |= std::uint64_t{1} << (c & 63);
  refresh_dispatch();
}

SimEngine::SimEngine(const Topology& topo, Policy policy,
                     const TaskTypeRegistry& registry, SimOptions options,
                     const SpeedScenario* scenario)
    : SimEngine(std::vector<RankSpec>{RankSpec{&topo, scenario}}, policy,
                registry, options) {}

SimEngine::~SimEngine() = default;

int SimEngine::rank_of_core(int core) const {
  DAS_ASSERT(core >= 0 && core < static_cast<int>(rank_of_core_.size()));
  return rank_of_core_[static_cast<std::size_t>(core)];
}

int SimEngine::local_core(int core) const {
  return core - first_core_of_core_[static_cast<std::size_t>(core)];
}

SimEngine::Job& SimEngine::job_of(JobId id) {
  const std::int64_t idx = id - lookup_base_;
  DAS_CHECK_MSG(idx >= 0 &&
                    idx < static_cast<std::int64_t>(job_lookup_.size()) &&
                    job_lookup_[static_cast<std::size_t>(idx)] >= 0,
                "job " + std::to_string(id) + " is not in flight");
  return job_slots_[static_cast<std::size_t>(
      job_lookup_[static_cast<std::size_t>(idx)])];
}

std::uint64_t SimEngine::masked_word(const std::vector<std::uint64_t>& bits,
                                     int word, int lo, int hi) {
  std::uint64_t w = bits[static_cast<std::size_t>(word)];
  if (word == (lo >> 6)) w &= ~std::uint64_t{0} << (lo & 63);
  if (word == ((hi - 1) >> 6)) {
    const int top = hi - (word << 6);
    if (top < 64) w &= (std::uint64_t{1} << top) - 1;
  }
  return w;
}

ExecutionStats& SimEngine::stats(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].stats;
}

const ExecutionStats& SimEngine::stats(int rank) const {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].stats;
}

PolicyEngine& SimEngine::policy(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].policy;
}

PttStore& SimEngine::ptt(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].ptt;
}

double SimEngine::completion_time(NodeId id) const {
  DAS_CHECK(id >= 0 && id < static_cast<NodeId>(last_waited_count_));
  return last_waited_tasks_[static_cast<std::size_t>(id)].completion;
}

double SimEngine::lognormal_noise(double sigma) {
  if (sigma <= 0.0) return 1.0;
  // Marsaglia polar method on the engine RNG — deterministic across
  // standard libraries, unlike std::normal_distribution.
  double u, v, s;
  do {
    u = rng_.uniform(-1.0, 1.0);
    v = rng_.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double z = u * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(sigma * z);
}

JobId SimEngine::submit(const Dag& dag, double arrival_offset_s) {
  DAS_CHECK(dag.num_nodes() > 0);
  DAS_CHECK_MSG(arrival_offset_s >= 0.0,
                "submit: arrival offset must be >= 0");
  // Compact any staged edges into the CSR arena once, up front: the release
  // fan-out in handle_done then walks flat spans for the whole job.
  dag.seal();
  // Validation over the DAG's sealed metadata — O(#types + 1), not O(nodes),
  // and entirely before any engine state mutates, so a rejected DAG leaves
  // the engine untouched.
  for (const TaskTypeId t : dag.distinct_types()) {
    const TaskTypeInfo& ti = registry_->info(t);
    DAS_CHECK_MSG(ti.cost != nullptr ||
                      ti.expr.kind != CostExpr::Kind::kCallable,
                  "task type '" + ti.name +
                      "' has no cost model; the DES cannot execute it");
  }
  // Registration may have happened since the last submit (a new kCallable
  // type demotes to generic; a catalog-only registry promotes to fused).
  refresh_dispatch();
  DAS_CHECK_MSG(dag.min_node_rank() >= 0 && dag.max_node_rank() < num_ranks(),
                "dag node rank out of range");

  const JobId id = next_job_++;
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::int32_t>(job_slots_.size());
    job_slots_.emplace_back();
  }
  Job& job = job_slots_[static_cast<std::size_t>(slot)];
  job.dag = &dag;
  job.release_s = now_ + arrival_offset_s;
  job.completed = 0;
  job.finish_s = -1.0;
  job.done = false;
  // Overwrite allocation, no initialization: every entry is reset by
  // make_ready, which each task passes exactly once before any other read
  // of its TaskState.
  const auto num_nodes = static_cast<std::size_t>(dag.num_nodes());
  if (job.tasks_cap < num_nodes) {
    job.tasks = std::make_unique_for_overwrite<TaskState[]>(num_nodes);
    job.tasks_cap = num_nodes;
  }
  const std::vector<std::int32_t>& pc = dag.predecessor_counts();
  job.preds.assign(pc.begin(), pc.end());

  DAS_ASSERT(id - lookup_base_ ==
             static_cast<std::int64_t>(job_lookup_.size()));
  job_lookup_.push_back(slot);
  ++live_jobs_;

  // Pre-size the heap for the irregular events it still carries (roots,
  // pending completions, jittered wakes) — the steady-state wake/release
  // traffic lives in the FIFO lanes and needs no headroom here.
  events_.reserve(dag.root_ids().size() +
                  2 * rank_of_core_.size() + 64);

  // Release the roots "from" their rank's core 0 (or the affinity core),
  // in node order at the job's arrival instant. root_ids() is the sealed
  // cache — only the roots are touched, not the whole node array.
  for (const NodeId i : dag.root_ids()) {
    const DagNode& n = dag.node(i);
    DAS_CHECK_MSG(n.rank >= 0 && n.rank < num_ranks(),
                  "dag node rank out of range");
    const int local = n.affinity_core >= 0 ? n.affinity_core : 0;
    DAS_CHECK(local < ranks_[static_cast<std::size_t>(n.rank)].topo->num_cores());
    events_.push(job.release_s,
                 Event{Ev::kRoot, -1, id, i, global_core(n.rank, local)});
  }
  return id;
}

double SimEngine::wait(JobId id) {
  Job& job = job_of(id);
  // Advance the event loop until THIS job completes. Events of other
  // in-flight jobs that fall before its completion execute on the way — the
  // interleave is a pure function of (seed, submission trace). The whole
  // loop runs inside ONE dispatch instantiation (drain_fn_), so a fused
  // configuration pays no per-event indirect call at all.
  drain_fn_(*this, job);
  DAS_CHECK_MSG(job.done,
                "event queue drained with " +
                    std::to_string(job.dag->num_nodes() - job.completed) +
                    " tasks of job " + std::to_string(id) +
                    " incomplete (dependency deadlock?)");
  const double makespan = job.finish_s - job.release_s;
  // Elapsed accumulates the virtual time this wait advanced the clock by
  // (not the absolute clock): sequential runs still sum to now(), but after
  // an ExecutionStats::reset() the counters restart from zero instead of
  // silently re-including pre-reset time — matching the rt backend.
  for (auto& r : ranks_)
    r.stats->set_elapsed(r.stats->elapsed_s() + (now_ - elapsed_mark_));
  elapsed_mark_ = now_;
  // Swap, not move: the retired job's slot keeps its grown tasks array, so
  // the next job reusing the slot writes into existing capacity.
  std::swap(last_waited_tasks_, job.tasks);
  std::swap(last_waited_cap_, job.tasks_cap);
  last_waited_count_ = static_cast<std::size_t>(job.dag->num_nodes());

  const auto idx = static_cast<std::size_t>(id - lookup_base_);
  free_slots_.push_back(job_lookup_[idx]);
  job_lookup_[idx] = -1;
  --live_jobs_;
  // Amortized dead-prefix trim keeps the lookup window proportional to the
  // in-flight span, not the total jobs ever submitted.
  while (lookup_dead_prefix_ < job_lookup_.size() &&
         job_lookup_[lookup_dead_prefix_] < 0)
    ++lookup_dead_prefix_;
  if (lookup_dead_prefix_ > 64 &&
      lookup_dead_prefix_ * 2 > job_lookup_.size()) {
    job_lookup_.erase(job_lookup_.begin(),
                      job_lookup_.begin() +
                          static_cast<std::ptrdiff_t>(lookup_dead_prefix_));
    lookup_base_ += static_cast<JobId>(lookup_dead_prefix_);
    lookup_dead_prefix_ = 0;
  }
  return makespan;
}

// daslint: begin-hot-path(sim-step)
// The event-loop inner step: one pop + one handler per simulated event,
// instantiated once per dispatch mode so the policy hooks and the cost
// evaluation inline into the handlers. tools/daslint forbids allocation,
// lock acquisition and type-erased (std::function) calls here (the handlers
// reuse per-core flat queues; see sim's throughput gate).
template <class Mode>
void SimEngine::step_t() {
  // Direct pop: with the lane/heap queue a pop is one source scan plus an
  // O(1) ring pop for the dominant event classes — cheaper than staging
  // identical-time batches through a side buffer was.
  const EventQueue<Event>::Item item = events_.pop();
  ++events_processed_;
  DAS_ASSERT(item.time + 1e-12 >= now_);
  now_ = std::max(now_, item.time);
  const Event& e = item.payload;
  switch (e.kind) {
    case Ev::kWake:
      set_inactive(e.core);
      handle_wake_t<Mode>(e.core, now_);
      break;
    case Ev::kDone:
      handle_done_t<Mode>(e, now_);
      break;
    case Ev::kRelease:
      handle_release_t<Mode>(e, now_);
      break;
    case Ev::kRoot:
      make_ready_t<Mode>(e.job, e.task, e.from_core, now_);
      break;
    case Ev::kTimer:
      note_timer_fired(e, now_);
      break;
  }
}
// daslint: end-hot-path

void SimEngine::note_timer_fired(const Event& e, double t) {
  // Only the service layer schedules timers, so the hook is always present.
  DAS_ASSERT(timer_hook_);
  deferred_.push_back(
      Deferred{true, static_cast<std::uint64_t>(e.job), t});
}

void SimEngine::set_service_hooks(
    std::function<void(JobId, double)> job_done,
    std::function<void(std::uint64_t, double)> timer) {
  DAS_CHECK_MSG(job_done && timer, "set_service_hooks: both hooks required");
  job_done_hook_ = std::move(job_done);
  timer_hook_ = std::move(timer);
  deferred_.reserve(64);
}

void SimEngine::schedule_timer(double offset_s, std::uint64_t token) {
  DAS_CHECK_MSG(timer_hook_ != nullptr,
                "schedule_timer: install service hooks first");
  DAS_CHECK_MSG(offset_s >= 0.0, "schedule_timer: offset must be >= 0");
  events_.push(now_ + offset_s,
               Event{Ev::kTimer, -1, static_cast<JobId>(token), kInvalidNode,
                     -1});
}

bool SimEngine::pump_one() {
  if (!events_pending()) return false;
  step();
  // Deliver deferred notifications AFTER step() unwound: the hooks may
  // submit() or schedule_timer() (job_slots_/events_ mutation), which must
  // not run under the live Job& a handler frame holds. Index loop: a hook
  // must not re-enter pump_one(), but appends would still be delivered.
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    const Deferred d = deferred_[i];
    if (d.timer)
      timer_hook_(d.id, d.time);
    else
      job_done_hook_(static_cast<JobId>(d.id), d.time);
  }
  deferred_.clear();
  return true;
}

void SimEngine::activate(int core, double at, bool direct) {
  if (cores_[static_cast<std::size_t>(core)].active) return;
  set_active(core);
  if (direct) {
    // Explicit wake signal (steal-exempt placement): immediate.
    events_.push_lane(kLaneImmediate, at,
                      Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
    return;
  }
  // An inactive core is an idle worker in backoff sleep; it notices the new
  // work after the wake delay. The delay is jittered (uniform in
  // [0.5, 1.5] x nominal): each sleeper is at a random point of its backoff
  // period, which is also what keeps the steal race unbiased — with a fixed
  // delay, ties resolve FIFO and the lowest-numbered idle core would always
  // win the race (cores 3..5 would never work at low DAG parallelism).
  const double jitter = 0.5 + rng_.uniform();
  events_.push(at + options_.idle_wake_delay_s * jitter,
               Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
}

void SimEngine::wake_idle_cores(int rank, double t) {
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];
  const int lo = r.first_core;
  const int hi = lo + r.topo->num_cores();
  for (int w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
    // Snapshot the word: activate() only CLEARS bits (of the core being
    // woken), so iterating the snapshot visits exactly the cores that were
    // idle when the sweep began — the same set, in the same ascending
    // order, as the old activate-every-core scan.
    std::uint64_t bits = masked_word(idle_bits_, w, lo, hi);
    while (bits != 0) {
      const int core = (w << 6) + std::countr_zero(bits);
      bits &= bits - 1;
      activate(core, t);
    }
  }
}

template <class Mode>
void SimEngine::make_ready_t(JobId job_id, NodeId id, int waking_core,
                             double t) {
  Job& job = job_at(job_id);
  const DagNode& n = node_of(job, id);
  // Live bound check, not just the sealed-metadata snapshot submit saw: a
  // caller that mutates node ranks on an already-sealed DAG must get a
  // thrown precondition here, never an out-of-bounds ranks_ access.
  DAS_CHECK_MSG(n.rank >= 0 && n.rank < num_ranks(),
                "dag node rank out of range");
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  ts = TaskState{};  // first touch of this task: clear recycled slot state
  // Per-task invariant, resolved once: every participant's cost evaluation
  // and noise-sigma lookup read this row instead of re-walking the registry.
  ts.type_info = &registry_->info(n.type);
  Rank& rank = ranks_[static_cast<std::size_t>(n.rank)];

  // Wakes crossing ranks land on the task's affinity core (or core 0 of its
  // rank): a remote completion cannot touch another process's queues.
  int local_waker;
  if (rank_of_core(waking_core) == n.rank) {
    local_waker = local_core(waking_core);
  } else {
    local_waker = n.affinity_core >= 0 ? n.affinity_core : 0;
  }

  const WakeDecision wd = Mode::PolicyHooks::on_ready(*rank.policy, n.type,
                                                      n.priority, local_waker);
  const int queue_core = global_core(n.rank, wd.queue_core);

  if (wd.has_fixed_place) {
    ts.has_fixed_place = true;
    ts.place = wd.fixed_place;
  } else if (!options_.policy_options.remold_on_dequeue &&
             rank.policy->traits().uses_ptt) {
    // Ablation: decide the width at wake-up and never re-mold.
    ts.has_fixed_place = true;
    ts.place = Mode::PolicyHooks::on_execute(*rank.policy, n.type, n.priority,
                                             wd.queue_core);
  }

  if (wd.stealable) {
    wsq_push(queue_core, QueuedTask{job_id, id});
    // The new task is visible to thieves: give every idle core of the rank a
    // chance to grab it (they re-idle immediately if they lose the race).
    activate(queue_core, t);
    wake_idle_cores(n.rank, t);
  } else {
    cores_[static_cast<std::size_t>(queue_core)].inbox.push_back(
        QueuedTask{job_id, id});
    activate(queue_core, t, /*direct=*/true);
  }
}

void SimEngine::distribute(Job& job, JobId job_id, NodeId id,
                           const ExecutionPlace& place, int rank, double t) {
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];
  DAS_CHECK_MSG(r.topo->is_valid_place(place),
                "policy produced invalid place " + to_string(place));
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  ts.place = place;
  ts.has_fixed_place = true;
  for (int i = 0; i < place.width; ++i) {
    const int core = global_core(rank, place.leader + i);
    cores_[static_cast<std::size_t>(core)].aq.push_back(
        Participation{job_id, id, i});
    activate(core, t + options_.dispatch_overhead_s);
  }
}

template <class Mode>
double SimEngine::participation_cost_t(const Job& job, NodeId id, int core,
                                       int rank_in_assembly, double t) {
  const DagNode& n = node_of(job, id);
  const TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  const Rank& r = ranks_[static_cast<std::size_t>(n.rank)];
  const int local = local_core(core);
  const Cluster& cluster = r.topo->cluster_of_core(local);

  CostQuery q;
  q.place = ts.place;
  q.rank = rank_in_assembly;
  q.core = local;
  q.cluster = &cluster;
  if (r.scenario != nullptr) {
    q.speed = r.scenario->speed(local, t);
    q.bw_share =
        r.scenario->bandwidth_share(r.topo->cluster_index_of(local), t);
  } else {
    q.speed = cluster.base_speed;
    q.bw_share = 1.0;
  }

  // Hoisted per-task invariant (make_ready cached the registry row): the
  // per-participant path is the query build + the cost arithmetic itself.
  const TaskTypeInfo& info = *ts.type_info;
  double cost = Mode::CostEval::eval(info, n.params, q);
  if (options_.noise) {
    cost *= lognormal_noise(TaskTypeRegistry::noise_sigma_of(info, cost));
  }
  return std::max(cost, 1e-9);
}

template <class Mode>
void SimEngine::start_participation_t(int core, const Participation& p,
                                      double t) {
  CoreState& cs = cores_[static_cast<std::size_t>(core)];
  DAS_CHECK_MSG(!cs.busy, "core double-booked: a participation started while "
                          "another is still running");
  Job& job = job_at(p.job);
  TaskState& ts = job.tasks[static_cast<std::size_t>(p.task)];
  if (ts.arrivals == 0) ts.first_arrival = t;
  ts.arrivals++;
  const double cost =
      participation_cost_t<Mode>(job, p.task, core, p.rank_in_assembly, t);
  ts.max_cost = std::max(ts.max_cost, cost);
  const int rank = rank_of_core(core);
  ranks_[static_cast<std::size_t>(rank)].stats->record_busy_st(
      local_core(core), static_cast<std::int64_t>(cost * 1e9));
  // Timeline bookkeeping (node lookup, type-name resolution) is hoisted
  // behind the null check: the common timeline-less run pays nothing.
  if (options_.timeline != nullptr) {
    const DagNode& n = node_of(job, p.task);
    options_.timeline->record(core, t, cost, registry_->info(n.type).name,
                              n.priority, ts.place.width);
  }
  set_active(core);
  cs.busy = true;
  events_.push(t + cost, Event{Ev::kDone, core, p.job, p.task, -1});
}

template <class Mode>
bool SimEngine::try_steal_t(int core, double t) {
  const int rank = rank_of_core(core);
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];
  const int lo = r.first_core;
  const int hi = lo + r.topo->num_cores();
  const int self_word = core >> 6;
  const std::uint64_t self_mask = ~(std::uint64_t{1} << (core & 63));

  // Victim count by bit rank over the occupancy bitmap — the same count,
  // and below the same k-th victim in ascending core order, that the old
  // scan-and-collect vector produced, so the seeded RNG stream (and with it
  // every virtual-time result) is unchanged.
  int n_victims = 0;
  for (int w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
    std::uint64_t bits = masked_word(wsq_bits_, w, lo, hi);
    if (w == self_word) bits &= self_mask;
    n_victims += std::popcount(bits);
  }
  if (n_victims == 0) return false;

  std::size_t k = rng_.below(static_cast<std::size_t>(n_victims));
  int victim = -1;
  for (int w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
    std::uint64_t bits = masked_word(wsq_bits_, w, lo, hi);
    if (w == self_word) bits &= self_mask;
    const auto pc = static_cast<std::size_t>(std::popcount(bits));
    if (k < pc) {
      for (; k > 0; --k) bits &= bits - 1;  // drop k lowest set bits
      victim = (w << 6) + std::countr_zero(bits);
      break;
    }
    k -= pc;
  }
  DAS_ASSERT(victim >= 0);

  CoreState& vs = cores_[static_cast<std::size_t>(victim)];
  const QueuedTask qt = vs.wsq.front();  // thieves take the oldest task
  vs.wsq.pop_front();
  wsq_mark_if_empty(victim);

  Job& job = job_at(qt.job);
  const DagNode& n = node_of(job, qt.task);
  TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
  const ExecutionPlace place =
      ts.has_fixed_place
          ? ts.place
          : Mode::PolicyHooks::on_execute(*r.policy, n.type, n.priority,
                                          local_core(core));
  // Mark the thief active first (one pending wake), then distribute after
  // the steal round-trip.
  set_active(core);
  events_.push_lane(kLaneSteal,
                    t + options_.steal_latency_s + options_.dispatch_overhead_s,
                    Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
  distribute(job, qt.job, qt.task, place, rank, t + options_.steal_latency_s);
  return true;
}

template <class Mode>
void SimEngine::handle_wake_t(int core, double t) {
  CoreState& cs = cores_[static_cast<std::size_t>(core)];

  // 1. Assembly queue first: committed work. (The rank lookups below are
  // deferred past this branch — a wake that starts a queued participation
  // never needs them.)
  if (!cs.aq.empty()) {
    const Participation p = cs.aq.front();
    cs.aq.pop_front();
    start_participation_t<Mode>(core, p, t);
    return;
  }
  const int rank = rank_of_core(core);
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];
  // 2. Steal-exempt inbox: high-priority tasks with fixed places.
  if (!cs.inbox.empty()) {
    const QueuedTask qt = cs.inbox.front();
    cs.inbox.pop_front();
    Job& job = job_at(qt.job);
    const TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
    DAS_ASSERT(ts.has_fixed_place);
    // Mark THIS core active (single pending wake) before distribute() tries
    // to activate the participants — otherwise the distributor would get a
    // second wake event and could double-book itself.
    set_active(core);
    events_.push_lane(kLaneDispatch, t + options_.dispatch_overhead_s,
                      Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
    distribute(job, qt.job, qt.task, ts.place, rank, t);
    return;
  }
  // 3. Own WSQ (LIFO end).
  if (!cs.wsq.empty()) {
    const QueuedTask qt = cs.wsq.back();
    cs.wsq.pop_back();
    wsq_mark_if_empty(core);
    Job& job = job_at(qt.job);
    const DagNode& n = node_of(job, qt.task);
    const TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
    const ExecutionPlace place =
        ts.has_fixed_place
            ? ts.place
            : Mode::PolicyHooks::on_execute(*r.policy, n.type, n.priority,
                                            local_core(core));
    set_active(core);  // see the inbox branch: one pending wake only
    events_.push_lane(kLaneDispatch, t + options_.dispatch_overhead_s,
                      Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1});
    distribute(job, qt.job, qt.task, place, rank, t);
    return;
  }
  // 4. Steal from a random victim within the rank.
  if (try_steal_t<Mode>(core, t)) return;
  // 5. Nothing anywhere: go idle. A future push will re-activate us.
}

template <class Mode>
void SimEngine::handle_done_t(const Event& e, double t) {
  Job& job = job_at(e.job);
  const NodeId id = e.task;
  const DagNode& n = node_of(job, id);
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  Rank& r = ranks_[static_cast<std::size_t>(n.rank)];

  ts.departures++;
  DAS_ASSERT(ts.departures <= ts.place.width);
  if (ts.departures == ts.place.width) {
    // Last finisher: train the PTT and release successors (paper Fig. 3
    // step 8). The PTT learns the task's intrinsic duration at this place —
    // the slowest participant's busy time, which is what the paper's leader
    // core observes — NOT the assembly span: the span includes arrival skew
    // (participants queueing behind other work), which would make wide
    // places look slow for reasons that have nothing to do with the place.
    const double span = t - ts.first_arrival;
    Mode::PolicyHooks::record_sample(*r.policy, n.type, ts.place, ts.max_cost);
    const int place_id = r.topo->place_id(ts.place);
    r.stats->record_task_at_st(n.priority, place_id, span, n.phase);
    ts.completion = t;
    job.completed++;
    // Release fan-out over the sealed CSR arena: a flat span walk, no
    // per-node vector indirection. The overwhelmingly common zero-delay
    // edge releases at `t` exactly — FIFO-lane territory; only cross-rank
    // edges with a wire delay pay the heap.
    for (const DagEdge& edge : job.dag->successors(id)) {
      const Event rel{Ev::kRelease, -1, e.job, edge.to, e.core};
      if (edge.delay_s == 0.0) {
        events_.push_lane(kLaneImmediate, t, rel);
      } else {
        events_.push(t + edge.delay_s, rel);
      }
    }
    if (job.completed == job.dag->num_nodes()) {
      job.done = true;
      job.finish_s = t;
      if (job_done_hook_)
        deferred_.push_back(Deferred{false, static_cast<std::uint64_t>(e.job), t});
    }
  }

  // The participant core looks for new work after the completion
  // bookkeeping (see SimOptions::completion_overhead_s).
  CoreState& cs = cores_[static_cast<std::size_t>(e.core)];
  DAS_ASSERT(cs.busy);
  cs.busy = false;
  set_active(e.core);
  events_.push_lane(kLaneCompletion, t + options_.completion_overhead_s,
                    Event{Ev::kWake, e.core, kInvalidJob, kInvalidNode, -1});
}

template <class Mode>
void SimEngine::handle_release_t(const Event& e, double t) {
  Job& job = job_at(e.job);
  std::int32_t& preds = job.preds[static_cast<std::size_t>(e.task)];
  DAS_ASSERT(preds > 0);
  if (--preds == 0) make_ready_t<Mode>(e.job, e.task, e.from_core, t);
}

// --- dispatch selection ------------------------------------------------------

template <class Mode>
void SimEngine::set_mode() {
  step_fn_ = [](SimEngine& e) { e.step_t<Mode>(); };
  drain_fn_ = [](SimEngine& e, const Job& j) {
    while (!j.done && e.events_pending()) e.step_t<Mode>();
  };
}

template <class Tag>
void SimEngine::set_fused(CostClass cls) {
  if (cls == CostClass::kFixed) {
    set_mode<SimMode<StaticPolicyHooks<Tag>, FixedCostEval>>();
  } else {
    set_mode<SimMode<StaticPolicyHooks<Tag>, ExprCostEval>>();
  }
  dispatch_variant_ = fused_variant_name(Tag::kPolicy, cls);
}

void SimEngine::refresh_dispatch() {
  const CostClass cls = options_.force_generic_dispatch
                            ? CostClass::kCallable
                            : classify_cost_models(*registry_);
  if (cls == CostClass::kCallable) {
    set_mode<GenericMode>();
    dispatch_variant_ = "generic";
    return;
  }
  switch (policy_kind_) {
    case Policy::kRws: set_fused<RwsTag>(cls); return;
    case Policy::kRwsmC: set_fused<RwsmCTag>(cls); return;
    case Policy::kFa: set_fused<FaTag>(cls); return;
    case Policy::kFamC: set_fused<FamCTag>(cls); return;
    case Policy::kDa: set_fused<DaTag>(cls); return;
    case Policy::kDamC: set_fused<DamCTag>(cls); return;
    case Policy::kDamP: set_fused<DamPTag>(cls); return;
    case Policy::kDheft: set_fused<DheftTag>(cls); return;
  }
  // Unknown future policy value: the type-erased loop handles it.
  set_mode<GenericMode>();
  dispatch_variant_ = "generic";
}

}  // namespace das::sim
