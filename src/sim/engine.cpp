#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace das::sim {

SimEngine::SimEngine(std::vector<RankSpec> ranks, Policy policy,
                     const TaskTypeRegistry& registry, SimOptions options)
    : policy_kind_(policy), registry_(&registry), options_(options),
      rng_(options.seed) {
  DAS_CHECK(!ranks.empty());
  int next_core = 0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    DAS_CHECK(ranks[r].topo != nullptr);
    Rank rank;
    rank.topo = ranks[r].topo;
    rank.scenario = ranks[r].scenario;
    rank.first_core = next_core;
    rank.ptt = std::make_unique<PttStore>(*rank.topo, registry.size(),
                                          options_.ptt_ratio);
    rank.policy = std::make_unique<PolicyEngine>(
        policy, *rank.topo, rank.ptt.get(), options_.seed + 17 * (r + 1),
        options_.policy_options);
    rank.stats =
        std::make_unique<ExecutionStats>(*rank.topo, options_.stats_phases);
    next_core += rank.topo->num_cores();
    for (int c = 0; c < rank.topo->num_cores(); ++c)
      rank_of_core_.push_back(static_cast<int>(r));
    ranks_.push_back(std::move(rank));
  }
  cores_.resize(static_cast<std::size_t>(next_core));
}

SimEngine::SimEngine(const Topology& topo, Policy policy,
                     const TaskTypeRegistry& registry, SimOptions options,
                     const SpeedScenario* scenario)
    : SimEngine(std::vector<RankSpec>{RankSpec{&topo, scenario}}, policy,
                registry, options) {}

SimEngine::~SimEngine() = default;

int SimEngine::rank_of_core(int core) const {
  DAS_ASSERT(core >= 0 && core < static_cast<int>(rank_of_core_.size()));
  return rank_of_core_[static_cast<std::size_t>(core)];
}

int SimEngine::local_core(int core) const {
  return core - ranks_[static_cast<std::size_t>(rank_of_core(core))].first_core;
}

SimEngine::Job& SimEngine::job_of(JobId id) {
  const auto it = jobs_.find(id);
  DAS_CHECK_MSG(it != jobs_.end(),
                "job " + std::to_string(id) + " is not in flight");
  return it->second;
}

ExecutionStats& SimEngine::stats(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].stats;
}

const ExecutionStats& SimEngine::stats(int rank) const {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].stats;
}

PolicyEngine& SimEngine::policy(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].policy;
}

PttStore& SimEngine::ptt(int rank) {
  DAS_CHECK(rank >= 0 && rank < num_ranks());
  return *ranks_[static_cast<std::size_t>(rank)].ptt;
}

double SimEngine::completion_time(NodeId id) const {
  DAS_CHECK(id >= 0 && id < static_cast<NodeId>(last_waited_tasks_.size()));
  return last_waited_tasks_[static_cast<std::size_t>(id)].completion;
}

double SimEngine::lognormal_noise(double sigma) {
  if (sigma <= 0.0) return 1.0;
  // Marsaglia polar method on the engine RNG — deterministic across
  // standard libraries, unlike std::normal_distribution.
  double u, v, s;
  do {
    u = rng_.uniform(-1.0, 1.0);
    v = rng_.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double z = u * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(sigma * z);
}

JobId SimEngine::submit(const Dag& dag, double arrival_offset_s) {
  DAS_CHECK(dag.num_nodes() > 0);
  DAS_CHECK_MSG(arrival_offset_s >= 0.0,
                "submit: arrival offset must be >= 0");
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    DAS_CHECK_MSG(n.rank >= 0 && n.rank < num_ranks(),
                  "dag node rank out of range");
    DAS_CHECK_MSG(registry_->info(n.type).cost != nullptr,
                  "task type '" + registry_->info(n.type).name +
                      "' has no cost model; the DES cannot execute it");
  }

  const JobId id = next_job_++;
  Job job;
  job.dag = &dag;
  job.release_s = now_ + arrival_offset_s;
  job.tasks.assign(static_cast<std::size_t>(dag.num_nodes()), TaskState{});
  for (NodeId i = 0; i < dag.num_nodes(); ++i)
    job.tasks[static_cast<std::size_t>(i)].preds = dag.node(i).num_predecessors;

  // Pre-size the heap from the DAG's node count: the root pushes below plus
  // the job's release/wake churn then grow the vector at most once instead
  // of reallocating through the doubling ladder on million-node DAGs.
  events_.reserve(static_cast<std::size_t>(dag.num_nodes()));

  // Release the roots "from" their rank's core 0 (or the affinity core), in
  // node order at the job's arrival instant.
  for (NodeId i = 0; i < dag.num_nodes(); ++i) {
    const DagNode& n = dag.node(i);
    if (n.num_predecessors != 0) continue;
    const int local = n.affinity_core >= 0 ? n.affinity_core : 0;
    DAS_CHECK(local < ranks_[static_cast<std::size_t>(n.rank)].topo->num_cores());
    events_.push(job.release_s,
                 Event{Ev::kRoot, -1, id, i, global_core(n.rank, local), 0.0});
  }
  jobs_.emplace(id, std::move(job));
  return id;
}

double SimEngine::wait(JobId id) {
  Job& job = job_of(id);
  // Advance the event loop until THIS job completes. Events of other
  // in-flight jobs that fall before its completion execute on the way — the
  // interleave is a pure function of (seed, submission trace).
  while (!job.done && events_pending()) step();
  DAS_CHECK_MSG(job.done,
                "event queue drained with " +
                    std::to_string(job.dag->num_nodes() - job.completed) +
                    " tasks of job " + std::to_string(id) +
                    " incomplete (dependency deadlock?)");
  const double makespan = job.finish_s - job.release_s;
  // Elapsed accumulates the virtual time this wait advanced the clock by
  // (not the absolute clock): sequential runs still sum to now(), but after
  // an ExecutionStats::reset() the counters restart from zero instead of
  // silently re-including pre-reset time — matching the rt backend.
  for (auto& r : ranks_)
    r.stats->set_elapsed(r.stats->elapsed_s() + (now_ - elapsed_mark_));
  elapsed_mark_ = now_;
  last_waited_tasks_ = std::move(job.tasks);
  jobs_.erase(id);
  return makespan;
}

void SimEngine::step() {
  if (ready_pos_ == ready_batch_.size()) {
    // Refill: drain every event tied at the earliest instant in one heap
    // sweep (EventQueue::pop_ready). The buffer is reused — clear() keeps
    // its capacity, so steady-state stepping allocates nothing.
    ready_batch_.clear();
    ready_pos_ = 0;
    events_.pop_ready(ready_batch_);
    DAS_ASSERT(!ready_batch_.empty());
  }
  const auto& item = ready_batch_[ready_pos_++];
  DAS_ASSERT(item.time + 1e-12 >= now_);
  now_ = std::max(now_, item.time);
  const Event& e = item.payload;
  switch (e.kind) {
    case Ev::kWake:
      cores_[static_cast<std::size_t>(e.core)].active = false;
      handle_wake(e.core, now_);
      break;
    case Ev::kDone:
      handle_done(e, now_);
      break;
    case Ev::kRelease:
      handle_release(e, now_);
      break;
    case Ev::kRoot:
      make_ready(e.job, e.task, e.from_core, now_);
      break;
  }
}

void SimEngine::activate(int core, double at, bool direct) {
  CoreState& cs = cores_[static_cast<std::size_t>(core)];
  if (cs.active) return;
  cs.active = true;
  if (direct) {
    // Explicit wake signal (steal-exempt placement): immediate.
    events_.push(at, Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1, 0.0});
    return;
  }
  // An inactive core is an idle worker in backoff sleep; it notices the new
  // work after the wake delay. The delay is jittered (uniform in
  // [0.5, 1.5] x nominal): each sleeper is at a random point of its backoff
  // period, which is also what keeps the steal race unbiased — with a fixed
  // delay, ties resolve FIFO and the lowest-numbered idle core would always
  // win the race (cores 3..5 would never work at low DAG parallelism).
  const double jitter = 0.5 + rng_.uniform();
  events_.push(at + options_.idle_wake_delay_s * jitter,
               Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1, 0.0});
}

void SimEngine::make_ready(JobId job_id, NodeId id, int waking_core, double t) {
  Job& job = job_of(job_id);
  const DagNode& n = node_of(job, id);
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  Rank& rank = ranks_[static_cast<std::size_t>(n.rank)];

  // Wakes crossing ranks land on the task's affinity core (or core 0 of its
  // rank): a remote completion cannot touch another process's queues.
  int local_waker;
  if (rank_of_core(waking_core) == n.rank) {
    local_waker = local_core(waking_core);
  } else {
    local_waker = n.affinity_core >= 0 ? n.affinity_core : 0;
  }

  const WakeDecision wd = rank.policy->on_ready(n.type, n.priority, local_waker);
  const int queue_core = global_core(n.rank, wd.queue_core);
  CoreState& target = cores_[static_cast<std::size_t>(queue_core)];

  if (wd.has_fixed_place) {
    ts.has_fixed_place = true;
    ts.place = wd.fixed_place;
  } else if (!options_.policy_options.remold_on_dequeue &&
             rank.policy->traits().uses_ptt) {
    // Ablation: decide the width at wake-up and never re-mold.
    ts.has_fixed_place = true;
    ts.place = rank.policy->on_execute(n.type, n.priority, wd.queue_core);
  }

  if (wd.stealable) {
    target.wsq.push_back(QueuedTask{job_id, id});
    // The new task is visible to thieves: give every idle core of the rank a
    // chance to grab it (they re-idle immediately if they lose the race).
    activate(queue_core, t);
    for (int c = 0; c < rank.topo->num_cores(); ++c)
      activate(global_core(n.rank, c), t);
  } else {
    target.inbox.push_back(QueuedTask{job_id, id});
    activate(queue_core, t, /*direct=*/true);
  }
}

void SimEngine::distribute(JobId job_id, NodeId id, const ExecutionPlace& place,
                           int rank, double t) {
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];
  DAS_CHECK_MSG(r.topo->is_valid_place(place),
                "policy produced invalid place " + to_string(place));
  TaskState& ts = job_of(job_id).tasks[static_cast<std::size_t>(id)];
  ts.place = place;
  ts.has_fixed_place = true;
  for (int i = 0; i < place.width; ++i) {
    const int core = global_core(rank, place.leader + i);
    cores_[static_cast<std::size_t>(core)].aq.push_back(
        Participation{job_id, id, i});
    activate(core, t + options_.dispatch_overhead_s);
  }
}

double SimEngine::participation_cost(const Job& job, NodeId id, int core,
                                     int rank_in_assembly, double t) {
  const DagNode& n = node_of(job, id);
  const TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  const Rank& r = ranks_[static_cast<std::size_t>(n.rank)];
  const int local = local_core(core);
  const Cluster& cluster = r.topo->cluster_of_core(local);

  CostQuery q;
  q.place = ts.place;
  q.rank = rank_in_assembly;
  q.core = local;
  q.cluster = &cluster;
  if (r.scenario != nullptr) {
    q.speed = r.scenario->speed(local, t);
    q.bw_share =
        r.scenario->bandwidth_share(r.topo->cluster_index_of(local), t);
  } else {
    q.speed = cluster.base_speed;
    q.bw_share = 1.0;
  }

  const TaskTypeInfo& info = registry_->info(n.type);
  double cost = info.cost(n.params, q);
  if (options_.noise) {
    cost *= lognormal_noise(registry_->noise_sigma(n.type, cost));
  }
  return std::max(cost, 1e-9);
}

void SimEngine::start_participation(int core, const Participation& p, double t) {
  CoreState& cs = cores_[static_cast<std::size_t>(core)];
  DAS_CHECK_MSG(!cs.busy, "core double-booked: a participation started while "
                          "another is still running");
  Job& job = job_of(p.job);
  TaskState& ts = job.tasks[static_cast<std::size_t>(p.task)];
  if (ts.arrivals == 0) ts.first_arrival = t;
  ts.arrivals++;
  const double cost = participation_cost(job, p.task, core, p.rank_in_assembly, t);
  ts.max_cost = std::max(ts.max_cost, cost);
  const int rank = rank_of_core(core);
  ranks_[static_cast<std::size_t>(rank)].stats->record_busy(
      local_core(core), static_cast<std::int64_t>(cost * 1e9));
  if (options_.timeline != nullptr) {
    const DagNode& n = node_of(job, p.task);
    options_.timeline->record(core, t, cost, registry_->info(n.type).name,
                              n.priority, ts.place.width);
  }
  cs.active = true;
  cs.busy = true;
  events_.push(t + cost, Event{Ev::kDone, core, p.job, p.task, -1, cost});
}

bool SimEngine::try_steal(int core, double t) {
  const int rank = rank_of_core(core);
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];
  std::vector<int> victims;
  for (int c = 0; c < r.topo->num_cores(); ++c) {
    const int gc = global_core(rank, c);
    if (gc != core && !cores_[static_cast<std::size_t>(gc)].wsq.empty())
      victims.push_back(gc);
  }
  if (victims.empty()) return false;
  const int victim =
      victims[static_cast<std::size_t>(rng_.below(victims.size()))];
  CoreState& vs = cores_[static_cast<std::size_t>(victim)];
  const QueuedTask qt = vs.wsq.front();  // thieves take the oldest task
  vs.wsq.erase(vs.wsq.begin());

  Job& job = job_of(qt.job);
  const DagNode& n = node_of(job, qt.task);
  TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
  const ExecutionPlace place =
      ts.has_fixed_place
          ? ts.place
          : r.policy->on_execute(n.type, n.priority, local_core(core));
  // Mark the thief active first (one pending wake), then distribute after
  // the steal round-trip.
  cores_[static_cast<std::size_t>(core)].active = true;
  events_.push(t + options_.steal_latency_s + options_.dispatch_overhead_s,
               Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1, 0.0});
  distribute(qt.job, qt.task, place, rank, t + options_.steal_latency_s);
  return true;
}

void SimEngine::handle_wake(int core, double t) {
  CoreState& cs = cores_[static_cast<std::size_t>(core)];
  const int rank = rank_of_core(core);
  const Rank& r = ranks_[static_cast<std::size_t>(rank)];

  // 1. Assembly queue first: committed work.
  if (!cs.aq.empty()) {
    const Participation p = cs.aq.front();
    cs.aq.erase(cs.aq.begin());
    start_participation(core, p, t);
    return;
  }
  // 2. Steal-exempt inbox: high-priority tasks with fixed places.
  if (!cs.inbox.empty()) {
    const QueuedTask qt = cs.inbox.front();
    cs.inbox.erase(cs.inbox.begin());
    const TaskState& ts =
        job_of(qt.job).tasks[static_cast<std::size_t>(qt.task)];
    DAS_ASSERT(ts.has_fixed_place);
    // Mark THIS core active (single pending wake) before distribute() tries
    // to activate the participants — otherwise the distributor would get a
    // second wake event and could double-book itself.
    cs.active = true;
    events_.push(t + options_.dispatch_overhead_s,
                 Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1, 0.0});
    distribute(qt.job, qt.task, ts.place, rank, t);
    return;
  }
  // 3. Own WSQ (LIFO end).
  if (!cs.wsq.empty()) {
    const QueuedTask qt = cs.wsq.back();
    cs.wsq.pop_back();
    Job& job = job_of(qt.job);
    const DagNode& n = node_of(job, qt.task);
    const TaskState& ts = job.tasks[static_cast<std::size_t>(qt.task)];
    const ExecutionPlace place =
        ts.has_fixed_place
            ? ts.place
            : r.policy->on_execute(n.type, n.priority, local_core(core));
    cs.active = true;  // see the inbox branch: one pending wake only
    events_.push(t + options_.dispatch_overhead_s,
                 Event{Ev::kWake, core, kInvalidJob, kInvalidNode, -1, 0.0});
    distribute(qt.job, qt.task, place, rank, t);
    return;
  }
  // 4. Steal from a random victim within the rank.
  if (try_steal(core, t)) return;
  // 5. Nothing anywhere: go idle. A future push will re-activate us.
}

void SimEngine::handle_done(const Event& e, double t) {
  Job& job = job_of(e.job);
  const NodeId id = e.task;
  const DagNode& n = node_of(job, id);
  TaskState& ts = job.tasks[static_cast<std::size_t>(id)];
  Rank& r = ranks_[static_cast<std::size_t>(n.rank)];

  ts.departures++;
  DAS_ASSERT(ts.departures <= ts.place.width);
  if (ts.departures == ts.place.width) {
    // Last finisher: train the PTT and release successors (paper Fig. 3
    // step 8). The PTT learns the task's intrinsic duration at this place —
    // the slowest participant's busy time, which is what the paper's leader
    // core observes — NOT the assembly span: the span includes arrival skew
    // (participants queueing behind other work), which would make wide
    // places look slow for reasons that have nothing to do with the place.
    const double span = t - ts.first_arrival;
    r.policy->record_sample(n.type, ts.place, ts.max_cost);
    const int place_id = r.topo->place_id(ts.place);
    r.stats->record_task_at(n.priority, place_id, span, n.phase);
    ts.completion = t;
    job.completed++;
    for (const DagEdge& edge : n.successors) {
      events_.push(t + edge.delay_s,
                   Event{Ev::kRelease, -1, e.job, edge.to, e.core, 0.0});
    }
    if (job.completed == job.dag->num_nodes()) {
      job.done = true;
      job.finish_s = t;
    }
  }

  // The participant core looks for new work after the completion
  // bookkeeping (see SimOptions::completion_overhead_s).
  CoreState& cs = cores_[static_cast<std::size_t>(e.core)];
  DAS_ASSERT(cs.busy);
  cs.busy = false;
  cs.active = true;
  events_.push(t + options_.completion_overhead_s,
               Event{Ev::kWake, e.core, kInvalidJob, kInvalidNode, -1, 0.0});
}

void SimEngine::handle_release(const Event& e, double t) {
  Job& job = job_of(e.job);
  TaskState& ts = job.tasks[static_cast<std::size_t>(e.task)];
  DAS_ASSERT(ts.preds > 0);
  if (--ts.preds == 0) make_ready(e.job, e.task, e.from_core, t);
}

}  // namespace das::sim
