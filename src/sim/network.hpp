#pragma once
// Network model for cross-rank DAG edges in the discrete-event engine.
//
// The DES represents an in-flight message as a delayed dependency edge
// (DagEdge::delay_s); this model centralises how that delay is derived from
// message size — the classic latency + size/bandwidth (alpha-beta) model,
// adequate for the point-to-point ghost exchanges of the Heat benchmark.

#include <cstddef>

namespace das::sim {

struct NetworkModel {
  double latency_s = 30e-6;  ///< per-message wire latency (alpha)
  double bw_gbs = 5.0;       ///< effective link bandwidth (1/beta)

  /// Wire time of a `bytes`-sized message.
  double delay(double bytes) const;

  /// Messages per second a single link sustains at this size (used by the
  /// bench harness to sanity-check throughput ceilings).
  double msg_rate(double bytes) const;
};

}  // namespace das::sim
