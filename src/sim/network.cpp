#include "sim/network.hpp"

#include "util/assert.hpp"

namespace das::sim {

double NetworkModel::delay(double bytes) const {
  DAS_CHECK(latency_s >= 0.0 && bw_gbs > 0.0);
  DAS_CHECK(bytes >= 0.0);
  return latency_s + bytes / (bw_gbs * 1e9);
}

double NetworkModel::msg_rate(double bytes) const {
  const double d = delay(bytes);
  return d > 0.0 ? 1.0 / d : 0.0;
}

}  // namespace das::sim
