#pragma once
// Distributed 2D Heat (iterative Jacobi stencil) — paper §4.2.2 / Fig. 10.
//
// The global grid is split into row bands, one per rank. Each iteration a
// rank (1) exchanges its boundary rows with its neighbours — the paper
// encapsulates these MPI calls into dedicated tasks marked HIGH priority —
// and (2) sweeps its band with moldable low-priority compute tasks.
//
// Two variants:
//   HeatReal   — actual numerics over das::net (one Runtime per rank);
//                validated against the serial reference sweep.
//   make_heat_sim_dag — a multi-rank DAG for the DES with cross-rank edges
//                carrying network delays; regenerates the paper's Fig. 10
//                at full 4-node x 20-core scale.

#include <memory>
#include <vector>

#include "core/dag.hpp"
#include "net/comm.hpp"

namespace das::workloads {

struct HeatConfig {
  int rows = 512;            ///< global interior rows (split across ranks)
  int cols = 512;
  int ranks = 4;
  int iterations = 32;
  int tasks_per_rank = 8;    ///< compute tasks per rank per iteration
  double net_latency_s = 30e-6;
  double net_bw_gbs = 5.0;
};

/// DES DAG spanning `cfg.ranks` scheduling domains. Compute tasks carry
/// stencil cost-model parameters; boundary-exchange tasks are high-priority
/// `comm_type` tasks; cross-rank dependencies carry the wire delay
/// latency + bytes/bandwidth. Node phases are the iteration index.
Dag make_heat_sim_dag(const HeatConfig& cfg, TaskTypeId heat_compute_type,
                      TaskTypeId comm_type);

/// Real distributed Heat: owns one rank's band (+ ghost rows) and builds
/// per-iteration DAGs whose closures do the actual exchange and sweep.
class HeatRank {
 public:
  HeatRank(const HeatConfig& cfg, net::Comm& comm, TaskTypeId heat_compute_type,
           TaskTypeId comm_type);

  int band_rows() const { return band_rows_; }
  /// Iteration DAG: one high-priority exchange task followed by
  /// `tasks_per_rank` moldable band-sweep tasks. Caller runs it, then calls
  /// advance() to flip the buffers.
  Dag make_iteration_dag(int phase);
  void advance();

  /// The rank's interior values (band_rows x cols), for validation.
  std::vector<double> interior() const;

 private:
  void exchange_ghosts(const ExecContext& ctx);
  void sweep(int task_index, const ExecContext& ctx);
  double* row(std::vector<double>& g, int r) { return g.data() + static_cast<std::size_t>(r) * cols_; }

  const HeatConfig cfg_;
  net::Comm* comm_;
  TaskTypeId compute_type_;
  TaskTypeId comm_type_;
  int band_rows_ = 0;  // interior rows owned by this rank
  int cols_ = 0;
  // band_rows + 2 ghost rows; cur -> next each iteration.
  std::vector<double> cur_;
  std::vector<double> next_;
};

/// Serial reference: `iterations` Jacobi sweeps over a (rows+2) x cols grid
/// with fixed boundary values (top/bottom ghost rows start at `hot`/0).
std::vector<double> heat_serial_reference(const HeatConfig& cfg, double hot);

/// Initial interior value used by both the distributed and serial versions.
double heat_initial_value(int global_row, int col);

}  // namespace das::workloads
