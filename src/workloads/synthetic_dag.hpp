#pragma once
// Synthetic layered DAG generator (paper §4.2.2).
//
// The DAG has L = total_tasks / parallelism layers of `parallelism` tasks of
// one kernel type. In each layer exactly one task (index 0) is marked
// critical (high priority); executing it releases the next layer's tasks.
// Non-critical tasks gate nothing — they only have to finish by the end.
// By construction DAG parallelism = total tasks / longest path = parallelism.

#include "core/dag.hpp"

namespace das::workloads {

struct SyntheticDagSpec {
  TaskTypeId type = kInvalidTaskType;
  int parallelism = 2;    ///< tasks per layer (the paper sweeps 2..6)
  int total_tasks = 320;  ///< rounded down to a multiple of parallelism
  TaskParams params{};    ///< cost-model parameters shared by every task
  WorkFn work{};          ///< optional shared work closure (real engine)
};

Dag make_synthetic_dag(const SyntheticDagSpec& spec);

/// Paper defaults: MatMul 64x64 tiles / 32000 tasks, Copy 1024x1024 doubles
/// / 10000 tasks, Stencil 1024x1024 grid / 20000 tasks. `scale` in (0, 1]
/// shrinks the task count for quick runs while keeping per-task parameters.
SyntheticDagSpec paper_matmul_spec(TaskTypeId matmul, int parallelism,
                                   double scale = 1.0, int tile = 64);
SyntheticDagSpec paper_copy_spec(TaskTypeId copy, int parallelism,
                                 double scale = 1.0);
SyntheticDagSpec paper_stencil_spec(TaskTypeId stencil, int parallelism,
                                    double scale = 1.0);

}  // namespace das::workloads
