#include "workloads/interference.hpp"

#include <cstring>
#include <vector>

#include "kernels/copy.hpp"
#include "kernels/matmul.hpp"
#include "platform/affinity.hpp"
#include "util/assert.hpp"

namespace das::workloads {

CoRunner::CoRunner(Config cfg) : cfg_(cfg) {
  DAS_CHECK(cfg_.tile >= 4);
}

CoRunner::~CoRunner() { stop(); }

void CoRunner::start() {
  DAS_CHECK_MSG(!thread_.joinable(), "CoRunner already started");
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  running_.store(true, std::memory_order_release);
}

void CoRunner::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void CoRunner::loop() {
  if (cfg_.pin_core >= 0) pin_current_thread(cfg_.pin_core);

  if (cfg_.kind == Kind::kCompute) {
    const std::size_t n = static_cast<std::size_t>(cfg_.tile);
    std::vector<double> a(n * n, 1.0), b(n * n, 2.0), c(n * n, 0.0);
    while (!stop_.load(std::memory_order_acquire)) {
      kernels::matmul_reference(a.data(), b.data(), c.data(), cfg_.tile);
      iters_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    constexpr std::size_t kStream = 1u << 20;  // 8 MiB of doubles
    std::vector<double> src(kStream, 1.0), dst(kStream, 0.0);
    while (!stop_.load(std::memory_order_acquire)) {
      kernels::copy_partition(src.data(), dst.data(), kStream, 0, 1);
      iters_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace das::workloads
