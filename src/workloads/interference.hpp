#pragma once
// Co-running interference application for the real-thread engine.
//
// The paper's interference scenario pins a single chain of matmul (CPU
// interference) or copy (memory interference) tasks to one core of the
// platform. In this library the *scheduler-visible* effect of interference
// is produced by SpeedScenario (the throttle inflates task times on the
// victim core); the CoRunner below additionally provides the literal
// competing computation for environments where thread pinning is available,
// so the two mechanisms can be cross-checked (tests/integration).

#include <atomic>
#include <thread>

namespace das::workloads {

class CoRunner {
 public:
  enum class Kind { kCompute, kMemory };

  struct Config {
    Kind kind = Kind::kCompute;
    int pin_core = -1;  ///< OS cpu to pin to; -1 = unpinned
    int tile = 64;      ///< matmul tile (compute) — memory kind streams 8 MiB
  };

  explicit CoRunner(Config cfg);
  ~CoRunner();

  CoRunner(const CoRunner&) = delete;
  CoRunner& operator=(const CoRunner&) = delete;

  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Work-loop iterations completed so far (shows the co-runner made
  /// progress — the paper's interference persists for the whole run).
  std::uint64_t iterations() const { return iters_.load(std::memory_order_relaxed); }

 private:
  void loop();

  Config cfg_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> iters_{0};
  std::thread thread_;
};

}  // namespace das::workloads
