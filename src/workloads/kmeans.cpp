#include "workloads/kmeans.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace das::workloads {

std::vector<double> generate_blobs(int points, int dims, int k,
                                   std::uint64_t seed) {
  DAS_CHECK(points >= k && dims >= 1 && k >= 1);
  Xoshiro256 rng(seed);
  // Blob centers on a scaled hypercube diagonal lattice: far apart relative
  // to the unit-ish noise, so clustering converges quickly and tests can
  // assert recovery.
  std::vector<double> centers(static_cast<std::size_t>(k) * dims);
  for (int c = 0; c < k; ++c)
    for (int d = 0; d < dims; ++d)
      centers[static_cast<std::size_t>(c) * dims + d] =
          10.0 * c + 3.0 * ((c + d) % k);

  std::vector<double> pts(static_cast<std::size_t>(points) * dims);
  for (int i = 0; i < points; ++i) {
    const int c = i % k;
    for (int d = 0; d < dims; ++d) {
      // Sum of 4 uniforms ~ bell-shaped noise in [-2, 2); exactness of the
      // distribution is irrelevant here.
      double noise = 0.0;
      for (int j = 0; j < 4; ++j) noise += rng.uniform(-0.5, 0.5);
      pts[static_cast<std::size_t>(i) * dims + d] =
          centers[static_cast<std::size_t>(c) * dims + d] + noise;
    }
  }
  return pts;
}

namespace {

/// Shared chunk partition: big chunks carry `big_chunk_weight` shares,
/// small ones 1. Returns (number of big chunks, chunk boundaries).
std::pair<int, std::vector<int>> compute_chunk_bounds(const KMeansConfig& cfg) {
  DAS_CHECK(cfg.points >= cfg.k);
  DAS_CHECK(cfg.chunks >= 1 && cfg.chunks <= cfg.points);
  DAS_CHECK(cfg.big_chunk_weight >= 1.0);
  DAS_CHECK(cfg.big_chunk_fraction_den >= 1);
  const int num_big = std::max(1, cfg.chunks / cfg.big_chunk_fraction_den);
  const double total_weight =
      num_big * cfg.big_chunk_weight + (cfg.chunks - num_big);
  std::vector<int> bounds(static_cast<std::size_t>(cfg.chunks) + 1);
  bounds[0] = 0;
  double carried = 0.0;
  for (int c = 0; c < cfg.chunks; ++c) {
    const double w = c < num_big ? cfg.big_chunk_weight : 1.0;
    carried += w / total_weight * cfg.points;
    bounds[static_cast<std::size_t>(c) + 1] =
        c + 1 == cfg.chunks ? cfg.points
                            : std::min(cfg.points, static_cast<int>(carried));
  }
  return {num_big, std::move(bounds)};
}

/// Iteration DAG shape shared by the real and sim builders.
Dag build_iteration_dag(const KMeansConfig& cfg, int num_big,
                        const std::vector<int>& bounds, TaskTypeId map_type,
                        TaskTypeId reduce_type, int phase,
                        const std::function<WorkFn(int)>& map_work,
                        WorkFn reduce_work) {
  Dag dag;
  std::vector<NodeId> maps;
  maps.reserve(static_cast<std::size_t>(cfg.chunks));
  for (int c = 0; c < cfg.chunks; ++c) {
    const Priority prio = c < num_big ? Priority::kHigh : Priority::kLow;
    TaskParams params;
    params.p0 = bounds[static_cast<std::size_t>(c) + 1] -
                bounds[static_cast<std::size_t>(c)];
    params.p1 = cfg.dims;
    params.p2 = cfg.k;
    const NodeId n = dag.add_node(map_type, prio, params,
                                  map_work ? map_work(c) : WorkFn{});
    dag.node(n).phase = phase;
    maps.push_back(n);
  }
  TaskParams rp;
  rp.p0 = static_cast<double>(cfg.k) * cfg.dims;
  const NodeId reduce =
      dag.add_node(reduce_type, Priority::kLow, rp, std::move(reduce_work));
  dag.node(reduce).phase = phase;
  for (NodeId m : maps) dag.add_edge(m, reduce);
  dag.seal();  // builders hand out sealed (CSR-compacted) DAGs
  return dag;
}

}  // namespace

KMeansSimBuilder::KMeansSimBuilder(KMeansConfig cfg, TaskTypeId map_type,
                                   TaskTypeId reduce_type)
    : cfg_(cfg), map_type_(map_type), reduce_type_(reduce_type) {
  auto [num_big, bounds] = compute_chunk_bounds(cfg_);
  num_big_ = num_big;
  chunk_begin_ = std::move(bounds);
}

int KMeansSimBuilder::chunk_size(int chunk) const {
  DAS_CHECK(chunk >= 0 && chunk < cfg_.chunks);
  return chunk_begin_[static_cast<std::size_t>(chunk) + 1] -
         chunk_begin_[static_cast<std::size_t>(chunk)];
}

Dag KMeansSimBuilder::make_iteration_dag(int phase) const {
  return build_iteration_dag(cfg_, num_big_, chunk_begin_, map_type_,
                             reduce_type_, phase, {}, {});
}

KMeans::KMeans(KMeansConfig cfg, TaskTypeId map_type, TaskTypeId reduce_type)
    : cfg_(cfg), map_type_(map_type), reduce_type_(reduce_type) {
  DAS_CHECK(cfg_.max_width >= 1);
  auto [num_big, bounds] = compute_chunk_bounds(cfg_);
  num_big_ = num_big;
  chunk_begin_ = std::move(bounds);

  points_ = generate_blobs(cfg_.points, cfg_.dims, cfg_.k, cfg_.seed);
  slot_stride_ = static_cast<std::size_t>(cfg_.k) * (cfg_.dims + 1);
  partials_.assign(slot_stride_ * static_cast<std::size_t>(cfg_.chunks) *
                       static_cast<std::size_t>(cfg_.max_width),
                   0.0);
  reset_centroids();
}

void KMeans::reset_centroids() {
  centroids_.assign(points_.begin(),
                    points_.begin() + static_cast<std::size_t>(cfg_.k) * cfg_.dims);
}

int KMeans::chunk_begin(int chunk) const {
  DAS_CHECK(chunk >= 0 && chunk <= cfg_.chunks);
  return chunk_begin_[static_cast<std::size_t>(chunk)];
}

int KMeans::chunk_size(int chunk) const {
  DAS_CHECK(chunk >= 0 && chunk < cfg_.chunks);
  return chunk_begin_[static_cast<std::size_t>(chunk) + 1] -
         chunk_begin_[static_cast<std::size_t>(chunk)];
}

void KMeans::map_chunk(int chunk, const ExecContext& ctx) {
  DAS_CHECK(ctx.width <= cfg_.max_width);
  double* acc = slot(chunk, ctx.rank);
  std::memset(acc, 0, slot_stride_ * sizeof(double));
  double* counts = acc;                 // k entries
  double* sums = acc + cfg_.k;          // k x dims entries

  const int begin = chunk_begin(chunk);
  const int size = chunk_size(chunk);
  // Participants split the chunk's points.
  const int base = size / ctx.width;
  const int extra = size % ctx.width;
  const int my_begin = begin + ctx.rank * base + std::min(ctx.rank, extra);
  const int my_len = base + (ctx.rank < extra ? 1 : 0);

  const int d = cfg_.dims;
  for (int i = my_begin; i < my_begin + my_len; ++i) {
    const double* p = points_.data() + static_cast<std::size_t>(i) * d;
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < cfg_.k; ++c) {
      const double* q = centroids_.data() + static_cast<std::size_t>(c) * d;
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = p[j] - q[j];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    counts[best] += 1.0;
    double* s = sums + static_cast<std::size_t>(best) * d;
    for (int j = 0; j < d; ++j) s[j] += p[j];
  }
}

void KMeans::reduce_all(const ExecContext& ctx) {
  if (ctx.rank != 0) return;  // single participant does the (cheap) reduction
  const int d = cfg_.dims;
  std::vector<double> counts(static_cast<std::size_t>(cfg_.k), 0.0);
  std::vector<double> sums(static_cast<std::size_t>(cfg_.k) * d, 0.0);
  for (int c = 0; c < cfg_.chunks; ++c) {
    for (int w = 0; w < cfg_.max_width; ++w) {
      const double* acc = slot(c, w);
      for (int i = 0; i < cfg_.k; ++i) counts[static_cast<std::size_t>(i)] += acc[i];
      for (std::size_t i = 0; i < static_cast<std::size_t>(cfg_.k) * d; ++i)
        sums[i] += acc[static_cast<std::size_t>(cfg_.k) + i];
    }
  }
  for (int c = 0; c < cfg_.k; ++c) {
    if (counts[static_cast<std::size_t>(c)] <= 0.0) continue;  // keep empty clusters
    for (int j = 0; j < d; ++j)
      centroids_[static_cast<std::size_t>(c) * d + j] =
          sums[static_cast<std::size_t>(c) * d + j] / counts[static_cast<std::size_t>(c)];
  }
  // Stale partials must not leak into the next iteration: map tasks zero
  // their own slot on entry, but a slot used at width w this iteration and
  // width w' < w next iteration would keep ranks [w', w) stale. Clear now.
  std::memset(partials_.data(), 0, partials_.size() * sizeof(double));
}

Dag KMeans::make_real_iteration_dag(int phase) {
  return build_iteration_dag(
      cfg_, num_big_, chunk_begin_, map_type_, reduce_type_, phase,
      [this](int c) {
        return [this, c](const ExecContext& ctx) { map_chunk(c, ctx); };
      },
      [this](const ExecContext& ctx) { reduce_all(ctx); });
}

Dag KMeans::make_sim_iteration_dag(int phase) const {
  return build_iteration_dag(cfg_, num_big_, chunk_begin_, map_type_,
                             reduce_type_, phase, {}, {});
}

void KMeans::serial_iteration(std::vector<double>& centroids) const {
  DAS_CHECK(centroids.size() == static_cast<std::size_t>(cfg_.k) * cfg_.dims);
  const int d = cfg_.dims;
  std::vector<double> counts(static_cast<std::size_t>(cfg_.k), 0.0);
  std::vector<double> sums(static_cast<std::size_t>(cfg_.k) * d, 0.0);
  for (int i = 0; i < cfg_.points; ++i) {
    const double* p = points_.data() + static_cast<std::size_t>(i) * d;
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < cfg_.k; ++c) {
      const double* q = centroids.data() + static_cast<std::size_t>(c) * d;
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = p[j] - q[j];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    counts[static_cast<std::size_t>(best)] += 1.0;
    for (int j = 0; j < d; ++j)
      sums[static_cast<std::size_t>(best) * d + j] += p[j];
  }
  for (int c = 0; c < cfg_.k; ++c) {
    if (counts[static_cast<std::size_t>(c)] <= 0.0) continue;
    for (int j = 0; j < d; ++j)
      centroids[static_cast<std::size_t>(c) * d + j] =
          sums[static_cast<std::size_t>(c) * d + j] / counts[static_cast<std::size_t>(c)];
  }
}

double KMeans::inertia() const {
  const int d = cfg_.dims;
  double total = 0.0;
  for (int i = 0; i < cfg_.points; ++i) {
    const double* p = points_.data() + static_cast<std::size_t>(i) * d;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < cfg_.k; ++c) {
      const double* q = centroids_.data() + static_cast<std::size_t>(c) * d;
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = p[j] - q[j];
        dist += diff * diff;
      }
      best_dist = std::min(best_dist, dist);
    }
    total += best_dist;
  }
  return total;
}

}  // namespace das::workloads
