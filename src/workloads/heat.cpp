#include "workloads/heat.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/network.hpp"
#include "util/assert.hpp"

namespace das::workloads {

namespace {
constexpr int kTagUp = 1;    // message travelling to rank-1
constexpr int kTagDown = 2;  // message travelling to rank+1
constexpr double kHotBoundary = 100.0;

int band_rows_of(const HeatConfig& cfg) {
  DAS_CHECK(cfg.ranks >= 1);
  DAS_CHECK_MSG(cfg.rows % cfg.ranks == 0, "rows must divide evenly by ranks");
  return cfg.rows / cfg.ranks;
}

/// Rows [begin, end) of a band of `rows` rows for compute task `t` of `T`.
std::pair<int, int> task_rows(int rows, int t, int T) {
  const int base = rows / T;
  const int extra = rows % T;
  const int begin = t * base + std::min(t, extra);
  return {begin, begin + base + (t < extra ? 1 : 0)};
}

}  // namespace

double heat_initial_value(int global_row, int col) {
  return static_cast<double>((global_row * 31 + col * 17) % 100) / 100.0;
}

HeatRank::HeatRank(const HeatConfig& cfg, net::Comm& comm,
                   TaskTypeId heat_compute_type, TaskTypeId comm_type)
    : cfg_(cfg), comm_(&comm), compute_type_(heat_compute_type),
      comm_type_(comm_type) {
  DAS_CHECK(cfg.cols >= 3);
  DAS_CHECK(cfg.tasks_per_rank >= 1);
  DAS_CHECK(comm.size() == cfg.ranks);
  band_rows_ = band_rows_of(cfg);
  DAS_CHECK(band_rows_ >= cfg.tasks_per_rank);
  cols_ = cfg.cols;

  const std::size_t cells = static_cast<std::size_t>(band_rows_ + 2) * cols_;
  cur_.assign(cells, 0.0);
  next_.assign(cells, 0.0);
  const int gr0 = comm.rank() * band_rows_;
  for (int r = 0; r < band_rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      row(cur_, r + 1)[c] = heat_initial_value(gr0 + r, c);
  // Fixed physical boundaries: hot edge above rank 0, cold below the last
  // rank. Interior ghost rows are overwritten by the first exchange.
  if (comm.rank() == 0)
    for (int c = 0; c < cols_; ++c) row(cur_, 0)[c] = kHotBoundary;
  if (comm.rank() == cfg.ranks - 1)
    for (int c = 0; c < cols_; ++c) row(cur_, band_rows_ + 1)[c] = 0.0;
  next_ = cur_;
}

void HeatRank::exchange_ghosts(const ExecContext& ctx) {
  if (ctx.rank != 0) return;  // message passing is single-core by nature
  const int r = comm_->rank();
  const std::size_t bytes = static_cast<std::size_t>(cols_);
  // Buffered sends first (never block), then the receives: deadlock-free in
  // any rank order.
  if (r > 0) comm_->send_span(r - 1, kTagUp, row(cur_, 1), bytes);
  if (r < cfg_.ranks - 1)
    comm_->send_span(r + 1, kTagDown, row(cur_, band_rows_), bytes);
  if (r > 0) comm_->recv_span(r - 1, kTagDown, row(cur_, 0), bytes);
  if (r < cfg_.ranks - 1)
    comm_->recv_span(r + 1, kTagUp, row(cur_, band_rows_ + 1), bytes);
}

void HeatRank::sweep(int task_index, const ExecContext& ctx) {
  const auto [t_begin, t_end] = task_rows(band_rows_, task_index, cfg_.tasks_per_rank);
  // Participants split the task's rows.
  const int rows_here = t_end - t_begin;
  const int base = rows_here / ctx.width;
  const int extra = rows_here % ctx.width;
  const int my_begin = t_begin + ctx.rank * base + std::min(ctx.rank, extra);
  const int my_end = my_begin + base + (ctx.rank < extra ? 1 : 0);

  for (int r = my_begin; r < my_end; ++r) {
    const double* up = row(cur_, r);        // grid row r is interior row r-1
    const double* mid = row(cur_, r + 1);
    const double* down = row(cur_, r + 2);
    double* out = row(next_, r + 1);
    out[0] = mid[0];                        // fixed boundary columns
    out[cols_ - 1] = mid[cols_ - 1];
    for (int c = 1; c < cols_ - 1; ++c)
      out[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
  }
}

void HeatRank::advance() {
  // Carry the ghost rows over so the fixed physical boundaries persist;
  // interior ghosts are refreshed by the next exchange anyway.
  std::memcpy(row(next_, 0), row(cur_, 0), static_cast<std::size_t>(cols_) * sizeof(double));
  std::memcpy(row(next_, band_rows_ + 1), row(cur_, band_rows_ + 1),
              static_cast<std::size_t>(cols_) * sizeof(double));
  cur_.swap(next_);
}

Dag HeatRank::make_iteration_dag(int phase) {
  Dag dag;
  TaskParams cp;
  cp.p0 = 2.0 * cols_ * sizeof(double);  // bytes moved by the exchange
  const NodeId comm_node = dag.add_node(
      comm_type_, Priority::kHigh, cp,
      [this](const ExecContext& ctx) { exchange_ghosts(ctx); });
  dag.node(comm_node).phase = phase;

  const double points_per_task =
      static_cast<double>(band_rows_) * cols_ / cfg_.tasks_per_rank;
  for (int t = 0; t < cfg_.tasks_per_rank; ++t) {
    TaskParams kp;
    kp.p0 = std::max(3.0, std::sqrt(points_per_task));
    const NodeId n = dag.add_node(
        compute_type_, Priority::kLow, kp,
        [this, t](const ExecContext& ctx) { sweep(t, ctx); });
    dag.node(n).phase = phase;
    dag.add_edge(comm_node, n);
  }
  dag.seal();  // builders hand out sealed (CSR-compacted) DAGs
  return dag;
}

std::vector<double> HeatRank::interior() const {
  std::vector<double> out(static_cast<std::size_t>(band_rows_) * cols_);
  std::memcpy(out.data(), cur_.data() + cols_, out.size() * sizeof(double));
  return out;
}

std::vector<double> heat_serial_reference(const HeatConfig& cfg, double hot) {
  const int rows = cfg.rows, cols = cfg.cols;
  std::vector<double> cur(static_cast<std::size_t>(rows + 2) * cols, 0.0);
  std::vector<double> next;
  auto at = [cols](std::vector<double>& g, int r) {
    return g.data() + static_cast<std::size_t>(r) * cols;
  };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) at(cur, r + 1)[c] = heat_initial_value(r, c);
  for (int c = 0; c < cols; ++c) {
    at(cur, 0)[c] = hot;
    at(cur, rows + 1)[c] = 0.0;
  }
  next = cur;
  for (int it = 0; it < cfg.iterations; ++it) {
    for (int r = 1; r <= rows; ++r) {
      const double* up = at(cur, r - 1);
      const double* mid = at(cur, r);
      const double* down = at(cur, r + 1);
      double* out = at(next, r);
      out[0] = mid[0];
      out[cols - 1] = mid[cols - 1];
      for (int c = 1; c < cols - 1; ++c)
        out[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
    }
    cur.swap(next);
  }
  std::vector<double> out(static_cast<std::size_t>(rows) * cols);
  std::memcpy(out.data(), cur.data() + cols, out.size() * sizeof(double));
  return out;
}

Dag make_heat_sim_dag(const HeatConfig& cfg, TaskTypeId heat_compute_type,
                      TaskTypeId comm_type) {
  const int R = cfg.ranks;
  const int T = cfg.tasks_per_rank;
  const int band = band_rows_of(cfg);
  DAS_CHECK(band >= T);
  const double bytes = static_cast<double>(cfg.cols) * sizeof(double);
  const sim::NetworkModel net{cfg.net_latency_s, cfg.net_bw_gbs};
  const double wire_delay = net.delay(bytes);
  const double points_per_task = static_cast<double>(band) * cfg.cols / T;

  Dag dag;
  // Ids of the previous iteration's tasks, per rank.
  std::vector<std::vector<NodeId>> prev_compute(static_cast<std::size_t>(R));
  for (int i = 0; i < cfg.iterations; ++i) {
    std::vector<NodeId> up(static_cast<std::size_t>(R), kInvalidNode);
    std::vector<NodeId> down(static_cast<std::size_t>(R), kInvalidNode);
    std::vector<std::vector<NodeId>> compute(static_cast<std::size_t>(R));

    for (int r = 0; r < R; ++r) {
      TaskParams cp;
      cp.p0 = bytes;
      if (r > 0) {
        const NodeId n = dag.add_node(comm_type, Priority::kHigh, cp);
        dag.node(n).rank = r;
        dag.node(n).phase = i;
        dag.node(n).affinity_core = 0;
        up[static_cast<std::size_t>(r)] = n;
      }
      if (r < R - 1) {
        const NodeId n = dag.add_node(comm_type, Priority::kHigh, cp);
        dag.node(n).rank = r;
        dag.node(n).phase = i;
        dag.node(n).affinity_core = 0;
        down[static_cast<std::size_t>(r)] = n;
      }
      for (int t = 0; t < T; ++t) {
        TaskParams kp;
        kp.p0 = std::max(3.0, std::sqrt(points_per_task));
        const NodeId n = dag.add_node(heat_compute_type, Priority::kLow, kp);
        dag.node(n).rank = r;
        dag.node(n).phase = i;
        compute[static_cast<std::size_t>(r)].push_back(n);
      }
    }

    for (int r = 0; r < R; ++r) {
      // Exchange depends on the bands it ships (local, iteration i-1) and on
      // the neighbour's matching band arriving over the wire (cross edge).
      if (i > 0) {
        if (up[static_cast<std::size_t>(r)] != kInvalidNode) {
          dag.add_edge(prev_compute[static_cast<std::size_t>(r)].front(),
                       up[static_cast<std::size_t>(r)]);
          dag.add_edge(prev_compute[static_cast<std::size_t>(r - 1)].back(),
                       up[static_cast<std::size_t>(r)], wire_delay);
        }
        if (down[static_cast<std::size_t>(r)] != kInvalidNode) {
          dag.add_edge(prev_compute[static_cast<std::size_t>(r)].back(),
                       down[static_cast<std::size_t>(r)]);
          dag.add_edge(prev_compute[static_cast<std::size_t>(r + 1)].front(),
                       down[static_cast<std::size_t>(r)], wire_delay);
        }
      }
      // Compute depends on fresh ghosts (boundary tasks) and the 3-row
      // neighbourhood of the previous iteration (all tasks).
      for (int t = 0; t < T; ++t) {
        const NodeId n = compute[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
        if (t == 0 && up[static_cast<std::size_t>(r)] != kInvalidNode)
          dag.add_edge(up[static_cast<std::size_t>(r)], n);
        if (t == T - 1 && down[static_cast<std::size_t>(r)] != kInvalidNode)
          dag.add_edge(down[static_cast<std::size_t>(r)], n);
        if (i > 0) {
          for (int dt = -1; dt <= 1; ++dt) {
            const int tp = t + dt;
            if (tp < 0 || tp >= T) continue;
            dag.add_edge(prev_compute[static_cast<std::size_t>(r)][static_cast<std::size_t>(tp)], n);
          }
        }
      }
    }
    prev_compute = std::move(compute);
  }
  dag.seal();  // builders hand out sealed (CSR-compacted) DAGs
  return dag;
}

}  // namespace das::workloads
