#include "workloads/synthetic_dag.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace das::workloads {

Dag make_synthetic_dag(const SyntheticDagSpec& spec) {
  DAS_CHECK(spec.type != kInvalidTaskType);
  DAS_CHECK(spec.parallelism >= 1);
  const int layers = std::max(1, spec.total_tasks / spec.parallelism);

  Dag dag;
  NodeId prev_critical = kInvalidNode;
  for (int layer = 0; layer < layers; ++layer) {
    NodeId critical = kInvalidNode;
    for (int j = 0; j < spec.parallelism; ++j) {
      const Priority prio = j == 0 ? Priority::kHigh : Priority::kLow;
      const NodeId n = dag.add_node(spec.type, prio, spec.params, spec.work);
      if (j == 0) critical = n;
      if (prev_critical != kInvalidNode) dag.add_edge(prev_critical, n);
    }
    prev_critical = critical;
  }
  DAS_ASSERT(dag.num_nodes() == layers * spec.parallelism);
  dag.seal();  // builders hand out sealed (CSR-compacted) DAGs
  return dag;
}

SyntheticDagSpec paper_matmul_spec(TaskTypeId matmul, int parallelism,
                                   double scale, int tile) {
  DAS_CHECK(scale > 0.0 && scale <= 1.0);
  SyntheticDagSpec s;
  s.type = matmul;
  s.parallelism = parallelism;
  s.total_tasks = static_cast<int>(32000 * scale);
  s.params.p0 = static_cast<double>(tile);
  return s;
}

SyntheticDagSpec paper_copy_spec(TaskTypeId copy, int parallelism, double scale) {
  DAS_CHECK(scale > 0.0 && scale <= 1.0);
  SyntheticDagSpec s;
  s.type = copy;
  s.parallelism = parallelism;
  s.total_tasks = static_cast<int>(10000 * scale);
  s.params.p0 = 1024.0 * 1024.0;  // doubles streamed per task
  return s;
}

SyntheticDagSpec paper_stencil_spec(TaskTypeId stencil, int parallelism,
                                    double scale) {
  DAS_CHECK(scale > 0.0 && scale <= 1.0);
  SyntheticDagSpec s;
  s.type = stencil;
  s.parallelism = parallelism;
  s.total_tasks = static_cast<int>(20000 * scale);
  s.params.p0 = 1024.0;  // grid dimension per task
  return s;
}

}  // namespace das::workloads
