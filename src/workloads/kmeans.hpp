#pragma once
// K-means clustering lowered to a dynamic task DAG (paper §4.2.2, Fig. 9).
//
// Each iteration is one DAG: the point set is split into chunks of uneven
// size ("loop partitions mapped to dynamically scheduled tasks"); the large
// chunks — the paper's "task containing the largest work unit" — are marked
// high priority so the criticality-aware schedulers steer them around
// interference. A reduction task combines the per-chunk partial sums into
// the new centroids and gates the next iteration.
//
// The same chunking drives both engines: the real-thread engine executes
// work closures that compute actual assignments/centroids (validated against
// the serial reference); the DES variant carries only the cost-model
// parameters (p0 = points, p1 = dims, p2 = k).

#include <cstdint>
#include <vector>

#include "core/dag.hpp"

namespace das::workloads {

struct KMeansConfig {
  int points = 60000;
  int dims = 8;
  int k = 8;
  int chunks = 64;            ///< map tasks per iteration
  double big_chunk_weight = 3.0;  ///< big chunks carry this x the small share
  int big_chunk_fraction_den = 4; ///< chunks/den chunks are "big" (high prio)
  int max_width = 16;         ///< accumulator slots per chunk (>= max topology width)
  std::uint64_t seed = 123;
};

class KMeans {
 public:
  KMeans(KMeansConfig cfg, TaskTypeId map_type, TaskTypeId reduce_type);

  const KMeansConfig& config() const { return cfg_; }
  int num_big_chunks() const { return num_big_; }
  int chunk_begin(int chunk) const;
  int chunk_size(int chunk) const;

  const std::vector<double>& points() const { return points_; }
  const std::vector<double>& centroids() const { return centroids_; }
  /// Re-seeds centroids to the first k points (deterministic start).
  void reset_centroids();

  /// Iteration DAG with real work closures (bound to this object — the
  /// object must outlive the run). `phase` tags the stats.
  Dag make_real_iteration_dag(int phase);
  /// Iteration DAG with cost-model parameters only (DES).
  Dag make_sim_iteration_dag(int phase) const;

  /// One serial reference iteration over `centroids` (same update rule).
  void serial_iteration(std::vector<double>& centroids) const;
  /// Sum of squared distances of every point to its nearest centroid.
  double inertia() const;

 private:
  void map_chunk(int chunk, const ExecContext& ctx);
  void reduce_all(const ExecContext& ctx);
  double* slot(int chunk, int rank) { return partials_.data() + slot_stride_ * (static_cast<std::size_t>(chunk) * static_cast<std::size_t>(cfg_.max_width) + static_cast<std::size_t>(rank)); }
  const double* slot(int chunk, int rank) const { return partials_.data() + slot_stride_ * (static_cast<std::size_t>(chunk) * static_cast<std::size_t>(cfg_.max_width) + static_cast<std::size_t>(rank)); }

  KMeansConfig cfg_;
  TaskTypeId map_type_;
  TaskTypeId reduce_type_;
  int num_big_ = 0;
  std::vector<int> chunk_begin_;   // size chunks+1
  std::vector<double> points_;     // points x dims
  std::vector<double> centroids_;  // k x dims
  // Per (chunk, width-slot) partial accumulators: k counts + k*dims sums.
  std::size_t slot_stride_ = 0;
  std::vector<double> partials_;
};

/// Gaussian blobs around k well-separated centers (deterministic).
std::vector<double> generate_blobs(int points, int dims, int k,
                                   std::uint64_t seed);

/// Builds K-means iteration DAGs for the DES *without* materialising the
/// point set (the cost models only need chunk sizes), so the paper-scale
/// Fig. 9 experiment can use hundreds of millions of virtual points.
class KMeansSimBuilder {
 public:
  KMeansSimBuilder(KMeansConfig cfg, TaskTypeId map_type, TaskTypeId reduce_type);
  const KMeansConfig& config() const { return cfg_; }
  int num_big_chunks() const { return num_big_; }
  int chunk_size(int chunk) const;
  Dag make_iteration_dag(int phase) const;

 private:
  KMeansConfig cfg_;
  TaskTypeId map_type_;
  TaskTypeId reduce_type_;
  int num_big_ = 0;
  std::vector<int> chunk_begin_;
};

}  // namespace das::workloads
