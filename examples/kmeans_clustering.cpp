// K-means clustering as a dynamic task DAG (the paper's §4.2.2 application),
// executed through the das::Executor facade while a co-running application
// perturbs half the machine mid-run — the paper's Fig. 9 scenario at laptop
// scale.
//
// Each iteration is one DAG: uneven map chunks (the largest marked high
// priority) feeding a reduction. The executor persists across iterations, so
// the PTT keeps learning; when interference starts at iteration 10 the
// dynamic scheduler reroutes within a few iterations. The interference
// window is opened/closed on the executor's engine-agnostic now() clock, so
// the same driver works on both backends:
//   --backend=rt (default)  real closures, validated inertia descent
//   --backend=sim           cost-model DAGs in deterministic virtual time

#include <cstdio>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "util/cli.hpp"
#include "workloads/kmeans.hpp"

int main(int argc, char** argv) {
  using namespace das;

  cli::Flags flags(argc, argv);
  cli::require_no_positionals(flags);
  flags.require_known({"backend", "policy"});
  const Backend backend = backend_flag(flags, Backend::kRt);
  const Policy policy = policy_flag(flags, Policy::kDamP);

  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::symmetric(/*clusters=*/2, /*cores=*/4);

  workloads::KMeansConfig cfg;
  cfg.points = 120000;
  cfg.dims = 8;
  cfg.k = 8;
  cfg.chunks = 48;
  workloads::KMeans km(cfg, ids.kmeans_map, ids.kmeans_reduce);

  SpeedScenario scenario(topo);
  ExecutorConfig config;
  config.scenario = &scenario;
  auto runtime = make_executor(backend, topo, policy, registry, config);
  const bool real = backend == Backend::kRt;

  constexpr int kIters = 30;
  constexpr int kInterfStart = 10, kInterfEnd = 20;
  std::printf("k-means: %d points, k=%d, %d chunks (%d high-priority), "
              "%d workers, backend %s\n",
              cfg.points, cfg.k, cfg.chunks, km.num_big_chunks(),
              topo.num_cores(), backend_name(backend));
  if (real) std::printf("initial inertia/point: %.3f\n", km.inertia() / cfg.points);
  std::printf("%-5s %-12s %s\n", "iter", "time [ms]", "note");

  for (int it = 0; it < kIters; ++it) {
    // Interference window: cluster 0 (cores 0-3) loses half its speed —
    // announced to the *emulation*, invisible to the scheduler, which must
    // detect it through the PTT. The window opens/closes at iteration
    // boundaries, like the paper's Fig. 9 co-runner.
    if (it == kInterfStart) {
      scenario.add_interference(InterferenceEvent{.cores = {0, 1, 2, 3},
                                                  .t_start = runtime->now(),
                                                  .cpu_share = 0.5});
    }
    if (it == kInterfEnd) {
      scenario.close_open_interference(runtime->now());
    }

    // The DES variant carries only cost-model parameters; the real variant
    // binds closures that compute actual assignments/centroids.
    Dag dag = real ? km.make_real_iteration_dag(/*phase=*/0)
                   : km.make_sim_iteration_dag(/*phase=*/0);
    const RunResult r = runtime->run(dag);
    const char* note = "";
    if (it == kInterfStart) note = "<- interference on cores 0-3 begins";
    if (it == kInterfEnd) note = "<- interference ends";
    std::printf("%-5d %-12.1f %s\n", it, r.makespan_s * 1e3, note);
  }

  if (real) std::printf("final inertia/point: %.3f\n", km.inertia() / cfg.points);
  std::printf("total tasks executed: %lld\n",
              static_cast<long long>(runtime->stats().tasks_total()));
  return 0;
}
