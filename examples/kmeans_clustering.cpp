// K-means clustering as a dynamic task DAG (the paper's §4.2.2 application),
// executed on the real-thread runtime while a co-running application
// perturbs half the machine mid-run — the paper's Fig. 9 scenario at
// laptop scale.
//
// Each iteration is one DAG: uneven map chunks (the largest marked high
// priority) feeding a reduction. The runtime persists across iterations, so
// the PTT keeps learning; when interference starts at iteration 10 the
// dynamic scheduler reroutes within a few iterations.

#include <cstdio>

#include "kernels/registry.hpp"
#include "rt/runtime.hpp"
#include "workloads/kmeans.hpp"

int main() {
  using namespace das;

  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::symmetric(/*clusters=*/2, /*cores=*/4);

  workloads::KMeansConfig cfg;
  cfg.points = 120000;
  cfg.dims = 8;
  cfg.k = 8;
  cfg.chunks = 48;
  workloads::KMeans km(cfg, ids.kmeans_map, ids.kmeans_reduce);

  SpeedScenario scenario(topo);
  rt::RtOptions options;
  options.scenario = &scenario;
  rt::Runtime runtime(topo, Policy::kDamP, registry, options);

  constexpr int kIters = 30;
  constexpr int kInterfStart = 10, kInterfEnd = 20;
  std::printf("k-means: %d points, k=%d, %d chunks (%d high-priority), "
              "%d workers\n",
              cfg.points, cfg.k, cfg.chunks, km.num_big_chunks(),
              topo.num_cores());
  std::printf("initial inertia/point: %.3f\n", km.inertia() / cfg.points);
  std::printf("%-5s %-12s %s\n", "iter", "time [ms]", "note");

  for (int it = 0; it < kIters; ++it) {
    // Interference window: cluster 0 (cores 0-3) loses half its speed —
    // announced to the *emulation*, invisible to the scheduler, which must
    // detect it through the PTT. The window opens/closes at iteration
    // boundaries, like the paper's Fig. 9 co-runner.
    if (it == kInterfStart) {
      scenario.add_interference(InterferenceEvent{.cores = {0, 1, 2, 3},
                                                  .t_start = runtime.scenario_now(),
                                                  .cpu_share = 0.5});
    }
    if (it == kInterfEnd) {
      scenario.close_open_interference(runtime.scenario_now());
    }

    Dag dag = km.make_real_iteration_dag(/*phase=*/0);
    const double t = runtime.run(dag);
    const char* note = "";
    if (it == kInterfStart) note = "<- interference on cores 0-3 begins";
    if (it == kInterfEnd) note = "<- interference ends";
    std::printf("%-5d %-12.1f %s\n", it, t * 1e3, note);
  }

  std::printf("final inertia/point: %.3f\n", km.inertia() / cfg.points);
  std::printf("total tasks executed: %lld\n",
              static_cast<long long>(runtime.stats().tasks_total()));
  return 0;
}
