// Watching the PTT adapt to DVFS (the paper's §5.2 scenario, observable):
// the fast cluster's frequency toggles on a square wave while a steady
// stream of task layers executes; snapshots of the PTT and of the critical
// tasks' placement show the scheduler detecting each phase change within a
// few tasks (the weighted 1:4 update needs ~3 measurements, §4.1.1) and
// re-steering.
//
// Runs through the das::Executor facade. The default backend is the
// deterministic DES so the printed trace is reproducible; --backend=rt
// watches the same adaptation on real threads (the throttle emulates the
// square wave in wall time).

#include <cstdio>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "util/cli.hpp"
#include "workloads/synthetic_dag.hpp"

int main(int argc, char** argv) {
  using namespace das;

  cli::Flags flags(argc, argv);
  cli::maybe_help(flags, "--backend=sim|rt --policy=NAME --scenario=<name|file>");
  cli::require_no_positionals(flags);
  flags.require_known({"backend", "policy", "scenario", "help"});
  const Backend backend = backend_flag(flags, Backend::kSim);
  const Policy policy = policy_flag(flags, Policy::kDamP);

  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::tx2();

  // Built-in condition: a fast 0.8 s square wave. --scenario= swaps in any
  // declarative condition (the PTT snapshots below work for all of them).
  SpeedScenario scenario(topo);
  if (const auto spec = scenario_flag(flags)) {
    scenario = build_scenario_or_exit(*spec, topo);
  } else {
    scenario.add_dvfs(DvfsSchedule{.cluster = 0,
                                   .period_s = 0.8,   // 0.4 s HI + 0.4 s LO
                                   .duty_hi = 0.5,
                                   .hi = 1.0,
                                   .lo = 345.0 / 2035.0});
  }

  ExecutorConfig config;
  config.seed = 7;
  config.scenario = &scenario;
  auto engine = make_executor(backend, topo, policy, registry, config);

  std::printf("DVFS square wave on the Denver cluster (0.4 s at 2035 MHz, "
              "0.4 s at 345 MHz)\nscheduler: %s; backend: %s; kernel: "
              "matmul 64x64\n\n",
              policy_name(policy), backend_name(backend));
  std::printf("%-8s %-6s %-14s %-14s %-14s %s\n", "t [s]", "phase", "PTT(C1,1)",
              "PTT(C0,2)", "PTT(C2,4)", "criticals at");

  // 20 slices of ~100 layers each; print a snapshot after each slice.
  for (int slice = 0; slice < 20; ++slice) {
    workloads::SyntheticDagSpec spec = workloads::paper_matmul_spec(ids.matmul, 2, 0.005);
    Dag dag = workloads::make_synthetic_dag(spec);
    engine->stats().reset();
    engine->run(dag);

    const Ptt& ptt = engine->ptt().table(ids.matmul);
    const auto dist = engine->stats().distribution(Priority::kHigh);
    const bool lo_phase = scenario.speed(0, engine->now()) < 0.5;
    char buf[64] = "-";
    if (!dist.empty()) {
      std::snprintf(buf, sizeof buf, "%s %.0f%%", to_string(dist[0].first).c_str(),
                    dist[0].second * 100.0);
    }
    std::printf("%-8.3f %-6s %10.0f us %11.0f us %11.0f us   %s\n",
                engine->now(), lo_phase ? "LO" : "HI",
                ptt.value(ExecutionPlace{1, 1}) * 1e6,
                ptt.value(ExecutionPlace{0, 2}) * 1e6,
                ptt.value(ExecutionPlace{2, 4}) * 1e6, buf);
  }

  std::printf("\nDuring LO phases the Denver entries inflate within a few "
              "samples and the criticals migrate to the A57 cluster (or to "
              "molded wide places); each HI phase pulls them back.\n");
  return 0;
}
