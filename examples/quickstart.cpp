// Quickstart: build a task DAG with priorities and moldable work, run it on
// the real-thread runtime with the DAM-C scheduler, and inspect what the
// scheduler learned.
//
//   cmake --build build && ./build/examples/quickstart
//
// The DAG mirrors the paper's Fig. 1: layers of tasks where one task per
// layer is critical (it releases the next layer). The platform is the
// modelled TX2 (2 fast Denver cores + 4 slower A57s) with an emulated
// co-running application on core 0 — watch the scheduler steer the critical
// tasks to the clean fast core.

#include <cstdio>

#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "kernels/workspace.hpp"
#include "rt/runtime.hpp"
#include "trace/reporter.hpp"
#include "workloads/synthetic_dag.hpp"

#include <iostream>

int main() {
  using namespace das;

  // 1. Task types: register the paper kernels (matmul/copy/stencil/...).
  TaskTypeRegistry registry;
  const kernels::PaperKernelIds ids = kernels::register_paper_kernels(registry);

  // 2. Platform: the TX2 model, with interference emulation on core 0.
  const Topology topo = Topology::tx2();
  SpeedScenario scenario(topo);
  scenario.add_cpu_corunner(/*core=*/0);

  // 3. Work: a moldable matmul task. Participants of an assembly split the
  //    rows of C by their rank; buffers come from a pool sized for the
  //    maximum concurrency (one assembly per core).
  constexpr int kTile = 48;
  kernels::WorkspacePool pool(topo.num_cores() * 3,
                              static_cast<std::size_t>(kTile) * kTile);
  auto matmul_work = [&pool](const ExecContext& ctx) {
    double* a = pool.acquire();
    double* b = pool.acquire();
    double* c = pool.acquire();
    kernels::matmul_partition(a, b, c, kTile, ctx.rank, ctx.width);
    pool.release(a);
    pool.release(b);
    pool.release(c);
  };

  // 4. DAG: 100 layers of 3 tasks; task 0 of each layer is critical.
  workloads::SyntheticDagSpec spec;
  spec.type = ids.matmul;
  spec.parallelism = 3;
  spec.total_tasks = 300;
  spec.params.p0 = kTile;
  spec.work = matmul_work;
  Dag dag = workloads::make_synthetic_dag(spec);
  std::printf("DAG: %d tasks, parallelism %.1f\n", dag.num_nodes(),
              dag.dag_parallelism());

  // 5. Run under the dynamic asymmetry scheduler (DAM-C).
  rt::RtOptions options;
  options.scenario = &scenario;
  rt::Runtime runtime(topo, Policy::kDamC, registry, options);
  const double seconds = runtime.run(dag);
  std::printf("executed %lld tasks in %.3f s (%.0f tasks/s)\n\n",
              static_cast<long long>(runtime.stats().tasks_total()), seconds,
              runtime.stats().tasks_total() / seconds);

  // 6. Where did the critical tasks go? (Core 0 hosts the co-runner.)
  print_priority_distribution(runtime.stats(), std::cout,
                              "critical-task placement:");
  std::cout << '\n';
  print_core_worktime(runtime.stats(), std::cout, "per-core busy time:");

  // 7. The learned model: predicted matmul time per execution place.
  std::printf("\nPTT (task type 'matmul'):\n");
  const Ptt& ptt = runtime.ptt().table(ids.matmul);
  for (const ExecutionPlace& p : topo.places()) {
    if (ptt.samples(p) == 0) continue;
    std::printf("  %-7s %8.1f us  (%llu samples)\n", to_string(p).c_str(),
                ptt.value(p) * 1e6,
                static_cast<unsigned long long>(ptt.samples(p)));
  }
  return 0;
}
