// Quickstart: the das::Executor facade in one file.
//
// Build a task DAG with priorities and moldable work, pick an engine with
// ONE enum (or the --backend flag), run it with the DAM-C scheduler, and
// inspect what the scheduler learned:
//
//   cmake --build build
//   ./build/examples/quickstart                   # real threads (default)
//   ./build/examples/quickstart --backend=sim     # deterministic DES
//   ./build/examples/quickstart --policy=RWS      # any Table-1 name
//
// Everything below the `make_executor` call is backend-agnostic: the same
// Dag, the same stats queries, the same PTT introspection work on the
// real-thread runtime (which executes the matmul closures and emulates
// asymmetry by throttling) and on the discrete-event simulator (which
// charges the kernels' analytic cost models in virtual time). That is the
// paper's central claim — one policy object drives both engines — made
// concrete.
//
// The DAG mirrors the paper's Fig. 1: layers of tasks where one task per
// layer is critical (it releases the next layer). The platform is the
// modelled TX2 (2 fast Denver cores + 4 slower A57s) with an emulated
// co-running application on core 0 — watch the scheduler steer the critical
// tasks to the clean fast core.

#include <cstdio>

#include "exec/executor.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "kernels/workspace.hpp"
#include "trace/reporter.hpp"
#include "util/cli.hpp"
#include "workloads/synthetic_dag.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace das;

  // 0. Flags: engine, scheduler AND platform condition are run-time
  //    choices, not code (--scenario=dvfs-wave, --scenario=churn.json, ...).
  cli::Flags flags(argc, argv);
  cli::maybe_help(flags, "--backend=sim|rt --policy=NAME --scenario=<name|file>");
  cli::require_no_positionals(flags);
  flags.require_known({"backend", "policy", "scenario", "help"});
  const Backend backend = backend_flag(flags, Backend::kRt);
  const Policy policy = policy_flag(flags, Policy::kDamC);
  const auto scenario_spec = scenario_flag(flags);

  // 1. Task types: register the paper kernels (matmul/copy/stencil/...).
  TaskTypeRegistry registry;
  const kernels::PaperKernelIds ids = kernels::register_paper_kernels(registry);

  // 2. Platform: the TX2 model, with interference emulation on core 0 —
  //    unless --scenario= picked a declarative condition instead.
  const Topology topo = Topology::tx2();
  SpeedScenario scenario(topo);
  scenario.add_cpu_corunner(/*core=*/0);

  // 3. Work: a moldable matmul task. Participants of an assembly split the
  //    rows of C by their rank; buffers come from a pool sized for the
  //    maximum concurrency (one assembly per core). The closure runs on the
  //    real-thread backend; the DES charges the matmul cost model instead.
  constexpr int kTile = 48;
  kernels::WorkspacePool pool(topo.num_cores() * 3,
                              static_cast<std::size_t>(kTile) * kTile);
  auto matmul_work = [&pool](const ExecContext& ctx) {
    double* a = pool.acquire();
    double* b = pool.acquire();
    double* c = pool.acquire();
    kernels::matmul_partition(a, b, c, kTile, ctx.rank, ctx.width);
    pool.release(a);
    pool.release(b);
    pool.release(c);
  };

  // 4. DAG: 100 layers of 3 tasks; task 0 of each layer is critical.
  workloads::SyntheticDagSpec spec;
  spec.type = ids.matmul;
  spec.parallelism = 3;
  spec.total_tasks = 300;
  spec.params.p0 = kTile;
  spec.work = matmul_work;
  Dag dag = workloads::make_synthetic_dag(spec);
  std::printf("DAG: %d tasks, parallelism %.1f\n", dag.num_nodes(),
              dag.dag_parallelism());

  // 5. Run through the facade. ExecutorConfig carries the shared options
  //    (seed, scenario, policy tunables); run() returns a structured result.
  //    A declarative spec goes in as data — the executor builds and owns
  //    the resulting SpeedScenario.
  ExecutorConfig config;
  if (scenario_spec) {
    // Validate against this topology up front: a mismatch exits 2 here
    // instead of throwing ScenarioError out of make_executor below.
    (void)build_scenario_or_exit(*scenario_spec, topo);
    config.scenario_spec = scenario_spec;
  } else {
    config.scenario = &scenario;
  }
  auto executor = make_executor(backend, topo, policy, registry, config);
  const RunResult result = executor->run(dag);
  std::printf("[%s/%s] executed %lld tasks in %.3f s (%.0f tasks/s)\n\n",
              backend_name(result.backend), policy_name(result.policy),
              static_cast<long long>(result.stats[0].tasks_total),
              result.makespan_s, result.tasks_per_s);

  // 6. Where did the critical tasks go? (Core 0 hosts the co-runner.)
  print_priority_distribution(executor->stats(), std::cout,
                              "critical-task placement:");
  std::cout << '\n';
  print_core_worktime(executor->stats(), std::cout, "per-core busy time:");

  // 7. The learned model: predicted matmul time per execution place.
  std::printf("\nPTT (task type 'matmul'):\n");
  const Ptt& ptt = executor->ptt().table(ids.matmul);
  for (const ExecutionPlace& p : topo.places()) {
    if (ptt.samples(p) == 0) continue;
    std::printf("  %-7s %8.1f us  (%llu samples)\n", to_string(p).c_str(),
                ptt.value(p) * 1e6,
                static_cast<unsigned long long>(ptt.samples(p)));
  }
  return 0;
}
