// Distributed 2D Heat over the in-process message-passing substrate — the
// paper's §4.2.2 MPI application at laptop scale, driven through the
// das::Executor facade.
//
// --backend=rt (default): four ranks each own a row band of the grid and
// run their own real-thread executor. Every iteration: one HIGH-priority
// task exchanges ghost rows with the neighbours (the paper's "MPI TAOs"),
// then moldable band-sweep tasks update the interior. The result is
// validated against the serial Jacobi reference at the end.
//
// --backend=sim: the same experiment as one multi-rank DES run (cross-rank
// edges carry the wire delay). The DES charges cost models instead of
// executing the closures, so there is no numeric validation — it reports
// scheduling/timing behaviour only.

#include <cmath>
#include <cstdio>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "net/world.hpp"
#include "util/cli.hpp"
#include "util/spinlock.hpp"
#include "workloads/heat.hpp"

namespace {

using namespace das;

int run_sim(const workloads::HeatConfig& cfg, Policy policy) {
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  const Topology topo = Topology::symmetric(/*clusters=*/1, /*cores=*/4);
  Dag dag = workloads::make_heat_sim_dag(cfg, ids.heat_compute, ids.comm);
  std::vector<sim::RankSpec> ranks(static_cast<std::size_t>(cfg.ranks),
                                   sim::RankSpec{&topo, nullptr});
  ExecutorConfig config;
  config.stats_phases = cfg.iterations;
  auto exec = make_executor(Backend::kSim, ranks, policy, registry, config);
  const RunResult r = exec->run(dag);
  std::printf("executed %lld tasks across %d ranks in %.3f virtual s "
              "(%.0f tasks/s)\n",
              static_cast<long long>(r.tasks), cfg.ranks, r.makespan_s,
              r.tasks_per_s);
  std::printf("(DES backend charges cost models — numeric validation runs on "
              "--backend=rt)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace das;

  cli::Flags flags(argc, argv);
  cli::require_no_positionals(flags);
  flags.require_known({"backend", "policy"});
  const Backend backend = backend_flag(flags, Backend::kRt);
  const Policy policy = policy_flag(flags, Policy::kDamC);

  workloads::HeatConfig cfg;
  cfg.rows = 240;
  cfg.cols = 240;
  cfg.ranks = 4;
  cfg.iterations = 60;
  cfg.tasks_per_rank = 6;

  std::printf("2D heat: %dx%d grid, %d ranks x %d workers, %d iterations, "
              "backend %s\n",
              cfg.rows, cfg.cols, cfg.ranks, 4, cfg.iterations,
              backend_name(backend));

  if (backend == Backend::kSim) return run_sim(cfg, policy);

  net::World world(cfg.ranks);
  std::vector<std::vector<double>> interiors(static_cast<std::size_t>(cfg.ranks));
  std::vector<double> rank_seconds(static_cast<std::size_t>(cfg.ranks));
  std::vector<std::int64_t> rank_tasks(static_cast<std::size_t>(cfg.ranks));
  Spinlock lock;

  world.run([&](net::Comm& comm) {
    TaskTypeRegistry registry;  // per-rank registry: ranks are "processes"
    const auto ids = kernels::register_paper_kernels(registry);
    const Topology topo = Topology::symmetric(/*clusters=*/1, /*cores=*/4);
    auto executor = make_executor(Backend::kRt, topo, policy, registry);
    workloads::HeatRank heat(cfg, comm, ids.heat_compute, ids.comm);

    double total = 0.0;
    for (int it = 0; it < cfg.iterations; ++it) {
      Dag dag = heat.make_iteration_dag(/*phase=*/0);
      total += executor->run(dag).makespan_s;
      heat.advance();
    }
    comm.barrier();

    std::lock_guard<Spinlock> g(lock);
    interiors[static_cast<std::size_t>(comm.rank())] = heat.interior();
    rank_seconds[static_cast<std::size_t>(comm.rank())] = total;
    rank_tasks[static_cast<std::size_t>(comm.rank())] =
        executor->stats().tasks_total();
  });

  // Validate against the serial reference.
  const std::vector<double> reference = workloads::heat_serial_reference(cfg, 100.0);
  const int band = cfg.rows / cfg.ranks;
  double max_err = 0.0;
  for (int r = 0; r < cfg.ranks; ++r) {
    for (int row = 0; row < band; ++row) {
      for (int col = 0; col < cfg.cols; ++col) {
        const double got =
            interiors[static_cast<std::size_t>(r)]
                     [static_cast<std::size_t>(row) * cfg.cols + col];
        const double want =
            reference[static_cast<std::size_t>(r * band + row) * cfg.cols + col];
        max_err = std::max(max_err, std::fabs(got - want));
      }
    }
  }

  std::int64_t tasks = 0;
  double slowest = 0.0;
  for (int r = 0; r < cfg.ranks; ++r) {
    tasks += rank_tasks[static_cast<std::size_t>(r)];
    slowest = std::max(slowest, rank_seconds[static_cast<std::size_t>(r)]);
  }
  std::printf("executed %lld tasks across %d ranks in %.3f s (%.0f tasks/s)\n",
              static_cast<long long>(tasks), cfg.ranks, slowest,
              tasks / slowest);
  std::printf("max |distributed - serial| = %.3e  (%s)\n", max_err,
              max_err < 1e-9 ? "OK" : "MISMATCH");
  return max_err < 1e-9 ? 0 : 1;
}
