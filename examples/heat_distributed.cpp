// Distributed 2D Heat over the in-process message-passing substrate — the
// paper's §4.2.2 MPI application at laptop scale.
//
// Four ranks each own a row band of the grid and run their own das::rt
// Runtime. Every iteration: one HIGH-priority task exchanges ghost rows with
// the neighbours (the paper's "MPI TAOs"), then moldable band-sweep tasks
// update the interior. The result is validated against the serial Jacobi
// reference at the end.

#include <cmath>
#include <cstdio>
#include <vector>

#include "kernels/registry.hpp"
#include "net/world.hpp"
#include "rt/runtime.hpp"
#include "util/spinlock.hpp"
#include "workloads/heat.hpp"

int main() {
  using namespace das;

  workloads::HeatConfig cfg;
  cfg.rows = 240;
  cfg.cols = 240;
  cfg.ranks = 4;
  cfg.iterations = 60;
  cfg.tasks_per_rank = 6;

  std::printf("2D heat: %dx%d grid, %d ranks x %d workers, %d iterations\n",
              cfg.rows, cfg.cols, cfg.ranks, 4, cfg.iterations);

  net::World world(cfg.ranks);
  std::vector<std::vector<double>> interiors(static_cast<std::size_t>(cfg.ranks));
  std::vector<double> rank_seconds(static_cast<std::size_t>(cfg.ranks));
  std::vector<std::int64_t> rank_tasks(static_cast<std::size_t>(cfg.ranks));
  Spinlock lock;

  world.run([&](net::Comm& comm) {
    TaskTypeRegistry registry;  // per-rank registry: ranks are "processes"
    const auto ids = kernels::register_paper_kernels(registry);
    const Topology topo = Topology::symmetric(/*clusters=*/1, /*cores=*/4);
    rt::Runtime runtime(topo, Policy::kDamC, registry);
    workloads::HeatRank heat(cfg, comm, ids.heat_compute, ids.comm);

    double total = 0.0;
    for (int it = 0; it < cfg.iterations; ++it) {
      Dag dag = heat.make_iteration_dag(/*phase=*/0);
      total += runtime.run(dag);
      heat.advance();
    }
    comm.barrier();

    std::lock_guard<Spinlock> g(lock);
    interiors[static_cast<std::size_t>(comm.rank())] = heat.interior();
    rank_seconds[static_cast<std::size_t>(comm.rank())] = total;
    rank_tasks[static_cast<std::size_t>(comm.rank())] =
        runtime.stats().tasks_total();
  });

  // Validate against the serial reference.
  const std::vector<double> reference = workloads::heat_serial_reference(cfg, 100.0);
  const int band = cfg.rows / cfg.ranks;
  double max_err = 0.0;
  for (int r = 0; r < cfg.ranks; ++r) {
    for (int row = 0; row < band; ++row) {
      for (int col = 0; col < cfg.cols; ++col) {
        const double got =
            interiors[static_cast<std::size_t>(r)]
                     [static_cast<std::size_t>(row) * cfg.cols + col];
        const double want =
            reference[static_cast<std::size_t>(r * band + row) * cfg.cols + col];
        max_err = std::max(max_err, std::fabs(got - want));
      }
    }
  }

  std::int64_t tasks = 0;
  double slowest = 0.0;
  for (int r = 0; r < cfg.ranks; ++r) {
    tasks += rank_tasks[static_cast<std::size_t>(r)];
    slowest = std::max(slowest, rank_seconds[static_cast<std::size_t>(r)]);
  }
  std::printf("executed %lld tasks across %d ranks in %.3f s (%.0f tasks/s)\n",
              static_cast<long long>(tasks), cfg.ranks, slowest,
              tasks / slowest);
  std::printf("max |distributed - serial| = %.3e  (%s)\n", max_err,
              max_err < 1e-9 ? "OK" : "MISMATCH");
  return max_err < 1e-9 ? 0 : 1;
}
