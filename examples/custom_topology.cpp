// Bring-your-own platform: the scheduler makes no assumptions about the
// hardware (paper §3: "without prior assumptions about the underlying
// architecture"), so a custom topology — here a three-class machine with
// big, medium and little clusters — works out of the box. The example runs
// the same workload under every scheduler and prints the comparison, then
// shows how the PTT ranked the places.

#include <cstdio>

#include "kernels/registry.hpp"
#include "sim/engine.hpp"
#include "workloads/synthetic_dag.hpp"

int main() {
  using namespace das;

  // 2 big + 2 medium + 4 little cores, each cluster with its own L2.
  Cluster big{.name = "big", .first_core = 0, .num_cores = 2,
              .base_speed = 1.0, .widths = {1, 2},
              .l1_kb = 64, .l2_kb = 4096, .mem_bw_gbs = 25};
  Cluster mid{.name = "mid", .first_core = 2, .num_cores = 2,
              .base_speed = 0.7, .widths = {1, 2},
              .l1_kb = 48, .l2_kb = 2048, .mem_bw_gbs = 20};
  Cluster little{.name = "little", .first_core = 4, .num_cores = 4,
                 .base_speed = 0.4, .widths = {1, 2, 4},
                 .l1_kb = 32, .l2_kb = 1024, .mem_bw_gbs = 15,
                 .stream_fit = 0.5};
  const Topology topo({big, mid, little});
  std::printf("custom topology: %d cores, %d clusters, %d execution places\n",
              topo.num_cores(), topo.num_clusters(), topo.num_places());

  // Interference hits the big cluster; the medium cores become the best
  // hosts for critical tasks — something only the dynamic schedulers find.
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  SpeedScenario scenario(topo);
  scenario.add_cpu_corunner(0);
  scenario.add_cpu_corunner(1);

  std::printf("\n%-8s %12s   %s\n", "policy", "tasks/s", "criticals mostly at");
  sim::SimEngine* last = nullptr;
  std::unique_ptr<sim::SimEngine> engines[7];
  int i = 0;
  for (Policy p : all_policies()) {
    workloads::SyntheticDagSpec spec = workloads::paper_matmul_spec(ids.matmul, 2, 0.1);
    engines[i] = std::make_unique<sim::SimEngine>(topo, p, registry,
                                                  sim::SimOptions{}, &scenario);
    sim::SimEngine& eng = *engines[i++];
    Dag dag = workloads::make_synthetic_dag(spec);
    const double makespan = eng.run(dag);
    const auto dist = eng.stats().distribution(Priority::kHigh);
    std::printf("%-8s %12.0f   %s %.0f%%\n", policy_name(p),
                dag.num_nodes() / makespan,
                dist.empty() ? "-" : to_string(dist[0].first).c_str(),
                dist.empty() ? 0.0 : dist[0].second * 100.0);
    last = &eng;
  }

  std::printf("\nPTT ranking learned by %s:\n", policy_name(last->policy(0).policy()));
  const Ptt& ptt = last->ptt().table(ids.matmul);
  for (const ExecutionPlace& p : topo.places()) {
    if (ptt.samples(p) == 0) continue;
    std::printf("  %-7s cluster=%-7s %8.0f us\n", to_string(p).c_str(),
                topo.cluster_of_core(p.leader).name.c_str(),
                ptt.value(p) * 1e6);
  }
  std::printf("\nNote how FA keeps hammering the interfered big cores while "
              "DA/DAM-* discover the medium cluster.\n");
  return 0;
}
