// Bring-your-own platform: the scheduler makes no assumptions about the
// hardware (paper §3: "without prior assumptions about the underlying
// architecture"), so a custom topology — here a three-class machine with
// big, medium and little clusters — works out of the box. The example runs
// the same workload under every scheduler through the das::Executor facade
// (--backend=sim by default; --backend=rt executes the cost-model fallback
// on real threads) and prints the comparison, then shows how the PTT ranked
// the places.

#include <cstdio>
#include <memory>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "util/cli.hpp"
#include "workloads/synthetic_dag.hpp"

int main(int argc, char** argv) {
  using namespace das;

  cli::Flags flags(argc, argv);
  cli::maybe_help(flags, "--backend=sim|rt --scenario=<name|file>");
  cli::require_no_positionals(flags);
  flags.require_known({"backend", "scenario", "help"});
  const Backend backend = backend_flag(flags, Backend::kSim);
  const auto scenario_spec = scenario_flag(flags);

  // 2 big + 2 medium + 4 little cores, each cluster with its own L2.
  Cluster big{.name = "big", .first_core = 0, .num_cores = 2,
              .base_speed = 1.0, .widths = {1, 2},
              .l1_kb = 64, .l2_kb = 4096, .mem_bw_gbs = 25};
  Cluster mid{.name = "mid", .first_core = 2, .num_cores = 2,
              .base_speed = 0.7, .widths = {1, 2},
              .l1_kb = 48, .l2_kb = 2048, .mem_bw_gbs = 20};
  Cluster little{.name = "little", .first_core = 4, .num_cores = 4,
                 .base_speed = 0.4, .widths = {1, 2, 4},
                 .l1_kb = 32, .l2_kb = 1024, .mem_bw_gbs = 15,
                 .stream_fit = 0.5};
  const Topology topo({big, mid, little});
  std::printf("custom topology: %d cores, %d clusters, %d execution places "
              "(backend: %s)\n",
              topo.num_cores(), topo.num_clusters(), topo.num_places(),
              backend_name(backend));

  // Interference hits the big cluster; the medium cores become the best
  // hosts for critical tasks — something only the dynamic schedulers find.
  // A --scenario override proves the point of topology-agnostic specs:
  // "dvfs-wave" resolves "fastest" to the big cluster of THIS machine.
  TaskTypeRegistry registry;
  const auto ids = kernels::register_paper_kernels(registry);
  SpeedScenario scenario(topo);
  if (scenario_spec) {
    scenario = build_scenario_or_exit(*scenario_spec, topo);
  } else {
    scenario.add_cpu_corunner(0);
    scenario.add_cpu_corunner(1);
  }

  std::printf("\n%-8s %12s   %s\n", "policy", "tasks/s", "criticals mostly at");
  Executor* last = nullptr;
  std::vector<std::unique_ptr<Executor>> executors;
  for (Policy p : all_policies()) {
    workloads::SyntheticDagSpec spec = workloads::paper_matmul_spec(ids.matmul, 2, 0.1);
    ExecutorConfig config;
    config.scenario = &scenario;
    executors.push_back(make_executor(backend, topo, p, registry, config));
    Executor& exec = *executors.back();
    Dag dag = workloads::make_synthetic_dag(spec);
    const RunResult r = exec.run(dag);
    const auto& dist = r.stats[0].high_distribution;
    std::printf("%-8s %12.0f   %s %.0f%%\n", policy_name(p), r.tasks_per_s,
                dist.empty() ? "-" : to_string(dist[0].first).c_str(),
                dist.empty() ? 0.0 : dist[0].second * 100.0);
    last = &exec;
  }

  std::printf("\nPTT ranking learned by %s:\n", policy_name(last->policy_kind()));
  const Ptt& ptt = last->ptt().table(ids.matmul);
  for (const ExecutionPlace& p : topo.places()) {
    if (ptt.samples(p) == 0) continue;
    std::printf("  %-7s cluster=%-7s %8.0f us\n", to_string(p).c_str(),
                topo.cluster_of_core(p.leader).name.c_str(),
                ptt.value(p) * 1e6);
  }
  std::printf("\nNote how FA keeps hammering the interfered big cores while "
              "DA/DAM-* discover the medium cluster.\n");
  return 0;
}
