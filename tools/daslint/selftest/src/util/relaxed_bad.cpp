// Planted violation: memory_order_relaxed in a non-whitelisted file.
#include <atomic>

std::atomic<int> g_flag{0};

int planted_relaxed() { return g_flag.load(std::memory_order_relaxed); }
