// Planted violation: allocation inside a hot-path region.
#include <memory>

int* planted_allocation() {
  // daslint: begin-hot-path(selftest)
  int* p = new int(42);
  auto q = std::make_unique<int>(7);
  // daslint: end-hot-path
  *p += *q;
  return p;
}
