// Planted violation corpus: type-erased dispatch inside a hot-path region.
// Never compiled — the selftest only asserts the linter flags both shapes
// (naming std::function, invoking a .cost(...) callable).
#include <functional>

struct Info {
  std::function<double(int)> cost;
};

// daslint: begin-hot-path(planted)
double call_through_erased(const std::function<double(int)>& f) {
  return f(1);
}
double invoke_cost_callable(const Info& info) { return info.cost(7); }
// daslint: end-hot-path
