// Planted violation: lock acquisition inside a hot-path region.
#include <mutex>

std::mutex g_mu;
int g_counter = 0;

void planted_lock() {
  // daslint: begin-hot-path(selftest)
  std::lock_guard<std::mutex> g(g_mu);
  ++g_counter;
  // daslint: end-hot-path
}
