// Clean file: must produce ZERO findings. Exercises the false-positive
// traps — rule tokens inside comments and string literals, and an
// explicitly suppressed line.
#include <cstdio>
#include <memory>

int no_findings_here() {
  // daslint: begin-hot-path(selftest-clean)
  // A comment that talks about `new` allocations and std::mutex lock_guard
  // must not trip the linter: matching runs on comment-stripped source.
  const char* msg = "new std::mutex lock_guard malloc( rand()";
  int x = 0;
  for (int i = 0; i < 4; ++i) x += i;
  // daslint: end-hot-path
  std::puts(msg);
  // Warm-up path: allocation is deliberate and argued here.
  auto warm = std::make_unique<int>(x);  // daslint: allow(hot-path-alloc)
  return *warm;
}
