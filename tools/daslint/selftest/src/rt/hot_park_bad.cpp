// Planted violation: parking primitive inside a hot-path region.
#include <cstdint>

struct FakeEventCount {
  std::uint64_t prepare_wait() { return 0; }
  void commit_wait(std::uint64_t) {}
};

FakeEventCount g_ec;

void planted_park() {
  // daslint: begin-hot-path(selftest)
  const std::uint64_t key = g_ec.prepare_wait();
  g_ec.commit_wait(key);
  // daslint: end-hot-path
}
