// Planted violation: deadline-less blocking receive in src/net (the
// unbounded-wait rule). A real caller would use recv_any_for / take_for.
struct FakeMailbox {
  int take_any(int tag);
  int take(int src, int tag);
};

int planted_unbounded_wait(FakeMailbox& box) {
  return box.take_any(7);  // blocks forever if the peer died
}

int planted_unbounded_take(FakeMailbox& box) {
  // A suppressed line must NOT fire (the clean-side check of this rule):
  return box.take(0, 7);  // daslint: allow(unbounded-wait)
}
