// Planted violation: ambient randomness in simulator code.
#include <cstdlib>
#include <random>

int planted_rand() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
