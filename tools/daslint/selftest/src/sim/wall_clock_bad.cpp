// Planted violation: wall-clock read in simulator code.
#include <chrono>

double planted_wall_clock() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
