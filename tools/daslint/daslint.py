#!/usr/bin/env python3
"""daslint — project-specific lint rules the generic tools cannot express.

Rules (each violation prints `file:line: [rule] message`; exit 1 on any):

  hot-path-alloc   Between `// daslint: begin-hot-path(<name>)` and
                   `// daslint: end-hot-path` markers, no allocation:
                   new / make_unique / make_shared / malloc / calloc /
                   realloc / std::vector construction. The markers wrap the
                   rt dispatch path (src/rt/worker.cpp) and the simulator's
                   event step (src/sim/engine.cpp) — the no-allocation
                   property their overhead gates depend on.

  hot-path-lock    Same regions: no mutex/lock acquisition (std::mutex,
                   MutexLock, SpinlockGuard, lock_guard, unique_lock,
                   scoped_lock, .lock()). The hot path is lock-free by
                   design; a lock here is a regression even if benchmarks
                   miss it on an idle machine.

  hot-path-stdfunction  Same regions: no type-erased dispatch — naming
                   std::function or invoking a TaskTypeInfo cost callable
                   (`.cost(`). The fused engine loops exist precisely to
                   keep erased calls off the steady-state path; catalog
                   cost models evaluate through cost_expr_eval /
                   cost_eval (core/cost_expr.hpp) instead.

  hot-path-park    Same regions: no parking/blocking primitives —
                   eventcount waits (prepare_wait / commit_wait /
                   wait_all_at_least), condition variables, sleeps,
                   thread joins. The parallel DES rank loop (the
                   `rank-window` region in src/sim/engine.cpp) must only
                   block at the window-phase boundaries OUTSIDE the
                   region: a park inside the per-rank event loop stalls
                   every other rank at the next phase barrier.

  sim-wall-clock   src/sim/** must not read wall-clock time (std::chrono
                   clocks, now_ns, clock_gettime, gettimeofday, time()).
                   The DES is deterministic virtual time; one wall-clock
                   read makes traces non-reproducible.

  sim-ambient-rand src/sim/** must not use ambient randomness
                   (std::random_device, rand, srand, std::mt19937 seeded
                   implicitly). All simulator randomness flows through the
                   seeded Xoshiro256 (util/rng.hpp).

  relaxed-whitelist  `memory_order_relaxed` may appear only in whitelisted
                   files (RELAXED_WHITELIST below). Every whitelisted file
                   documents its ordering argument; new relaxed usage must
                   be argued and whitelisted, not slipped in.

  unbounded-wait   src/net/** and src/exec/** must not call deadline-less
                   blocking receives (.recv / .recv_msg / .recv_any /
                   .recv_value / .recv_span / .take / .take_any): a dead
                   peer then wedges the caller forever. Use the *_for
                   bounded variants (Mailbox::take_any_for,
                   Comm::recv_any_for, Executor::wait_for). The primitives
                   themselves and synchronous request/reply client calls
                   carry an allow() with their liveness argument.

Suppression: append `// daslint: allow(<rule>)` to the offending line with
a reason. Matching is textual on comment- and string-stripped source, so
commentary about locks or allocation never trips a rule.

Usage:
  daslint.py [--root DIR]    lint DIR (default: repo root inferred from
                             this file's location); exit 1 on violations
  daslint.py --selftest      run the planted-violation corpus under
                             tools/daslint/selftest/ and assert every rule
                             fires (and that a clean file does not)
"""

import argparse
import os
import re
import sys

# Files allowed to use memory_order_relaxed (repo-relative, forward
# slashes). Each carries its ordering argument in comments at the use site.
RELAXED_WHITELIST = {
    "src/chk/chk.cpp",
    # SPSC ring: relaxed loads are each side's OWN index (single writer);
    # cross-thread publication rides the release/acquire pair on the
    # opposite index. Argued in the header comment at each use site.
    "src/sim/boundary_queue.hpp",
    "src/core/policy.cpp",
    "src/core/ptt.cpp",
    "src/rt/runtime.cpp",
    # Fault layer: heartbeat counter (freshness only — the watchdog compares
    # successive values, never orders data through it) and the monotonic
    # tasks_reexecuted/workers_failed stats counters. Handoff ordering rides
    # the kQuarantined release/acquire pair and the seq_cst dead_ flips,
    # argued in the file comment of src/rt/watchdog.cpp.
    "src/rt/runtime.hpp",
    "src/rt/watchdog.cpp",
    "src/rt/worker.cpp",
    "src/rt/wsq.hpp",
    "src/trace/stats.cpp",
    "src/trace/stats.hpp",
    "src/util/eventcount.hpp",
    "src/util/mpsc_queue.hpp",
    "src/util/spinlock.hpp",
    "src/workloads/interference.cpp",
    "src/workloads/interference.hpp",
}

HOT_ALLOC = re.compile(
    r"\bnew\b|make_unique|make_shared|\bmalloc\s*\(|\bcalloc\s*\(|"
    r"\brealloc\s*\(|std::vector\s*<[^;]*>\s*\("
)
HOT_LOCK = re.compile(
    r"std::mutex|\bMutexLock\b|\bSpinlockGuard\b|lock_guard|unique_lock|"
    r"scoped_lock|\.lock\s*\(\)"
)
HOT_STDFUNCTION = re.compile(r"std::function|\.cost\s*\(")
HOT_PARK = re.compile(
    r"prepare_wait|commit_wait|wait_all_at_least|condition_variable|"
    r"\bcv_\.wait\b|wait_for|wait_until|sleep_for|sleep_until|"
    r"\.join\s*\(\)|\bpthread_cond_wait\b"
)
SIM_WALL_CLOCK = re.compile(
    r"std::chrono|steady_clock|system_clock|high_resolution_clock|"
    r"\bnow_ns\s*\(|clock_gettime|gettimeofday|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"
)
SIM_RAND = re.compile(r"std::random_device|\brand\s*\(\s*\)|\bsrand\s*\(")
RELAXED = re.compile(r"memory_order_relaxed")
# Deadline-less blocking receives; the *_for variants (take_for, recv_any_for
# ...) do not match because the name must be followed directly by "(". The
# bare-`take` alternative requires a comma'd argument list so WireWriter::take()
# (a buffer move-out, zero args) stays clean.
UNBOUNDED_WAIT = re.compile(
    r"(\.|->)\s*(recv_any|recv_msg|recv_value|recv_span|recv|take_any)"
    r"\s*(<[^<>;]*>)?\s*\("
    r"|(\.|->)\s*take\s*\([^()]*,"
)

BEGIN_MARK = re.compile(r"//\s*daslint:\s*begin-hot-path\(([\w-]+)\)")
END_MARK = re.compile(r"//\s*daslint:\s*end-hot-path")
ALLOW = re.compile(r"//\s*daslint:\s*allow\(([\w-]+)\)")


def strip_code(lines):
    """Per-line source with comments and string/char literals blanked.

    Block comments are tracked across lines; the result has the same line
    count so diagnostics keep their line numbers. Good enough for token
    lint (no raw strings / trigraphs in this tree).
    """
    out = []
    in_block = False
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                j = line.find("*/", i)
                if j < 0:
                    i = n
                else:
                    in_block = False
                    i = j + 2
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                res.append(quote)
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def lint_file(root, rel, violations):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as e:
        violations.append((rel, 0, "io", str(e)))
        return
    code = strip_code(raw)
    posix_rel = rel.replace(os.sep, "/")
    in_sim = posix_rel.startswith("src/sim/")
    in_net_exec = posix_rel.startswith(("src/net/", "src/exec/"))
    relaxed_ok = posix_rel in RELAXED_WHITELIST

    region = None  # name of the enclosing hot-path region, or None
    for idx, (raw_line, code_line) in enumerate(zip(raw, code), start=1):
        m = BEGIN_MARK.search(raw_line)
        if m:
            if region is not None:
                violations.append((rel, idx, "marker",
                                   "nested begin-hot-path"))
            region = m.group(1)
            continue
        if END_MARK.search(raw_line):
            if region is None:
                violations.append((rel, idx, "marker",
                                   "end-hot-path without begin"))
            region = None
            continue
        allowed = {a.group(1) for a in ALLOW.finditer(raw_line)}

        def report(rule, msg):
            if rule not in allowed:
                violations.append((rel, idx, rule, msg))

        if region is not None:
            if HOT_ALLOC.search(code_line):
                report("hot-path-alloc",
                       f"allocation in hot-path region '{region}'")
            if HOT_LOCK.search(code_line):
                report("hot-path-lock",
                       f"lock acquisition in hot-path region '{region}'")
            if HOT_STDFUNCTION.search(code_line):
                report("hot-path-stdfunction",
                       f"type-erased dispatch in hot-path region"
                       f" '{region}' (use the fused hooks / cost_expr"
                       f" evaluators, core/cost_expr.hpp)")
            if HOT_PARK.search(code_line):
                report("hot-path-park",
                       f"parking/blocking primitive in hot-path region"
                       f" '{region}' (block only at window-phase"
                       f" boundaries, outside the region)")
        if in_sim:
            if SIM_WALL_CLOCK.search(code_line):
                report("sim-wall-clock",
                       "wall-clock read in the deterministic simulator")
            if SIM_RAND.search(code_line):
                report("sim-ambient-rand",
                       "ambient randomness in the deterministic simulator"
                       " (use the seeded util/rng.hpp)")
        if in_net_exec and UNBOUNDED_WAIT.search(code_line):
            report("unbounded-wait",
                   "deadline-less blocking receive in fault-tolerant layer"
                   " (use the *_for bounded variants, or allow() with a"
                   " liveness argument)")
        if RELAXED.search(code_line) and not relaxed_ok:
            report("relaxed-whitelist",
                   "memory_order_relaxed outside the whitelist"
                   " (argue the ordering and add the file to"
                   " tools/daslint/daslint.py)")
    if region is not None:
        violations.append((rel, len(raw), "marker",
                           "unterminated begin-hot-path"))


def collect_files(root):
    files = []
    src = os.path.join(root, "src")
    for base, _dirs, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                files.append(os.path.relpath(os.path.join(base, name), root))
    return sorted(files)


def run_lint(root):
    violations = []
    for rel in collect_files(root):
        lint_file(root, rel, violations)
    for rel, line, rule, msg in violations:
        print(f"{rel}:{line}: [{rule}] {msg}")
    return violations


def selftest(repo_root):
    corpus = os.path.join(repo_root, "tools", "daslint", "selftest")
    violations = run_lint(corpus)
    by_rule = {}
    for rel, _line, rule, _msg in violations:
        by_rule.setdefault(rule, set()).add(rel.replace(os.sep, "/"))
    expected = {
        "hot-path-alloc": "src/rt/hot_alloc_bad.cpp",
        "hot-path-lock": "src/rt/hot_lock_bad.cpp",
        "hot-path-stdfunction": "src/rt/hot_stdfunction_bad.cpp",
        "hot-path-park": "src/rt/hot_park_bad.cpp",
        "sim-wall-clock": "src/sim/wall_clock_bad.cpp",
        "sim-ambient-rand": "src/sim/rand_bad.cpp",
        "relaxed-whitelist": "src/util/relaxed_bad.cpp",
        "unbounded-wait": "src/net/unbounded_wait_bad.cpp",
    }
    ok = True
    for rule, planted in expected.items():
        if planted not in by_rule.get(rule, set()):
            print(f"selftest: rule '{rule}' did NOT fire on {planted}")
            ok = False
    clean = "src/rt/clean_ok.cpp"
    flagged_clean = [v for v in violations
                     if v[0].replace(os.sep, "/") == clean]
    if flagged_clean:
        print(f"selftest: false positives on {clean}: {flagged_clean}")
        ok = False
    print("selftest:", "PASS" if ok else "FAIL",
          f"({len(violations)} planted violations detected)")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None)
    ap.add_argument("--selftest", action="store_true")
    args = ap.parse_args()
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.abspath(os.path.join(here, "..", ".."))
    if args.selftest:
        return selftest(repo_root)
    root = os.path.abspath(args.root) if args.root else repo_root
    violations = run_lint(root)
    if violations:
        print(f"daslint: {len(violations)} violation(s)")
        return 1
    print("daslint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
