// Reproduces the paper's Table 1: "Features summary of all evaluated
// schedulers" — printed from the live policy introspection so the table can
// never drift from the implementation. Accepts the full common bench flag
// set for CI uniformity; there is no engine to run, so --backend, --scenario,
// --scale and --seed are accepted and ignored, while --policy filters the
// rows and --json= emits the feature matrix as structured records.

#include <iostream>

#include "../bench/support.hpp"
#include "core/policy.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace das;
  bench::Bench b(argc, argv, "table1_schedulers");
  const std::vector<Policy> policies =
      b.policy_filter.empty() ? all_policies() : b.policy_filter;

  std::cout << "Table 1: Features summary of all evaluated schedulers\n\n";
  TextTable t({"Name", "[A]symmetry awareness", "[M]oldability",
               "Priority placement", "uses PTT"});
  for (Policy p : policies) {
    const PolicyTraits tr = policy_traits(p);
    t.row()
        .add(policy_name(p))
        .add(tr.asymmetry)
        .add(tr.moldability)
        .add(tr.priority_placement)
        .add(tr.uses_ptt ? "yes" : "no");
    json::Value rec = json::Value::object();
    rec.set("label", "feature matrix");
    rec.set("policy", policy_name(p));
    rec.set("asymmetry", tr.asymmetry);
    rec.set("moldability", tr.moldability);
    rec.set("priority_placement", tr.priority_placement);
    rec.set("uses_ptt", tr.uses_ptt);
    b.report_raw(std::move(rec));
  }
  t.print(std::cout);
  return b.finish();
}
