// Reproduces the paper's Table 1: "Features summary of all evaluated
// schedulers" — printed from the live policy introspection so the table can
// never drift from the implementation.

#include <iostream>

#include "core/policy.hpp"
#include "util/format.hpp"

int main() {
  using namespace das;
  std::cout << "Table 1: Features summary of all evaluated schedulers\n\n";
  TextTable t({"Name", "[A]symmetry awareness", "[M]oldability",
               "Priority placement", "uses PTT"});
  for (Policy p : all_policies()) {
    const PolicyTraits tr = policy_traits(p);
    t.row()
        .add(policy_name(p))
        .add(tr.asymmetry)
        .add(tr.moldability)
        .add(tr.priority_placement)
        .add(tr.uses_ptt ? "yes" : "no");
  }
  t.print(std::cout);
  return 0;
}
