// Reproduces the paper's Table 1: "Features summary of all evaluated
// schedulers" — printed from the live policy introspection so the table can
// never drift from the implementation. Accepts the common --policy= filter
// (e.g. --policy=DAM-C,DAM-P); there is no engine to run, so --backend= is
// accepted and ignored.

#include <iostream>

#include "core/policy.hpp"
#include "exec/executor.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace das;
  cli::Flags flags(argc, argv);
  cli::require_no_positionals(flags);
  flags.require_known({"policy", "backend"});
  std::vector<Policy> policies = all_policies();
  if (flags.has("policy")) {
    policies.clear();
    for (const std::string& name : cli::split(flags.get("policy"), ',')) {
      const auto p = parse_policy(name);
      if (!p) cli::die("unknown policy '" + name + "'");
      policies.push_back(*p);
    }
  }

  std::cout << "Table 1: Features summary of all evaluated schedulers\n\n";
  TextTable t({"Name", "[A]symmetry awareness", "[M]oldability",
               "Priority placement", "uses PTT"});
  for (Policy p : policies) {
    const PolicyTraits tr = policy_traits(p);
    t.row()
        .add(policy_name(p))
        .add(tr.asymmetry)
        .add(tr.moldability)
        .add(tr.priority_placement)
        .add(tr.uses_ptt ? "yes" : "no");
  }
  t.print(std::cout);
  return 0;
}
