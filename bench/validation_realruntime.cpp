// Cross-engine validation (DESIGN.md A2): the real-thread runtime, with
// throttle-emulated TX2 asymmetry and the core-0 co-runner, must rank the
// schedulers the same way the deterministic DES does on the Fig. 4 MatMul
// P=2 configuration. Absolute numbers differ (the runtime executes real
// busy-work and pays real synchronisation); the ordering and rough factors
// are what validate the DES as the figure-generation substrate.

#include <iostream>

#include "../bench/support.hpp"
#include "platform/affinity.hpp"
#include "rt/runtime.hpp"

using namespace das;
using namespace das::bench;

int main() {
  Bench b;
  SpeedScenario scenario(b.topo);
  scenario.add_cpu_corunner(0);

  // Scaled so each policy's real run takes well under a second of wall time.
  workloads::SyntheticDagSpec spec =
      workloads::paper_matmul_spec(b.ids.matmul, 2, 0.05);

  print_title("Validation: real-thread runtime (emulated TX2) vs DES — "
              "MatMul P=2, co-runner on core 0");
  if (allowed_cpu_count() < b.topo.num_cores() + 1) {
    std::cout << "note: only " << allowed_cpu_count()
              << " CPUs available for 6 workers — expect wall-clock noise\n";
  }

  TextTable t({"scheduler", "real tasks/s", "DES tasks/s", "real vs RWS",
               "DES vs RWS"});
  double real_rws = 0.0, sim_rws = 0.0;
  for (Policy p : {Policy::kRws, Policy::kFa, Policy::kDa, Policy::kDamC}) {
    Dag dag = workloads::make_synthetic_dag(spec);  // cost-model fallback work
    rt::RtOptions opts;
    opts.scenario = &scenario;
    opts.seed = kFigureSeed;
    rt::Runtime rt(b.topo, p, b.registry, opts);
    const double elapsed = rt.run(dag);
    const double real_tp = dag.num_nodes() / elapsed;
    const double sim_tp = b.throughput(p, spec, &scenario);
    if (p == Policy::kRws) {
      real_rws = real_tp;
      sim_rws = sim_tp;
    }
    t.row()
        .add(policy_name(p))
        .add(real_tp, 0)
        .add(sim_tp, 0)
        .add(fmt_double(real_tp / real_rws, 2) + "x")
        .add(fmt_double(sim_tp / sim_rws, 2) + "x");
  }
  t.print(std::cout);
  return 0;
}
