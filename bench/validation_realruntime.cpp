// Cross-engine validation (DESIGN.md A2): the real-thread runtime, with
// throttle-emulated TX2 asymmetry and the core-0 co-runner, must rank the
// schedulers the same way the deterministic DES does on the Fig. 4 MatMul
// P=2 configuration. Absolute numbers differ (the runtime executes real
// busy-work and pays real synchronisation); the ordering and rough factors
// are what validate the DES as the figure-generation substrate.
//
// This bench is the facade's showcase: the SAME driver loop builds both
// engines through das::make_executor and only the Backend enum differs —
// so --backend= is accepted and ignored (both always run). --scale defaults
// to 0.05 here regardless of backend: every row executes real busy-work.

#include <iostream>

#include "../bench/support.hpp"
#include "platform/affinity.hpp"

using namespace das;
using namespace das::bench;

int main(int argc, char** argv) {
  Bench b(argc, argv, "validation_realruntime");
  b.backend_label = "rt+sim";  // this bench always runs BOTH engines
  if (!b.scale_explicit) b.scale = 0.05;  // wall-time budget per real run
  const SpeedScenario scenario = b.make_scenario(
      b.topo, [](SpeedScenario& s) { s.add_cpu_corunner(0); });

  workloads::SyntheticDagSpec spec =
      workloads::paper_matmul_spec(b.ids.matmul, 2, b.scale);

  print_title("Validation: real-thread runtime (emulated TX2) vs DES — "
              "MatMul P=2, co-runner on core 0");
  std::cout << "scale " << fmt_double(b.scale, 3) << ", seed " << b.seed
            << " (--backend is ignored: both engines always run)\n";
  if (allowed_cpu_count() < b.topo.num_cores() + 1) {
    std::cout << "note: only " << allowed_cpu_count()
              << " CPUs available for 6 workers — expect wall-clock noise\n";
  }

  TextTable t({"scheduler", "real tasks/s", "DES tasks/s", "real vs RWS",
               "DES vs RWS"});
  double real_rws = 0.0, sim_rws = 0.0;
  for (Policy p : b.policies({Policy::kRws, Policy::kFa, Policy::kDa,
                              Policy::kDamC})) {
    double tp[2] = {0.0, 0.0};
    for (Backend backend : all_backends()) {
      const Dag dag = workloads::make_synthetic_dag(spec);
      ExecutorConfig cfg = b.make_config();
      cfg.scenario = &scenario;
      auto exec = make_executor(backend, b.topo, p, b.registry, cfg);
      const RunResult r = exec->run(dag);
      b.report(std::string("MatMul P=2 on ") + backend_name(backend), r);
      tp[static_cast<int>(backend)] = r.tasks_per_s;
    }
    const double rt_tp = tp[static_cast<int>(Backend::kRt)];
    const double sim_tp = tp[static_cast<int>(Backend::kSim)];
    if (p == Policy::kRws) {
      real_rws = rt_tp;
      sim_rws = sim_tp;
    }
    // "-" when RWS is filtered out: a made-up baseline would read as parity.
    t.row()
        .add(policy_name(p))
        .add(rt_tp, 0)
        .add(sim_tp, 0)
        .add(real_rws > 0 ? fmt_double(rt_tp / real_rws, 2) + "x" : "-")
        .add(sim_rws > 0 ? fmt_double(sim_tp / sim_rws, 2) + "x" : "-");
  }
  t.print(std::cout);
  return b.finish();
}
