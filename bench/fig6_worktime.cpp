// Reproduces the paper's Figure 6: cumulative kernel work time per core
// (excluding runtime activity and idleness) for each scheduler, while the
// co-running application occupies Denver core 0 — MatMul DAG, parallelism 2.
// Runs through the das::Executor facade (--backend=sim|rt).
//
// Paper reference points: FA shows the highest core-0 execution time (it
// keeps assigning criticals to the perturbed core, which then runs them at
// half speed); the dynamic schedulers keep core 0 near-idle for criticals
// and lean on core 1 + the A57 cluster.

#include <iostream>

#include "../bench/support.hpp"

using namespace das;
using namespace das::bench;

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig6_worktime");
  print_backend(b);
  const SpeedScenario scenario = b.make_scenario(
      b.topo, [](SpeedScenario& s) { s.add_cpu_corunner(0); });
  const auto spec = workloads::paper_matmul_spec(b.ids.matmul, 2, b.scale);

  print_title("Fig. 6: per-core work time [s], MatMul P=2, co-runner on core 0");
  std::vector<std::string> header{"scheduler"};
  for (int c = 0; c < b.topo.num_cores(); ++c)
    header.push_back(fmt_indexed("C", c));
  header.emplace_back("total");
  header.emplace_back("makespan");
  TextTable t(header);

  for (Policy p : b.policies()) {
    Dag dag = workloads::make_synthetic_dag(spec);
    const RunResult r = b.make(p, &scenario, b.make_config())->run(dag);
    b.report("per-core work time", r);
    const StatsSnapshot& s = r.stats[0];
    t.row().add(policy_name(p));
    for (int c = 0; c < b.topo.num_cores(); ++c)
      t.add(s.busy_s[static_cast<std::size_t>(c)], 2);
    t.add(s.total_busy_s, 2);
    t.add(r.makespan_s, 2);
  }
  t.print(std::cout);
  return b.finish();
}
