// Reproduces the paper's Figure 6: cumulative kernel work time per core
// (excluding runtime activity and idleness) for each scheduler, while the
// co-running application occupies Denver core 0 — MatMul DAG, parallelism 2.
//
// Paper reference points: FA shows the highest core-0 execution time (it
// keeps assigning criticals to the perturbed core, which then runs them at
// half speed); the dynamic schedulers keep core 0 near-idle for criticals
// and lean on core 1 + the A57 cluster.

#include <iostream>

#include "../bench/support.hpp"
#include "trace/reporter.hpp"

using namespace das;
using namespace das::bench;

int main() {
  Bench b;
  SpeedScenario scenario(b.topo);
  scenario.add_cpu_corunner(0);
  const auto spec = workloads::paper_matmul_spec(b.ids.matmul, 2);

  print_title("Fig. 6: per-core work time [s], MatMul P=2, co-runner on core 0");
  std::vector<std::string> header{"scheduler"};
  for (int c = 0; c < b.topo.num_cores(); ++c)
    header.push_back("C" + std::to_string(c));
  header.emplace_back("total");
  header.emplace_back("makespan");
  TextTable t(header);

  for (Policy p : all_policies()) {
    Dag dag = workloads::make_synthetic_dag(spec);
    sim::SimEngine eng(b.topo, p, b.registry, Bench::make_options(), &scenario);
    const double makespan = eng.run(dag);
    t.row().add(policy_name(p));
    for (int c = 0; c < b.topo.num_cores(); ++c) t.add(eng.stats().busy_s(c), 2);
    t.add(eng.stats().total_busy_s(), 2);
    t.add(makespan, 2);
  }
  t.print(std::cout);
  return 0;
}
