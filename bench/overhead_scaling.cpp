// Scheduler-overhead benchmark and regression sentinel.
//
// Drives empty-kernel (or --grain=NS busy-work) fine-grained layered DAGs
// through the das::Executor facade and reports, per (backend, tasks,
// parallelism) cell,
//   - tasks/s            job throughput: tasks / makespan. On rt the
//                        makespan is wall seconds, so this measures the
//                        runtime's dispatch machinery; with grain=0 every
//                        cycle is scheduling overhead by construction.
//   - overhead ns/task   (makespan - ideal compute) / tasks, where ideal
//                        compute = tasks x grain / min(parallelism, cores):
//                        wall nanoseconds of runtime overhead added per
//                        task. Equals makespan/tasks for the empty kernel.
//   - wall tasks/s (sim) the SIMULATOR's own throughput — tasks simulated
//                        per wall second (virtual-time throughput would say
//                        nothing about engine overhead) — the sentinel for
//                        the event-queue hot path.
//
// Regression gate (the CI cell): --baseline=PATH compares each cell's
// gating throughput against a checked-in JSON baseline and exits 1 when any
// cell regresses by more than --tolerance (default 0.25, the ">25%" CI
// contract). --update-baseline rewrites PATH from this run instead —
// refresh it on the machine class that enforces the gate.
//
// Flags beyond the common set (README "Performance" documents the
// methodology):
//   --tasks=N[,N...]         task counts to sweep      (default 10000,100000)
//   --parallelism=P[,P...]   DAG widths to sweep       (default 1,num_cores)
//   --grain=NS               per-task busy-work in ns  (default 0 = empty)
//   --baseline=PATH          gate against baseline     (exit 1 on regression)
//   --update-baseline        rewrite PATH from this run
//   --tolerance=F            allowed fractional loss   (default 0.25)

#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "../bench/support.hpp"
#include "util/time.hpp"

using namespace das;
using namespace das::bench;

namespace {

struct Cell {
  std::string label;
  double gate_tasks_per_s = 0.0;
};

std::vector<std::int64_t> parse_int_list(const cli::Flags& flags,
                                         const std::string& key,
                                         std::vector<std::int64_t> def) {
  if (!flags.has(key)) return def;
  std::vector<std::int64_t> out;
  for (const std::string& part : cli::split(flags.get(key), ',')) {
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(part, &pos);
      // The sweep values become int DAG sizes: reject what would truncate.
      if (pos != part.size() || v <= 0 ||
          v > std::numeric_limits<int>::max())
        throw std::invalid_argument(part);
      out.push_back(v);
    } catch (const std::exception&) {
      cli::die("--" + key + " expects a comma-separated list of positive "
               "int-range integers, got '" + part + "'");
    }
  }
  if (out.empty()) cli::die("--" + key + " must name at least one value");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv);
  cli::maybe_help(
      flags, std::string(cli::kCommonFlagsUsage) +
                 " --tasks=N[,N...] --parallelism=P[,P...] --grain=NS"
                 " --baseline=PATH --update-baseline --tolerance=F"
                 " (no --scale: task counts are explicit)");
  cli::require_no_positionals(flags);
  flags.require_known({"backend", "policy", "scenario", "json", "seed", "help",
                       "tasks", "parallelism", "grain", "baseline",
                       "update-baseline", "tolerance"});

  Bench b("overhead_scaling");
  b.backend = backend_flag(flags, Backend::kRt);  // overhead is an rt story
  b.seed = flags.get_u64("seed", kFigureSeed);
  b.scenario_override = scenario_flag(flags);
  if (flags.has("policy")) {
    for (const std::string& pname : cli::split(flags.get("policy"), ',')) {
      const auto p = parse_policy(pname);
      if (!p) cli::die("unknown policy '" + pname + "'");
      b.policy_filter.push_back(*p);
    }
  }
  if (flags.has("json")) {
    b.json_path = flags.get("json");
    if (b.json_path.empty()) b.json_path = "BENCH_overhead_scaling.json";
    b.runs = json::Value::array();
  }

  const auto tasks_sweep = parse_int_list(flags, "tasks", {10000, 100000});
  const auto par_sweep = parse_int_list(
      flags, "parallelism", {1, static_cast<std::int64_t>(b.topo.num_cores())});
  const std::int64_t grain_ns = flags.get_int("grain", 0);
  if (grain_ns < 0) cli::die("--grain must be >= 0 nanoseconds");
  const std::string baseline_path = flags.get("baseline");
  const bool update_baseline = flags.has("update-baseline");
  if (update_baseline && baseline_path.empty())
    cli::die("--update-baseline needs --baseline=PATH to know where to write");
  const double tolerance = flags.get_double("tolerance", 0.25);
  if (!(tolerance > 0.0 && tolerance < 1.0))
    cli::die("--tolerance must be in (0, 1)");

  // The swept kernel: zero (or --grain) seconds of work so every remaining
  // cycle is scheduling machinery. One registered type serves both engines —
  // the closure drives rt, the cost model drives the DES. At grain 0 the
  // cost is the constant 1e-9 (exactly what the lambda would compute), so
  // registering through the fixed-cost factory lets the engines take their
  // fused kFixed loop — the overhead floor this bench exists to measure.
  // A positive grain divides by q.speed and must stay a callable, which
  // correctly demotes dispatch to the generic loop.
  const double grain_s = static_cast<double>(grain_ns) * 1e-9;
  const TaskTypeId empty_id =
      grain_ns == 0
          ? b.registry.register_type("empty", kernels::fixed_cost(1e-9))
          : b.registry.register_type(
                "empty", [grain_s](const TaskParams&, const CostQuery& q) {
                  return std::max(grain_s / q.speed, 1e-9);
                });

  print_backend(b);
  const SpeedScenario scenario =
      b.make_scenario(b.topo, [](SpeedScenario&) {});  // default: clean

  print_title("Scheduler overhead: empty-kernel fine-grained DAG sweep");
  std::cout << "grain: " << grain_ns << " ns/task\n";
  TextTable table({"cell", "policy", "makespan[s]", "tasks/s", "overhead ns/task",
                   "wall[s]", "wall tasks/s"});
  std::vector<Cell> cells;

  for (Policy policy : b.policies({Policy::kRws})) {
    for (const std::int64_t tasks : tasks_sweep) {
      for (const std::int64_t par : par_sweep) {
        workloads::SyntheticDagSpec spec;
        spec.type = empty_id;
        spec.parallelism = static_cast<int>(par);
        spec.total_tasks = static_cast<int>(tasks);
        if (grain_ns > 0 || b.backend == Backend::kRt) {
          spec.work = [grain_ns](const ExecContext&) {
            if (grain_ns > 0) busy_wait_ns(grain_ns);
          };
        }
        const Dag dag = workloads::make_synthetic_dag(spec);

        auto exec = b.make(policy, &scenario, b.make_config());
        Stopwatch wall;
        const RunResult r = exec->run(dag);
        const double wall_s = wall.elapsed_s();

        const double lanes =
            static_cast<double>(std::min<std::int64_t>(par, b.topo.num_cores()));
        const double ideal_s =
            static_cast<double>(r.tasks) * grain_s / lanes;
        const double overhead_ns_per_task =
            (r.makespan_s - ideal_s) * 1e9 / static_cast<double>(r.tasks);
        const double wall_tasks_per_s =
            static_cast<double>(r.tasks) / wall_s;
        // rt gates on dispatch throughput; sim gates on simulator (wall)
        // throughput — virtual tasks/s would not see engine overhead.
        const double gate =
            b.backend == Backend::kRt ? r.tasks_per_s : wall_tasks_per_s;

        const std::string label =
            std::string(backend_name(b.backend)) + "/" + policy_name(policy) +
            "/tasks=" + std::to_string(tasks) + "/p=" + std::to_string(par) +
            "/grain=" + std::to_string(grain_ns);
        cells.push_back(Cell{label, gate});

        json::Value extra = json::Value::object();
        extra.set("tasks_swept", tasks);
        extra.set("parallelism", par);
        extra.set("grain_ns", grain_ns);
        extra.set("wall_s", wall_s);
        extra.set("wall_tasks_per_s", wall_tasks_per_s);
        extra.set("overhead_ns_per_task", overhead_ns_per_task);
        extra.set("gate_tasks_per_s", gate);
        b.report(label, r, std::move(extra));

        table.row()
            .add(label)
            .add(policy_name(policy))
            .add(r.makespan_s, 4)
            .add(r.tasks_per_s, 0)
            .add(overhead_ns_per_task, 1)
            .add(wall_s, 4)
            .add(wall_tasks_per_s, 0);
      }
    }
  }
  table.print(std::cout);

  // --- baseline gate --------------------------------------------------------
  if (update_baseline) {
    // Merge-update: cells from other invocations (the other backend, other
    // sweeps) survive; only this run's cells are rewritten.
    json::Value cells_json = json::Value::object();
    try {
      const json::Value old = json::parse_file(baseline_path);
      if (const json::Value* oc = old.find("cells"); oc && oc->is_object())
        for (const auto& [label, v] : oc->members()) cells_json.set(label, v);
    } catch (const json::Error&) {
      // No (readable) previous baseline: start fresh.
    }
    for (const Cell& c : cells) cells_json.set(c.label, c.gate_tasks_per_s);

    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", "overhead_scaling_baseline");
    doc.set("note", "gate throughput per cell (tasks/s); refresh with "
                    "--update-baseline on the machine class that enforces "
                    "the gate");
    doc.set("cells", std::move(cells_json));
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write baseline to '" << baseline_path << "'\n";
      return 2;
    }
    std::cout << "updated baseline " << baseline_path << "\n";
  } else if (!baseline_path.empty()) {
    int regressions = 0;
    try {
      const json::Value doc = json::parse_file(baseline_path);
      const json::Value* cells_json = doc.find("cells");
      if (cells_json == nullptr || !cells_json->is_object())
        throw json::Error(baseline_path + ": missing 'cells' object");
      for (const Cell& c : cells) {
        const json::Value* ref = cells_json->find(c.label);
        if (ref == nullptr) {
          std::cout << "baseline: no reference for cell '" << c.label
                    << "' (skipped)\n";
          continue;
        }
        const double floor = ref->as_number() * (1.0 - tolerance);
        if (c.gate_tasks_per_s < floor) {
          std::cerr << "REGRESSION " << c.label << ": " << fmt_double(c.gate_tasks_per_s, 0)
                    << " tasks/s < " << fmt_double(floor, 0) << " (baseline "
                    << fmt_double(ref->as_number(), 0) << " - " << tolerance * 100
                    << "%)\n";
          ++regressions;
        } else {
          std::cout << "ok " << c.label << ": " << fmt_double(c.gate_tasks_per_s, 0)
                    << " tasks/s (baseline " << fmt_double(ref->as_number(), 0)
                    << ")\n";
        }
      }
    } catch (const json::Error& e) {
      std::cerr << "error: cannot read baseline: " << e.what() << "\n";
      return 2;
    }
    if (regressions > 0) {
      std::cerr << regressions << " cell(s) regressed beyond " << tolerance * 100
                << "% — investigate or refresh with --update-baseline\n";
      const int rc = b.finish();
      return rc != 0 ? rc : 1;
    }
  }

  return b.finish();
}
