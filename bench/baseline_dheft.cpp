// Related-work baseline comparison: dHEFT (the reference scheduler CATS was
// evaluated against — Chronaki et al.) vs the paper's schedulers, on the
// Fig. 4 MatMul configuration. dHEFT discovers per-core execution times at
// runtime and places every task for earliest finish, but is neither
// criticality-aware nor moldable — the paper's §6 argues exactly these two
// limitations; this bench quantifies them. Runs through the das::Executor
// facade (--backend=sim|rt).

#include <iostream>

#include "../bench/support.hpp"

using namespace das;
using namespace das::bench;

int main(int argc, char** argv) {
  Bench b(argc, argv, "baseline_dheft");
  print_backend(b);
  const SpeedScenario scenario = b.make_scenario(
      b.topo, [](SpeedScenario& s) { s.add_cpu_corunner(0); });

  const std::vector<Policy> policies = b.policies(
      {Policy::kRws, Policy::kFa, Policy::kDheft, Policy::kDa, Policy::kDamC});
  print_title("Baseline: dHEFT vs the paper's schedulers — MatMul, co-runner "
              "on core 0, tasks/s");
  TextTable t(policy_header("parallelism", policies));
  for (int P = 2; P <= 6; ++P) {
    const auto spec = workloads::paper_matmul_spec(b.ids.matmul, P, b.scale);
    t.row().add(std::int64_t{P});
    for (Policy p : policies) {
      t.add(b.throughput("MatMul P=" + std::to_string(P), p, spec, &scenario)
                .tasks_per_s,
            0);
    }
  }
  t.print(std::cout);
  std::cout << "dHEFT adapts to the asymmetry (beats RWS/FA) but lacks\n"
               "criticality awareness and moldability — the gap to DA/DAM-C\n"
               "is the paper's contribution, isolated.\n";
  return b.finish();
}
