// Simulator-throughput benchmark and regression sentinel.
//
// Measures the discrete-event engine's OWN speed — how many events and
// simulated tasks it retires per wall second — which is what bounds how much
// of the scheduling design space (topology width, DAG size, job-stream
// length) a CI budget can explore. Virtual-time numbers would say nothing
// here: every cell also prints its virtual makespan purely as a determinism
// cross-check (it must not move when the engine gets faster).
//
// Per (cores, tasks, jobs, policy) cell the bench drives an empty-kernel
// layered DAG (parallelism = the core count unless --parallelism says
// otherwise) through sim::SimEngine directly — not the facade — so it can
// read SimEngine::events_processed() and sweep synthetic symmetric
// topologies far wider than the paper's TX2. With --jobs=N the same DAG is
// submitted N times back-to-back (overlapping in virtual time), exercising
// the multi-job interleave path.
//
// Regression gate (the CI cell): --baseline=PATH compares each cell's
// events/s against a checked-in JSON baseline and exits 1 when any cell
// regresses by more than --tolerance (default 0.25, the ">25%" CI
// contract). --update-baseline rewrites PATH from this run instead.
//
// Flags beyond the common set (README "Performance" documents the
// methodology):
//   --cores=N[,N...]        symmetric topology widths   (default 8,64)
//   --tasks=N[,N...]        DAG sizes to sweep          (default 100000)
//   --jobs=N                jobs per cell               (default 1)
//   --parallelism=P[,P...]  DAG widths; "auto" = the core count (balanced
//                           layered DAG), "fanout" = the task count (one
//                           layer, maximal fan-out — the shape that made
//                           the old per-core vector queues quadratic).
//                           Default: auto,fanout
//   --dispatch=MODE[,MODE]  fused (default: let the engine pick its fused
//                           (policy x cost-model) loop), generic (pin
//                           SimOptions::force_generic_dispatch — the
//                           type-erased fallback), or both. Generic cells
//                           get a "/dispatch=generic" label suffix, so the
//                           default labels (and the checked-in baseline)
//                           are unchanged.
//   --baseline=PATH         gate against baseline       (exit 1 on regression)
//   --update-baseline       rewrite PATH from this run
//   --tolerance=F           allowed fractional loss     (default 0.25)

#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "../bench/support.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"

using namespace das;
using namespace das::bench;

namespace {

struct Cell {
  std::string label;
  double events_per_s = 0.0;
};

std::vector<std::int64_t> parse_int_list(const cli::Flags& flags,
                                         const std::string& key,
                                         std::vector<std::int64_t> def) {
  if (!flags.has(key)) return def;
  std::vector<std::int64_t> out;
  for (const std::string& part : cli::split(flags.get(key), ',')) {
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(part, &pos);
      if (pos != part.size() || v <= 0 ||
          v > std::numeric_limits<int>::max())
        throw std::invalid_argument(part);
      out.push_back(v);
    } catch (const std::exception&) {
      cli::die("--" + key + " expects a comma-separated list of positive "
               "int-range integers, got '" + part + "'");
    }
  }
  if (out.empty()) cli::die("--" + key + " must name at least one value");
  return out;
}

/// Symmetric topology for a swept core count: clusters of 8 when the count
/// tiles evenly (wider sweeps model multi-socket nodes), one cluster
/// otherwise. Cluster shape only gates the valid place widths; the cells
/// are labelled by total core count.
Topology make_topology(int cores) {
  if (cores >= 8 && cores % 8 == 0) return Topology::symmetric(cores / 8, 8);
  return Topology::symmetric(1, cores);
}

}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv);
  cli::maybe_help(
      flags,
      " --policy=NAME[,..] --scenario=N|FILE --json=PATH --seed=N"
      " --cores=N[,N...] --tasks=N[,N...] --jobs=N"
      " --parallelism=P[,P...]|auto|fanout --dispatch=fused|generic|both"
      " --baseline=PATH --update-baseline --tolerance=F"
      " (sim-only: no --backend/--scale)");
  cli::require_no_positionals(flags);
  flags.require_known({"policy", "scenario", "json", "seed", "help", "cores",
                       "tasks", "jobs", "parallelism", "dispatch", "baseline",
                       "update-baseline", "tolerance"});

  Bench b("sim_throughput");
  b.backend = Backend::kSim;
  b.seed = flags.get_u64("seed", kFigureSeed);
  b.scenario_override = scenario_flag(flags);
  if (flags.has("policy")) {
    for (const std::string& pname : cli::split(flags.get("policy"), ',')) {
      const auto p = parse_policy(pname);
      if (!p) cli::die("unknown policy '" + pname + "'");
      b.policy_filter.push_back(*p);
    }
  }
  if (flags.has("json")) {
    b.json_path = flags.get("json");
    if (b.json_path.empty()) b.json_path = "BENCH_sim_throughput.json";
    b.runs = json::Value::array();
  }

  const auto cores_sweep = parse_int_list(flags, "cores", {8, 64});
  const auto tasks_sweep = parse_int_list(flags, "tasks", {100000});
  const std::int64_t jobs = flags.get_int("jobs", 1);
  if (jobs < 1) cli::die("--jobs must be >= 1");
  // Parallelism entries: positive width, 0 = auto (= cores), -1 = fanout
  // (= tasks; one layer, every task a root).
  std::vector<std::int64_t> par_sweep;
  for (const std::string& part :
       cli::split(flags.get("parallelism", "auto,fanout"), ',')) {
    if (part == "auto") {
      par_sweep.push_back(0);
    } else if (part == "fanout") {
      par_sweep.push_back(-1);
    } else {
      try {
        std::size_t pos = 0;
        const std::int64_t v = std::stoll(part, &pos);
        if (pos != part.size() || v < 1 || v > std::numeric_limits<int>::max())
          throw std::invalid_argument(part);
        par_sweep.push_back(v);
      } catch (const std::exception&) {
        cli::die("--parallelism expects a comma-separated list of positive "
                 "integers, 'auto' or 'fanout', got '" + part + "'");
      }
    }
  }
  if (par_sweep.empty()) cli::die("--parallelism must name at least one value");
  // Dispatch modes: false = fused (engine default), true = force generic.
  std::vector<bool> dispatch_sweep;
  {
    const std::string mode = flags.get("dispatch", "fused");
    if (mode == "fused") dispatch_sweep = {false};
    else if (mode == "generic") dispatch_sweep = {true};
    else if (mode == "both") dispatch_sweep = {false, true};
    else cli::die("--dispatch expects fused, generic or both, got '" + mode + "'");
  }
  const std::string baseline_path = flags.get("baseline");
  const bool update_baseline = flags.has("update-baseline");
  if (update_baseline && baseline_path.empty())
    cli::die("--update-baseline needs --baseline=PATH to know where to write");
  const double tolerance = flags.get_double("tolerance", 0.25);
  if (!(tolerance > 0.0 && tolerance < 1.0))
    cli::die("--tolerance must be in (0, 1)");

  // Empty kernel: with ~zero virtual work per task the wall clock measures
  // the event machinery, not the cost model. Registered through the fixed-
  // cost factory (not a bare lambda) so the registry classifies as
  // CostClass::kFixed and the engine's fused loop engages — the
  // configuration the headline events/s figure is quoted for;
  // --dispatch=generic pins the type-erased fallback for comparison.
  const TaskTypeId empty_id =
      b.registry.register_type("empty", kernels::fixed_cost(1e-9));

  print_backend(b);
  print_title("Simulator throughput: events/s over topology and DAG sweeps");
  TextTable table({"cell", "policy", "events", "wall[s]", "events/s",
                   "sim tasks/s", "vmakespan[s]"});
  std::vector<Cell> cells;

  for (Policy policy : b.policies({Policy::kRws})) {
    for (const std::int64_t cores : cores_sweep) {
      const Topology topo = make_topology(static_cast<int>(cores));
      const SpeedScenario scenario =
          b.make_scenario(topo, [](SpeedScenario&) {});  // default: clean
      for (const std::int64_t tasks : tasks_sweep) {
       for (const std::int64_t par : par_sweep) {
       for (const bool force_generic : dispatch_sweep) {
        workloads::SyntheticDagSpec spec;
        spec.type = empty_id;
        spec.parallelism = par > 0    ? static_cast<int>(par)
                           : par == 0 ? static_cast<int>(cores)
                                      : static_cast<int>(tasks);
        spec.total_tasks = static_cast<int>(tasks);
        const Dag dag = workloads::make_synthetic_dag(spec);

        sim::SimOptions opts;
        opts.seed = b.seed;
        opts.force_generic_dispatch = force_generic;
        sim::SimEngine eng(topo, policy, b.registry, opts, &scenario);

        Stopwatch wall;
        std::vector<JobId> ids;
        ids.reserve(static_cast<std::size_t>(jobs));
        for (std::int64_t j = 0; j < jobs; ++j) ids.push_back(eng.submit(dag));
        double last_makespan = 0.0;
        for (const JobId id : ids) last_makespan = eng.wait(id);
        const double wall_s = wall.elapsed_s();

        const std::uint64_t events = eng.events_processed();
        const double events_per_s = static_cast<double>(events) / wall_s;
        const std::int64_t total_tasks =
            static_cast<std::int64_t>(dag.num_nodes()) * jobs;
        const double sim_tasks_per_s =
            static_cast<double>(total_tasks) / wall_s;

        // Generic-dispatch cells carry a label suffix; the default (fused)
        // labels are unchanged so existing baselines keep matching.
        const std::string label =
            std::string("sim/") + policy_name(policy) + "/" +
            b.scenario_name() + "/cores=" + std::to_string(cores) +
            "/tasks=" + std::to_string(tasks) +
            "/p=" + std::to_string(spec.parallelism) +
            "/jobs=" + std::to_string(jobs) +
            (force_generic ? "/dispatch=generic" : "");
        cells.push_back(Cell{label, events_per_s});

        json::Value rec = json::Value::object();
        rec.set("label", label);
        rec.set("policy", policy_name(policy));
        rec.set("backend", "sim");
        rec.set("scenario", b.scenario_name());
        rec.set("dispatch", eng.dispatch_variant());
        rec.set("seed", b.seed);
        rec.set("cores", cores);
        rec.set("tasks_swept", tasks);
        rec.set("jobs", jobs);
        rec.set("parallelism", std::int64_t{spec.parallelism});
        rec.set("events", static_cast<std::int64_t>(events));
        rec.set("wall_s", wall_s);
        rec.set("events_per_s", events_per_s);
        rec.set("tasks", total_tasks);
        rec.set("sim_tasks_per_s", sim_tasks_per_s);
        rec.set("makespan_s", last_makespan);
        b.report_raw(std::move(rec));

        table.row()
            .add(label)
            .add(policy_name(policy))
            .add(static_cast<double>(events), 0)
            .add(wall_s, 4)
            .add(events_per_s, 0)
            .add(sim_tasks_per_s, 0)
            .add(last_makespan, 6);
       }
       }
      }
    }
  }
  table.print(std::cout);

  // --- baseline gate --------------------------------------------------------
  if (update_baseline) {
    json::Value cells_json = json::Value::object();
    try {
      const json::Value old = json::parse_file(baseline_path);
      if (const json::Value* oc = old.find("cells"); oc && oc->is_object())
        for (const auto& [label, v] : oc->members()) cells_json.set(label, v);
    } catch (const json::Error&) {
      // No (readable) previous baseline: start fresh.
    }
    for (const Cell& c : cells) cells_json.set(c.label, c.events_per_s);

    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", "sim_throughput_baseline");
    doc.set("note", "events/s per cell; values are deliberately conservative "
                    "(~1/3 of the dev-box measurement) so the >25% gate "
                    "trips on structural regressions, not machine-class "
                    "variance. Refresh with --update-baseline on the machine "
                    "class that enforces the gate.");
    doc.set("cells", std::move(cells_json));
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write baseline to '" << baseline_path << "'\n";
      return 2;
    }
    std::cout << "updated baseline " << baseline_path << "\n";
  } else if (!baseline_path.empty()) {
    int regressions = 0;
    try {
      const json::Value doc = json::parse_file(baseline_path);
      const json::Value* cells_json = doc.find("cells");
      if (cells_json == nullptr || !cells_json->is_object())
        throw json::Error(baseline_path + ": missing 'cells' object");
      for (const Cell& c : cells) {
        const json::Value* ref = cells_json->find(c.label);
        if (ref == nullptr) {
          std::cout << "baseline: no reference for cell '" << c.label
                    << "' (skipped)\n";
          continue;
        }
        const double floor = ref->as_number() * (1.0 - tolerance);
        if (c.events_per_s < floor) {
          std::cerr << "REGRESSION " << c.label << ": "
                    << fmt_double(c.events_per_s, 0) << " events/s < "
                    << fmt_double(floor, 0) << " (baseline "
                    << fmt_double(ref->as_number(), 0) << " - "
                    << tolerance * 100 << "%)\n";
          ++regressions;
        } else {
          std::cout << "ok " << c.label << ": " << fmt_double(c.events_per_s, 0)
                    << " events/s (baseline " << fmt_double(ref->as_number(), 0)
                    << ")\n";
        }
      }
    } catch (const json::Error& e) {
      std::cerr << "error: cannot read baseline: " << e.what() << "\n";
      return 2;
    }
    if (regressions > 0) {
      std::cerr << regressions << " cell(s) regressed beyond "
                << tolerance * 100
                << "% — investigate or refresh with --update-baseline\n";
      const int rc = b.finish();
      return rc != 0 ? rc : 1;
    }
  }

  return b.finish();
}
