// Simulator-throughput benchmark and regression sentinel.
//
// Measures the discrete-event engine's OWN speed — how many events and
// simulated tasks it retires per wall second — which is what bounds how much
// of the scheduling design space (topology width, DAG size, job-stream
// length) a CI budget can explore. Virtual-time numbers would say nothing
// here: every cell also prints its virtual makespan purely as a determinism
// cross-check (it must not move when the engine gets faster).
//
// Per (cores, tasks, jobs, policy) cell the bench drives an empty-kernel
// layered DAG (parallelism = the core count unless --parallelism says
// otherwise) through sim::SimEngine directly — not the facade — so it can
// read SimEngine::events_processed() and sweep synthetic symmetric
// topologies far wider than the paper's TX2. With --jobs=N the same DAG is
// submitted N times back-to-back (overlapping in virtual time), exercising
// the multi-job interleave path.
//
// Regression gate (the CI cell): --baseline=PATH compares each cell's
// events/s against a checked-in JSON baseline and exits 1 when any cell
// regresses by more than --tolerance (default 0.25, the ">25%" CI
// contract). --update-baseline rewrites PATH from this run instead.
//
// Flags beyond the common set (README "Performance" documents the
// methodology):
//   --cores=N[,N...]        symmetric topology widths   (default 8,64)
//   --tasks=N[,N...]        DAG sizes to sweep          (default 100000)
//   --jobs=N                jobs per cell               (default 1)
//   --parallelism=P[,P...]  DAG widths; "auto" = the core count (balanced
//                           layered DAG), "fanout" = the task count (one
//                           layer, maximal fan-out — the shape that made
//                           the old per-core vector queues quadratic).
//                           Default: auto,fanout
//   --dispatch=MODE[,MODE]  fused (default: let the engine pick its fused
//                           (policy x cost-model) loop), generic (pin
//                           SimOptions::force_generic_dispatch — the
//                           type-erased fallback), or both. Generic cells
//                           get a "/dispatch=generic" label suffix, so the
//                           default labels (and the checked-in baseline)
//                           are unchanged.
//   --ranks=N[,N...]        scheduling domains per cell (default 1). For
//                           N > 1 each rank gets its own --cores-wide
//                           symmetric topology and the layered DAG is
//                           replicated per rank with halo cross-rank delay
//                           edges (heat-band shape), so the conservative
//                           window protocol has real boundary traffic.
//                           Labels gain "/ranks=N".
//   --des-threads=N[,..]    SimOptions::des_threads per cell: integers or
//                           "auto" (= hardware concurrency; the engine
//                           clamps to the rank count). Default 1 (serial
//                           windows). Labels gain "/des=N"; cells print
//                           per-rank events/s and the aggregate speedup
//                           over the serial cell of the same shape.
//   --baseline=PATH         gate against baseline       (exit 1 on regression)
//   --update-baseline       rewrite PATH from this run
//   --tolerance=F           allowed fractional loss     (default 0.25)

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "../bench/support.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"

using namespace das;
using namespace das::bench;

namespace {

struct Cell {
  std::string label;
  double events_per_s = 0.0;
};

std::vector<std::int64_t> parse_int_list(const cli::Flags& flags,
                                         const std::string& key,
                                         std::vector<std::int64_t> def) {
  if (!flags.has(key)) return def;
  std::vector<std::int64_t> out;
  for (const std::string& part : cli::split(flags.get(key), ',')) {
    try {
      std::size_t pos = 0;
      const std::int64_t v = std::stoll(part, &pos);
      if (pos != part.size() || v <= 0 ||
          v > std::numeric_limits<int>::max())
        throw std::invalid_argument(part);
      out.push_back(v);
    } catch (const std::exception&) {
      cli::die("--" + key + " expects a comma-separated list of positive "
               "int-range integers, got '" + part + "'");
    }
  }
  if (out.empty()) cli::die("--" + key + " must name at least one value");
  return out;
}

/// Symmetric topology for a swept core count: clusters of 8 when the count
/// tiles evenly (wider sweeps model multi-socket nodes), one cluster
/// otherwise. Cluster shape only gates the valid place widths; the cells
/// are labelled by total core count.
Topology make_topology(int cores) {
  if (cores >= 8 && cores % 8 == 0) return Topology::symmetric(cores / 8, 8);
  return Topology::symmetric(1, cores);
}

/// Multi-rank variant of the layered synthetic DAG: every rank carries its
/// own critical chain of `parallelism`-wide layers, and each layer's
/// critical task additionally releases the NEXT layer's critical task on
/// the neighbouring ranks through a delayed cross-rank edge — the heat
/// band-decomposition shape (workloads/heat.hpp), which both bounds the
/// conservative lookahead (min cross-rank delay = cross_delay_s) and
/// forces boundary-queue traffic in steady state.
Dag make_multi_rank_dag(TaskTypeId type, int ranks, int total_tasks,
                        int parallelism, double cross_delay_s) {
  Dag dag;
  const int per_rank = std::max(1, total_tasks / ranks);
  const int width = std::min(parallelism, per_rank);
  const int layers = std::max(1, per_rank / width);
  std::vector<std::vector<NodeId>> crit(
      static_cast<std::size_t>(layers),
      std::vector<NodeId>(static_cast<std::size_t>(ranks)));
  for (int l = 0; l < layers; ++l) {
    for (int r = 0; r < ranks; ++r) {
      for (int p = 0; p < width; ++p) {
        const NodeId id = dag.add_node(
            type, p == 0 ? Priority::kHigh : Priority::kLow);
        dag.node(id).rank = r;
        if (p == 0) crit[static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(r)] = id;
        if (l > 0)
          dag.add_edge(crit[static_cast<std::size_t>(l - 1)]
                           [static_cast<std::size_t>(r)], id);
      }
      if (l > 0) {
        const NodeId head = crit[static_cast<std::size_t>(l)]
                                [static_cast<std::size_t>(r)];
        const auto& prev = crit[static_cast<std::size_t>(l - 1)];
        if (r > 0)
          dag.add_edge(prev[static_cast<std::size_t>(r - 1)], head,
                       cross_delay_s);
        if (r + 1 < ranks)
          dag.add_edge(prev[static_cast<std::size_t>(r + 1)], head,
                       cross_delay_s);
      }
    }
  }
  return dag;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv);
  cli::maybe_help(
      flags,
      " --policy=NAME[,..] --scenario=N|FILE --json=PATH --seed=N"
      " --cores=N[,N...] --tasks=N[,N...] --jobs=N"
      " --parallelism=P[,P...]|auto|fanout --dispatch=fused|generic|both"
      " --ranks=N[,N...] --des-threads=N[,N...]|auto"
      " --baseline=PATH --update-baseline --tolerance=F"
      " (sim-only: no --backend/--scale)");
  cli::require_no_positionals(flags);
  flags.require_known({"policy", "scenario", "json", "seed", "help", "cores",
                       "tasks", "jobs", "parallelism", "dispatch", "ranks",
                       "des-threads", "baseline", "update-baseline",
                       "tolerance"});

  Bench b("sim_throughput");
  b.backend = Backend::kSim;
  b.seed = flags.get_u64("seed", kFigureSeed);
  b.scenario_override = scenario_flag(flags);
  if (flags.has("policy")) {
    for (const std::string& pname : cli::split(flags.get("policy"), ',')) {
      const auto p = parse_policy(pname);
      if (!p) cli::die("unknown policy '" + pname + "'");
      b.policy_filter.push_back(*p);
    }
  }
  if (flags.has("json")) {
    b.json_path = flags.get("json");
    if (b.json_path.empty()) b.json_path = "BENCH_sim_throughput.json";
    b.runs = json::Value::array();
  }

  const auto cores_sweep = parse_int_list(flags, "cores", {8, 64});
  const auto tasks_sweep = parse_int_list(flags, "tasks", {100000});
  const std::int64_t jobs = flags.get_int("jobs", 1);
  if (jobs < 1) cli::die("--jobs must be >= 1");
  // Parallelism entries: positive width, 0 = auto (= cores), -1 = fanout
  // (= tasks; one layer, every task a root).
  std::vector<std::int64_t> par_sweep;
  for (const std::string& part :
       cli::split(flags.get("parallelism", "auto,fanout"), ',')) {
    if (part == "auto") {
      par_sweep.push_back(0);
    } else if (part == "fanout") {
      par_sweep.push_back(-1);
    } else {
      try {
        std::size_t pos = 0;
        const std::int64_t v = std::stoll(part, &pos);
        if (pos != part.size() || v < 1 || v > std::numeric_limits<int>::max())
          throw std::invalid_argument(part);
        par_sweep.push_back(v);
      } catch (const std::exception&) {
        cli::die("--parallelism expects a comma-separated list of positive "
                 "integers, 'auto' or 'fanout', got '" + part + "'");
      }
    }
  }
  if (par_sweep.empty()) cli::die("--parallelism must name at least one value");
  // Dispatch modes: false = fused (engine default), true = force generic.
  std::vector<bool> dispatch_sweep;
  {
    const std::string mode = flags.get("dispatch", "fused");
    if (mode == "fused") dispatch_sweep = {false};
    else if (mode == "generic") dispatch_sweep = {true};
    else if (mode == "both") dispatch_sweep = {false, true};
    else cli::die("--dispatch expects fused, generic or both, got '" + mode + "'");
  }
  const auto ranks_sweep = parse_int_list(flags, "ranks", {1});
  // des-threads entries: positive thread counts, -1 = auto (hardware
  // concurrency; the engine clamps to the rank count either way).
  std::vector<int> des_sweep;
  for (const std::string& part :
       cli::split(flags.get("des-threads", "1"), ',')) {
    if (part == "auto") {
      des_sweep.push_back(-1);
    } else {
      try {
        std::size_t pos = 0;
        const long v = std::stol(part, &pos);
        if (pos != part.size() || v < 1 || v > 4096)
          throw std::invalid_argument(part);
        des_sweep.push_back(static_cast<int>(v));
      } catch (const std::exception&) {
        cli::die("--des-threads expects a comma-separated list of positive "
                 "integers or 'auto', got '" + part + "'");
      }
    }
  }
  if (des_sweep.empty()) cli::die("--des-threads must name at least one value");
  const int auto_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  const std::string baseline_path = flags.get("baseline");
  const bool update_baseline = flags.has("update-baseline");
  if (update_baseline && baseline_path.empty())
    cli::die("--update-baseline needs --baseline=PATH to know where to write");
  const double tolerance = flags.get_double("tolerance", 0.25);
  if (!(tolerance > 0.0 && tolerance < 1.0))
    cli::die("--tolerance must be in (0, 1)");

  // Empty kernel: with ~zero virtual work per task the wall clock measures
  // the event machinery, not the cost model. Registered through the fixed-
  // cost factory (not a bare lambda) so the registry classifies as
  // CostClass::kFixed and the engine's fused loop engages — the
  // configuration the headline events/s figure is quoted for;
  // --dispatch=generic pins the type-erased fallback for comparison.
  const TaskTypeId empty_id =
      b.registry.register_type("empty", kernels::fixed_cost(1e-9));

  print_backend(b);
  print_title("Simulator throughput: events/s over topology and DAG sweeps");
  TextTable table({"cell", "policy", "events", "wall[s]", "events/s",
                   "sim tasks/s", "vmakespan[s]", "rank ev/s", "x-serial"});
  std::vector<Cell> cells;
  // Serial (no "/des=" suffix) events/s per shape, for the speedup column.
  std::map<std::string, double> serial_eps;

  for (Policy policy : b.policies({Policy::kRws})) {
    for (const std::int64_t cores : cores_sweep) {
      const Topology topo = make_topology(static_cast<int>(cores));
      const SpeedScenario scenario =
          b.make_scenario(topo, [](SpeedScenario&) {});  // default: clean
      for (const std::int64_t tasks : tasks_sweep) {
       for (const std::int64_t par : par_sweep) {
       for (const bool force_generic : dispatch_sweep) {
       for (const std::int64_t ranks_n : ranks_sweep) {
       for (const int des_req : des_sweep) {
        // A single rank has nothing to thread: one serial cell per shape.
        if (ranks_n == 1 && des_req != des_sweep.front()) continue;
        const int des_threads = des_req < 0 ? auto_threads : des_req;

        workloads::SyntheticDagSpec spec;
        spec.type = empty_id;
        spec.parallelism = par > 0    ? static_cast<int>(par)
                           : par == 0 ? static_cast<int>(cores)
                                      : static_cast<int>(tasks);
        spec.total_tasks = static_cast<int>(tasks);
        const Dag dag =
            ranks_n == 1
                ? workloads::make_synthetic_dag(spec)
                : make_multi_rank_dag(empty_id, static_cast<int>(ranks_n),
                                      static_cast<int>(tasks),
                                      spec.parallelism, 30e-6);

        sim::SimOptions opts;
        opts.seed = b.seed;
        opts.force_generic_dispatch = force_generic;
        opts.des_threads = des_threads;
        // The historical single-rank ctor stays on the ranks=1 path so the
        // default cells (and the checked-in baseline labels) keep measuring
        // the identical engine configuration.
        const std::vector<sim::RankSpec> rank_specs(
            static_cast<std::size_t>(ranks_n),
            sim::RankSpec{&topo, &scenario});
        std::optional<sim::SimEngine> eng_holder;
        if (ranks_n == 1)
          eng_holder.emplace(topo, policy, b.registry, opts, &scenario);
        else
          eng_holder.emplace(rank_specs, policy, b.registry, opts);
        sim::SimEngine& eng = *eng_holder;

        Stopwatch wall;
        std::vector<JobId> ids;
        ids.reserve(static_cast<std::size_t>(jobs));
        for (std::int64_t j = 0; j < jobs; ++j) ids.push_back(eng.submit(dag));
        double last_makespan = 0.0;
        for (const JobId id : ids) last_makespan = eng.wait(id);
        const double wall_s = wall.elapsed_s();

        const std::uint64_t events = eng.events_processed();
        const double events_per_s = static_cast<double>(events) / wall_s;
        const std::int64_t total_tasks =
            static_cast<std::int64_t>(dag.num_nodes()) * jobs;
        const double sim_tasks_per_s =
            static_cast<double>(total_tasks) / wall_s;

        std::vector<double> rank_eps;
        for (int r = 0; r < static_cast<int>(ranks_n); ++r)
          rank_eps.push_back(static_cast<double>(eng.events_processed(r)) /
                             wall_s);

        // Non-default modes carry label suffixes; the default (fused,
        // single-rank, serial) labels are unchanged so existing baselines
        // keep matching.
        const std::string label =
            std::string("sim/") + policy_name(policy) + "/" +
            b.scenario_name() + "/cores=" + std::to_string(cores) +
            "/tasks=" + std::to_string(tasks) +
            "/p=" + std::to_string(spec.parallelism) +
            "/jobs=" + std::to_string(jobs) +
            (force_generic ? "/dispatch=generic" : "") +
            (ranks_n > 1 ? "/ranks=" + std::to_string(ranks_n) : "") +
            (des_req != 1
                 ? std::string("/des=") +
                       (des_req < 0 ? std::string("auto")
                                    : std::to_string(des_req))
                 : "");
        cells.push_back(Cell{label, events_per_s});

        // Aggregate speedup over the serial cell of the same shape (only
        // meaningful once that cell ran — put 1 before N in --des-threads).
        std::string base_label = label;
        if (const auto cut = base_label.find("/des=");
            cut != std::string::npos)
          base_label.resize(cut);
        if (label == base_label) serial_eps[base_label] = events_per_s;
        double speedup = 0.0;
        if (label != base_label) {
          const auto it = serial_eps.find(base_label);
          if (it != serial_eps.end() && it->second > 0.0)
            speedup = events_per_s / it->second;
        }

        json::Value rec = json::Value::object();
        rec.set("label", label);
        rec.set("policy", policy_name(policy));
        rec.set("backend", "sim");
        rec.set("scenario", b.scenario_name());
        rec.set("dispatch", eng.dispatch_variant());
        rec.set("seed", b.seed);
        rec.set("cores", cores);
        rec.set("tasks_swept", tasks);
        rec.set("jobs", jobs);
        rec.set("parallelism", std::int64_t{spec.parallelism});
        rec.set("ranks", ranks_n);
        rec.set("des_threads", std::int64_t{des_threads});
        json::Value per_rank = json::Value::array();
        for (const double v : rank_eps) per_rank.push_back(json::Value(v));
        rec.set("rank_events_per_s", std::move(per_rank));
        if (speedup > 0.0) rec.set("speedup_vs_serial", speedup);
        rec.set("events", static_cast<std::int64_t>(events));
        rec.set("wall_s", wall_s);
        rec.set("events_per_s", events_per_s);
        rec.set("tasks", total_tasks);
        rec.set("sim_tasks_per_s", sim_tasks_per_s);
        rec.set("makespan_s", last_makespan);
        b.report_raw(std::move(rec));

        std::string rank_col = "-";
        if (ranks_n > 1) {
          const auto [mn, mx] =
              std::minmax_element(rank_eps.begin(), rank_eps.end());
          rank_col = fmt_double(*mn, 0) + ".." + fmt_double(*mx, 0);
        }
        table.row()
            .add(label)
            .add(policy_name(policy))
            .add(static_cast<double>(events), 0)
            .add(wall_s, 4)
            .add(events_per_s, 0)
            .add(sim_tasks_per_s, 0)
            .add(last_makespan, 6)
            .add(rank_col)
            .add(speedup > 0.0 ? fmt_double(speedup, 2) + "x"
                               : std::string("-"));
       }
       }
       }
       }
      }
    }
  }
  table.print(std::cout);

  // --- baseline gate --------------------------------------------------------
  if (update_baseline) {
    json::Value cells_json = json::Value::object();
    try {
      const json::Value old = json::parse_file(baseline_path);
      if (const json::Value* oc = old.find("cells"); oc && oc->is_object())
        for (const auto& [label, v] : oc->members()) cells_json.set(label, v);
    } catch (const json::Error&) {
      // No (readable) previous baseline: start fresh.
    }
    for (const Cell& c : cells) cells_json.set(c.label, c.events_per_s);

    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", "sim_throughput_baseline");
    doc.set("note", "events/s per cell; values are deliberately conservative "
                    "(~1/3 of the dev-box measurement) so the >25% gate "
                    "trips on structural regressions, not machine-class "
                    "variance. Refresh with --update-baseline on the machine "
                    "class that enforces the gate.");
    doc.set("cells", std::move(cells_json));
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write baseline to '" << baseline_path << "'\n";
      return 2;
    }
    std::cout << "updated baseline " << baseline_path << "\n";
  } else if (!baseline_path.empty()) {
    int regressions = 0;
    try {
      const json::Value doc = json::parse_file(baseline_path);
      const json::Value* cells_json = doc.find("cells");
      if (cells_json == nullptr || !cells_json->is_object())
        throw json::Error(baseline_path + ": missing 'cells' object");
      for (const Cell& c : cells) {
        const json::Value* ref = cells_json->find(c.label);
        if (ref == nullptr) {
          std::cout << "baseline: no reference for cell '" << c.label
                    << "' (skipped)\n";
          continue;
        }
        const double floor = ref->as_number() * (1.0 - tolerance);
        if (c.events_per_s < floor) {
          std::cerr << "REGRESSION " << c.label << ": "
                    << fmt_double(c.events_per_s, 0) << " events/s < "
                    << fmt_double(floor, 0) << " (baseline "
                    << fmt_double(ref->as_number(), 0) << " - "
                    << tolerance * 100 << "%)\n";
          ++regressions;
        } else {
          std::cout << "ok " << c.label << ": " << fmt_double(c.events_per_s, 0)
                    << " events/s (baseline " << fmt_double(ref->as_number(), 0)
                    << ")\n";
        }
      }
    } catch (const json::Error& e) {
      std::cerr << "error: cannot read baseline: " << e.what() << "\n";
      return 2;
    }
    if (regressions > 0) {
      std::cerr << regressions << " cell(s) regressed beyond "
                << tolerance * 100
                << "% — investigate or refresh with --update-baseline\n";
      const int rc = b.finish();
      return rc != 0 ? rc : 1;
    }
  }

  return b.finish();
}
