// Reproduces the paper's Figure 7: throughput under DVFS interference — the
// Denver cluster alternates between its highest and lowest frequency
// (2035 <-> 345 MHz) on a square wave — MatMul / Copy / Stencil synthetic
// DAGs, DAG parallelism 2..6, all seven schedulers. Runs through the
// das::Executor facade (--backend=sim|rt).
//
// The paper toggles every 5 s. Our simulated kernels complete the DAGs
// faster than the TX2 did, so the period is scaled (2.5 s + 2.5 s) to keep
// multiple full hi/lo cycles inside each run — the wave shape, not its
// absolute period, is what the schedulers react to.
//
// Paper reference points: DA/DAM-C/DAM-P most resilient; for Copy, DAM-C
// roughly 2.2x / 1.9x RWS / RWSM-C and +17% / +12% over FA / FAM-C; DAM-P
// wins at low parallelism (it molds criticals for best time).

#include <iostream>
#include <map>

#include "../bench/support.hpp"

using namespace das;
using namespace das::bench;

namespace {

void run_kernel(Bench& b, const std::string& name,
                const workloads::SyntheticDagSpec& base) {
  const SpeedScenario scenario = b.make_scenario(b.topo, [](SpeedScenario& s) {
    s.add_dvfs(DvfsSchedule{.cluster = 0, .period_s = 5.0, .duty_hi = 0.5,
                            .hi = 1.0, .lo = 345.0 / 2035.0});
  });

  const std::vector<Policy> policies = b.policies();
  print_title("Fig. 7: " + name + " — Denver DVFS square wave, tasks/s");
  TextTable t(policy_header("parallelism", policies));
  std::map<Policy, double> avg;
  for (int P = 2; P <= 6; ++P) {
    workloads::SyntheticDagSpec spec = base;
    spec.parallelism = P;
    t.row().add(std::int64_t{P});
    for (Policy p : policies) {
      const double tp =
          b.throughput(name + " P=" + std::to_string(P), p, spec, &scenario)
              .tasks_per_s;
      avg[p] += tp / 5.0;
      t.add(tp, 0);
    }
  }
  t.print(std::cout);
  if (avg.count(Policy::kDamC) && avg.count(Policy::kRws) &&
      avg.count(Policy::kRwsmC) && avg.count(Policy::kFa) &&
      avg.count(Policy::kFamC)) {
    std::cout << "DAM-C average speedup vs RWS: "
              << fmt_double(avg[Policy::kDamC] / avg[Policy::kRws], 2)
              << "x   vs RWSM-C: "
              << fmt_double(avg[Policy::kDamC] / avg[Policy::kRwsmC], 2)
              << "x   vs FA: +"
              << fmt_percent(avg[Policy::kDamC] / avg[Policy::kFa] - 1.0, 0)
              << "   vs FAM-C: +"
              << fmt_percent(avg[Policy::kDamC] / avg[Policy::kFamC] - 1.0, 0)
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig7_dvfs");
  print_backend(b);
  run_kernel(b, "MatMul", workloads::paper_matmul_spec(b.ids.matmul, 2, b.scale));
  run_kernel(b, "Copy", workloads::paper_copy_spec(b.ids.copy, 2, b.scale));
  run_kernel(b, "Stencil",
             workloads::paper_stencil_spec(b.ids.stencil, 2, b.scale));
  return b.finish();
}
