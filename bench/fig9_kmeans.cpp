// Reproduces the paper's Figure 9: K-means clustering on a 16-core Haswell
// (2 sockets x 8 cores), 100 iterations, with a co-running application on
// socket 0 during iterations 20..70. Runs through the das::Executor facade
// (--backend=sim|rt; the engine-agnostic now() clock drives the
// interference-window boundaries on either backend).
//
//   (a) per-iteration execution time for RWS / DAM-C / DAM-P — the dynamic
//       schedulers ride through the interference window, RWS inflates;
//   (b,c) execution-place selection during the interference window — RWS
//       keeps spreading width-1 tasks over the perturbed socket; DAM-P molds
//       onto socket 1 ((C8,4), (C8,8), (C0,8)-style places).
//
// The interference window boundaries are discovered at run time (the paper
// starts the co-runner "a few iterations after the start"): the scenario is
// opened when iteration 20 begins and closed after iteration 70, on the
// executor's clock.

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "../bench/support.hpp"
#include "workloads/kmeans.hpp"

using namespace das;
using namespace das::bench;

namespace {

constexpr int kIterations = 100;
constexpr int kInterfStart = 20;
constexpr int kInterfEnd = 70;

struct Result {
  std::vector<double> iter_time;
  RunResult last;                  // cumulative stats after the final iteration
  std::unique_ptr<Executor> exec;  // keeps stats alive
};

Result run_policy(Bench& b, const Topology& topo, Policy policy) {
  workloads::KMeansConfig cfg;
  // Virtual points: the DES only needs chunk sizes. Scaled so rt runs
  // (cost-model fallback busy-waits) stay tractable.
  cfg.points = std::max(1'000'000, static_cast<int>(100'000'000 * b.scale));
  cfg.dims = 8;
  cfg.k = 8;
  cfg.chunks = 256;
  // Exactly ONE chunk carries the largest work unit and is marked high
  // priority, as in the paper ("assign the high priority to the task
  // containing the largest work unit").
  cfg.big_chunk_fraction_den = cfg.chunks;
  cfg.big_chunk_weight = 8.0;
  workloads::KMeansSimBuilder km(cfg, b.ids.kmeans_map, b.ids.kmeans_reduce);

  ExecutorConfig opts = b.make_config();
  opts.stats_phases = kIterations;

  // The executor keeps a pointer to the scenario; keep it alive via a static
  // store (one per policy run is fine for a bench binary). A --scenario
  // override replaces the dynamically-opened window with the static spec.
  static std::vector<std::unique_ptr<SpeedScenario>> scenarios;
  scenarios.push_back(std::make_unique<SpeedScenario>(b.make_scenario(
      topo, [](SpeedScenario&) { /* window opens at iteration 20, below */ })));
  SpeedScenario* sc = scenarios.back().get();
  const bool dynamic_window = !b.scenario_override.has_value();

  Result r;
  r.exec = b.make(policy, sc, opts, &topo);

  for (int it = 0; it < kIterations; ++it) {
    if (dynamic_window && it == kInterfStart) {
      // Co-runner lands on all of socket 0 (cores 0..7).
      sc->add_interference(InterferenceEvent{.cores = {0, 1, 2, 3, 4, 5, 6, 7},
                                             .t_start = r.exec->now(),
                                             .cpu_share = 0.5});
    }
    if (dynamic_window && it == kInterfEnd)
      sc->close_open_interference(r.exec->now());
    // --jobs=N: N concurrent clustering tenants submit this iteration's DAG
    // to the shared executor (one worker pool, one learned PTT) and the
    // iteration closes when all of them finish; the recorded per-iteration
    // time is the slowest tenant's latency. N=1 is the paper's figure.
    std::vector<Dag> dags;
    dags.reserve(static_cast<std::size_t>(b.jobs));
    for (int j = 0; j < b.jobs; ++j)
      dags.push_back(km.make_iteration_dag(it));
    for (Dag& dag : dags) r.exec->submit(dag);
    double slowest = 0.0;
    for (RunResult& done : r.exec->drain()) {
      slowest = std::max(slowest, done.makespan_s);
      r.last = std::move(done);
    }
    r.iter_time.push_back(slowest);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig9_kmeans", /*job_stream_flags=*/true);
  if (b.inflight > 0 || b.arrival)
    cli::die("fig9_kmeans drives iterations lock-step; only --jobs=N applies");
  print_backend(b);
  if (b.jobs > 1)
    std::cout << "jobs " << b.jobs << " (concurrent clustering tenants per "
              << "iteration; the paper's figure is jobs=1)\n";
  const Topology topo = Topology::haswell16();

  const std::vector<Policy> policies =
      b.policies({Policy::kRws, Policy::kDamC, Policy::kDamP});
  std::map<Policy, Result> results;
  for (Policy p : policies) results[p] = run_policy(b, topo, p);

  print_title("Fig. 9(a): K-means per-iteration time [s] (interference on "
              "socket 0 during iterations 20-70)");
  TextTable t(policy_header("iter", policies));
  for (int it = 0; it < kIterations; it += 2) {
    t.row().add(std::int64_t{it});
    for (Policy p : policies)
      t.add(results[p].iter_time[static_cast<std::size_t>(it)], 3);
  }
  t.print(std::cout);

  auto window_mean = [&](Policy p, int from, int to) {
    double sum = 0.0;
    for (int it = from; it < to; ++it)
      sum += results[p].iter_time[static_cast<std::size_t>(it)];
    return sum / (to - from);
  };
  std::cout << "\nmean iteration time inside the interference window [s]:\n";
  for (Policy p : policies) {
    std::cout << "  " << policy_name(p) << ": "
              << fmt_double(window_mean(p, kInterfStart, kInterfEnd), 3)
              << "  (before window: "
              << fmt_double(window_mean(p, 5, kInterfStart), 3) << ")\n";
    // Per-policy record: the cumulative 100-iteration stats plus the
    // window/baseline means the paper's Fig. 9(a) compares.
    json::Value extra = json::Value::object();
    extra.set("iterations", kIterations);
    extra.set("jobs", std::int64_t{b.jobs});
    extra.set("mean_iter_in_window_s", window_mean(p, kInterfStart, kInterfEnd));
    extra.set("mean_iter_before_window_s", window_mean(p, 5, kInterfStart));
    b.report("k-means 100 iterations", results[p].last, std::move(extra));
  }

  // (b, c): execution-place selection traces. Print the top places by task
  // count inside the window, every 5 iterations.
  for (Policy p : {Policy::kRws, Policy::kDamP}) {
    if (!results.count(p)) continue;
    const ExecutionStats& stats = results[p].exec->stats();
    // Rank places by their in-window counts.
    std::vector<std::pair<std::int64_t, int>> totals;
    for (int pid = 0; pid < topo.num_places(); ++pid) {
      std::int64_t n = 0;
      for (int it = kInterfStart; it < kInterfEnd; ++it)
        n += stats.tasks_at_phase(Priority::kLow, pid, it) +
             stats.tasks_at_phase(Priority::kHigh, pid, it);
      if (n > 0) totals.emplace_back(n, pid);
    }
    std::sort(totals.rbegin(), totals.rend());
    if (totals.size() > 8) totals.resize(8);

    print_title(std::string("Fig. 9(") +
                (p == Policy::kRws ? "b" : "c") + "): tasks per execution "
                "place per iteration — " + policy_name(p));
    std::vector<std::string> header{"iter"};
    for (const auto& [n, pid] : totals) header.push_back(to_string(topo.place_at(pid)));
    TextTable pt(header);
    for (int it = 0; it < kIterations; it += 5) {
      pt.row().add(std::int64_t{it});
      for (const auto& [n, pid] : totals) {
        std::int64_t c = 0;
        for (Priority prio : {Priority::kLow, Priority::kHigh})
          c += stats.tasks_at_phase(prio, pid, it);
        pt.add(c);
      }
    }
    pt.print(std::cout);
  }
  return b.finish();
}
