// Reproduces the paper's Figure 10: distributed 2D Heat on 4 dual-socket
// Haswell nodes (80 cores), with the interfering matmul kernel occupying 5
// cores of node 0's socket 0. Boundary-exchange (MPI-analogue) tasks are
// high priority; band sweeps are moldable low-priority tasks. Runs through
// the multi-rank das::make_executor overload; this experiment is DES-only
// (the real-thread runtime is single-domain), so --backend=rt falls back to
// sim with a note.
//
// Paper reference points: RWS 250 -> RWSM-C ~376 -> DA ~380 -> DAM-P ~430 ->
// DAM-C ~440 tasks/s; i.e. DAM-C +76% over RWS and +17% over RWSM-C, with
// moldability (cache sharing during communication/compute) carrying most of
// the gain. In this substrate the moldability gain reproduces; DA's
// comm-steering-only gain does not separate from RWS (see EXPERIMENTS.md).

#include <iostream>

#include "../bench/support.hpp"
#include "workloads/heat.hpp"

using namespace das;
using namespace das::bench;

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig10_heat_distributed");
  if (b.backend == Backend::kRt) {
    std::cout << "note: the 4-node Heat experiment needs multiple scheduling "
                 "domains — DES-only; running --backend=sim\n";
    b.backend = Backend::kSim;
    // The constructor picked the rt default scale; restore the sim default
    // unless the user asked for a scale explicitly.
    if (!b.scale_explicit) b.scale = 1.0;
  }
  print_backend(b);
  workloads::HeatConfig cfg;
  cfg.rows = 2048;
  cfg.cols = 8192;
  cfg.ranks = 4;
  cfg.iterations = std::max(1, static_cast<int>(60 * b.scale));
  cfg.tasks_per_rank = 8;

  const Topology node_topo = Topology::haswell20();
  // Default condition: interference on node 0 only. A --scenario override
  // applies the named condition to EVERY node instead (the spec is built
  // per rank by make_executor). Validate it against the node topology up
  // front so a mismatch exits 2 instead of throwing out of make_executor.
  if (b.scenario_override)
    (void)build_scenario_or_exit(*b.scenario_override, node_topo);
  SpeedScenario perturbed(node_topo);
  perturbed.add_interference(
      InterferenceEvent{.cores = {0, 1, 2, 3, 4}, .cpu_share = 0.5});

  print_title("Fig. 10: distributed 2D Heat, 4 nodes x 20 cores, interference "
              "on 5 cores of node 0 socket 0");
  TextTable t({"scheduler", "throughput [tasks/s]", "vs RWS"});
  double rws_tp = 0.0;
  for (Policy p : b.policies({Policy::kRws, Policy::kRwsmC, Policy::kDa,
                              Policy::kDamC, Policy::kDamP})) {
    Dag dag = workloads::make_heat_sim_dag(cfg, b.ids.heat_compute, b.ids.comm);
    std::vector<sim::RankSpec> ranks(static_cast<std::size_t>(cfg.ranks),
                                     sim::RankSpec{&node_topo, nullptr});
    ExecutorConfig opts = b.make_config();
    if (b.scenario_override) {
      opts.scenario_spec = b.scenario_override;
    } else {
      ranks[0].scenario = &perturbed;
    }
    opts.stats_phases = cfg.iterations;
    auto exec = make_executor(b.backend, ranks, p, b.registry, opts);
    const RunResult r = exec->run(dag);
    b.report("heat 4 nodes", r);
    if (p == Policy::kRws) rws_tp = r.tasks_per_s;
    // "-" when RWS is filtered out: a made-up baseline would read as parity.
    t.row().add(policy_name(p)).add(r.tasks_per_s, 0).add(
        (rws_tp > 0 ? fmt_double(r.tasks_per_s / rws_tp, 2) + "x" : "-"));
  }
  t.print(std::cout);
  return b.finish();
}
