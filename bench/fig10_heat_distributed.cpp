// Reproduces the paper's Figure 10: distributed 2D Heat on 4 dual-socket
// Haswell nodes (80 cores), with the interfering matmul kernel occupying 5
// cores of node 0's socket 0. Boundary-exchange (MPI-analogue) tasks are
// high priority; band sweeps are moldable low-priority tasks.
//
// Paper reference points: RWS 250 -> RWSM-C ~376 -> DA ~380 -> DAM-P ~430 ->
// DAM-C ~440 tasks/s; i.e. DAM-C +76% over RWS and +17% over RWSM-C, with
// moldability (cache sharing during communication/compute) carrying most of
// the gain. In this substrate the moldability gain reproduces; DA's
// comm-steering-only gain does not separate from RWS (see EXPERIMENTS.md).

#include <iostream>

#include "../bench/support.hpp"
#include "workloads/heat.hpp"

using namespace das;
using namespace das::bench;

int main() {
  Bench b;
  workloads::HeatConfig cfg;
  cfg.rows = 2048;
  cfg.cols = 8192;
  cfg.ranks = 4;
  cfg.iterations = 60;
  cfg.tasks_per_rank = 8;

  const Topology node_topo = Topology::haswell20();
  SpeedScenario perturbed(node_topo);
  perturbed.add_interference(
      InterferenceEvent{.cores = {0, 1, 2, 3, 4}, .cpu_share = 0.5});

  print_title("Fig. 10: distributed 2D Heat, 4 nodes x 20 cores, interference "
              "on 5 cores of node 0 socket 0");
  TextTable t({"scheduler", "throughput [tasks/s]", "vs RWS"});
  double rws_tp = 0.0;
  for (Policy p : {Policy::kRws, Policy::kRwsmC, Policy::kDa, Policy::kDamC,
                   Policy::kDamP}) {
    Dag dag = workloads::make_heat_sim_dag(cfg, b.ids.heat_compute, b.ids.comm);
    std::vector<sim::RankSpec> ranks(static_cast<std::size_t>(cfg.ranks),
                                     sim::RankSpec{&node_topo, nullptr});
    ranks[0].scenario = &perturbed;
    sim::SimOptions opts = Bench::make_options();
    opts.stats_phases = cfg.iterations;
    sim::SimEngine eng(ranks, p, b.registry, opts);
    const double makespan = eng.run(dag);
    const double tp = dag.num_nodes() / makespan;
    if (p == Policy::kRws) rws_tp = tp;
    t.row().add(policy_name(p)).add(tp, 0).add(
        (rws_tp > 0 ? fmt_double(tp / rws_tp, 2) + "x" : "1.00x"));
  }
  t.print(std::cout);
  return 0;
}
