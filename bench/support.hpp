#pragma once
// Shared plumbing for the figure-reproduction benches: a registered kernel
// set, canonical scenarios, the common command-line flags, and a one-call
// structured-throughput runner routed through the das::Executor facade.
// Every bench is deterministic from kFigureSeed on the sim backend.
//
// Common flags (parsed by Bench(argc, argv)):
//   --backend=sim|rt     engine selection (default: sim — the figures are
//                        regenerated in deterministic virtual time)
//   --policy=NAME[,..]   restrict to a subset of the Table-1 schedulers
//                        (e.g. --policy=RWS,DAM-C); default: the bench's set
//   --scale=F            workload scale factor in (0, 1]; defaults to 1.0 on
//                        sim and 0.02 on rt (real-thread runs execute real
//                        busy-work — full paper scale takes minutes)
//   --seed=N             RNG seed (default: kFigureSeed = 2020)

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "platform/speed_model.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das::bench {

inline constexpr std::uint64_t kFigureSeed = 2020;  // ICPP'20
inline constexpr double kRtDefaultScale = 0.02;

struct Bench {
  Bench() : topo(Topology::tx2()) {
    ids = kernels::register_paper_kernels(registry);
  }

  /// Parses the common bench flags (see the header comment).
  Bench(int argc, char* const* argv) : Bench() {
    cli::Flags flags(argc, argv);
    if (flags.has("help")) {
      std::cout << "flags: --backend=sim|rt --policy=NAME[,NAME...] "
                   "--scale=F --seed=N\n";
      std::exit(0);
    }
    cli::require_no_positionals(flags);
    flags.require_known({"backend", "policy", "scale", "seed", "help"});
    backend = backend_flag(flags, backend);
    scale_explicit = flags.has("scale");
    scale = flags.get_double("scale",
                             backend == Backend::kRt ? kRtDefaultScale : 1.0);
    if (!(scale > 0.0 && scale <= 1.0)) cli::die("--scale must be in (0, 1]");
    seed = flags.get_u64("seed", kFigureSeed);
    if (flags.has("policy")) {
      for (const std::string& name : cli::split(flags.get("policy"), ',')) {
        const auto p = parse_policy(name);
        if (!p) cli::die("unknown policy '" + name + "'");
        policy_filter.push_back(*p);
      }
    }
  }

  /// The canonical config every bench starts from (one place instead of a
  /// per-bench SimOptions/RtOptions copy).
  ExecutorConfig make_config() const {
    ExecutorConfig cfg;
    cfg.seed = seed;
    return cfg;
  }

  /// Executor for `policy` on this bench's backend; `topology` defaults to
  /// the TX2 model. `cfg.scenario` is overwritten with `scenario`.
  std::unique_ptr<Executor> make(Policy policy, const SpeedScenario* scenario,
                                 ExecutorConfig cfg,
                                 const Topology* topology = nullptr) const {
    cfg.scenario = scenario;
    return make_executor(backend, topology ? *topology : topo, policy, registry,
                         cfg);
  }

  /// Runs `spec` under `scenario` with `policy` through the facade and
  /// returns the structured result (use .tasks_per_s for the figures).
  /// Callers that need non-default options should start from make_config().
  RunResult throughput(Policy policy, const workloads::SyntheticDagSpec& spec,
                       const SpeedScenario* scenario, ExecutorConfig cfg) const {
    const Dag dag = workloads::make_synthetic_dag(spec);
    return make(policy, scenario, cfg)->run(dag);
  }
  RunResult throughput(Policy policy, const workloads::SyntheticDagSpec& spec,
                       const SpeedScenario* scenario) const {
    return throughput(policy, spec, scenario, make_config());
  }

  /// The schedulers this bench run iterates: an explicit --policy list is
  /// honoured verbatim (every policy runs on every backend); otherwise the
  /// bench's own `defaults`, or Table-1 order when those are empty too.
  std::vector<Policy> policies(std::vector<Policy> defaults = {}) const {
    if (!policy_filter.empty()) return policy_filter;
    return defaults.empty() ? all_policies() : defaults;
  }

  Backend backend = Backend::kSim;
  double scale = 1.0;
  bool scale_explicit = false;  ///< --scale was given on the command line
  std::uint64_t seed = kFigureSeed;
  std::vector<Policy> policy_filter;
  Topology topo;
  TaskTypeRegistry registry;
  kernels::PaperKernelIds ids;
};

/// Header used by the per-figure tables: one column per scheduler.
inline std::vector<std::string> policy_header(const std::string& first,
                                              const std::vector<Policy>& ps) {
  std::vector<std::string> h{first};
  for (Policy p : ps) h.emplace_back(policy_name(p));
  return h;
}

inline void print_title(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Standard run banner so every bench states which engine produced its
/// numbers (virtual seconds on sim, wall seconds on rt).
inline void print_backend(const Bench& b) {
  std::cout << "backend: " << backend_name(b.backend) << "  (scale "
            << fmt_double(b.scale, 3) << ", seed " << b.seed << ")\n";
}

}  // namespace das::bench
