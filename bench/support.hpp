#pragma once
// Shared plumbing for the figure-reproduction benches: a registered kernel
// set, scenario resolution, the common command-line flags, a one-call
// structured-throughput runner routed through the das::Executor facade, and
// the structured result reporter behind --json= (the canonical,
// machine-readable bench output; the stdout tables are for humans).
// Every bench is deterministic from kFigureSeed on the sim backend.
//
// Common flags (parsed by Bench(argc, argv, name)):
//   --backend=sim|rt     engine selection (default: sim — the figures are
//                        regenerated in deterministic virtual time)
//   --policy=NAME[,..]   restrict to a subset of the Table-1 schedulers
//                        (e.g. --policy=RWS,DAM-C); default: the bench's set
//   --scenario=N|FILE    override the bench's built-in platform condition
//                        with a catalog scenario (clean, dvfs-wave,
//                        interference-burst, ramp-down, random-churn,
//                        phase-flip) or a JSON spec file (src/scenario)
//   --json=PATH          write every run as a structured JSON record to
//                        PATH (bare --json defaults to BENCH_<name>.json)
//   --scale=F            workload scale factor in (0, 1]; defaults to 1.0 on
//                        sim and 0.02 on rt (real-thread runs execute real
//                        busy-work — full paper scale takes minutes)
//   --seed=N             RNG seed (default: kFigureSeed = 2020)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "platform/speed_model.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das::bench {

inline constexpr std::uint64_t kFigureSeed = 2020;  // ICPP'20
inline constexpr double kRtDefaultScale = 0.02;
inline constexpr int kResultSchemaVersion = 1;

/// Converts one rank's stats snapshot into the JSON record shape documented
/// in README.md ("JSON result schema").
inline json::Value snapshot_to_json(const StatsSnapshot& s) {
  json::Value rank = json::Value::object();
  rank.set("tasks_total", s.tasks_total);
  rank.set("tasks_high", s.tasks_high);
  rank.set("tasks_low", s.tasks_low);
  rank.set("elapsed_s", s.elapsed_s);
  rank.set("total_busy_s", s.total_busy_s);
  json::Value busy = json::Value::array();
  for (double b : s.busy_s) busy.push_back(b);
  rank.set("busy_s", std::move(busy));
  json::Value dist = json::Value::array();
  for (const auto& [place, share] : s.high_distribution) {
    json::Value d = json::Value::object();
    d.set("place", to_string(place));
    d.set("share", share);
    dist.push_back(std::move(d));
  }
  rank.set("high_distribution", std::move(dist));
  return rank;
}

struct Bench {
  explicit Bench(std::string bench_name = "bench")
      : name(std::move(bench_name)), topo(Topology::tx2()) {
    ids = kernels::register_paper_kernels(registry);
  }

  /// Parses the common bench flags (see the header comment).
  Bench(int argc, char* const* argv, std::string bench_name)
      : Bench(std::move(bench_name)) {
    cli::Flags flags(argc, argv);
    cli::maybe_help(flags, cli::kCommonFlagsUsage);
    cli::require_no_positionals(flags);
    flags.require_known(
        {"backend", "policy", "scenario", "json", "scale", "seed", "help"});
    backend = backend_flag(flags, backend);
    scale_explicit = flags.has("scale");
    scale = flags.get_double("scale",
                             backend == Backend::kRt ? kRtDefaultScale : 1.0);
    if (!(scale > 0.0 && scale <= 1.0)) cli::die("--scale must be in (0, 1]");
    seed = flags.get_u64("seed", kFigureSeed);
    if (flags.has("policy")) {
      for (const std::string& pname : cli::split(flags.get("policy"), ',')) {
        const auto p = parse_policy(pname);
        if (!p) cli::die("unknown policy '" + pname + "'");
        policy_filter.push_back(*p);
      }
    }
    scenario_override = scenario_flag(flags);
    if (flags.has("json")) {
      json_path = flags.get("json");
      if (json_path.empty()) json_path = "BENCH_" + name + ".json";
      runs = json::Value::array();
    }
  }

  // --- scenarios ------------------------------------------------------------

  /// The platform condition for a bench section: the --scenario override
  /// when given, else the bench's built-in default (installed by
  /// `fallback`). Benches own the returned value for the section's runs.
  template <typename Fallback>
  SpeedScenario make_scenario(const Topology& t, Fallback&& fallback) const {
    // Topology-mismatch diagnostics (e.g. a spec naming cluster 7 on a
    // 2-cluster machine) exit 2 like every other bad flag value.
    if (scenario_override) return build_scenario_or_exit(*scenario_override, t);
    SpeedScenario s(t);
    fallback(s);
    return s;
  }

  /// Name recorded in JSON output: the override's name, or "default" for
  /// the bench's built-in hard-wired condition.
  std::string scenario_name() const {
    if (!scenario_override) return "default";
    return scenario_override->name.empty() ? "<anonymous>"
                                           : scenario_override->name;
  }

  // --- executors ------------------------------------------------------------

  /// The canonical config every bench starts from (one place instead of a
  /// per-bench SimOptions/RtOptions copy).
  ExecutorConfig make_config() const {
    ExecutorConfig cfg;
    cfg.seed = seed;
    return cfg;
  }

  /// Executor for `policy` on this bench's backend; `topology` defaults to
  /// the TX2 model. `cfg.scenario` is overwritten with `scenario`.
  std::unique_ptr<Executor> make(Policy policy, const SpeedScenario* scenario,
                                 ExecutorConfig cfg,
                                 const Topology* topology = nullptr) const {
    cfg.scenario = scenario;
    return make_executor(backend, topology ? *topology : topo, policy, registry,
                         cfg);
  }

  /// Runs `spec` under `scenario` with `policy` through the facade, records
  /// the run under `label` for --json=, and returns the structured result
  /// (use .tasks_per_s for the figures). Callers that need non-default
  /// options should start from make_config().
  RunResult throughput(const std::string& label, Policy policy,
                       const workloads::SyntheticDagSpec& spec,
                       const SpeedScenario* scenario, ExecutorConfig cfg) {
    const Dag dag = workloads::make_synthetic_dag(spec);
    RunResult r = make(policy, scenario, cfg)->run(dag);
    report(label, r);
    return r;
  }
  RunResult throughput(const std::string& label, Policy policy,
                       const workloads::SyntheticDagSpec& spec,
                       const SpeedScenario* scenario) {
    return throughput(label, policy, spec, scenario, make_config());
  }

  /// The schedulers this bench run iterates: an explicit --policy list is
  /// honoured verbatim (every policy runs on every backend); otherwise the
  /// bench's own `defaults`, or Table-1 order when those are empty too.
  std::vector<Policy> policies(std::vector<Policy> defaults = {}) const {
    if (!policy_filter.empty()) return policy_filter;
    return defaults.empty() ? all_policies() : defaults;
  }

  // --- structured results (--json=) ----------------------------------------

  /// Records one engine run. `extra` merges bench-specific fields (kernel,
  /// parallelism, variant, ...) into the record. No-op without --json=.
  void report(const std::string& label, const RunResult& r,
              json::Value extra = json::Value::object()) {
    if (!runs.is_array()) return;
    json::Value rec = json::Value::object();
    rec.set("label", label);
    rec.set("policy", policy_name(r.policy));
    rec.set("backend", backend_name(r.backend));
    rec.set("scenario", scenario_name());
    rec.set("seed", seed);
    rec.set("makespan_s", r.makespan_s);
    rec.set("tasks", r.tasks);
    rec.set("tasks_per_s", r.tasks_per_s);
    json::Value ranks = json::Value::array();
    for (const StatsSnapshot& s : r.stats) ranks.push_back(snapshot_to_json(s));
    rec.set("ranks", std::move(ranks));
    for (const auto& [key, value] : extra.members()) rec.set(key, value);
    runs.push_back(std::move(rec));
  }

  /// Records a bench-specific object as-is (for benches whose rows are not
  /// engine runs, e.g. the Table-1 feature matrix). No-op without --json=.
  void report_raw(json::Value rec) {
    if (runs.is_array()) runs.push_back(std::move(rec));
  }

  /// Writes BENCH JSON when --json= was given. Benches end main with
  /// `return b.finish();` — 0 on success, 2 when the file cannot be written.
  int finish() {
    if (!runs.is_array()) return 0;
    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", name);
    doc.set("backend",
            backend_label.empty() ? backend_name(backend) : backend_label);
    doc.set("scenario", scenario_name());
    doc.set("seed", seed);
    doc.set("scale", scale);
    doc.set("runs", std::move(runs));
    runs = json::Value();  // finish() is idempotent
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write --json output to '" << json_path
                << "'\n";
      return 2;
    }
    std::cout << "\nwrote " << json_path << "\n";
    return 0;
  }

  std::string name;
  Backend backend = Backend::kSim;
  /// Overrides the JSON document's "backend" field for benches whose runs
  /// span engines (validation_realruntime sets "rt+sim"); per-run records
  /// always carry their own true backend.
  std::string backend_label;
  double scale = 1.0;
  bool scale_explicit = false;  ///< --scale was given on the command line
  std::uint64_t seed = kFigureSeed;
  std::vector<Policy> policy_filter;
  std::optional<scenario::ScenarioSpec> scenario_override;
  std::string json_path;
  json::Value runs;  ///< null until --json= arms the reporter
  Topology topo;
  TaskTypeRegistry registry;
  kernels::PaperKernelIds ids;
};

/// Header used by the per-figure tables: one column per scheduler.
inline std::vector<std::string> policy_header(const std::string& first,
                                              const std::vector<Policy>& ps) {
  std::vector<std::string> h{first};
  for (Policy p : ps) h.emplace_back(policy_name(p));
  return h;
}

inline void print_title(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Standard run banner so every bench states which engine produced its
/// numbers (virtual seconds on sim, wall seconds on rt).
inline void print_backend(const Bench& b) {
  std::cout << "backend: " << backend_name(b.backend) << "  (scale "
            << fmt_double(b.scale, 3) << ", seed " << b.seed << ", scenario "
            << b.scenario_name() << ")\n";
}

}  // namespace das::bench
