#pragma once
// Shared plumbing for the figure-reproduction benches: a registered kernel
// set, canonical scenarios, and a one-call throughput runner. Every bench is
// deterministic from kFigureSeed.

#include <iostream>
#include <string>
#include <vector>

#include "kernels/registry.hpp"
#include "platform/speed_model.hpp"
#include "sim/engine.hpp"
#include "util/format.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das::bench {

inline constexpr std::uint64_t kFigureSeed = 2020;  // ICPP'20

struct Bench {
  Bench() : topo(Topology::tx2()) {
    ids = kernels::register_paper_kernels(registry);
  }

  /// Runs `spec` on the TX2 model under `scenario` with `policy`; returns
  /// tasks per (virtual) second.
  double throughput(Policy policy, const workloads::SyntheticDagSpec& spec,
                    const SpeedScenario* scenario,
                    sim::SimOptions opts = make_options()) const {
    Dag dag = workloads::make_synthetic_dag(spec);
    sim::SimEngine eng(topo, policy, registry, opts, scenario);
    const double makespan = eng.run(dag);
    return dag.num_nodes() / makespan;
  }

  static sim::SimOptions make_options() {
    sim::SimOptions o;
    o.seed = kFigureSeed;
    return o;
  }

  Topology topo;
  TaskTypeRegistry registry;
  kernels::PaperKernelIds ids;
};

/// Header used by the per-figure tables: one column per scheduler.
inline std::vector<std::string> policy_header(const std::string& first) {
  std::vector<std::string> h{first};
  for (Policy p : all_policies()) h.emplace_back(policy_name(p));
  return h;
}

inline void print_title(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace das::bench
