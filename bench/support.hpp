#pragma once
// Shared plumbing for the figure-reproduction benches: a registered kernel
// set, scenario resolution, the common command-line flags, a one-call
// structured-throughput runner routed through the das::Executor facade, and
// the structured result reporter behind --json= (the canonical,
// machine-readable bench output; the stdout tables are for humans).
// Every bench is deterministic from kFigureSeed on the sim backend.
//
// Common flags (parsed by Bench(argc, argv, name)):
//   --backend=sim|rt     engine selection (default: sim — the figures are
//                        regenerated in deterministic virtual time)
//   --policy=NAME[,..]   restrict to a subset of the Table-1 schedulers
//                        (e.g. --policy=RWS,DAM-C); default: the bench's set
//   --scenario=N|FILE    override the bench's built-in platform condition
//                        with a catalog scenario (clean, dvfs-wave,
//                        interference-burst, ramp-down, random-churn,
//                        phase-flip) or a JSON spec file (src/scenario)
//   --json=PATH          write every run as a structured JSON record to
//                        PATH (bare --json defaults to BENCH_<name>.json)
//   --scale=F            workload scale factor in (0, 1]; defaults to 1.0 on
//                        sim and 0.02 on rt (real-thread runs execute real
//                        busy-work — full paper scale takes minutes)
//   --seed=N             RNG seed (default: kFigureSeed = 2020)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "kernels/registry.hpp"
#include "platform/speed_model.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "workloads/synthetic_dag.hpp"

namespace das::bench {

inline constexpr std::uint64_t kFigureSeed = 2020;  // ICPP'20
inline constexpr double kRtDefaultScale = 0.02;
/// Schema v2 = v1 (unchanged fields) + optional per-run job-stream data:
/// "jobs", "latency_s" percentiles, "arrival" metadata, "per_job" records
/// — each carrying the owning "tenant" ("" for bare submits) — and, for
/// multi-tenant streams, per-tenant percentiles plus a "fairness" object
/// (see report_job_stream, bench/job_stream.cpp and README "JSON result
/// schema").
inline constexpr int kResultSchemaVersion = 2;

/// per_job record cap: a 100k-job acceptance sweep must not write a
/// multi-hundred-MB JSON file. Capped streams set "per_job_capped": true;
/// the aggregate percentiles always cover every job.
inline constexpr std::size_t kMaxPerJobRecords = 50000;

/// Latency percentile over `values` (q in [0,1], nearest-rank method).
inline double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t idx = std::min(
      n - 1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0.0 ? 1 : 0));
  return values[idx];
}

/// Converts one rank's stats snapshot into the JSON record shape documented
/// in README.md ("JSON result schema").
inline json::Value snapshot_to_json(const StatsSnapshot& s) {
  json::Value rank = json::Value::object();
  rank.set("tasks_total", s.tasks_total);
  rank.set("tasks_high", s.tasks_high);
  rank.set("tasks_low", s.tasks_low);
  rank.set("elapsed_s", s.elapsed_s);
  rank.set("total_busy_s", s.total_busy_s);
  json::Value busy = json::Value::array();
  for (double b : s.busy_s) busy.push_back(b);
  rank.set("busy_s", std::move(busy));
  json::Value dist = json::Value::array();
  for (const auto& [place, share] : s.high_distribution) {
    json::Value d = json::Value::object();
    d.set("place", to_string(place));
    d.set("share", share);
    dist.push_back(std::move(d));
  }
  rank.set("high_distribution", std::move(dist));
  return rank;
}

struct Bench {
  explicit Bench(std::string bench_name = "bench")
      : name(std::move(bench_name)), topo(Topology::tx2()) {
    ids = kernels::register_paper_kernels(registry);
  }

  /// Parses the common bench flags (see the header comment). Benches that
  /// drive a job stream pass job_stream_flags=true to additionally accept
  /// --jobs=N, --arrival=poisson:<rate>|fixed:<gap> and --inflight=K
  /// (cli::kJobStreamFlagsUsage).
  Bench(int argc, char* const* argv, std::string bench_name,
        bool job_stream_flags = false)
      : Bench(std::move(bench_name)) {
    cli::Flags flags(argc, argv);
    cli::maybe_help(flags, job_stream_flags
                               ? std::string(cli::kCommonFlagsUsage) + " " +
                                     cli::kJobStreamFlagsUsage
                               : std::string(cli::kCommonFlagsUsage));
    cli::require_no_positionals(flags);
    if (job_stream_flags) {
      flags.require_known({"backend", "policy", "scenario", "json", "scale",
                           "seed", "help", "jobs", "arrival", "inflight",
                           "tenants", "weights", "tenant-inflight",
                           "service-inflight", "queue-tasks", "baseline",
                           "update-baseline", "tolerance"});
      jobs_explicit = flags.has("jobs");
      jobs = static_cast<int>(flags.get_int("jobs", jobs));
      if (jobs < 1) cli::die("--jobs must be >= 1");
      inflight = static_cast<int>(flags.get_int("inflight", inflight));
      if (inflight < 0) cli::die("--inflight must be >= 0 (0 = open loop)");
      arrival = cli::arrival_flag(flags);
      if (arrival && inflight > 0)
        cli::die("--arrival (open loop) and --inflight (closed loop) are "
                 "mutually exclusive");
      // Multi-tenant regime (the scheduler-as-a-service driver): --weights
      // alone implies the tenant count; both given must agree.
      if (flags.has("weights")) {
        for (const std::string& part : cli::split(flags.get("weights"), ',')) {
          double w = 0.0;
          try {
            std::size_t pos = 0;
            w = std::stod(part, &pos);
            if (pos != part.size()) throw std::invalid_argument(part);
          } catch (const std::exception&) {
            w = 0.0;
          }
          if (!(w > 0.0))
            cli::die("--weights expects a comma-separated list of positive "
                     "numbers, got '" + part + "'");
          tenant_weights.push_back(w);
        }
      }
      tenants = static_cast<int>(flags.get_int(
          "tenants", tenant_weights.empty()
                         ? 1
                         : static_cast<std::int64_t>(tenant_weights.size())));
      if (tenants < 1) cli::die("--tenants must be >= 1");
      if (!tenant_weights.empty() &&
          static_cast<int>(tenant_weights.size()) != tenants)
        cli::die("--weights must list exactly one weight per --tenants");
      tenant_inflight =
          static_cast<int>(flags.get_int("tenant-inflight", tenant_inflight));
      if (tenant_inflight < 0)
        cli::die("--tenant-inflight must be >= 0 (0 = unbounded)");
      service_inflight =
          static_cast<int>(flags.get_int("service-inflight", service_inflight));
      if (service_inflight < 0)
        cli::die("--service-inflight must be >= 0 (0 = unbounded)");
      queue_tasks = flags.get_int("queue-tasks", queue_tasks);
      if (queue_tasks < 0)
        cli::die("--queue-tasks must be >= 0 (0 = unbounded)");
      baseline_path = flags.get("baseline");
      update_baseline = flags.has("update-baseline");
      if (update_baseline && baseline_path.empty())
        cli::die("--update-baseline needs --baseline=PATH to know where to "
                 "write");
      tolerance = flags.get_double("tolerance", tolerance);
      if (!(tolerance > 0.0 && tolerance < 1.0))
        cli::die("--tolerance must be in (0, 1)");
    } else {
      flags.require_known(
          {"backend", "policy", "scenario", "json", "scale", "seed", "help"});
    }
    backend = backend_flag(flags, backend);
    scale_explicit = flags.has("scale");
    scale = flags.get_double("scale",
                             backend == Backend::kRt ? kRtDefaultScale : 1.0);
    if (!(scale > 0.0 && scale <= 1.0)) cli::die("--scale must be in (0, 1]");
    seed = flags.get_u64("seed", kFigureSeed);
    if (flags.has("policy")) {
      for (const std::string& pname : cli::split(flags.get("policy"), ',')) {
        const auto p = parse_policy(pname);
        if (!p) cli::die("unknown policy '" + pname + "'");
        policy_filter.push_back(*p);
      }
    }
    scenario_override = scenario_flag(flags);
    if (flags.has("json")) {
      json_path = flags.get("json");
      if (json_path.empty()) json_path = "BENCH_" + name + ".json";
      runs = json::Value::array();
    }
  }

  // --- scenarios ------------------------------------------------------------

  /// The platform condition for a bench section: the --scenario override
  /// when given, else the bench's built-in default (installed by
  /// `fallback`). Benches own the returned value for the section's runs.
  template <typename Fallback>
  SpeedScenario make_scenario(const Topology& t, Fallback&& fallback) const {
    // Topology-mismatch diagnostics (e.g. a spec naming cluster 7 on a
    // 2-cluster machine) exit 2 like every other bad flag value.
    if (scenario_override) return build_scenario_or_exit(*scenario_override, t);
    SpeedScenario s(t);
    fallback(s);
    return s;
  }

  /// Name recorded in JSON output: the override's name, or "default" for
  /// the bench's built-in hard-wired condition.
  std::string scenario_name() const {
    if (!scenario_override) return "default";
    return scenario_override->name.empty() ? "<anonymous>"
                                           : scenario_override->name;
  }

  // --- executors ------------------------------------------------------------

  /// The canonical config every bench starts from (one place instead of a
  /// per-bench SimOptions/RtOptions copy).
  ExecutorConfig make_config() const {
    ExecutorConfig cfg;
    cfg.seed = seed;
    return cfg;
  }

  /// Executor for `policy` on this bench's backend; `topology` defaults to
  /// the TX2 model. `cfg.scenario` is overwritten with `scenario` — unless
  /// the --scenario override carries engine-side faults (fail-stop/freeze),
  /// which a SpeedScenario cannot express: then the declarative spec rides
  /// ExecutorConfig::scenario_spec instead, so the facade rebuilds the same
  /// speed model AND arms the fault plan (the CI fault smoke cells rely on
  /// this — a --scenario=fail-stop bench run must actually kill cores).
  std::unique_ptr<Executor> make(Policy policy, const SpeedScenario* scenario,
                                 ExecutorConfig cfg,
                                 const Topology* topology = nullptr) const {
    if (scenario_override && scenario_override->has_engine_faults()) {
      cfg.scenario = nullptr;
      cfg.scenario_spec = *scenario_override;
    } else {
      cfg.scenario = scenario;
    }
    return make_executor(backend, topology ? *topology : topo, policy, registry,
                         cfg);
  }

  /// Runs `spec` under `scenario` with `policy` through the facade, records
  /// the run under `label` for --json=, and returns the structured result
  /// (use .tasks_per_s for the figures). Callers that need non-default
  /// options should start from make_config().
  RunResult throughput(const std::string& label, Policy policy,
                       const workloads::SyntheticDagSpec& spec,
                       const SpeedScenario* scenario, ExecutorConfig cfg) {
    const Dag dag = workloads::make_synthetic_dag(spec);
    RunResult r = make(policy, scenario, cfg)->run(dag);
    report(label, r);
    return r;
  }
  RunResult throughput(const std::string& label, Policy policy,
                       const workloads::SyntheticDagSpec& spec,
                       const SpeedScenario* scenario) {
    return throughput(label, policy, spec, scenario, make_config());
  }

  /// The schedulers this bench run iterates: an explicit --policy list is
  /// honoured verbatim (every policy runs on every backend); otherwise the
  /// bench's own `defaults`, or Table-1 order when those are empty too.
  std::vector<Policy> policies(std::vector<Policy> defaults = {}) const {
    if (!policy_filter.empty()) return policy_filter;
    return defaults.empty() ? all_policies() : defaults;
  }

  // --- structured results (--json=) ----------------------------------------

  /// Records one engine run. `extra` merges bench-specific fields (kernel,
  /// parallelism, variant, ...) into the record. No-op without --json=.
  void report(const std::string& label, const RunResult& r,
              json::Value extra = json::Value::object()) {
    if (!runs.is_array()) return;
    json::Value rec = json::Value::object();
    rec.set("label", label);
    rec.set("policy", policy_name(r.policy));
    rec.set("backend", backend_name(r.backend));
    rec.set("scenario", scenario_name());
    rec.set("seed", seed);
    rec.set("makespan_s", r.makespan_s);
    rec.set("tasks", r.tasks);
    rec.set("tasks_per_s", r.tasks_per_s);
    json::Value ranks = json::Value::array();
    for (const StatsSnapshot& s : r.stats) ranks.push_back(snapshot_to_json(s));
    rec.set("ranks", std::move(ranks));
    for (const auto& [key, value] : extra.members()) rec.set(key, value);
    runs.push_back(std::move(rec));
  }

  /// The JSON "arrival" metadata of a job stream: the process the driver
  /// used ("poisson" | "fixed" | "closed" | "batch") and its parameter.
  /// `effective` overrides the parsed --arrival flag for drivers that
  /// derive their default process at run time (job_stream's calibrated
  /// Poisson rate); --inflight (closed loop) always wins.
  json::Value arrival_meta(
      const std::optional<cli::Arrival>& effective = std::nullopt) const {
    const std::optional<cli::Arrival>& a = effective ? effective : arrival;
    json::Value m = json::Value::object();
    if (inflight > 0) {
      m.set("mode", "closed");
      m.set("inflight", std::int64_t{inflight});
    } else if (a && a->kind == cli::Arrival::Kind::kPoisson) {
      m.set("mode", "poisson");
      m.set("rate_hz", a->rate_hz);
    } else if (a) {
      m.set("mode", "fixed");
      m.set("gap_s", a->gap_s);
    } else {
      m.set("mode", "batch");  // all jobs released together
    }
    return m;
  }

  /// Records one job stream (schema v2): every v1 per-run field (taken from
  /// the stream's last-completed job, whose snapshot carries the cumulative
  /// stats), plus "jobs", per-job "latency_s" p50/p95/p99 and the stream's
  /// arrival metadata (`effective` as in arrival_meta). No-op without
  /// --json=.
  void report_job_stream(const std::string& label,
                         const std::vector<RunResult>& stream,
                         std::optional<cli::Arrival> effective = std::nullopt,
                         json::Value extra = json::Value::object()) {
    if (!runs.is_array() || stream.empty()) return;
    std::vector<double> latencies;
    latencies.reserve(stream.size());
    json::Value per_job = json::Value::array();
    std::size_t recorded = 0;
    for (const RunResult& r : stream) {
      latencies.push_back(r.makespan_s);
      if (recorded == kMaxPerJobRecords) continue;
      ++recorded;
      json::Value j = json::Value::object();
      j.set("job", r.job);
      j.set("tenant", r.tenant);
      j.set("arrival_s", r.arrival_s);
      j.set("queue_s", r.queue_s);
      j.set("latency_s", r.makespan_s);
      if (!r.ok()) j.set("rejected", true);
      per_job.push_back(std::move(j));
    }
    json::Value lat = json::Value::object();
    lat.set("p50", percentile(latencies, 0.50));
    lat.set("p95", percentile(latencies, 0.95));
    lat.set("p99", percentile(latencies, 0.99));
    double sum = 0.0, max = 0.0;
    for (double l : latencies) {
      sum += l;
      max = std::max(max, l);
    }
    lat.set("mean", sum / static_cast<double>(latencies.size()));
    lat.set("max", max);

    std::int64_t stream_tasks = 0;
    for (const RunResult& r : stream) stream_tasks += r.tasks;
    json::Value rec = json::Value::object();
    rec.set("jobs", static_cast<std::int64_t>(stream.size()));
    rec.set("tasks_stream_total", stream_tasks);
    rec.set("latency_s", std::move(lat));
    rec.set("arrival", arrival_meta(effective));
    if (stream.size() > kMaxPerJobRecords) rec.set("per_job_capped", true);
    rec.set("per_job", std::move(per_job));
    for (const auto& [key, value] : extra.members()) rec.set(key, value);
    report(label, stream.back(), std::move(rec));
  }

  /// Records a bench-specific object as-is (for benches whose rows are not
  /// engine runs, e.g. the Table-1 feature matrix). No-op without --json=.
  void report_raw(json::Value rec) {
    if (runs.is_array()) runs.push_back(std::move(rec));
  }

  /// Writes BENCH JSON when --json= was given. Benches end main with
  /// `return b.finish();` — 0 on success, 2 when the file cannot be written.
  int finish() {
    if (!runs.is_array()) return 0;
    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", name);
    doc.set("backend",
            backend_label.empty() ? backend_name(backend) : backend_label);
    doc.set("scenario", scenario_name());
    doc.set("seed", seed);
    doc.set("scale", scale);
    doc.set("runs", std::move(runs));
    runs = json::Value();  // finish() is idempotent
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write --json output to '" << json_path
                << "'\n";
      return 2;
    }
    std::cout << "\nwrote " << json_path << "\n";
    return 0;
  }

  std::string name;
  Backend backend = Backend::kSim;
  /// Overrides the JSON document's "backend" field for benches whose runs
  /// span engines (validation_realruntime sets "rt+sim"); per-run records
  /// always carry their own true backend.
  std::string backend_label;
  double scale = 1.0;
  bool scale_explicit = false;  ///< --scale was given on the command line
  std::uint64_t seed = kFigureSeed;
  // Job-stream flags (parsed only when the bench opts in; see ctor).
  int jobs = 1;       ///< --jobs=N: jobs per measured stream
  bool jobs_explicit = false;  ///< --jobs was given on the command line
  int inflight = 0;   ///< --inflight=K: closed loop concurrency; 0 = open
  std::optional<cli::Arrival> arrival;  ///< --arrival=; nullopt = batch
  // Multi-tenant job-stream flags (scheduler-as-a-service regime).
  int tenants = 1;                      ///< --tenants=N: sessions per stream
  std::vector<double> tenant_weights;   ///< --weights=; empty = all 1.0
  int tenant_inflight = 4;              ///< --tenant-inflight: per-tenant cap
  int service_inflight = 0;             ///< --service-inflight: global cap
  std::int64_t queue_tasks = 0;         ///< --queue-tasks: admission budget
  std::string baseline_path;            ///< --baseline=PATH: fairness gate
  bool update_baseline = false;         ///< --update-baseline
  double tolerance = 0.25;              ///< --tolerance=F: gate slack

  /// Tenant i's DRR weight: the --weights entry, or 1.0 when unset.
  double tenant_weight(int i) const {
    return tenant_weights.empty() ? 1.0
                                  : tenant_weights[static_cast<std::size_t>(i)];
  }
  std::vector<Policy> policy_filter;
  std::optional<scenario::ScenarioSpec> scenario_override;
  std::string json_path;
  json::Value runs;  ///< null until --json= arms the reporter
  Topology topo;
  TaskTypeRegistry registry;
  kernels::PaperKernelIds ids;
};

/// Header used by the per-figure tables: one column per scheduler.
inline std::vector<std::string> policy_header(const std::string& first,
                                              const std::vector<Policy>& ps) {
  std::vector<std::string> h{first};
  for (Policy p : ps) h.emplace_back(policy_name(p));
  return h;
}

inline void print_title(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Standard run banner so every bench states which engine produced its
/// numbers (virtual seconds on sim, wall seconds on rt).
inline void print_backend(const Bench& b) {
  std::cout << "backend: " << backend_name(b.backend) << "  (scale "
            << fmt_double(b.scale, 3) << ", seed " << b.seed << ", scenario "
            << b.scenario_name() << ")\n";
}

}  // namespace das::bench
