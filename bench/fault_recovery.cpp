// Fault-recovery benchmark and determinism sentinel.
//
// Quantifies the fail-stop tolerance layer end to end on the sim backend:
// per (policy, fail-fraction) cell a fixed layered DAG runs once clean to
// size the fault onset, then again with a declarative fail-stop spec
// (scenario::FaultSpec) killing that fraction of the cores at half the
// clean makespan. The cell reports the degraded virtual makespan, the
// degradation ratio vs clean, how many task participations were reclaimed
// and re-executed, and the recovery tail (time spent after the kill). A
// final "straggler-tail" cell runs the catalog scenario of that name —
// permanent slowdown instead of death — so the two failure modes sit in
// one table.
//
// Because the DES is bitwise deterministic from (seed, spec), the baseline
// gate is EXACT by default: --baseline=PATH compares each cell's virtual
// makespan and re-execution count against the checked-in JSON and exits 1
// on ANY drift (--tolerance relaxes the makespan check for intentionally
// approximate refreshes). This is a behaviour golden, not a perf gate —
// wall time never enters the comparison, so it holds on any machine class.
//
// Flags beyond the common set:
//   --fractions=F[,F...]  fail fractions to sweep   (default 0,0.125,0.25,0.375)
//   --tasks=N             DAG size per job          (default 240)
//   --parallelism=P       DAG width                 (default 4)
//   --baseline=PATH       gate against baseline     (exit 1 on drift)
//   --update-baseline     rewrite PATH from this run
//   --tolerance=F         allowed relative makespan drift (default 0 = exact)

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/support.hpp"
#include "exec/executor.hpp"
#include "scenario/scenario.hpp"
#include "workloads/synthetic_dag.hpp"

using namespace das;
using namespace das::bench;

namespace {

struct Cell {
  std::string label;
  double makespan_s = 0.0;
  std::int64_t reexecuted = 0;
};

std::vector<double> parse_fractions(const cli::Flags& flags) {
  std::vector<double> out;
  for (const std::string& part :
       cli::split(flags.get("fractions", "0,0.125,0.25,0.375"), ',')) {
    try {
      std::size_t pos = 0;
      const double f = std::stod(part, &pos);
      if (pos != part.size() || f < 0.0 || f >= 1.0)
        throw std::invalid_argument(part);
      out.push_back(f);
    } catch (const std::exception&) {
      cli::die("--fractions expects a comma-separated list in [0, 1), got '" +
               part + "'");
    }
  }
  if (out.empty()) cli::die("--fractions must name at least one value");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Flags flags(argc, argv);
  cli::maybe_help(flags,
                  " --policy=NAME[,..] --json=PATH --seed=N"
                  " --fractions=F[,F...] --tasks=N --parallelism=P"
                  " --baseline=PATH --update-baseline --tolerance=F"
                  " (sim-only: no --backend/--scale/--scenario)");
  cli::require_no_positionals(flags);
  flags.require_known({"policy", "json", "seed", "help", "fractions", "tasks",
                       "parallelism", "baseline", "update-baseline",
                       "tolerance"});

  Bench b("fault_recovery");
  b.backend = Backend::kSim;
  b.seed = flags.get_u64("seed", kFigureSeed);
  if (flags.has("policy")) {
    for (const std::string& pname : cli::split(flags.get("policy"), ',')) {
      const auto p = parse_policy(pname);
      if (!p) cli::die("unknown policy '" + pname + "'");
      b.policy_filter.push_back(*p);
    }
  }
  if (flags.has("json")) {
    b.json_path = flags.get("json");
    if (b.json_path.empty()) b.json_path = "BENCH_fault_recovery.json";
    b.runs = json::Value::array();
  }

  const std::vector<double> fractions = parse_fractions(flags);
  const std::int64_t tasks = flags.get_int("tasks", 240);
  const std::int64_t parallelism = flags.get_int("parallelism", 4);
  if (tasks < 1 || parallelism < 1)
    cli::die("--tasks and --parallelism must be >= 1");

  const std::string baseline_path = flags.get("baseline");
  const bool update_baseline = flags.has("update-baseline");
  if (update_baseline && baseline_path.empty())
    cli::die("--update-baseline needs --baseline=PATH to know where to write");
  const double tolerance = flags.get_double("tolerance", 0.0);
  if (tolerance < 0.0 || tolerance >= 1.0)
    cli::die("--tolerance must be in [0, 1)");

  const Topology topo = Topology::tx2();
  workloads::SyntheticDagSpec spec;
  spec.type = b.ids.matmul;  // Bench registers the paper kernels
  spec.parallelism = static_cast<int>(parallelism);
  spec.total_tasks = static_cast<int>(tasks);
  spec.params.p0 = 16;
  const Dag dag = workloads::make_synthetic_dag(spec);

  print_backend(b);
  print_title("Fault recovery: degraded makespan and re-execution per "
              "fail fraction (kill at 0.5 x clean makespan)");
  TextTable table({"cell", "policy", "victims", "makespan[s]", "degr",
                   "reexec", "recovery[s]"});
  std::vector<Cell> cells;

  const auto run_cell = [&](Policy policy,
                            const std::optional<scenario::ScenarioSpec>& fault,
                            double clean, const std::string& label,
                            std::int64_t victims, double t_fail) {
    auto builder = ExecutorConfig::builder().seed(b.seed);
    if (fault) builder.scenario_spec(*fault);
    auto exec =
        make_executor(Backend::kSim, topo, policy, b.registry, builder.build());
    const RunResult r = exec->run(dag);
    DAS_CHECK_MSG(r.ok() && r.tasks == tasks,
                  "fault_recovery: job must complete despite faults");

    const double degradation = clean > 0.0 ? r.makespan_s / clean : 0.0;
    // Recovery tail: virtual time between the kill and completion. For the
    // clean cell (no kill) this is just the full makespan.
    const double recovery_s = r.makespan_s - t_fail;
    cells.push_back(Cell{label, r.makespan_s, r.tasks_reexecuted});

    json::Value rec = json::Value::object();
    rec.set("label", label);
    rec.set("policy", policy_name(policy));
    rec.set("backend", "sim");
    rec.set("seed", b.seed);
    rec.set("tasks", tasks);
    rec.set("parallelism", parallelism);
    rec.set("victims", victims);
    rec.set("fault_t_s", t_fail);
    rec.set("makespan_s", r.makespan_s);
    rec.set("degradation", degradation);
    rec.set("tasks_reexecuted", r.tasks_reexecuted);
    rec.set("recovery_s", recovery_s);
    b.report_raw(std::move(rec));

    table.row()
        .add(label)
        .add(policy_name(policy))
        .add(static_cast<double>(victims), 0)
        .add(r.makespan_s, 6)
        .add(degradation, 3)
        .add(static_cast<double>(r.tasks_reexecuted), 0)
        .add(recovery_s, 6);
  };

  for (Policy policy : b.policies({Policy::kDamC, Policy::kRws})) {
    // Clean probe: sizes every fault onset for this policy and doubles as
    // the fraction=0 cell.
    double clean = 0.0;
    {
      auto exec = make_executor(Backend::kSim, topo, policy, b.registry,
                                ExecutorConfig::builder().seed(b.seed).build());
      const RunResult r = exec->run(dag);
      DAS_CHECK_MSG(r.ok(), "fault_recovery: clean probe failed");
      clean = r.makespan_s;
    }

    for (const double f : fractions) {
      const std::int64_t victims =
          static_cast<std::int64_t>(std::ceil(f * topo.num_cores()));
      const std::string label = std::string("sim/") + policy_name(policy) +
                                "/fail=" + fmt_double(f, 3);
      if (victims == 0) {
        run_cell(policy, std::nullopt, clean, label, 0, 0.0);
        continue;
      }
      scenario::ScenarioSpec fault;
      fault.name = "bench-fail-stop";
      fault.faults.push_back(scenario::FaultSpec{
          .kind = scenario::FaultSpec::Kind::kFail,
          .cores = {},
          .cluster = scenario::FaultSpec::kNoCluster,
          .fraction = f,
          .t_s = clean * 0.5,
          .duration_s = 0.0,
          .slowdown = 0.0});
      run_cell(policy, fault, clean, label, victims, clean * 0.5);
    }

    // The other failure mode: permanent stragglers (no deaths, no
    // re-execution — pure interference degradation). Same shape as the
    // catalog's "straggler-tail" but with the onset scaled to THIS dag's
    // clean makespan (the catalog's absolute 0.5 s onset would land long
    // after a millisecond-scale job finished).
    scenario::ScenarioSpec straggler;
    straggler.name = "bench-straggler-tail";
    straggler.faults.push_back(scenario::FaultSpec{
        .kind = scenario::FaultSpec::Kind::kStraggler,
        .cores = {},
        .cluster = scenario::FaultSpec::kNoCluster,
        .fraction = 0.25,
        .t_s = clean * 0.5,
        .duration_s = 0.0,
        .slowdown = 0.2});
    run_cell(policy, straggler, clean,
             std::string("sim/") + policy_name(policy) + "/straggler-tail",
             0, clean * 0.5);
  }
  table.print(std::cout);

  // --- baseline gate (behaviour golden, not perf) ---------------------------
  if (update_baseline) {
    json::Value cells_json = json::Value::object();
    for (const Cell& c : cells) {
      json::Value entry = json::Value::object();
      entry.set("makespan_s", c.makespan_s);
      entry.set("tasks_reexecuted", c.reexecuted);
      cells_json.set(c.label, std::move(entry));
    }
    json::Value doc = json::Value::object();
    doc.set("schema_version", kResultSchemaVersion);
    doc.set("bench", "fault_recovery_baseline");
    doc.set("note", "Virtual (simulated) makespans and re-execution counts "
                    "per cell — machine-independent DES outputs, gated "
                    "exactly. Any drift means the engine's fault handling or "
                    "event ordering changed; refresh deliberately with "
                    "--update-baseline after auditing the new schedule.");
    doc.set("cells", std::move(cells_json));
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    out << doc.dump(2) << '\n';
    if (!out) {
      std::cerr << "error: cannot write baseline to '" << baseline_path
                << "'\n";
      return 2;
    }
    std::cout << "updated baseline " << baseline_path << "\n";
  } else if (!baseline_path.empty()) {
    int drifts = 0;
    try {
      const json::Value doc = json::parse_file(baseline_path);
      const json::Value* cells_json = doc.find("cells");
      if (cells_json == nullptr || !cells_json->is_object())
        throw json::Error(baseline_path + ": missing 'cells' object");
      for (const Cell& c : cells) {
        const json::Value* ref = cells_json->find(c.label);
        if (ref == nullptr) {
          std::cout << "baseline: no reference for cell '" << c.label
                    << "' (skipped)\n";
          continue;
        }
        const double want_ms = ref->find("makespan_s")->as_number();
        const std::int64_t want_re =
            static_cast<std::int64_t>(ref->find("tasks_reexecuted")->as_number());
        const double drift =
            want_ms > 0.0 ? std::abs(c.makespan_s - want_ms) / want_ms : 0.0;
        if (drift > tolerance || c.reexecuted != want_re) {
          std::cerr << "DRIFT " << c.label << ": makespan "
                    << fmt_double(c.makespan_s, 9) << " vs baseline "
                    << fmt_double(want_ms, 9) << ", reexecuted "
                    << c.reexecuted << " vs " << want_re << "\n";
          ++drifts;
        } else {
          std::cout << "ok " << c.label << ": makespan "
                    << fmt_double(c.makespan_s, 9) << ", reexecuted "
                    << c.reexecuted << "\n";
        }
      }
    } catch (const json::Error& e) {
      std::cerr << "error: cannot read baseline: " << e.what() << "\n";
      return 2;
    }
    if (drifts > 0) {
      std::cerr << drifts << " cell(s) drifted from the fault-recovery "
                   "baseline — the fault path's schedule changed; audit and "
                   "refresh with --update-baseline\n";
      const int rc = b.finish();
      return rc != 0 ? rc : 1;
    }
  }

  return b.finish();
}
