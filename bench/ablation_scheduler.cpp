// Ablation bench for the design choices DESIGN.md §6 calls out. Each
// ablation runs the Fig. 4 MatMul P=2 configuration (co-runner on core 0)
// unless stated otherwise, and reports throughput deltas. Runs through the
// das::Executor facade (--backend=sim|rt).
//
//   A: steal-exemption of high-priority tasks ON (paper) vs OFF
//   B: cold PTT (zero-init exploration, paper) vs warm PTT (pre-trained by
//      an identical clean run — an upper bound for smarter initialisation)
//   C: re-mold at dequeue/steal time (paper, Fig. 3 steps 4-5) vs width
//      frozen at wake-up
//   D: round-robin (paper-faithful deterministic) vs random tie-breaking in
//      the min-searches
//   E: update ratio 1/5 (paper) vs 5/5 (last-sample-only) on the noisy
//      tile-32 workload — the Fig. 8 effect, isolated

#include <iostream>

#include "../bench/support.hpp"
#include "core/criticality.hpp"

using namespace das;
using namespace das::bench;

namespace {

double run(Bench& b, const std::string& label, Policy policy,
           const workloads::SyntheticDagSpec& spec,
           const SpeedScenario* scenario, ExecutorConfig opts,
           bool warm_ptt = false) {
  auto exec = b.make(policy, scenario, opts);
  if (warm_ptt) {
    // Pre-train on a clean run of the same DAG shape (no interference).
    workloads::SyntheticDagSpec prefix = spec;
    prefix.total_tasks = spec.parallelism * 50;
    Dag pre = workloads::make_synthetic_dag(prefix);
    exec->run(pre);
    exec->stats().reset();
  }
  Dag dag = workloads::make_synthetic_dag(spec);
  const double t0 = exec->now();
  const RunResult r = exec->run(dag);
  b.report(label, r);
  return dag.num_nodes() / (exec->now() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  Bench b(argc, argv, "ablation_scheduler");
  print_backend(b);
  const SpeedScenario corunner = b.make_scenario(
      b.topo, [](SpeedScenario& s) { s.add_cpu_corunner(0); });
  const auto spec = workloads::paper_matmul_spec(b.ids.matmul, 2, 0.5 * b.scale);

  print_title("Ablation A: steal-exemption of high-priority tasks (DAM-C)");
  {
    TextTable t({"variant", "tasks/s"});
    ExecutorConfig on = b.make_config();
    ExecutorConfig off = b.make_config();
    off.policy_options.steal_exempt_high_priority = false;
    t.row().add("steal-exempt (paper)").add(run(b, "A steal-exempt", Policy::kDamC, spec, &corunner, on), 0);
    t.row().add("stealable criticals").add(run(b, "A stealable criticals", Policy::kDamC, spec, &corunner, off), 0);
    t.print(std::cout);
  }

  print_title("Ablation B: cold vs warm PTT (DAM-C)");
  {
    TextTable t({"variant", "tasks/s"});
    const ExecutorConfig opts = b.make_config();
    t.row().add("cold (zero-init, paper)").add(run(b, "B cold PTT", Policy::kDamC, spec, &corunner, opts), 0);
    t.row().add("warm (50-layer pre-train)").add(run(b, "B warm PTT", Policy::kDamC, spec, &corunner, opts, true), 0);
    t.print(std::cout);
  }

  print_title("Ablation C: re-mold on dequeue/steal (RWSM-C and DAM-C)");
  {
    TextTable t({"policy", "re-mold (paper)", "width frozen at wake-up"});
    for (Policy p : {Policy::kRwsmC, Policy::kDamC}) {
      ExecutorConfig on = b.make_config();
      ExecutorConfig off = b.make_config();
      off.policy_options.remold_on_dequeue = false;
      t.row()
          .add(policy_name(p))
          .add(run(b, "C re-mold", p, spec, &corunner, on), 0)
          .add(run(b, "C frozen width", p, spec, &corunner, off), 0);
    }
    t.print(std::cout);
  }

  print_title("Ablation D: tie-breaking in the min-searches (DAM-P)");
  {
    TextTable t({"variant", "tasks/s"});
    ExecutorConfig rr = b.make_config();
    ExecutorConfig rnd = b.make_config();
    rnd.policy_options.random_tie_break = true;
    t.row().add("round-robin (deterministic)").add(run(b, "D round-robin", Policy::kDamP, spec, &corunner, rr), 0);
    t.row().add("random").add(run(b, "D random tie-break", Policy::kDamP, spec, &corunner, rnd), 0);
    t.print(std::cout);
  }

  print_title("Ablation E: PTT smoothing on noisy short tasks (tile 32, DAM-C)");
  {
    // P=2: the release-bound regime where decision quality shows (cf. the
    // Fig. 8 bench).
    const auto noisy = workloads::paper_matmul_spec(b.ids.matmul, 2, 0.5 * b.scale, 32);
    TextTable t({"update ratio", "tasks/s"});
    for (int num : {1, 5}) {
      ExecutorConfig opts = b.make_config();
      opts.ptt_ratio = UpdateRatio{num, 5};
      t.row()
          .add(num == 1 ? "1/5 (paper)" : "5/5 (last sample only)")
          .add(run(b, num == 1 ? "E ratio 1/5" : "E ratio 5/5", Policy::kDamC,
                   noisy, &corunner, opts),
               0);
    }
    t.print(std::cout);
  }

  print_title("Ablation F: user-marked vs inferred vs absent criticality "
              "(DAM-C)");
  {
    // The paper relies on user marks; core/criticality.hpp infers them from
    // the DAG structure (CATS-style). "absent" demotes everything to low
    // priority — the criticality-aware machinery goes unused.
    TextTable t({"priority source", "tasks/s"});
    auto run_variant = [&](const char* label, auto&& mutate) {
      Dag dag = workloads::make_synthetic_dag(spec);
      mutate(dag);
      const RunResult r = b.make(Policy::kDamC, &corunner, b.make_config())->run(dag);
      b.report(std::string("F ") + label, r);
      t.row().add(label).add(r.tasks_per_s, 0);
    };
    run_variant("user marks (generator)", [](Dag&) {});
    run_variant("inferred (critical path)", [](Dag& dag) {
      for (NodeId i = 0; i < dag.num_nodes(); ++i)
        dag.node(i).priority = Priority::kLow;  // erase ground truth
      infer_criticality(dag);
    });
    run_variant("absent (all low)", [](Dag& dag) {
      for (NodeId i = 0; i < dag.num_nodes(); ++i)
        dag.node(i).priority = Priority::kLow;
    });
    t.print(std::cout);
  }
  return b.finish();
}
