// Ablation bench for the design choices DESIGN.md §6 calls out. Each
// ablation runs the Fig. 4 MatMul P=2 configuration (co-runner on core 0)
// unless stated otherwise, and reports throughput deltas.
//
//   A: steal-exemption of high-priority tasks ON (paper) vs OFF
//   B: cold PTT (zero-init exploration, paper) vs warm PTT (pre-trained by
//      an identical clean run — an upper bound for smarter initialisation)
//   C: re-mold at dequeue/steal time (paper, Fig. 3 steps 4-5) vs width
//      frozen at wake-up
//   D: round-robin (paper-faithful deterministic) vs random tie-breaking in
//      the min-searches
//   E: update ratio 1/5 (paper) vs 5/5 (last-sample-only) on the noisy
//      tile-32 workload — the Fig. 8 effect, isolated

#include <iostream>

#include "../bench/support.hpp"
#include "core/criticality.hpp"

using namespace das;
using namespace das::bench;

namespace {

double run(const Bench& b, Policy policy, const workloads::SyntheticDagSpec& spec,
           const SpeedScenario* scenario, sim::SimOptions opts,
           bool warm_ptt = false) {
  sim::SimEngine eng(b.topo, policy, b.registry, opts, scenario);
  if (warm_ptt) {
    // Pre-train on a clean run of the same DAG shape (no interference).
    Dag warmup = workloads::make_synthetic_dag(spec);
    sim::SimEngine trainer(b.topo, policy, b.registry, opts, scenario);
    (void)trainer;  // train in-place instead: run a prefix DAG on `eng`
    workloads::SyntheticDagSpec prefix = spec;
    prefix.total_tasks = spec.parallelism * 50;
    Dag pre = workloads::make_synthetic_dag(prefix);
    eng.run(pre);
    eng.stats().reset();
  }
  Dag dag = workloads::make_synthetic_dag(spec);
  const double t0 = eng.now();
  eng.run(dag);
  return dag.num_nodes() / (eng.now() - t0);
}

}  // namespace

int main() {
  Bench b;
  SpeedScenario corunner(b.topo);
  corunner.add_cpu_corunner(0);
  const auto spec = workloads::paper_matmul_spec(b.ids.matmul, 2, 0.5);

  print_title("Ablation A: steal-exemption of high-priority tasks (DAM-C)");
  {
    TextTable t({"variant", "tasks/s"});
    sim::SimOptions on = Bench::make_options();
    sim::SimOptions off = Bench::make_options();
    off.policy_options.steal_exempt_high_priority = false;
    t.row().add("steal-exempt (paper)").add(run(b, Policy::kDamC, spec, &corunner, on), 0);
    t.row().add("stealable criticals").add(run(b, Policy::kDamC, spec, &corunner, off), 0);
    t.print(std::cout);
  }

  print_title("Ablation B: cold vs warm PTT (DAM-C)");
  {
    TextTable t({"variant", "tasks/s"});
    const sim::SimOptions opts = Bench::make_options();
    t.row().add("cold (zero-init, paper)").add(run(b, Policy::kDamC, spec, &corunner, opts), 0);
    t.row().add("warm (50-layer pre-train)").add(run(b, Policy::kDamC, spec, &corunner, opts, true), 0);
    t.print(std::cout);
  }

  print_title("Ablation C: re-mold on dequeue/steal (RWSM-C and DAM-C)");
  {
    TextTable t({"policy", "re-mold (paper)", "width frozen at wake-up"});
    for (Policy p : {Policy::kRwsmC, Policy::kDamC}) {
      sim::SimOptions on = Bench::make_options();
      sim::SimOptions off = Bench::make_options();
      off.policy_options.remold_on_dequeue = false;
      t.row()
          .add(policy_name(p))
          .add(run(b, p, spec, &corunner, on), 0)
          .add(run(b, p, spec, &corunner, off), 0);
    }
    t.print(std::cout);
  }

  print_title("Ablation D: tie-breaking in the min-searches (DAM-P)");
  {
    TextTable t({"variant", "tasks/s"});
    sim::SimOptions rr = Bench::make_options();
    sim::SimOptions rnd = Bench::make_options();
    rnd.policy_options.random_tie_break = true;
    t.row().add("round-robin (deterministic)").add(run(b, Policy::kDamP, spec, &corunner, rr), 0);
    t.row().add("random").add(run(b, Policy::kDamP, spec, &corunner, rnd), 0);
    t.print(std::cout);
  }

  print_title("Ablation E: PTT smoothing on noisy short tasks (tile 32, DAM-C)");
  {
    // P=2: the release-bound regime where decision quality shows (cf. the
    // Fig. 8 bench).
    const auto noisy = workloads::paper_matmul_spec(b.ids.matmul, 2, 0.5, 32);
    TextTable t({"update ratio", "tasks/s"});
    for (int num : {1, 5}) {
      sim::SimOptions opts = Bench::make_options();
      opts.ptt_ratio = UpdateRatio{num, 5};
      t.row()
          .add(num == 1 ? "1/5 (paper)" : "5/5 (last sample only)")
          .add(run(b, Policy::kDamC, noisy, &corunner, opts), 0);
    }
    t.print(std::cout);
  }

  print_title("Ablation F: user-marked vs inferred vs absent criticality "
              "(DAM-C)");
  {
    // The paper relies on user marks; core/criticality.hpp infers them from
    // the DAG structure (CATS-style). "absent" demotes everything to low
    // priority — the criticality-aware machinery goes unused.
    TextTable t({"priority source", "tasks/s"});
    auto run_variant = [&](const char* label, auto&& mutate) {
      Dag dag = workloads::make_synthetic_dag(spec);
      mutate(dag);
      sim::SimEngine eng(b.topo, Policy::kDamC, b.registry,
                         Bench::make_options(), &corunner);
      const double makespan = eng.run(dag);
      t.row().add(label).add(dag.num_nodes() / makespan, 0);
    };
    run_variant("user marks (generator)", [](Dag&) {});
    run_variant("inferred (critical path)", [](Dag& dag) {
      for (NodeId i = 0; i < dag.num_nodes(); ++i)
        dag.node(i).priority = Priority::kLow;  // erase ground truth
      infer_criticality(dag);
    });
    run_variant("absent (all low)", [](Dag& dag) {
      for (NodeId i = 0; i < dag.num_nodes(); ++i)
        dag.node(i).priority = Priority::kLow;
    });
    t.print(std::cout);
  }
  return 0;
}
