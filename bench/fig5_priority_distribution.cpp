// Reproduces the paper's Figure 5: distribution of high-priority (critical)
// tasks over execution places for each scheduler — MatMul synthetic DAG,
// DAG parallelism 2, co-running application on (Denver) core 0. Runs through
// the das::Executor facade (--backend=sim|rt).
//
// Paper reference points: RWS spreads criticals nearly uniformly; FA splits
// 50/50 over the two Denver cores regardless of the interference; FAM-C adds
// a (C0,2) share; DA/DAM-C/DAM-P move ~92-98% of criticals to the clean
// Denver core 1, with DAM-P occasionally choosing the wide A57 place (C2,4).

#include <iostream>

#include "../bench/support.hpp"
#include "trace/reporter.hpp"

using namespace das;
using namespace das::bench;

int main(int argc, char** argv) {
  Bench b(argc, argv, "fig5_priority_distribution");
  print_backend(b);
  const SpeedScenario scenario = b.make_scenario(
      b.topo, [](SpeedScenario& s) { s.add_cpu_corunner(0); });
  const auto spec = workloads::paper_matmul_spec(b.ids.matmul, 2, b.scale);

  for (Policy p : b.policies()) {
    Dag dag = workloads::make_synthetic_dag(spec);
    auto exec = b.make(p, &scenario, b.make_config());
    const RunResult r = exec->run(dag);
    b.report("priority distribution", r);
    print_title(std::string("Fig. 5: priority-task distribution — ") +
                policy_name(p));
    print_priority_distribution(exec->stats(), std::cout);
  }
  return b.finish();
}
