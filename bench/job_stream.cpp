// Job-stream bench: the executor as a concurrent job service.
//
// Submits --jobs=N independent synthetic-DAG jobs to ONE executor (shared
// workers, shared learned PTT) and reports per-job latency percentiles
// (p50/p95/p99) per Table-1 policy, under any --scenario= from the catalog.
// This is the job-stream regime the related scheduling literature evaluates
// (many applications sharing a runtime) and the layer every future scaling
// PR — admission control, sharding, cross-tenant priorities — builds on.
//
// Two driving modes:
//   open loop (default; --arrival=poisson:<rate>|fixed:<gap>, default
//     poisson at ~80% of the measured clean-run service rate):
//     arrivals follow the process regardless of completions. On the sim
//     backend the whole arrival trace is submitted up-front as virtual-time
//     offsets and the stream replays bit-identically from the seed; on rt
//     the driver paces submissions in wall time.
//   closed loop (--inflight=K): K jobs are kept in flight; each completion
//     triggers the next submission — the classic throughput-oriented
//     driver.
//
// Per-job latency = release -> completion (RunResult::makespan_s): on the
// open loop it includes queueing behind earlier jobs, which is the point.

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "../bench/support.hpp"
#include "util/time.hpp"

using namespace das;
using namespace das::bench;

namespace {

struct StreamResult {
  std::vector<RunResult> jobs;
  /// The arrival process actually driven (the default open loop derives its
  /// Poisson rate from a calibration run, so the flag alone can't tell).
  cli::Arrival effective{};
};

// One job = one small fork-join synthetic DAG; jobs differ only in their
// arrival instants, so per-job latency differences isolate queueing and
// scheduling, not workload variance.
workloads::SyntheticDagSpec job_spec(const Bench& b) {
  workloads::SyntheticDagSpec spec =
      workloads::paper_matmul_spec(b.ids.matmul, /*parallelism=*/4, b.scale);
  // Keep a single job well under a second of virtual time so an 8..64-job
  // stream stays interactive on both backends.
  spec.total_tasks = std::max(20, spec.total_tasks / 8);
  return spec;
}

cli::Arrival effective_arrival(const Bench& b, double service_estimate_s) {
  if (b.arrival) return *b.arrival;
  // Default: Poisson at ~80% utilisation of the measured service rate.
  cli::Arrival a;
  a.kind = cli::Arrival::Kind::kPoisson;
  a.rate_hz = 0.8 / std::max(service_estimate_s, 1e-9);
  return a;
}

/// Inter-arrival gaps for the open loop, drawn once per policy from the
/// bench seed so sim reruns replay the identical trace.
std::vector<double> make_gaps(const Bench& b, const cli::Arrival& a) {
  Xoshiro256 rng(b.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(b.jobs));
  for (int j = 0; j < b.jobs; ++j) {
    if (a.kind == cli::Arrival::Kind::kFixed) {
      gaps.push_back(a.gap_s);
    } else {
      // Exponential inter-arrival via inverse CDF on the deterministic RNG.
      const double u = rng.uniform();
      gaps.push_back(-std::log(1.0 - u) / a.rate_hz);
    }
  }
  return gaps;
}

StreamResult run_stream(Bench& b, Policy policy, const SpeedScenario* scenario) {
  ExecutorConfig cfg = b.make_config();
  auto exec = b.make(policy, scenario, cfg);
  const workloads::SyntheticDagSpec spec = job_spec(b);

  // Calibration run (not measured): trains the PTT a little and yields the
  // service-time estimate the default arrival rate derives from.
  const Dag warmup = workloads::make_synthetic_dag(spec);
  const double service_estimate_s = exec->run(warmup).makespan_s;
  exec->reset_stats();  // the measured stream starts from zeroed counters

  // DAGs must outlive their jobs: build the whole stream up-front.
  std::vector<Dag> dags;
  dags.reserve(static_cast<std::size_t>(b.jobs));
  for (int j = 0; j < b.jobs; ++j)
    dags.push_back(workloads::make_synthetic_dag(spec));

  const cli::Arrival eff = effective_arrival(b, service_estimate_s);
  StreamResult out;
  out.effective = eff;
  if (b.inflight > 0) {
    // Closed loop: keep K jobs in flight; completions trigger submissions.
    std::vector<JobId> window;
    int next = 0;
    while (next < b.jobs && static_cast<int>(window.size()) < b.inflight)
      window.push_back(exec->submit(dags[static_cast<std::size_t>(next++)]));
    std::size_t head = 0;
    while (head < window.size()) {
      out.jobs.push_back(exec->wait(window[head++]));
      if (next < b.jobs)
        window.push_back(exec->submit(dags[static_cast<std::size_t>(next++)]));
    }
  } else {
    const std::vector<double> gaps = make_gaps(b, eff);
    if (b.backend == Backend::kSim) {
      // Open loop on the DES: the full arrival trace goes in as virtual-time
      // offsets; the interleave is a pure function of (seed, trace).
      double offset = 0.0;
      std::vector<JobId> ids;
      for (int j = 0; j < b.jobs; ++j) {
        offset += gaps[static_cast<std::size_t>(j)];
        ids.push_back(exec->submit(dags[static_cast<std::size_t>(j)], offset));
      }
      for (JobId id : ids) out.jobs.push_back(exec->wait(id));
    } else {
      // Open loop on the real runtime: pace arrivals in wall time (sleep,
      // not busy-wait — the submitter must not steal cycles from workers).
      std::vector<JobId> ids;
      for (int j = 0; j < b.jobs; ++j) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            s_to_ns(gaps[static_cast<std::size_t>(j)])));
        ids.push_back(exec->submit(dags[static_cast<std::size_t>(j)]));
      }
      for (JobId id : ids) out.jobs.push_back(exec->wait(id));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Bench b(argc, argv, "job_stream", /*job_stream_flags=*/true);
  if (!b.scale_explicit && b.backend == Backend::kRt) b.scale = 0.01;
  if (!b.jobs_explicit) b.jobs = 16;  // a 1-job "stream" has no percentiles
  print_backend(b);
  std::cout << "jobs " << b.jobs
            << (b.inflight > 0
                    ? "  closed loop, inflight " + std::to_string(b.inflight)
                    : std::string("  open loop"))
            << "\n";

  const SpeedScenario scenario =
      b.make_scenario(b.topo, [](SpeedScenario&) { /* clean by default */ });

  print_title("Job stream: per-job latency [s] by scheduler");
  TextTable t({"scheduler", "p50", "p95", "p99", "mean", "max", "stream [s]"});
  for (Policy p : b.policies()) {
    const StreamResult r = run_stream(b, p, &scenario);
    std::vector<double> lat;
    double sum = 0.0, max = 0.0, last_finish = 0.0;
    for (const RunResult& j : r.jobs) {
      lat.push_back(j.makespan_s);
      sum += j.makespan_s;
      max = std::max(max, j.makespan_s);
      last_finish = std::max(last_finish, j.arrival_s + j.makespan_s);
    }
    const double first_arrival = r.jobs.front().arrival_s;
    t.row()
        .add(policy_name(p))
        .add(percentile(lat, 0.50), 4)
        .add(percentile(lat, 0.95), 4)
        .add(percentile(lat, 0.99), 4)
        .add(sum / static_cast<double>(lat.size()), 4)
        .add(max, 4)
        .add(last_finish - first_arrival, 4);
    b.report_job_stream("job stream", r.jobs, r.effective);
  }
  t.print(std::cout);
  return b.finish();
}
